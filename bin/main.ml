(* sync-agreement — command-line front end of the reproduction.

   Subcommands:
     run          run one consensus algorithm under a chosen adversary
     check        exhaustively model-check an algorithm for a small system
     live         run the algorithm as real OS processes over sockets,
                  with scripted process kills and a judged transcript
     experiments  regenerate the paper's tables (all or one by id)
     lower-bound  tightness certificate + truncation violation witness
     bivalency    valence analysis of the configuration graph
     snapshot     Chandy-Lamport demo run

   Every verifying subcommand (run, check, live, chaos, fuzz, shrink
   --replay) exits nonzero when a property is violated, a run is WRONG, or
   the engines disagree — CI asserts both directions of that contract. *)

open Cmdliner
open Model
open Sync_sim

(* --- shared helpers ------------------------------------------------------- *)

type algo = Rwwc | Flood | Early_stopping | Rwwc_on_classic

let algo_conv =
  Arg.enum
    [
      ("rwwc", Rwwc);
      ("flood", Flood);
      ("early-stopping", Early_stopping);
      ("rwwc-on-classic", Rwwc_on_classic);
    ]

let algo_model = function
  | Rwwc -> Model_kind.Extended
  | Flood | Early_stopping | Rwwc_on_classic -> Model_kind.Classic

type adversary = No_crash | Silent | Greedy | Random

let adversary_conv =
  Arg.enum
    [
      ("none", No_crash);
      ("silent", Silent);
      ("greedy", Greedy);
      ("random", Random);
    ]

let schedule_of ~adversary ~model ~n ~t ~f ~seed =
  match adversary with
  | No_crash -> Schedule.empty
  | Silent ->
    Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Silent
  | Greedy ->
    Adversary.Strategies.coordinator_killer ~n ~f ~style:Adversary.Strategies.Greedy
  | Random ->
    Adversary.Strategies.random ~rng:(Prng.Rng.of_int seed) ~model ~n ~f
      ~max_round:(t + 1)

let algo_name = function
  | Rwwc -> "rwwc"
  | Flood -> "flood"
  | Early_stopping -> "early-stopping"
  | Rwwc_on_classic -> "rwwc-on-classic"

let adversary_name = function
  | No_crash -> "none"
  | Silent -> "silent"
  | Greedy -> "greedy"
  | Random -> "random"

(* Shared by shrink/fuzz/check/chaos: shrink a failing schedule against a
   pinned property, report the descent, optionally write + reload + replay
   a repro artifact. *)

let property_fails algo ~n ~t ~property schedule =
  let res = algo.Minimize.Algo.run ~n ~t schedule in
  List.exists
    (fun c -> c.Spec.Properties.name = property && not c.Spec.Properties.ok)
    (Minimize.Algo.checks algo ~t res)

let shrink_schedule algo ~n ~t ~property schedule =
  Minimize.Shrink.run ~reductions:Adversary.Enumerate.reductions
    ~still_fails:(property_fails algo ~n ~t ~property)
    schedule

let print_shrink_outcome ~property (o : Schedule.t Minimize.Shrink.outcome) =
  Format.printf "violated property: %s@." property;
  Format.printf "original  (weight %2d): %s@."
    (Adversary.Enumerate.weight o.Minimize.Shrink.original)
    (Schedule.to_string o.Minimize.Shrink.original);
  Format.printf "minimal   (weight %2d): %s@."
    (Adversary.Enumerate.weight o.Minimize.Shrink.minimal)
    (Schedule.to_string o.Minimize.Shrink.minimal);
  Format.printf
    "shrink: %d steps over %d candidates; 1-minimal (every single-step \
     reduction passes)@."
    o.Minimize.Shrink.steps o.Minimize.Shrink.candidates

(* Write the artifact, then read it back from disk and replay it from
   scratch — the artifact is only reported usable if the round trip
   re-derives the violation. *)
let save_and_verify_repro ~file repro =
  Minimize.Repro.save ~file repro;
  Format.printf "wrote %s@." file;
  match Minimize.Repro.load file with
  | Error err ->
    Format.eprintf "repro artifact failed to reload: %s@."
      (Minimize.Repro.load_error_to_string err);
    1
  | Ok loaded -> (
    match Minimize.Repro.replay loaded with
    | Ok details ->
      Format.printf "replayed %s: violation reproduced@." file;
      List.iter (fun d -> Format.printf "  %s@." d) details;
      0
    | Error why ->
      Format.eprintf "replayed %s: %s@." file why;
      1)

let status_json = function
  | Run_result.Decided { value; at_round } ->
    Obs.Json.Obj
      [
        ("state", Obs.Json.String "decided");
        ("value", Obs.Json.Int value);
        ("round", Obs.Json.Int at_round);
      ]
  | Run_result.Crashed { at_round } ->
    Obs.Json.Obj
      [ ("state", Obs.Json.String "crashed"); ("round", Obs.Json.Int at_round) ]
  | Run_result.Undecided -> Obs.Json.Obj [ ("state", Obs.Json.String "undecided") ]

let check_json (c : Spec.Properties.check) =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String c.Spec.Properties.name);
      ("ok", Obs.Json.Bool c.Spec.Properties.ok);
      ("detail", Obs.Json.String c.Spec.Properties.detail);
    ]

let run_json ~algo ~adversary ~seed ~checks ~metrics res =
  Obs.Json.Obj
    [
      ("algorithm", Obs.Json.String (algo_name algo));
      ("adversary", Obs.Json.String (adversary_name adversary));
      ("seed", Obs.Json.Int seed);
      ("n", Obs.Json.Int res.Run_result.n);
      ("t", Obs.Json.Int res.Run_result.t);
      ("rounds", Obs.Json.Int res.Run_result.rounds_executed);
      ( "statuses",
        Obs.Json.List (Array.to_list (Array.map status_json res.Run_result.statuses))
      );
      ("checks", Obs.Json.List (List.map check_json checks));
      ( "metrics",
        match metrics with
        | Some m -> Obs.Metrics.to_json m
        | None -> Obs.Json.Null );
    ]

(* --- run ------------------------------------------------------------------ *)

let run_cmd =
  let algo =
    Arg.(value & opt algo_conv Rwwc & info [ "a"; "algorithm" ] ~doc:"Algorithm: $(docv).")
  in
  let n = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Number of processes.") in
  let t = Arg.(value & opt (some int) None & info [ "t" ] ~doc:"Resilience (default n-2).") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Crashes for the adversary.") in
  let adversary =
    Arg.(value & opt adversary_conv Silent & info [ "adversary" ] ~doc:"Crash adversary: $(docv).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Record the event stream through a trace sink and print it.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Attach a metrics sink and print summary + per-round tables.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the run (statuses, checks, metrics) as one JSON object.")
  in
  let invariants =
    Arg.(value & flag
         & info [ "invariants" ]
             ~doc:"Also check the Figure 1 trace invariants (rwwc only).")
  in
  let go algo n t f adversary seed trace metrics json invariants =
    let t = Option.value t ~default:(max 1 (n - 2)) in
    let model = algo_model algo in
    let schedule = schedule_of ~adversary ~model ~n ~t ~f ~seed in
    let proposals = Harness.Workloads.distinct n in
    (* Observers are composed outside the engine: metrics and trace sinks on
       demand, the online invariant guard on every run. *)
    let m = if metrics || json then Some (Obs.Metrics.create ()) else None in
    let ts = if trace then Some (Obs.Trace_sink.create ()) else None in
    let online =
      Obs.Online_invariants.create ~check_termination:false ~n ~t ~proposals ()
    in
    let instrument =
      Obs.Instrument.compose_all
        [
          (match m with
          | Some m -> Obs.Metrics.instrument m
          | None -> Obs.Instrument.null);
          (match ts with
          | Some ts -> Obs.Trace_sink.instrument ts
          | None -> Obs.Instrument.null);
          Obs.Online_invariants.instrument online;
        ]
    in
    let cfg ?max_rounds schedule =
      Engine.config ?max_rounds ~record_trace:invariants ~instrument ~schedule
        ~n ~t ~proposals ()
    in
    let report ~bound ~extra_checks res =
      let checks = Spec.Properties.uniform_consensus ?bound res @ extra_checks in
      if json then
        print_endline
          (Obs.Json.to_string
             (run_json ~algo ~adversary ~seed ~checks ~metrics:m res))
      else begin
        Format.printf "%a@." Run_result.pp res;
        (match ts with
        | Some ts ->
          Format.printf "trace:@.%a@." Trace.pp
            (List.filter_map Trace.of_obs (Obs.Trace_sink.events ts))
        | None -> ());
        (match m with
        | Some m when metrics ->
          print_string (Diag.Table.render (Obs.Metrics.summary_table m));
          print_string (Diag.Table.render (Obs.Metrics.per_round_table m))
        | Some _ | None -> ());
        List.iter (fun c -> Format.printf "%a@." Spec.Properties.pp_check c) checks
      end;
      if Spec.Properties.all_ok checks then 0 else 1
    in
    try
      match algo with
      | Rwwc ->
        let res = Harness.Runners.Rwwc_runner.run (cfg schedule) in
        let extra_checks = if invariants then Spec.Figure1_invariants.all res else [] in
        report ~bound:(Some (Harness.Runners.f_actual res + 1)) ~extra_checks res
      | Flood ->
        let res = Harness.Runners.Flood_runner.run (cfg schedule) in
        report ~bound:(Some (t + 1)) ~extra_checks:[] res
      | Early_stopping ->
        let res = Harness.Runners.Es_runner.run (cfg schedule) in
        report
          ~bound:(Some (min (t + 1) (Harness.Runners.f_actual res + 2)))
          ~extra_checks:[] res
      | Rwwc_on_classic ->
        (* The schedule is interpreted in the extended model, then compiled. *)
        let ext_schedule =
          schedule_of ~adversary ~model:Model_kind.Extended ~n ~t ~f ~seed
        in
        let res =
          Harness.Runners.Compiled_runner.run
            (cfg ~max_rounds:(n * (t + 2))
               (Harness.Runners.Compiled.translate_schedule ~n ext_schedule))
        in
        report ~bound:None ~extra_checks:[] res
    with
    | Obs.Online_invariants.Violation msg ->
      Format.eprintf "online invariant violation: %s@." msg;
      1
    | Engine.Model_violation msg ->
      Format.eprintf
        "invalid combination: %s (greedy-style schedules need an \
         extended-model algorithm such as rwwc)@."
        msg;
      1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one consensus algorithm under an adversary.")
    Term.(const go $ algo $ n $ t $ f $ adversary $ seed $ trace $ metrics
          $ json $ invariants)

(* --- check ---------------------------------------------------------------- *)

(* Model-check a registry algorithm (including the deliberately broken
   ablations) by sweeping the full schedule space; a broken variant is
   expected to produce violations, and the nonzero exit is what CI asserts. *)
let check_registry algo ~n ~max_f ~max_round =
  let t = max 1 (n - 2) in
  let started = Unix.gettimeofday () in
  let checked = ref 0 in
  let violations = ref [] in
  Seq.iter
    (fun schedule ->
      incr checked;
      match Minimize.Algo.violation algo ~n ~t schedule with
      | Some c -> violations := (schedule, c) :: !violations
      | None -> ())
    (Adversary.Enumerate.schedules ~model:algo.Minimize.Algo.model ~n ~max_f
       ~max_round);
  let elapsed = Unix.gettimeofday () -. started in
  let violations = List.rev !violations in
  let shown, hidden =
    match violations with
    | a :: b :: c :: d :: e :: rest -> ([ a; b; c; d; e ], List.length rest)
    | vs -> (vs, 0)
  in
  List.iter
    (fun (schedule, c) ->
      Format.printf "VIOLATION on %s@.  %a@."
        (Schedule.to_string schedule)
        Spec.Properties.pp_check c)
    shown;
  if hidden > 0 then Format.printf "... and %d more violations@." hidden;
  Format.printf "checked %d schedules in %.3fs, %d violations@." !checked
    elapsed (List.length violations);
  (match violations with
  | [] -> ()
  | (schedule, c) :: _ ->
    let property = c.Spec.Properties.name in
    let outcome = shrink_schedule algo ~n ~t ~property schedule in
    Format.printf "shrinking first violation:@.";
    print_shrink_outcome ~property outcome);
  if violations = [] then 0 else 1

(* --- distributed check ----------------------------------------------------- *)

(* `check --serve` / `check --worker`: the same canonical sweep as the
   in-process check, sharded over worker processes (local or remote) with
   leases, checkpoints and resume — lib/dist does the heavy lifting, this
   is argument plumbing and reporting. *)

let parse_dist_addr s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S: expected unix:PATH or tcp:PORT" s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" when rest <> "" -> Ok (Unix.ADDR_UNIX rest)
    | "tcp" -> (
      match int_of_string_opt rest with
      | Some port when port > 0 && port < 65536 ->
        Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      | Some _ | None -> Error (Printf.sprintf "bad port in %S" s))
    | _ -> Error (Printf.sprintf "bad address %S: expected unix:PATH or tcp:PORT" s))

let print_dist_violations (report : Dist.Coordinator.report) =
  let shown, hidden =
    match report.Dist.Coordinator.violations with
    | a :: b :: c :: d :: e :: rest -> ([ a; b; c; d; e ], List.length rest)
    | vs -> (vs, 0)
  in
  List.iter
    (fun (v : Dist.Protocol.violation) ->
      Format.printf "VIOLATION on %s@.  [FAIL] %s: %s@."
        (Schedule.to_string v.Dist.Protocol.schedule)
        v.Dist.Protocol.property v.Dist.Protocol.detail)
    shown;
  let unreported =
    report.Dist.Coordinator.violations_total
    - List.length report.Dist.Coordinator.violations
  in
  if hidden + unreported > 0 then
    Format.printf "... and %d more violations@." (hidden + unreported)

let dist_serve ~algo_str ~n ~max_f ~max_round ~symmetry ~shards ~lease_timeout
    ~checkpoint ~report_file ~spawn ~kill_one_after ~verbose addr_str =
  match parse_dist_addr addr_str with
  | Error why ->
    Format.eprintf "%s@." why;
    2
  | Ok addr -> (
    match Minimize.Algo.find algo_str with
    | Error why ->
      Format.eprintf "%s@." why;
      2
    | Ok _ ->
      (* Shard count: explicit wins; otherwise oversharded to the spawned
         worker count so a straggling or dying worker leaves only small
         leases behind; 64 when the workers are remote and unknown. *)
      let shards =
        match shards with
        | Some s -> s
        | None ->
          if spawn > 0 then begin
            let s = Dist.Fleet.auto_shards ~workers:spawn () in
            Format.printf
              "shards: auto-sized to %d (%d local workers, straggler factor \
               8)@."
              s spawn;
            s
          end
          else 64
      in
      let job =
        {
          Dist.Protocol.algo = algo_str;
          n;
          max_f;
          max_round;
          shards;
          symmetry;
          heartbeat_every = Float.max 0.1 (lease_timeout /. 4.0);
        }
      in
      let started = Unix.gettimeofday () in
      let outcome =
        if spawn > 0 then
          match
            Dist.Fleet.run_local ~lease_timeout ?checkpoint ~verbose
              ?kill_one_after ~workers:spawn ~addr job
          with
          | Error why -> Error why
          | Ok o ->
            Ok
              ( o.Dist.Fleet.report,
                o.Dist.Fleet.worker_failures,
                o.Dist.Fleet.chaos_deaths )
        else
          match
            Dist.Coordinator.serve
              (Dist.Coordinator.config ~lease_timeout ?checkpoint ~verbose
                 ~addr job)
          with
          | Error why -> Error why
          | Ok report -> Ok (report, 0, 0)
      in
      let elapsed = Unix.gettimeofday () -. started in
      (match outcome with
      | Error why ->
        Format.eprintf "serve: %s@." why;
        2
      | Ok (report, worker_failures, chaos_deaths) ->
        print_dist_violations report;
        Format.printf
          "distributed: %d shards (%d executed, %d resumed, %d regrants, %d \
           duplicate results)@."
          report.Dist.Coordinator.shards_total
          (List.length report.Dist.Coordinator.executed)
          (List.length report.Dist.Coordinator.resumed)
          report.Dist.Coordinator.regrants report.Dist.Coordinator.duplicates;
        if chaos_deaths > 0 then
          Format.printf "chaos: absorbed %d scripted worker death%s@."
            chaos_deaths
            (if chaos_deaths = 1 then "" else "s");
        Format.printf "checked %d schedules in %.3fs, %d violations@."
          report.Dist.Coordinator.classes elapsed
          report.Dist.Coordinator.violations_total;
        (match report_file with
        | None -> ()
        | Some file ->
          Obs.Json.save_atomic ~file (Dist.Coordinator.report_to_json report);
          Format.printf "wrote %s@." file);
        if worker_failures > 0 then begin
          Format.eprintf "%d worker(s) failed unscripted@." worker_failures;
          2
        end
        else if report.Dist.Coordinator.violations_total > 0 then 1
        else 0))

let dist_worker ~patience ~die_after ~die_on_grant ~verbose addr_str =
  match parse_dist_addr addr_str with
  | Error why ->
    Format.eprintf "%s@." why;
    2
  | Ok addr -> (
    let chaos =
      { Dist.Worker.die_on_grant; die_after_schedules = die_after }
    in
    match Dist.Worker.run ~patience ~chaos ~verbose ~addr () with
    | Ok shards ->
      Format.printf "worker done: %d shards completed@." shards;
      0
    | Error why ->
      Format.eprintf "worker: %s@." why;
      3)

let check_cmd =
  let algo =
    Arg.(value & opt string "rwwc"
         & info [ "a"; "algo"; "algorithm" ]
             ~doc:
               (Printf.sprintf
                  "Algorithm: a built-in (rwwc, flood, early-stopping) or any \
                   registry name, including the broken ablations (%s)."
                  (String.concat ", " Minimize.Algo.names)))
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes (keep small).") in
  let max_f = Arg.(value & opt int 2 & info [ "max-f" ] ~doc:"Max crashes to enumerate.") in
  let max_round =
    Arg.(value & opt int 3 & info [ "max-round" ] ~doc:"Latest crash round to enumerate.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~doc:"Worker domains for the search.")
  in
  let no_symmetry =
    Arg.(value & flag
         & info [ "no-symmetry" ]
             ~doc:"Sweep the full schedule space instead of one representative \
                   per symmetry class.")
  in
  let serve =
    Arg.(value & opt (some string) None
         & info [ "serve" ] ~docv:"ADDR"
             ~doc:"Coordinate a distributed sweep on $(docv) (unix:PATH or \
                   tcp:PORT), sharding the enumeration over connecting \
                   workers with leases and a durable checkpoint.")
  in
  let worker =
    Arg.(value & opt (some string) None
         & info [ "worker" ] ~docv:"ADDR"
             ~doc:"Run as a sweep worker against the coordinator at $(docv).")
  in
  let shards =
    Arg.(value & opt (some int) None
         & info [ "shards" ]
             ~doc:
               "Residue-class shards for --serve (default: auto-sized to 8x \
                the --spawn worker count, or 64 without --spawn).")
  in
  let lease_timeout =
    Arg.(value & opt float 5.0
         & info [ "lease-timeout" ]
             ~doc:"Seconds of worker silence before a leased shard is \
                   revoked and re-granted (--serve).")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Durable sweep checkpoint: written after every accepted \
                   shard, loaded on restart so finished shards never re-run \
                   (--serve).")
  in
  let report_file =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Also write the final report (classes, violations, shard \
                   accounting) as JSON to $(docv) (--serve).")
  in
  let spawn =
    Arg.(value & opt int 0
         & info [ "spawn" ]
             ~doc:"With --serve: also fork $(docv) local worker processes.")
  in
  let kill_one_after =
    Arg.(value & opt (some int) None
         & info [ "kill-one-after" ] ~docv:"K"
             ~doc:"Chaos (with --serve --spawn): the first spawned worker \
                   dies mid-shard after checking $(docv) schedules; the \
                   fleet must absorb it.")
  in
  let die_after =
    Arg.(value & opt (some int) None
         & info [ "die-after" ] ~docv:"K"
             ~doc:"Chaos (with --worker): _exit mid-shard after checking \
                   $(docv) schedules.")
  in
  let die_on_grant =
    Arg.(value & opt (some int) None
         & info [ "die-on-grant" ] ~docv:"K"
             ~doc:"Chaos (with --worker): _exit upon receiving the $(docv)-th \
                   lease, without returning its result.")
  in
  let patience =
    Arg.(value & opt float 30.0
         & info [ "patience" ]
             ~doc:"Worker reconnect budget per disconnected spell, in \
                   seconds (--worker).")
  in
  let dist_verbose =
    Arg.(value & flag
         & info [ "dist-verbose" ]
             ~doc:"Log coordinator/worker protocol events to stderr.")
  in
  let rec go algo_str n max_f max_round domains no_symmetry serve worker shards
      lease_timeout checkpoint report_file spawn kill_one_after die_after
      die_on_grant patience dist_verbose =
    match (serve, worker) with
    | Some _, Some _ ->
      Format.eprintf "check: --serve and --worker are mutually exclusive@.";
      2
    | None, Some addr ->
      dist_worker ~patience ~die_after ~die_on_grant ~verbose:dist_verbose addr
    | Some addr, None ->
      dist_serve ~algo_str ~n ~max_f ~max_round ~symmetry:(not no_symmetry)
        ~shards ~lease_timeout ~checkpoint ~report_file ~spawn ~kill_one_after
        ~verbose:dist_verbose addr
    | None, None -> go_local algo_str n max_f max_round domains no_symmetry
  and go_local algo_str n max_f max_round domains no_symmetry =
    let builtin =
      List.assoc_opt algo_str
        [
          ("rwwc", Rwwc);
          ("flood", Flood);
          ("early-stopping", Early_stopping);
          ("rwwc-on-classic", Rwwc_on_classic);
        ]
    in
    match builtin with
    | None -> (
      match Minimize.Algo.find algo_str with
      | Error why ->
        Format.eprintf "%s@." why;
        2
      | Ok malgo -> check_registry malgo ~n ~max_f ~max_round)
    | Some algo ->
    let t = max 1 (n - 2) in
    let model = algo_model algo in
    let proposals = Harness.Workloads.distinct n in
    let profile =
      match algo with
      | Rwwc -> Adversary.Canonical.rotating_coordinator ~n
      | Flood | Early_stopping -> Adversary.Canonical.broadcast ~n ~t
      | Rwwc_on_classic ->
        failwith "check: use rwwc and the transform tests instead"
    in
    let full_size = Adversary.Enumerate.space_size ~model ~n ~max_f ~max_round in
    (* The space is never materialized: each worker domain folds its own
       lazy residue-class slice of the stream with a preallocated engine
       runner, so memory stays O(violations) however large the sweep. *)
    let enumerate () =
      if no_symmetry then Adversary.Enumerate.schedules ~model ~n ~max_f ~max_round
      else Adversary.Canonical.schedules profile ~n ~max_f ~max_round
    in
    let sweep ~shards ~shard =
      let cfg = Engine.config ~n ~t ~proposals () in
      let verdict =
        match algo with
        | Rwwc ->
          let run = Harness.Runners.Rwwc_runner.runner cfg in
          fun schedule ->
            let res = run schedule in
            Spec.Properties.uniform_consensus
              ~bound:(Harness.Runners.f_actual res + 1)
              res
        | Flood ->
          let run = Harness.Runners.Flood_runner.runner cfg in
          fun schedule ->
            Spec.Properties.uniform_consensus ~bound:(t + 1) (run schedule)
        | Early_stopping ->
          let run = Harness.Runners.Es_runner.runner cfg in
          fun schedule ->
            let res = run schedule in
            Spec.Properties.uniform_consensus
              ~bound:(min (t + 1) (Harness.Runners.f_actual res + 2))
              res
        | Rwwc_on_classic -> assert false (* rejected above *)
      in
      Seq.fold_left
        (fun (checked, violations) schedule ->
          let checks = verdict schedule in
          ( checked + 1,
            if Spec.Properties.all_ok checks then violations
            else (schedule, Spec.Properties.failures checks) :: violations ))
        (0, [])
        (Adversary.Enumerate.shard ~shards ~shard (enumerate ()))
    in
    let started = Unix.gettimeofday () in
    let per_shard = Parallel.Pool.shards ~domains sweep in
    let elapsed = Unix.gettimeofday () -. started in
    let checked = List.fold_left (fun acc (c, _) -> acc + c) 0 per_shard in
    let violations =
      List.concat_map (fun (_, vs) -> List.rev vs) per_shard
      |> List.sort (fun (a, _) (b, _) -> Adversary.Canonical.compare a b)
    in
    List.iter
      (fun (schedule, failures) ->
        Format.printf "VIOLATION on %s@." (Schedule.to_string schedule);
        List.iter
          (fun c -> Format.printf "  %a@." Spec.Properties.pp_check c)
          failures)
      violations;
    if not no_symmetry then
      Format.printf
        "symmetry: %d classes cover a space of %d schedules (%.1fx reduction)@."
        checked full_size
        (float_of_int full_size /. float_of_int (max 1 checked));
    Format.printf "checked %d schedules in %.3fs (%.0f schedules/sec), %d violations@."
      checked elapsed
      (float_of_int checked /. Float.max elapsed 1e-9)
      (List.length violations);
    (* Any violation is also shrunk to a 1-minimal reproducer, so the report
       ends with the smallest schedule that still breaks the property. *)
    (match violations with
    | [] -> ()
    | (schedule, failures) :: _ -> (
      match
        (Minimize.Algo.find (algo_name algo), failures)
      with
      | Ok malgo, first_failure :: _ ->
        let property = first_failure.Spec.Properties.name in
        let outcome = shrink_schedule malgo ~n ~t ~property schedule in
        Format.printf "shrinking first violation:@.";
        print_shrink_outcome ~property outcome
      | Error _, _ | _, [] -> ()));
    if violations = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Exhaustively model-check an algorithm over every crash schedule.")
    Term.(
      const go $ algo $ n $ max_f $ max_round $ domains $ no_symmetry $ serve
      $ worker $ shards $ lease_timeout $ checkpoint $ report_file $ spawn
      $ kill_one_after $ die_after $ die_on_grant $ patience $ dist_verbose)

(* --- experiments ---------------------------------------------------------- *)

let experiments_cmd =
  let id =
    Arg.(value & opt (some string) None & info [ "id" ] ~doc:"Run only experiment $(docv).")
  in
  let markdown = Arg.(value & flag & info [ "markdown" ] ~doc:"Markdown tables.") in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids.") in
  let csv_dir =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into $(docv).")
  in
  let write_csv dir e =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iteri
      (fun i table ->
        let file =
          Filename.concat dir
            (Printf.sprintf "exp-%s-%d.csv"
               (String.lowercase_ascii e.Harness.Experiment.id)
               (i + 1))
        in
        let oc = open_out file in
        output_string oc (Diag.Table.render_csv table);
        close_out oc;
        Format.printf "wrote %s@." file)
      (e.Harness.Experiment.run ())
  in
  let go id markdown list_only csv_dir =
    if list_only then begin
      List.iter
        (fun e ->
          Format.printf "%-5s %s (%s)@." e.Harness.Experiment.id
            e.Harness.Experiment.title e.Harness.Experiment.paper_ref)
        Harness.Registry.all;
      0
    end
    else begin
      let selected =
        match id with
        | None -> Ok Harness.Registry.all
        | Some id -> begin
          match Harness.Registry.find id with
          | Some e -> Ok [ e ]
          | None -> Error id
        end
      in
      match selected with
      | Error id ->
        Format.eprintf "unknown experiment %S; known: %s@." id
          (String.concat ", " Harness.Registry.ids);
        2
      | Ok experiments -> (
        try
          List.iter
            (fun e ->
              match csv_dir with
              | Some dir -> write_csv dir e
              | None -> Harness.Experiment.print ~markdown e)
            experiments;
          0
        with
        | Failure why ->
          Format.eprintf "experiment failed: %s@." why;
          1
        | Sys_error why ->
          Format.eprintf "experiment failed: %s@." why;
          1)
    end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's evaluation tables.")
    Term.(const go $ id $ markdown $ list_only $ csv_dir)

(* --- lower-bound ---------------------------------------------------------- *)

let lower_bound_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of processes.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Crash budget / truncation round.") in
  let go n f =
    let module Ex = Lower_bound.Explorer.Make (Core.Rwwc) in
    let proposals = Harness.Workloads.distinct n in
    let cert = Ex.tightness ~n ~f ~proposals in
    Format.printf "tightness: with %d silent crashes the last decision is at round %d (= f+1: %b)@."
      f cert.Lower_bound.Explorer.max_decision_round
      (cert.Lower_bound.Explorer.max_decision_round = f + 1);
    (if f >= 1 && f <= n - 2 then
       match Ex.truncation_violation ~n ~decide_by:f ~proposals with
       | Some w ->
         Format.printf
           "impossibility: deciding by round %d breaks uniform agreement on %s \
            (decided: %s; %d schedules searched)@."
           f
           (Schedule.to_string w.Lower_bound.Explorer.schedule)
           (String.concat ","
              (List.map string_of_int
                 (Run_result.decided_values w.Lower_bound.Explorer.result)))
           w.Lower_bound.Explorer.schedules_searched
       | None -> Format.printf "impossibility: no witness found (unexpected)@.");
    0
  in
  Cmd.v
    (Cmd.info "lower-bound" ~doc:"Certificates for the f+1 lower bound.")
    Term.(const go $ n $ f)

(* --- bivalency ------------------------------------------------------------ *)

let bivalency_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes (keep small).") in
  let t = Arg.(value & opt int 2 & info [ "t" ] ~doc:"Crash budget.") in
  let go n t =
    let module Biv = Lower_bound.Bivalency.Make (Core.Rwwc) in
    let report = Biv.analyze ~n ~t ~proposals:(Harness.Workloads.binary ~n ~zeros:1) () in
    Format.printf
      "n=%d t=%d proposals=0,1,..,1@.initial: %a@.max bivalent depth: %d@.decision inside a bivalent config: %b@.configs explored: %d@."
      n t Lower_bound.Bivalency.pp_valence
      report.Lower_bound.Bivalency.initial_valence
      report.Lower_bound.Bivalency.max_bivalent_depth
      report.Lower_bound.Bivalency.bivalent_with_decision
      report.Lower_bound.Bivalency.configs_explored;
    0
  in
  Cmd.v
    (Cmd.info "bivalency" ~doc:"Valence analysis of the configuration graph.")
    Term.(const go $ n $ t)

(* --- shrink --------------------------------------------------------------- *)

let shrink_cmd =
  let algo =
    Arg.(value & opt string "data-decide"
         & info [ "a"; "algo"; "algorithm" ]
             ~doc:
               (Printf.sprintf "Algorithm to shrink against: one of %s."
                  (String.concat ", " Minimize.Algo.names)))
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes (keep small).") in
  let max_f = Arg.(value & opt int 2 & info [ "max-f" ] ~doc:"Max crashes to enumerate.") in
  let max_round =
    Arg.(value & opt int 3 & info [ "max-round" ] ~doc:"Latest crash round to enumerate.")
  in
  let seed =
    Arg.(value & opt (some int) None
         & info [ "seed" ]
             ~doc:
               "Shrink the first failing random schedule drawn from this \
                seed (scanning forward) instead of the first failing \
                schedule of the exhaustive sweep.")
  in
  let repro =
    Arg.(value & opt (some string) None
         & info [ "repro" ] ~docv:"FILE"
             ~doc:
               "Write the minimal reproducer as a JSON artifact, reload it \
                and replay it.")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay an existing repro artifact instead of shrinking.")
  in
  let go algo_name n max_f max_round seed repro replay =
    match replay with
    | Some file -> (
      match Minimize.Repro.load file with
      | Error err ->
        Format.eprintf "cannot load repro: %s@."
          (Minimize.Repro.load_error_to_string err);
        2
      | Ok r -> (
        Format.printf "%a@." Minimize.Repro.pp r;
        match Minimize.Repro.replay r with
        | Ok details ->
          Format.printf "violation reproduced:@.";
          List.iter (fun d -> Format.printf "  %s@." d) details;
          0
        | Error why ->
          Format.eprintf "%s@." why;
          1))
    | None -> (
      match Minimize.Algo.find algo_name with
      | Error why ->
        Format.eprintf "%s@." why;
        2
      | Ok algo -> (
        let t = max 1 (n - 2) in
        let failing =
          match seed with
          | None ->
            Minimize.Algo.first_violation algo ~n ~t ~max_f ~max_round
          | Some seed ->
            (* Scan seeds forward until a random schedule fails; broken
               variants usually fail within a handful of draws. *)
            let rec scan k =
              if k >= seed + 1000 then None
              else
                let rng = Prng.Rng.of_int k in
                let schedule =
                  Adversary.Strategies.random ~rng ~model:algo.Minimize.Algo.model
                    ~n
                    ~f:(Prng.Rng.int rng (max_f + 1))
                    ~max_round
                in
                match Minimize.Algo.violation algo ~n ~t schedule with
                | Some check -> Some (schedule, check)
                | None -> scan (k + 1)
            in
            scan seed
        in
        match failing with
        | None ->
          Format.printf
            "%s: no violating schedule found (n=%d, f<=%d, rounds<=%d)@."
            algo_name n max_f max_round;
          if algo.Minimize.Algo.broken then 1 else 0
        | Some (schedule, check) ->
          let property = check.Spec.Properties.name in
          let outcome = shrink_schedule algo ~n ~t ~property schedule in
          Format.printf "algorithm: %s (n=%d, t=%d)@." algo_name n t;
          print_shrink_outcome ~property outcome;
          (match
             Minimize.Algo.violation algo ~n ~t outcome.Minimize.Shrink.minimal
           with
          | Some c -> Format.printf "minimal reproducer fails: %a@." Spec.Properties.pp_check c
          | None -> Format.printf "BUG: minimal reproducer passes@.");
          (match repro with
          | None -> 0
          | Some file ->
            save_and_verify_repro ~file
              {
                Minimize.Repro.n;
                t;
                case =
                  Minimize.Repro.Consensus
                    {
                      algo = algo_name;
                      schedule = outcome.Minimize.Shrink.minimal;
                      property;
                    };
                steps = outcome.Minimize.Shrink.steps;
                candidates = outcome.Minimize.Shrink.candidates;
                one_minimal = true;
              })))
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Find a failing crash schedule (exhaustive sweep or seeded random), \
          shrink it to a 1-minimal counterexample, and optionally emit a \
          replayable --repro artifact.")
    Term.(const go $ algo $ n $ max_f $ max_round $ seed $ repro $ replay)

(* --- fuzz ----------------------------------------------------------------- *)

let fuzz_cmd =
  let runs =
    Arg.(value & opt int 60
         & info [ "runs" ] ~docv:"R" ~doc:"Random cases per lane (schedules and fault plans).")
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Processes for the schedule lane.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed.") in
  let budget =
    Arg.(value & opt int 2
         & info [ "retry-budget" ] ~docv:"K"
             ~doc:"Retry budget for the masked-transport lane.")
  in
  let repro =
    Arg.(value & opt (some string) None
         & info [ "repro" ] ~docv:"FILE"
             ~doc:"On failure, write the shrunk reproducer artifact here.")
  in
  let go runs n seed budget repro =
    let t = max 1 (n - 2) in
    let max_round = t + 1 in
    (* Lane 1: random crash schedules through the cross-engine oracle. *)
    let schedule_failure = ref None in
    let k = ref 0 in
    while !schedule_failure = None && !k < runs do
      let rng = Prng.Rng.of_int (seed + !k) in
      let schedule =
        Adversary.Strategies.random ~rng ~model:Model_kind.Extended ~n
          ~f:(Prng.Rng.int rng (t + 1))
          ~max_round
      in
      (match Minimize.Oracle.check_schedule ~n ~t schedule with
      | Minimize.Oracle.Agree _ -> ()
      | Minimize.Oracle.Disagree { diffs; _ } ->
        schedule_failure := Some (schedule, diffs));
      incr k
    done;
    (* Lane 2: recorded random storms through the masked transport. *)
    let chaos_failure = ref None in
    let chaos_n = 6 in
    let storm k =
      let drop = [| 0.05; 0.15; 0.30 |].(k mod 3) in
      Adversary.Net_faults.network_storm ~drop ~duplicate:(drop /. 2.0)
        ~jitter:0.2 ~jitter_spread:2.5
        ~seed:(Int64.of_int (seed + 5000 + k))
        ()
    in
    let k = ref 0 in
    while !chaos_failure = None && !k < runs do
      let faults = Net.Fault_plan.recording (storm !k) in
      (match
         Minimize.Oracle.check_masked ~n:chaos_n ~budget ~faults
           ~seed:(Int64.of_int (seed + !k))
           ()
       with
      | Minimize.Oracle.Wrong why, _ ->
        let actions = Option.get (Net.Fault_plan.recorded faults) in
        chaos_failure := Some (seed + !k, actions, why)
      | (Minimize.Oracle.Masked | Minimize.Oracle.Detected _), _ -> ());
      incr k
    done;
    match (!schedule_failure, !chaos_failure) with
    | None, None ->
      Format.printf
        "fuzz: %d random schedules (n=%d) and %d recorded storms through the \
         differential oracle, no disagreement@."
        runs n runs;
      0
    | Some (schedule, diffs), _ ->
      Format.printf "fuzz: cross-engine DISAGREEMENT on %s@."
        (Schedule.to_string schedule);
      List.iter (fun d -> Format.printf "  %s@." d) diffs;
      let outcome =
        Minimize.Shrink.run ~reductions:Adversary.Enumerate.reductions
          ~still_fails:(fun s -> not (Minimize.Oracle.agrees ~n ~t s))
          schedule
      in
      Format.printf "minimal disagreeing schedule: %s (%d steps)@."
        (Schedule.to_string outcome.Minimize.Shrink.minimal)
        outcome.Minimize.Shrink.steps;
      (match repro with
      | None -> 1
      | Some file ->
        ignore
          (save_and_verify_repro ~file
             {
               Minimize.Repro.n;
               t;
               case =
                 Minimize.Repro.Cross_engine
                   { schedule = outcome.Minimize.Shrink.minimal };
               steps = outcome.Minimize.Shrink.steps;
               candidates = outcome.Minimize.Shrink.candidates;
               one_minimal = true;
             });
        1)
    | None, Some (engine_seed, actions, why) ->
      Format.printf "fuzz: masked transport WRONG (engine seed %d): %s@."
        engine_seed why;
      let wrong actions =
        match
          Minimize.Oracle.check_masked ~n:chaos_n ~budget
            ~faults:(Net.Fault_plan.scripted actions)
            ~seed:(Int64.of_int engine_seed) ()
        with
        | Minimize.Oracle.Wrong _, _ -> true
        | (Minimize.Oracle.Masked | Minimize.Oracle.Detected _), _ -> false
      in
      let outcome =
        Minimize.Shrink.run ~reductions:Minimize.Script.reductions
          ~still_fails:wrong actions
      in
      let minimal = Minimize.Script.trim outcome.Minimize.Shrink.minimal in
      Format.printf "minimal fault script: %d actions, %d faults (%d steps)@."
        (Array.length minimal)
        (Minimize.Script.weight minimal)
        outcome.Minimize.Shrink.steps;
      (match repro with
      | None -> 1
      | Some file ->
        ignore
          (save_and_verify_repro ~file
             {
               Minimize.Repro.n = chaos_n;
               t = chaos_n - 2;
               case =
                 Minimize.Repro.Chaos
                   {
                     budget;
                     engine_seed = Int64.of_int engine_seed;
                     actions = minimal;
                   };
               steps = outcome.Minimize.Shrink.steps;
               candidates = outcome.Minimize.Shrink.candidates;
               one_minimal = true;
             });
        1)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing smoke: seeded random crash schedules and \
          recorded network storms through the conformance oracle \
          (engine-vs-runner-vs-timed-LAN, masked transport vs abstract \
          engine); auto-shrinks and writes a repro artifact on failure.")
    Term.(const go $ runs $ n $ seed $ budget $ repro)

(* --- chaos ---------------------------------------------------------------- *)

let chaos_cmd =
  let n = Arg.(value & opt int 6 & info [ "n" ] ~doc:"Number of processes.") in
  let drop =
    Arg.(value & opt float 0.1
         & info [ "drop-rate" ] ~docv:"P"
             ~doc:"Per-message drop probability of the network storm.")
  in
  let dup =
    Arg.(value & opt (some float) None
         & info [ "dup-rate" ] ~docv:"P"
             ~doc:"Per-message duplication probability (default drop/2).")
  in
  let budget =
    Arg.(value & opt int 1
         & info [ "retry-budget" ] ~docv:"K"
             ~doc:"Retransmissions per unacked message before a round is \
                   declared lost.")
  in
  let runs =
    Arg.(value & opt int 50
         & info [ "runs" ] ~docv:"R" ~doc:"Soak: number of seeded runs.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed.") in
  let go n drop dup budget runs seed =
    let dup = Option.value dup ~default:(drop /. 2.0) in
    let masked = ref 0 and detected = ref 0 and wrong = ref 0 in
    let injected = ref 0 in
    let sample = ref None in
    for k = 0 to runs - 1 do
      let faults =
        Adversary.Net_faults.network_storm ~drop ~duplicate:dup
          ~seed:(Int64.of_int (seed + 1000 + k))
          ()
      in
      let verdict, faults_injected =
        Harness.Exp_chaos.run_one ~n ~budget ~faults
          ~seed:(Int64.of_int (seed + k))
          ()
      in
      injected := !injected + faults_injected;
      match verdict with
      | Harness.Exp_chaos.Masked -> incr masked
      | Harness.Exp_chaos.Detected v ->
        incr detected;
        if !sample = None then sample := Some v
      | Harness.Exp_chaos.Wrong why ->
        incr wrong;
        Format.printf "WRONG (payload seed %d, fault seed %d): %s@." (seed + k)
          (seed + 1000 + k) why;
        (* Run k of this soak draws payload seed [seed + k] and fault seed
           [seed + 1000 + k]; a single-run soak based at [seed + k]
           regenerates both streams exactly. *)
        Format.printf
          "  reproduce with: sync-agreement chaos --runs 1 -n %d --drop-rate \
           %g --dup-rate %g --retry-budget %d --seed %d@."
          n drop dup budget (seed + k)
    done;
    Format.printf
      "chaos soak: n=%d drop=%.2f dup=%.2f retry-budget=%d runs=%d@." n drop
      dup budget runs;
    Format.printf
      "  masked %d, detected %d, wrong %d (%d faults injected)@." !masked
      !detected !wrong !injected;
    (match !sample with
    | Some v ->
      Format.printf "  sample report: %s@." (Net.Synchrony_violation.to_string v)
    | None -> ());
    if !wrong = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Soak the fault-masking LAN transport under an unreliable network: \
          every run must either match the abstract engine or abort with a \
          structured synchrony-violation report.")
    Term.(const go $ n $ drop $ dup $ budget $ runs $ seed)

(* --- live ----------------------------------------------------------------- *)

let rec ensure_dir dir =
  if dir <> "/" && dir <> "." && dir <> "" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let live_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of node processes.") in
  let t =
    Arg.(value & opt (some int) None & info [ "t" ] ~doc:"Resilience (default n-2).")
  in
  let f =
    Arg.(value & opt int 0
         & info [ "f" ] ~docv:"F"
             ~doc:
               "Run the canonical $(docv)-kill script: coordinators p1..pF \
                die in their own rounds, alternating mid-data-step and \
                mid-control-step kills.")
  in
  let kills =
    Arg.(value & opt_all string []
         & info [ "kill" ] ~docv:"SPEC"
             ~doc:
               "Scripted kill (repeatable, overrides --f): \
                p1@r1:data=2, p2@r2:ctl=1, p3@r1:before, p4@r3:after.")
  in
  let transport =
    Arg.(value
         & opt (enum [ ("loopback", `Loopback); ("unix", `Unix_s); ("tcp", `Tcp_s) ])
             `Unix_s
         & info [ "transport" ]
             ~doc:
               "Transport: $(b,loopback) (deterministic in-memory wire, no \
                processes), $(b,unix) (one OS process per node over \
                Unix-domain sockets), or $(b,tcp) (same over 127.0.0.1).")
  in
  let dir =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:
               "Workspace for sockets, per-node logs and verdict.json \
                (default: a pid-stamped directory under the system temp \
                dir).")
  in
  let port =
    Arg.(value & opt int 7800
         & info [ "port-base" ] ~doc:"TCP port base (node i listens on base+i).")
  in
  let big_d =
    Arg.(value & opt float 0.25
         & info [ "round-d" ] ~docv:"D" ~doc:"Round window D in seconds.")
  in
  let delta =
    Arg.(value & opt float 0.1
         & info [ "round-delta" ] ~docv:"DELTA"
             ~doc:"Computation slack delta in seconds; rounds cost D+delta.")
  in
  let max_rounds =
    Arg.(value & opt (some int) None
         & info [ "max-rounds" ] ~doc:"Round horizon (default t+2).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Supervisor progress on stderr.")
  in
  let report ~dir tr v =
    Format.printf "%a@." Live.Transcript.pp tr;
    Format.printf "%a@." Live.Judge.pp v;
    (try
       ensure_dir dir;
       let file = Filename.concat dir "verdict.json" in
       let oc = open_out file in
       output_string oc (Obs.Json.to_string (Live.Judge.to_json tr v));
       output_char oc '\n';
       close_out oc;
       Format.printf "wrote %s@." file
     with
    | Sys_error why -> Format.eprintf "cannot write verdict: %s@." why
    | Unix.Unix_error (e, _, _) ->
      Format.eprintf "cannot write verdict: %s@." (Unix.error_message e));
    if v.Live.Judge.ok then 0 else 1
  in
  let go n t f kills transport dir port big_d delta max_rounds verbose =
    let t = Option.value t ~default:(max 1 (n - 2)) in
    let script =
      if kills = [] then Ok (Live.Script.default ~n ~f)
      else
        List.fold_left
          (fun acc spec ->
            match (acc, Live.Script.parse_kill spec) with
            | (Error _ as e), _ -> e
            | Ok ks, Ok k -> Ok (k :: ks)
            | Ok _, (Error _ as e) -> e)
          (Ok []) kills
        |> Result.map List.rev
    in
    match script with
    | Error why ->
      Format.eprintf "live: bad --kill: %s@." why;
      2
    | Ok script -> (
      match Live.Script.validate ~n ~max_kills:t script with
      | Error why ->
        Format.eprintf "live: %s@." why;
        2
      | Ok () -> (
        let dir =
          match dir with
          | Some d -> d
          | None ->
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "sync-agreement-live-%d" (Unix.getpid ()))
        in
        Format.printf "live: n=%d t=%d script=[%s]@." n t
          (Live.Script.to_string script);
        match transport with
        | `Loopback ->
          let tr = Live.Loopback.Rwwc.run ?max_rounds ~n ~t ~script () in
          let schedule =
            Live.Script.to_schedule ~send_plan:(Live.Binding.Rwwc.send_plan ~n)
              script
          in
          report ~dir tr (Live.Judge.judge ~schedule tr)
        | (`Unix_s | `Tcp_s) as tp -> (
          let transport =
            match tp with `Unix_s -> `Unix dir | `Tcp_s -> `Tcp (dir, port)
          in
          let cfg =
            Live.Supervisor.config ?max_rounds ~verbose ~n ~t ~script ~transport
              ~big_d ~delta ()
          in
          match Live.Supervisor.run cfg with
          | Error why ->
            Format.eprintf "live: %s@." why;
            2
          | Ok (tr, v) -> report ~dir tr v)))
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:
         "Run the Figure 1 algorithm as one OS process per node over real \
          sockets with deadline-synchronized rounds, kill processes at \
          scripted crash points, and judge the surviving transcript \
          (uniform consensus within f+1 rounds, differential vs the \
          abstract engine).")
    Term.(const go $ n $ t $ f $ kills $ transport $ dir $ port $ big_d $ delta
          $ max_rounds $ verbose)

(* --- serve ---------------------------------------------------------------- *)

let serve_proposals n = fun i node -> (i * n) + node

let serve_report ~json ~min_dps (r : Serve.Report.t) =
  if json then print_endline (Obs.Json.to_string (Serve.Report.to_json r))
  else Format.printf "%a@." Serve.Report.pp r;
  if not r.Serve.Report.ok then begin
    Format.eprintf "serve: %d instance(s) failed their judge verdict@."
      (List.length r.Serve.Report.failures);
    1
  end
  else
    match min_dps with
    | Some floor when r.Serve.Report.decisions_per_sec < floor ->
      Format.eprintf
        "serve: %.0f decisions/sec is below the --min-dps floor of %.0f@."
        r.Serve.Report.decisions_per_sec floor;
      1
    | Some _ | None -> 0

let serve_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of nodes.") in
  let t =
    Arg.(value & opt (some int) None & info [ "t" ] ~doc:"Resilience (default n-2).")
  in
  let instances =
    Arg.(value & opt int 1000
         & info [ "instances" ] ~docv:"I" ~doc:"Consensus instances in the storm.")
  in
  let window =
    Arg.(value & opt int 64
         & info [ "window" ] ~docv:"W"
             ~doc:"Concurrent instances in flight (client window).")
  in
  let transport =
    Arg.(value
         & opt (enum [ ("loopback", `Loopback); ("unix", `Unix_s); ("tcp", `Tcp_s) ])
             `Loopback
         & info [ "transport" ]
             ~doc:
               "Transport: $(b,loopback) (deterministic in-memory mesh, one \
                process), $(b,unix) (one engine process per node over \
                Unix-domain sockets), or $(b,tcp) (same over 127.0.0.1).")
  in
  let dir =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Workspace for sockets and engine logs (default pid-stamped \
                   temp dir).")
  in
  let port =
    Arg.(value & opt int 7900
         & info [ "port-base" ] ~doc:"TCP port base (node i listens on base+i).")
  in
  let big_d =
    Arg.(value & opt float 0.25
         & info [ "round-d" ] ~docv:"D" ~doc:"Per-round receive window in seconds.")
  in
  let no_batch =
    Arg.(value & flag
         & info [ "no-batch" ]
             ~doc:"One write per frame instead of per-peer coalescing — the \
                   baseline the batching stats are judged against.")
  in
  let kill_node =
    Arg.(value & opt (some int) None
         & info [ "kill-node" ] ~docv:"P"
             ~doc:"Kill node $(docv) mid-storm (requires --kill-after-frame).")
  in
  let kill_after =
    Arg.(value & opt (some int) None
         & info [ "kill-after-frame" ] ~docv:"K"
             ~doc:"The victim dies before writing mesh frame $(docv)+1; every \
                   surviving instance is judged under its realized crash \
                   point.")
  in
  let min_dps =
    Arg.(value & opt (some float) None
         & info [ "min-dps" ] ~docv:"RATE"
             ~doc:"Fail (exit 1) if the storm settles fewer than $(docv) \
                   decisions per second.")
  in
  let backend =
    Arg.(value
         & opt (enum [ ("select", Serve.Evloop.Select); ("poll", Serve.Evloop.Poll) ])
             Serve.Evloop.Select
         & info [ "backend" ]
             ~doc:
               "Readiness backend for the engine event loops: $(b,select) \
                (portable, FD_SETSIZE-bounded) or $(b,poll) (no fd-count \
                cliff).")
  in
  let soak =
    Arg.(value & opt (some float) None
         & info [ "soak" ] ~docv:"SECONDS"
             ~doc:
               "Sustained-load mode: stream instances for $(docv) seconds \
                instead of a fixed --instances storm, and report \
                time-bucketed latency percentiles (unix/tcp transports \
                only).")
  in
  let bucket =
    Arg.(value & opt float 5.0
         & info [ "bucket" ] ~docv:"SECONDS"
             ~doc:"Latency histogram bucket width for --soak.")
  in
  let max_rounds =
    Arg.(value & opt (some int) None
         & info [ "max-rounds" ] ~doc:"Per-instance round horizon (default t+1).")
  in
  let respawn =
    Arg.(value & flag
         & info [ "respawn" ]
             ~doc:
               "Respawn killed engines: each victim is re-forked in rejoin \
                mode (replay its decision WAL, re-dial the mesh, catch up \
                from the peers' logs) under a budgeted exponential backoff; \
                the storm client re-dials and re-submits. Implies durable \
                WALs in the workspace.")
  in
  let respawn_budget =
    Arg.(value & opt int 3
         & info [ "respawn-budget" ] ~docv:"K"
             ~doc:"Respawn attempts per node (with --respawn).")
  in
  let wal =
    Arg.(value & flag
         & info [ "wal" ]
             ~doc:
               "Write per-engine fsync'd decision WALs in the workspace even \
                without --respawn.")
  in
  let kill_every =
    Arg.(value & opt (some float) None
         & info [ "kill-every" ] ~docv:"SECONDS"
             ~doc:
               "With --soak and --respawn: SIGKILL the next engine \
                (round-robin) every $(docv) seconds and let the respawn \
                policy bring it back.")
  in
  let chaos_links =
    Arg.(value & opt_all (pair ~sep:':' int int) []
         & info [ "chaos-link" ] ~docv:"SRC:DST"
             ~doc:
               "Interpose a socket-level chaos proxy on the mesh link dialed \
                by node $(i,SRC) toward node $(i,DST) (repeatable). The \
                proxy runs the seeded fault script set by the other \
                $(b,--chaos-*) options.")
  in
  let chaos_seed =
    Arg.(value & opt int 42
         & info [ "chaos-seed" ] ~docv:"SEED"
             ~doc:"Seed for the per-link chaos scripts (deterministic).")
  in
  let chaos_cuts =
    Arg.(value & opt int 0
         & info [ "chaos-cuts" ] ~docv:"N"
             ~doc:"Timed link cuts (stalled bytes, healed delivery) per \
                   chaos link.")
  in
  let chaos_resets =
    Arg.(value & opt int 0
         & info [ "chaos-resets" ] ~docv:"N"
             ~doc:"Abrupt link resets per chaos link.")
  in
  let chaos_corrupts =
    Arg.(value & opt int 0
         & info [ "chaos-corrupts" ] ~docv:"N"
             ~doc:"Single-byte corruptions per chaos link (must be caught \
                   by the CRC framing).")
  in
  let chaos_horizon =
    Arg.(value & opt float 10.0
         & info [ "chaos-horizon" ] ~docv:"SECONDS"
             ~doc:"Window after startup over which chaos actions are \
                   scheduled.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let node =
    Arg.(value & opt (some int) None
         & info [ "node" ] ~docv:"I"
             ~doc:
               "Run a single lingering engine for node $(docv) in the \
                foreground instead of a whole storm (pair with $(b,submit)); \
                status events go to stdout.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Fleet progress on stderr.")
  in
  let go n t instances window transport dir port big_d no_batch kill_node
      kill_after min_dps backend soak bucket max_rounds respawn respawn_budget
      wal kill_every chaos_links chaos_seed chaos_cuts chaos_resets
      chaos_corrupts chaos_horizon json node verbose =
    let t = Option.value t ~default:(max 1 (n - 2)) in
    let kill =
      match (kill_node, kill_after) with
      | Some node, Some after_frames -> Ok (Some { Serve.Report.node; after_frames })
      | None, None -> Ok None
      | Some _, None | None, Some _ ->
        Error "serve: --kill-node and --kill-after-frame go together"
    in
    match kill with
    | Error why ->
      Format.eprintf "%s@." why;
      2
    | Ok kill -> (
      let dir =
        match dir with
        | Some d -> d
        | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "sync-agreement-serve-%d" (Unix.getpid ()))
      in
      match node with
      | Some me ->
        (* One lingering engine: the serving half of a `serve`/`submit`
           pair, or one node of a hand-assembled mesh. *)
        if me < 1 || me > n then begin
          Format.eprintf "serve: --node must be in 1..%d@." n;
          2
        end
        else begin
          ensure_dir dir;
          let transport =
            match transport with
            | `Loopback | `Unix_s -> `Unix dir
            | `Tcp_s -> `Tcp port
          in
          let kill_after =
            match kill with
            | Some k when k.Serve.Report.node = me ->
              Some k.Serve.Report.after_frames
            | _ -> None
          in
          Serve.Engine.Rwwc.main
            {
              Serve.Engine.me;
                 n;
              t;
              transport;
              big_d;
              max_rounds = Option.value max_rounds ~default:(t + 1);
              batch = not no_batch;
              backend;
              kill_after;
              linger = true;
              wal_dir = (if wal || respawn then Some dir else None);
              rejoin = respawn;
              dial = None;
              status = stdout;
              log = stderr;
            };
          0
        end
      | None -> (
        match transport with
        | `Loopback when soak <> None ->
          Format.eprintf
            "serve: --soak needs a socket transport (unix or tcp)@.";
          2
        | `Loopback ->
          let r =
            Serve.Loopback.Rwwc.run
              {
                Serve.Loopback.Rwwc.n;
                t;
                instances;
                window;
                big_d;
                batch = not no_batch;
                kill;
                max_rounds;
                proposals = serve_proposals n;
              }
          in
          serve_report ~json ~min_dps r
        | (`Unix_s | `Tcp_s) as tp -> (
          ensure_dir dir;
          let transport =
            match tp with `Unix_s -> `Unix dir | `Tcp_s -> `Tcp port
          in
          let bad_link =
            List.find_opt
              (fun (src, dst) ->
                src < 1 || src > n || dst < 1 || dst > n || src = dst)
              chaos_links
          in
          match bad_link with
          | Some (src, dst) ->
            Format.eprintf
              "serve: --chaos-link %d:%d is not a mesh link of 1..%d@." src
              dst n;
            2
          | None -> (
          let chaos =
            List.map
              (fun (src, dst) ->
                {
                  Serve.Chaosproxy.src;
                  dst;
                  actions =
                    Serve.Chaosproxy.generate
                      ~seed:(chaos_seed + (src * 31) + dst)
                      ~horizon:chaos_horizon ~cuts:chaos_cuts
                      ~resets:chaos_resets ~corrupts:chaos_corrupts ();
                })
              chaos_links
          in
          let fleet_cfg =
            {
              Serve.Fleet.n;
              t;
              transport;
              workspace = dir;
              instances;
              window;
              big_d;
              batch = not no_batch;
              backend;
              kill;
              max_rounds;
              proposals = serve_proposals n;
              client_timeout = None;
              respawn;
              respawn_budget;
              respawn_backoff = 0.2;
              wal;
              chaos;
              verbose;
            }
          in
          match soak with
          | Some duration -> (
            match Serve.Soak.run ?kill_every fleet_cfg ~duration ~bucket with
            | Error why ->
              Format.eprintf "serve: %s@." why;
              2
            | Ok s ->
              if json then
                print_endline (Obs.Json.to_string (Serve.Soak.to_json s))
              else Format.printf "%a" Serve.Soak.pp s;
              if not s.Serve.Soak.ok then begin
                Format.eprintf "serve: soak saw %d disagreement(s)@."
                  s.Serve.Soak.disagreements;
                1
              end
              else (
                match min_dps with
                | Some floor when s.Serve.Soak.decisions_per_sec < floor ->
                  Format.eprintf
                    "serve: %.0f decisions/sec is below the --min-dps floor \
                     of %.0f@."
                    s.Serve.Soak.decisions_per_sec floor;
                  1
                | Some _ | None -> 0))
          | None -> (
            match Serve.Fleet.run fleet_cfg with
            | Error why ->
              Format.eprintf "serve: %s@." why;
              2
            | Ok r -> serve_report ~json ~min_dps r)))))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Consensus as a service: run thousands of multiplexed Figure 1 \
          instances over one socket mesh with a batching event loop, report \
          decisions/sec and latency percentiles, and judge every instance — \
          including under a scripted mid-storm node kill.")
    Term.(const go $ n $ t $ instances $ window $ transport $ dir $ port
          $ big_d $ no_batch $ kill_node $ kill_after $ min_dps $ backend
          $ soak $ bucket $ max_rounds $ respawn $ respawn_budget $ wal
          $ kill_every $ chaos_links $ chaos_seed $ chaos_cuts $ chaos_resets
          $ chaos_corrupts $ chaos_horizon $ json $ node $ verbose)

let submit_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of serving nodes.") in
  let instances =
    Arg.(value & opt int 100
         & info [ "instances" ] ~docv:"I" ~doc:"Instances to submit.")
  in
  let window =
    Arg.(value & opt int 32
         & info [ "window" ] ~docv:"W" ~doc:"Concurrent instances in flight.")
  in
  let transport =
    Arg.(value
         & opt (enum [ ("unix", `Unix_s); ("tcp", `Tcp_s) ]) `Unix_s
         & info [ "transport" ] ~doc:"Transport: $(b,unix) or $(b,tcp).")
  in
  let dir =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Socket directory of the running engines (unix transport).")
  in
  let port =
    Arg.(value & opt int 7900
         & info [ "port-base" ] ~doc:"TCP port base of the running engines.")
  in
  let timeout =
    Arg.(value & opt float 30.0
         & info [ "timeout" ] ~doc:"Overall wall-clock budget in seconds.")
  in
  let reconnect =
    Arg.(value & flag
         & info [ "reconnect" ]
             ~doc:
               "Re-dial a dead engine with jittered backoff and re-submit \
                its unanswered instances (pair with serve --respawn).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the outcome as one JSON object.")
  in
  let go n instances window transport dir port timeout reconnect json =
    let transport =
      match transport with
      | `Unix_s ->
        `Unix
          (Option.value dir
             ~default:
               (Filename.concat
                  (Filename.get_temp_dir_name ())
                  (Printf.sprintf "sync-agreement-serve-%d" (Unix.getpid ()))))
      | `Tcp_s -> `Tcp port
    in
    match
      Serve.Client.run
        {
          Serve.Client.n;
          transport;
          first = 0;
          instances;
          window;
          proposals = serve_proposals n;
          timeout;
          reconnect;
        }
    with
    | Error why ->
      Format.eprintf "submit: %s@." why;
      2
    | Ok o ->
      (* The client-side agreement check: every node that reported a
         decision for an instance must have reported the same value. *)
      let disagreements = ref [] in
      Array.iteri
        (fun i per_node ->
          let values =
            Array.to_list per_node
            |> List.filter_map (Option.map fst)
            |> List.sort_uniq compare
          in
          match values with
          | [] | [ _ ] -> ()
          | vs -> disagreements := (i, vs) :: !disagreements)
        o.Serve.Client.decisions;
      let disagreements = List.rev !disagreements in
      let settled = instances - List.length o.Serve.Client.undecided in
      let dps =
        float_of_int settled /. Float.max o.Serve.Client.elapsed 1e-9
      in
      if json then
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Obj
                [
                  ("instances", Obs.Json.Int instances);
                  ("settled", Obs.Json.Int settled);
                  ( "undecided",
                    Obs.Json.List
                      (List.map
                         (fun i -> Obs.Json.Int i)
                         o.Serve.Client.undecided) );
                  ("elapsed", Obs.Json.Float o.Serve.Client.elapsed);
                  ("decisions_per_sec", Obs.Json.Float dps);
                  ("disagreements", Obs.Json.Int (List.length disagreements));
                  ( "dead_nodes",
                    Obs.Json.List
                      (List.map
                         (fun p -> Obs.Json.Int p)
                         o.Serve.Client.dead_nodes) );
                  ("reconnects", Obs.Json.Int o.Serve.Client.reconnects);
                  ("resubmits", Obs.Json.Int o.Serve.Client.resubmits);
                ]))
      else begin
        Format.printf
          "submitted %d instances: %d settled in %.3fs (%.0f decisions/sec)@."
          instances settled o.Serve.Client.elapsed dps;
        List.iter
          (fun (i, vs) ->
            Format.printf "DISAGREEMENT on instance %d: values %s@." i
              (String.concat "," (List.map string_of_int vs)))
          disagreements;
        if o.Serve.Client.dead_nodes <> [] then
          Format.printf "dead nodes: %s@."
            (String.concat ","
               (List.map string_of_int o.Serve.Client.dead_nodes));
        if o.Serve.Client.reconnects > 0 then
          Format.printf "reconnects: %d (resubmitted %d instance(s))@."
            o.Serve.Client.reconnects o.Serve.Client.resubmits
      end;
      if disagreements <> [] || settled < instances then 1 else 0
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Drive a storm of instances through already-running serve engines \
          (see $(b,serve --node)) and check cross-node agreement on every \
          decision.")
    Term.(const go $ n $ instances $ window $ transport $ dir $ port $ timeout
          $ reconnect $ json)

(* --- snapshot ------------------------------------------------------------- *)

let snapshot_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of processes.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Scheduler seed.") in
  let go n seed =
    let r = Snapshot.Chandy_lamport.run (Snapshot.Chandy_lamport.config ~n ~seed ()) in
    Format.printf "recorded balances: %s@."
      (String.concat " "
         (Array.to_list
            (Array.map string_of_int r.Snapshot.Chandy_lamport.snapshot.Snapshot.Chandy_lamport.locals)));
    List.iter
      (fun ((i, j), c) -> Format.printf "in transit p%d->p%d: %d token(s)@." i j c)
      r.Snapshot.Chandy_lamport.snapshot.Snapshot.Chandy_lamport.channels;
    Format.printf "recorded total %d / expected %d; conservation %b; consistent cut %b@."
      r.Snapshot.Chandy_lamport.recorded_total
      r.Snapshot.Chandy_lamport.expected_total
      r.Snapshot.Chandy_lamport.conservation_ok
      r.Snapshot.Chandy_lamport.consistent_cut;
    if r.Snapshot.Chandy_lamport.conservation_ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc:"Chandy-Lamport snapshot demo (marker messages).")
    Term.(const go $ n $ seed)

let () =
  let info =
    Cmd.info "sync-agreement"
      ~doc:
        "Reproduction of 'The Power and Limit of Adding Synchronization \
         Messages for Synchronous Agreement' (ICPP 2006)."
  in
  (* Accept the common --n/--t/--f spellings for the single-letter options
     (cmdliner only recognizes them as -n/-t/-f). *)
  let argv =
    Array.map
      (function "--n" -> "-n" | "--t" -> "-t" | "--f" -> "-f" | s -> s)
      Sys.argv
  in
  exit
    (Cmd.eval' ~argv
       (Cmd.group info
          [
            run_cmd;
            check_cmd;
            live_cmd;
            serve_cmd;
            submit_cmd;
            shrink_cmd;
            fuzz_cmd;
            experiments_cmd;
            lower_bound_cmd;
            bivalency_cmd;
            chaos_cmd;
            snapshot_cmd;
          ]))
