(** FloodSet: the textbook t+1-round uniform consensus for the classic
    synchronous model (Lynch 96; the "flooding strategy" the paper contrasts
    with in Section 3.2, footnote 5).

    Every process broadcasts the set of proposal values it knows in every
    round; after [t + 1] rounds all correct (indeed, all surviving) processes
    hold the same set because at least one of the rounds was crash-free, and
    everybody decides its minimum.  Always takes [t + 1] rounds, regardless
    of [f] — the non-early-stopping baseline.

    Value sets are {!Model.Bitset.t} word bitmaps (one bit per proposal
    value, merged with word-ORs) instead of the AVL [Set.Make (Int)] they
    replaced; proposals must therefore be non-negative ([init] raises
    [Invalid_argument] otherwise — every workload in this repository
    proposes from [1..n]).  Observable behaviour (decisions, rounds, wire
    bits: a message still costs [value_bits * cardinal]) is pinned
    byte-identical to the set-based implementation by the differential
    suite. *)

type msg = Model.Bitset.t  (** snapshot of the sender's known-value set *)

include Sync_sim.Algorithm_intf.FLAT with type msg := msg
(** [model] is [Classic]. *)

val known : state -> int list
(** Values currently known, sorted (for tests). *)
