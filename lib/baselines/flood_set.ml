open Model

type msg = Bitset.t
type state = { me : int; n : int; t : int; values : Bitset.t }

let name = "flood-set"
let model = Model_kind.Classic
let decision_mode = `Halt
let msg_bits ~value_bits vs = value_bits * Bitset.cardinal vs
let pp_msg = Bitset.pp

let init ~n ~t ~me ~proposal =
  let values = Bitset.create ~capacity:n in
  Bitset.add values proposal;
  { me = Pid.to_int me; n; t; values }

(* The known-value set is one flat word bitmap mutated in place; the payload
   must be a snapshot, not an alias — the receive phase of round [r]
   interleaves with other processes reading what this process sent, and the
   engine delivers physically shared copies. *)
let data_sends state ~round:_ =
  let payload = Bitset.copy state.values in
  List.filter_map
    (fun dest ->
      if Pid.to_int dest = state.me then None else Some (dest, payload))
    (Pid.all ~n:state.n)

let sync_sends _state ~round:_ = []

let decide_now state round = round >= state.t + 1

let compute state ~round ~data ~syncs =
  assert (syncs = []);
  List.iter (fun (_, vs) -> Bitset.union_into ~src:vs ~dst:state.values) data;
  if decide_now state round then
    (state, Some (Option.get (Bitset.min_elt_opt state.values)))
  else (state, None)

(* --- Zero-copy flat-engine path ------------------------------------------- *)

(* Every process floods every round, and [receive] decides at round t+1
   regardless of what arrived: never quiescent. *)
let quiescence = Sync_sim.Algorithm_intf.Chatty

let send state ~round:_ e =
  let payload = Bitset.copy state.values in
  for d = 1 to state.n do
    if d <> state.me then Sync_sim.Emitter.data e (Pid.of_int d) payload
  done

let receive state ~round view =
  for k = 0 to Sync_sim.Round_view.data_count view - 1 do
    Bitset.union_into
      ~src:(Sync_sim.Round_view.data_payload view k)
      ~dst:state.values
  done;
  if decide_now state round then
    Sync_sim.Round_view.decide view
      (Option.get (Bitset.min_elt_opt state.values));
  state

let known state = Bitset.elements state.values
