open Model

type witness = {
  schedule : Schedule.t;
  result : Sync_sim.Run_result.t;
  schedules_searched : int;
}

type tightness = {
  f : int;
  max_decision_round : int;
  schedule : Schedule.t;
}

module Make (A : Algo_intf.S) = struct
  module Runner = Sync_sim.Engine.Make_flat (A)

  let tightness ~n ~f ~proposals =
    if f < 0 || f > n - 2 then invalid_arg "Explorer.tightness: need 0 <= f <= n-2";
    let t = max f 1 in
    let schedule =
      Adversary.Strategies.coordinator_killer ~n ~f
        ~style:Adversary.Strategies.Silent
    in
    let result =
      Runner.run (Sync_sim.Engine.config ~schedule ~n ~t ~proposals ())
    in
    Spec.Properties.assert_ok
      ~context:(Printf.sprintf "tightness n=%d f=%d" n f)
      (Spec.Properties.uniform_consensus ~bound:(f + 1) result);
    {
      f;
      max_decision_round =
        Option.value (Sync_sim.Run_result.max_decision_round result) ~default:0;
      schedule;
    }

  let truncation_violation ~n ~decide_by ~proposals =
    if decide_by < 1 || decide_by > n - 2 then
      invalid_arg "Explorer.truncation_violation: need 1 <= decide_by <= n-2";
    let module T =
      Truncated.Make
        (A)
        (struct
          let decide_by = decide_by
        end)
    in
    let module E = Sync_sim.Engine.Make_flat (T) in
    let t = decide_by in
    let searched = ref 0 in
    let run = E.runner (Sync_sim.Engine.config ~n ~t ~proposals ()) in
    let violation schedule =
      incr searched;
      let result = run schedule in
      let bad =
        not
          (Spec.Properties.all_ok
             [
               Spec.Properties.uniform_agreement result;
               Spec.Properties.validity result;
             ])
      in
      if bad then Some { schedule; result; schedules_searched = !searched }
      else None
    in
    Seq.find_map violation
      (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n
         ~max_f:decide_by ~max_round:decide_by)

  let zero_round_impossible ~n ~proposals =
    ignore n;
    (* A 0-round algorithm exchanges nothing, so each process can only output
       its own proposal. *)
    let distinct =
      Array.to_list proposals |> List.sort_uniq Int.compare |> List.length
    in
    distinct > 1
end
