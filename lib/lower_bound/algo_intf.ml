(** Extra capabilities the lower-bound machinery needs from an algorithm
    beyond {!Sync_sim.Algorithm_intf.S}. *)

module type S = sig
  include Sync_sim.Algorithm_intf.FLAT

  val estimate : state -> int
  (** The value the process would decide if forced to decide now — used by
      {!Truncated} to build hypothetical "decide by round R" algorithms. *)

  val fingerprint : state -> string
  (** Canonical encoding of the state, injective on reachable states — used
      to memoize configurations during valence exploration. *)
end

(** Legacy list-API algorithms with the two extra capabilities, lifted to
    {!S} through the engine's {!Sync_sim.Algorithm_intf.Of_list} adapter —
    the incremental-migration path for algorithms that have not implemented
    the zero-copy API natively. *)
module type LIST = sig
  include Sync_sim.Algorithm_intf.S

  val estimate : state -> int
  val fingerprint : state -> string
end

module Of_list (A : LIST) : S with type state = A.state and type msg = A.msg =
struct
  include Sync_sim.Algorithm_intf.Of_list (A)

  let estimate = A.estimate
  let fingerprint = A.fingerprint
end
