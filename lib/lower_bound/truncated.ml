module Make
    (A : Algo_intf.S) (R : sig
      val decide_by : int
    end) =
struct
  include A

  let () = if R.decide_by < 1 then invalid_arg "Truncated: decide_by < 1"

  let name = Printf.sprintf "%s-truncated@%d" A.name R.decide_by

  let compute state ~round ~data ~syncs =
    let state, decision = A.compute state ~round ~data ~syncs in
    match decision with
    | Some _ -> (state, decision)
    | None when round >= R.decide_by -> (state, Some (A.estimate state))
    | None -> (state, None)

  (* The forced decision at [decide_by] fires even on an empty inbox, so
     the wrapper can never be quiescent, whatever [A] declares. *)
  let quiescence = Sync_sim.Algorithm_intf.Chatty

  (* Flat path: same forcing, expressed through the view's decision flag. *)
  let receive state ~round view =
    let state = A.receive state ~round view in
    if (not (Sync_sim.Round_view.decided view)) && round >= R.decide_by then
      Sync_sim.Round_view.decide view (A.estimate state);
    state
end
