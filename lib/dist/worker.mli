(** The sweep worker: lease a shard, check it, stream the result back.

    A worker owns no durable state.  It connects (with bounded-backoff
    retry), learns the {!Protocol.job}, then loops: request a lease, fold
    the granted residue-class slice of the canonical enumeration through
    the algorithm's verdict, send the {!Protocol.shard_result}, await the
    ack.  Heartbeats flow while a shard runs so the coordinator can tell a
    slow shard from a dead worker.

    Crash safety is reconnect-and-replay: any socket failure (including a
    coordinator that was SIGKILL'd and restarted) sends the worker back to
    the connect loop, where it keeps retrying until [patience] runs out;
    after reconnecting it first replays every result the coordinator never
    acknowledged — the coordinator deduplicates by shard id, so replays are
    safe — and only then asks for new work.

    The {!chaos} hooks make the failure paths deterministic for tests and
    CI: a chaotic worker [_exit]s mid-protocol exactly where told to, and
    the rest of the fleet must absorb it. *)

type chaos = {
  die_on_grant : int option;
      (** [Some k]: [_exit] upon receiving the [k]-th grant, holding the
          lease — the coordinator must time it out and re-grant *)
  die_after_schedules : int option;
      (** [Some k]: [_exit] after checking [k] schedules in total, i.e. in
          the middle of a shard *)
}

val no_chaos : chaos

val chaos_exit_code : int
(** Exit code of a scripted chaos death (17), so reapers can tell scripted
    deaths from genuine failures. *)

val run :
  ?patience:float ->
  ?chaos:chaos ->
  ?verbose:bool ->
  addr:Unix.sockaddr ->
  unit ->
  (int, string) result
(** Serve until the coordinator says [Done]; [Ok shards_completed].
    [patience] (default 30 s) bounds each disconnected spell: a worker that
    cannot (re)connect within it gives up with [Error].  Also [Error] for a
    job naming an unknown algorithm. *)
