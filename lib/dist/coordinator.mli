(** The sweep coordinator: shard dispatch with leases, dedup and resume.

    One select loop, no threads: accept workers, answer [Hello] with the
    job, grant shard leases, absorb heartbeats, accept results.  The fault
    model is "anything dies at any time":

    - {b Worker death / straggler.}  A lease whose holder stops sending
      (no heartbeat, no result) for [lease_timeout] is revoked and the
      shard goes back in the grant queue ([regrants] counts these); a
      disconnect revokes immediately.  If the original worker was merely
      slow and later delivers the shard anyway, first writer wins and the
      late copy is acknowledged but dropped ([duplicates]).
    - {b Coordinator death.}  Every accepted result is folded into the
      checkpoint file before it is acknowledged (atomic fsync'd rename,
      {!Checkpoint.save}), so a SIGKILL'd coordinator restarted on the same
      checkpoint re-grants only unfinished shards; the [resumed] ids in the
      report are exactly the shards that were {e not} re-executed.

    Completion: when every shard is recorded, [Done] is broadcast, late
    requests keep getting [Done], and [serve] returns after a short linger
    so workers can hear it. *)

type config = {
  job : Protocol.job;
  addr : Unix.sockaddr;
  lease_timeout : float;  (** revoke a silent lease after this many seconds *)
  checkpoint : string option;  (** durable resume state; [None] = none *)
  linger : float;  (** how long to keep answering [Done] after completion *)
  min_workers : int;
      (** hold every grant until this many workers have said hello — keeps
          a fast first arrival from swallowing a small sweep whole before
          the rest of a spawned fleet connects *)
  verbose : bool;
}

val config :
  ?lease_timeout:float ->
  ?checkpoint:string ->
  ?linger:float ->
  ?min_workers:int ->
  ?verbose:bool ->
  addr:Unix.sockaddr ->
  Protocol.job ->
  config
(** Defaults: [lease_timeout] 5 s, [linger] 0.5 s, [min_workers] 0. *)

type report = {
  classes : int;  (** total schedules (symmetry classes) checked *)
  violations : Protocol.violation list;
      (** deduplicated, in {!Adversary.Canonical.compare} order; may be
          capped per shard — [violations_total] is exact *)
  violations_total : int;
  shards_total : int;
  executed : int list;  (** shard ids computed during this serve *)
  resumed : int list;  (** shard ids restored from the checkpoint *)
  regrants : int;  (** leases revoked (timeout or disconnect) and re-queued *)
  duplicates : int;  (** late results dropped by first-writer-wins *)
}

val report_to_json : report -> Obs.Json.t
val pp_report : Format.formatter -> report -> unit

val serve : config -> (report, string) result
(** [Error] only before the sweep is underway: unbindable address, a
    checkpoint that does not load, or one recorded for a different job.
    Worker chaos is data, never an error. *)
