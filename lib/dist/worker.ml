module P = Protocol

type chaos = { die_on_grant : int option; die_after_schedules : int option }

let no_chaos = { die_on_grant = None; die_after_schedules = None }

(* Chaos exits use a recognizable code so fleet reaping can tell a scripted
   death from a genuine worker failure. *)
let chaos_exit_code = 17

type state = {
  name : string;
  patience : float;
  chaos : chaos;
  verbose : bool;
  addr : Unix.sockaddr;
  mutable job : P.job option;
  mutable unsent : P.shard_result list;  (* produced but never acknowledged *)
  mutable completed : int;
  mutable grants : int;
  mutable checked_total : int;
}

let logf st fmt =
  Printf.ksprintf
    (fun s ->
      if st.verbose then begin
        Printf.eprintf "[worker %s] %s\n" st.name s;
        flush stderr
      end)
    fmt

let enumeration job =
  match Minimize.Algo.find job.P.algo with
  | Error why -> Error why
  | Ok algo ->
    let n = job.P.n in
    let t = max 1 (n - 2) in
    let seq () =
      if job.P.symmetry then
        let profile =
          match algo.Minimize.Algo.model with
          | Model.Model_kind.Extended ->
            Adversary.Canonical.rotating_coordinator ~n
          | Model.Model_kind.Classic -> Adversary.Canonical.broadcast ~n ~t
        in
        Adversary.Canonical.schedules profile ~n ~max_f:job.P.max_f
          ~max_round:job.P.max_round
      else
        Adversary.Enumerate.schedules ~model:algo.Minimize.Algo.model ~n
          ~max_f:job.P.max_f ~max_round:job.P.max_round
    in
    Ok (algo, t, seq)

(* Fold one residue-class slice through the verdict.  Heartbeats flow on a
   timer; their failures are deliberately ignored — the broken connection
   will surface when the result is sent, and the result is what matters. *)
let run_shard st conn (job : P.job) ~shard =
  match enumeration job with
  | Error why -> Error why
  | Ok (algo, t, seq) ->
    let classes = ref 0 in
    let violations = ref [] in
    let next_hb = ref (Live.Sockets.now () +. job.P.heartbeat_every) in
    Seq.iter
      (fun schedule ->
        (match st.chaos.die_after_schedules with
        | Some k when st.checked_total >= k ->
          logf st "chaos: dying mid-shard after %d schedules" k;
          Unix._exit chaos_exit_code
        | Some _ | None -> ());
        if Live.Sockets.now () >= !next_hb then begin
          ignore (P.send conn (P.Heartbeat { shard; checked = !classes }));
          next_hb := Live.Sockets.now () +. job.P.heartbeat_every
        end;
        incr classes;
        st.checked_total <- st.checked_total + 1;
        match Minimize.Algo.violation algo ~n:job.P.n ~t schedule with
        | None -> ()
        | Some c ->
          violations :=
            {
              P.schedule;
              property = c.Spec.Properties.name;
              detail = c.Spec.Properties.detail;
            }
            :: !violations)
      (Adversary.Enumerate.shard ~shards:job.P.shards ~shard (seq ()));
    let violations = List.rev !violations in
    Ok
      {
        P.shard;
        classes = !classes;
        violations = P.cap_violations violations;
        violations_total = List.length violations;
        worker = st.name;
      }

let sleep_for delay = Live.Sockets.sleep_until (Live.Sockets.now () +. delay)

(* Await the coordinator's ack for [shard], letting unrelated messages pass. *)
let rec await_ack conn ~shard =
  match P.recv ~deadline:(Live.Sockets.now () +. 30.0) conn with
  | `Msg (P.Ack { shard = s }) when s = shard -> `Acked
  | `Msg P.Done -> `Done
  | `Msg _ -> await_ack conn ~shard
  | `Timeout -> `Lost "ack timeout"
  | `Closed why -> `Lost why

let deliver st conn result =
  match P.send conn (P.Result result) with
  | Error why -> `Lost why
  | Ok () -> (
    match await_ack conn ~shard:result.P.shard with
    | `Acked ->
      st.unsent <- List.filter (fun r -> r != result) st.unsent;
      st.completed <- st.completed + 1;
      `Acked
    | `Done ->
      (* The sweep completed without this result: someone else's copy of the
         shard won the first-writer race.  Nothing left to deliver. *)
      st.unsent <- [];
      `Done
    | `Lost why -> `Lost why)

let run ?(patience = 30.0) ?(chaos = no_chaos) ?(verbose = false) ~addr () =
  let st =
    {
      name = Printf.sprintf "w%d" (Unix.getpid ());
      patience;
      chaos;
      verbose;
      addr;
      job = None;
      unsent = [];
      completed = 0;
      grants = 0;
      checked_total = 0;
    }
  in
  let handshake conn =
    match P.send conn (P.Hello { worker = st.name }) with
    | Error why -> `Lost why
    | Ok () -> (
      match P.recv ~deadline:(Live.Sockets.now () +. 15.0) conn with
      | `Msg (P.Job job) -> (
        match st.job with
        | Some old when not (P.job_equal old job) ->
          `Fatal "coordinator came back with a different job"
        | Some _ | None ->
          st.job <- Some job;
          `Job job)
      | `Msg m ->
        `Lost (Format.asprintf "expected a job, got %a" P.pp_msg m)
      | `Timeout -> `Lost "no job before the handshake deadline"
      | `Closed why -> `Lost why)
  in
  let rec replay_unsent conn = function
    | [] -> `Caught_up
    | r :: rest -> (
      logf st "replaying unacknowledged result for shard %d" r.P.shard;
      match deliver st conn r with
      | `Acked -> replay_unsent conn rest
      | (`Done | `Lost _) as out -> out)
  in
  (* A completion broadcast can already sit in the socket buffer (sent
     while we slept on a Wait) — and it stays readable even after the
     coordinator exits.  Honoring it before the next Request is what lets
     a whole fleet shut down cleanly instead of burning reconnect patience
     against a vanished address. *)
  let buffered_done conn =
    let rec pops () =
      match P.pop conn with
      | `Msg P.Done -> `Done
      | `Msg _ -> pops ()
      | `None -> `None
      | `Closed why -> `Closed why
    in
    match P.read_available conn with
    | `Ready -> pops ()
    | `Closed why -> (
      match pops () with
      | `Done -> `Done
      | `None | `Closed _ -> `Closed why)
  in
  let rec serve conn job =
    match buffered_done conn with
    | `Done -> `Done
    | `Closed why -> `Lost why
    | `None -> request conn job
  and request conn job =
    match P.send conn P.Request with
    | Error why -> `Lost why
    | Ok () -> (
      match P.recv ~deadline:(Live.Sockets.now () +. 60.0) conn with
      | `Msg (P.Grant { shard }) -> (
        st.grants <- st.grants + 1;
        (match st.chaos.die_on_grant with
        | Some k when st.grants >= k ->
          logf st "chaos: dying on grant #%d holding shard %d" st.grants shard;
          Unix._exit chaos_exit_code
        | Some _ | None -> ());
        logf st "leased shard %d" shard;
        match run_shard st conn job ~shard with
        | Error why -> `Fatal why
        | Ok result -> (
          st.unsent <- st.unsent @ [ result ];
          match deliver st conn result with
          | `Acked -> serve conn job
          | `Done -> `Done
          | `Lost why -> `Lost why))
      | `Msg (P.Wait { delay }) ->
        sleep_for (Float.min (Float.max delay 0.01) 5.0);
        serve conn job
      | `Msg P.Done -> `Done
      | `Msg _ -> serve conn job
      | `Timeout -> `Lost "coordinator unresponsive"
      | `Closed why -> `Lost why)
  in
  let rec session attempt =
    match
      Live.Sockets.connect_retry
        ~deadline:(Live.Sockets.now () +. st.patience)
        st.addr
    with
    | Error e ->
      Error
        (Printf.sprintf "could not reach the coordinator: %s"
           (Live.Sockets.error_to_string e))
    | Ok fd -> (
      Unix.set_nonblock fd;
      let conn = P.conn fd in
      let outcome =
        match handshake conn with
        | `Fatal why -> `Fatal why
        | `Lost why -> `Lost why
        | `Job job -> (
          match replay_unsent conn st.unsent with
          | `Caught_up -> serve conn job
          | (`Done | `Lost _ | `Fatal _) as out -> out)
      in
      P.close conn;
      match outcome with
      | `Done ->
        logf st "done: %d shards completed" st.completed;
        Ok st.completed
      | `Fatal why -> Error why
      | `Lost why ->
        logf st "connection lost (%s); reconnecting (attempt %d)" why attempt;
        session (attempt + 1))
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  session 1
