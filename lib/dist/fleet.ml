let failed_exit_code = 3
let auto_shards ?(straggler = 8) ~workers () = max 1 workers * straggler

let spawn_worker ?patience ?chaos ?verbose ~addr () =
  match Unix.fork () with
  | 0 ->
    let code =
      match Worker.run ?patience ?chaos ?verbose ~addr () with
      | Ok _ -> 0
      | Error why ->
        Printf.eprintf "worker %d: %s\n%!" (Unix.getpid ()) why;
        failed_exit_code
    in
    Unix._exit code
  | pid -> pid

type outcome = {
  report : Coordinator.report;
  worker_failures : int;
  chaos_deaths : int;
}

let reap pids =
  List.fold_left
    (fun (failures, chaos) pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> (failures, chaos)
      | _, Unix.WEXITED c when c = Worker.chaos_exit_code ->
        (failures, chaos + 1)
      | _, (Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
        (failures + 1, chaos)
      | exception Unix.Unix_error _ -> (failures, chaos))
    (0, 0) pids

let run_local ?lease_timeout ?checkpoint ?verbose ?kill_one_after ~workers
    ~addr job =
  if workers < 1 then Error "run_local: need at least one worker"
  else begin
    let chaos_for i =
      match kill_one_after with
      | Some k when i = 0 ->
        Some { Worker.no_chaos with die_after_schedules = Some k }
      | Some _ | None -> None
    in
    (* A lone chaotic worker leaves nobody to finish the sweep: give the
       fleet one clean replacement so completion stays reachable. *)
    let replacements =
      if kill_one_after <> None && workers = 1 then 1 else 0
    in
    let pids =
      List.init (workers + replacements) (fun i ->
          spawn_worker ?chaos:(chaos_for i) ?verbose ~addr ())
    in
    let served =
      Coordinator.serve
        (Coordinator.config ?lease_timeout ?checkpoint ~min_workers:workers
           ?verbose ~addr job)
    in
    (* Reap unconditionally: serve errors must not leak children. *)
    List.iter
      (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      (match served with Ok _ -> [] | Error _ -> pids);
    let worker_failures, chaos_deaths = reap pids in
    match served with
    | Error why -> Error why
    | Ok report -> Ok { report; worker_failures; chaos_deaths }
  end
