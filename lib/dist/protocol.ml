open Model
module J = Obs.Json

type job = {
  algo : string;
  n : int;
  max_f : int;
  max_round : int;
  shards : int;
  symmetry : bool;
  heartbeat_every : float;
}

let job_equal a b =
  String.equal a.algo b.algo && a.n = b.n && a.max_f = b.max_f
  && a.max_round = b.max_round && a.shards = b.shards
  && a.symmetry = b.symmetry

let pp_job ppf j =
  Format.fprintf ppf "%s n=%d max_f=%d max_round=%d shards=%d%s" j.algo j.n
    j.max_f j.max_round j.shards
    (if j.symmetry then "" else " (no symmetry)")

type violation = { schedule : Schedule.t; property : string; detail : string }

type shard_result = {
  shard : int;
  classes : int;
  violations : violation list;
  violations_total : int;
  worker : string;
}

type msg =
  | Hello of { worker : string }
  | Job of job
  | Request
  | Grant of { shard : int }
  | Wait of { delay : float }
  | Heartbeat of { shard : int; checked : int }
  | Result of shard_result
  | Ack of { shard : int }
  | Done

let pp_msg ppf = function
  | Hello { worker } -> Format.fprintf ppf "hello(%s)" worker
  | Job j -> Format.fprintf ppf "job(%a)" pp_job j
  | Request -> Format.pp_print_string ppf "request"
  | Grant { shard } -> Format.fprintf ppf "grant(%d)" shard
  | Wait { delay } -> Format.fprintf ppf "wait(%.2fs)" delay
  | Heartbeat { shard; checked } ->
    Format.fprintf ppf "heartbeat(%d, %d checked)" shard checked
  | Result r ->
    Format.fprintf ppf "result(%d, %d classes, %d violations)" r.shard
      r.classes r.violations_total
  | Ack { shard } -> Format.fprintf ppf "ack(%d)" shard
  | Done -> Format.pp_print_string ppf "done"

(* --- Codec ----------------------------------------------------------------- *)

let job_to_json j =
  J.Obj
    [
      ("algo", J.String j.algo);
      ("n", J.Int j.n);
      ("max_f", J.Int j.max_f);
      ("max_round", J.Int j.max_round);
      ("shards", J.Int j.shards);
      ("symmetry", J.Bool j.symmetry);
      ("heartbeat_every", J.Float j.heartbeat_every);
    ]

let violation_to_json v =
  J.Obj
    [
      ("schedule", Minimize.Repro.schedule_to_json v.schedule);
      ("property", J.String v.property);
      ("detail", J.String v.detail);
    ]

let shard_result_to_json r =
  J.Obj
    [
      ("shard", J.Int r.shard);
      ("classes", J.Int r.classes);
      ("violations", J.List (List.map violation_to_json r.violations));
      ("violations_total", J.Int r.violations_total);
      ("worker", J.String r.worker);
    ]

let msg_to_json = function
  | Hello { worker } ->
    J.Obj [ ("type", J.String "hello"); ("worker", J.String worker) ]
  | Job j -> J.Obj [ ("type", J.String "job"); ("job", job_to_json j) ]
  | Request -> J.Obj [ ("type", J.String "request") ]
  | Grant { shard } -> J.Obj [ ("type", J.String "grant"); ("shard", J.Int shard) ]
  | Wait { delay } -> J.Obj [ ("type", J.String "wait"); ("delay", J.Float delay) ]
  | Heartbeat { shard; checked } ->
    J.Obj
      [
        ("type", J.String "heartbeat");
        ("shard", J.Int shard);
        ("checked", J.Int checked);
      ]
  | Result r -> J.Obj [ ("type", J.String "result"); ("result", shard_result_to_json r) ]
  | Ack { shard } -> J.Obj [ ("type", J.String "ack"); ("shard", J.Int shard) ]
  | Done -> J.Obj [ ("type", J.String "done") ]

let ( let* ) = Result.bind

let field what key json =
  match J.member key json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" what key)

let as_int what = function
  | J.Int i -> Ok i
  | _ -> Error (what ^ ": expected an integer")

let as_float what = function
  | J.Float f -> Ok f
  | J.Int i -> Ok (float_of_int i)
  | _ -> Error (what ^ ": expected a number")

let as_string what = function
  | J.String s -> Ok s
  | _ -> Error (what ^ ": expected a string")

let as_bool what = function
  | J.Bool b -> Ok b
  | _ -> Error (what ^ ": expected a boolean")

let as_list what = function
  | J.List xs -> Ok xs
  | _ -> Error (what ^ ": expected a list")

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let job_of_json json =
  let* algo = field "job" "algo" json in
  let* algo = as_string "job.algo" algo in
  let* n = field "job" "n" json in
  let* n = as_int "job.n" n in
  let* max_f = field "job" "max_f" json in
  let* max_f = as_int "job.max_f" max_f in
  let* max_round = field "job" "max_round" json in
  let* max_round = as_int "job.max_round" max_round in
  let* shards = field "job" "shards" json in
  let* shards = as_int "job.shards" shards in
  let* symmetry = field "job" "symmetry" json in
  let* symmetry = as_bool "job.symmetry" symmetry in
  let* hb = field "job" "heartbeat_every" json in
  let* heartbeat_every = as_float "job.heartbeat_every" hb in
  if n < 1 || shards < 1 || max_f < 0 || max_round < 1 then
    Error "job: out-of-range parameters"
  else Ok { algo; n; max_f; max_round; shards; symmetry; heartbeat_every }

let violation_of_json json =
  let* schedule = field "violation" "schedule" json in
  let* schedule = Minimize.Repro.schedule_of_json schedule in
  let* property = field "violation" "property" json in
  let* property = as_string "violation.property" property in
  let* detail = field "violation" "detail" json in
  let* detail = as_string "violation.detail" detail in
  Ok { schedule; property; detail }

let shard_result_of_json json =
  let* shard = field "result" "shard" json in
  let* shard = as_int "result.shard" shard in
  let* classes = field "result" "classes" json in
  let* classes = as_int "result.classes" classes in
  let* violations = field "result" "violations" json in
  let* violations = as_list "result.violations" violations in
  let* violations = map_result violation_of_json violations in
  let* total = field "result" "violations_total" json in
  let* violations_total = as_int "result.violations_total" total in
  let* worker = field "result" "worker" json in
  let* worker = as_string "result.worker" worker in
  if shard < 0 || classes < 0 || violations_total < List.length violations then
    Error "result: inconsistent counts"
  else Ok { shard; classes; violations; violations_total; worker }

let msg_of_json json =
  let* ty = field "msg" "type" json in
  let* ty = as_string "msg.type" ty in
  match ty with
  | "hello" ->
    let* worker = field "hello" "worker" json in
    let* worker = as_string "hello.worker" worker in
    Ok (Hello { worker })
  | "job" ->
    let* j = field "job" "job" json in
    let* j = job_of_json j in
    Ok (Job j)
  | "request" -> Ok Request
  | "grant" ->
    let* shard = field "grant" "shard" json in
    let* shard = as_int "grant.shard" shard in
    Ok (Grant { shard })
  | "wait" ->
    let* delay = field "wait" "delay" json in
    let* delay = as_float "wait.delay" delay in
    Ok (Wait { delay })
  | "heartbeat" ->
    let* shard = field "heartbeat" "shard" json in
    let* shard = as_int "heartbeat.shard" shard in
    let* checked = field "heartbeat" "checked" json in
    let* checked = as_int "heartbeat.checked" checked in
    Ok (Heartbeat { shard; checked })
  | "result" ->
    let* r = field "result" "result" json in
    let* r = shard_result_of_json r in
    Ok (Result r)
  | "ack" ->
    let* shard = field "ack" "shard" json in
    let* shard = as_int "ack.shard" shard in
    Ok (Ack { shard })
  | "done" -> Ok Done
  | ty -> Error (Printf.sprintf "msg.type: unknown type %S" ty)

(* Leave generous headroom under Frame.max_body for the envelope and the
   result fields around the violation list. *)
let cap_violations vs =
  let budget = Live.Frame.max_body - 4096 in
  let rec take acc used = function
    | [] -> List.rev acc
    | v :: rest ->
      let sz = String.length (J.to_string (violation_to_json v)) + 1 in
      if used + sz > budget then List.rev acc
      else take (v :: acc) (used + sz) rest
  in
  take [] 0 vs

(* --- Framed transport ------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  decoder : Live.Frame.decoder;
  buf : Bytes.t;
}

let conn fd = { fd; decoder = Live.Frame.decoder (); buf = Bytes.create 65536 }

let fd c = c.fd

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_deadline = 5.0

let send c msg =
  let payload = J.to_string (msg_to_json msg) in
  let bytes =
    Live.Frame.encode (Live.Frame.Data { instance = 0; round = 0; payload })
  in
  match
    Live.Sockets.write_all ~deadline:(Live.Sockets.now () +. send_deadline) c.fd
      bytes
  with
  | Ok () -> Ok ()
  | Error e -> Error (Live.Sockets.error_to_string e)

let decode_payload payload =
  match J.of_string payload with
  | Error why -> Error ("bad message JSON: " ^ why)
  | Ok json -> msg_of_json json

let read_available c =
  match Live.Sockets.read_chunk c.fd c.buf with
  | `Data k ->
    Live.Frame.feed c.decoder (Bytes.unsafe_to_string c.buf) ~pos:0 ~len:k;
    `Ready
  | `Nothing -> `Ready
  | `Closed -> `Closed "peer closed"

let rec pop c =
  match Live.Frame.pop c.decoder with
  | `Corrupt why -> `Closed ("corrupt stream: " ^ why)
  | `Frame (Live.Frame.Data { payload; _ }) -> (
    match decode_payload payload with
    | Ok msg -> `Msg msg
    | Error why -> `Closed why)
  | `Frame
      (Live.Frame.Hello _ | Live.Frame.Ctl _ | Live.Frame.Submit _
      | Live.Frame.Decide _ | Live.Frame.Catchup _) ->
    (* Not part of this protocol; skip rather than kill the stream. *)
    pop c
  | `Need_more -> `None

let recv ~deadline c =
  let rec next () =
    match pop c with
    | (`Msg _ | `Closed _) as out -> out
    | `None ->
      let dt = deadline -. Live.Sockets.now () in
      if dt <= 0.0 then `Timeout
      else begin
        match Unix.select [ c.fd ] [] [] dt with
        | [], _, _ -> next ()
        | _ :: _, _, _ -> (
          match read_available c with
          | `Ready -> next ()
          | `Closed why -> `Closed why)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
        | exception Unix.Unix_error (errno, _, _) ->
          `Closed ("select: " ^ Unix.error_message errno)
      end
  in
  next ()
