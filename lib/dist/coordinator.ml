module P = Protocol
module J = Obs.Json

type config = {
  job : P.job;
  addr : Unix.sockaddr;
  lease_timeout : float;
  checkpoint : string option;
  linger : float;
  min_workers : int;
  verbose : bool;
}

let config ?(lease_timeout = 5.0) ?checkpoint ?(linger = 0.5)
    ?(min_workers = 0) ?(verbose = false) ~addr job =
  { job; addr; lease_timeout; checkpoint; linger; min_workers; verbose }

type report = {
  classes : int;
  violations : P.violation list;
  violations_total : int;
  shards_total : int;
  executed : int list;
  resumed : int list;
  regrants : int;
  duplicates : int;
}

let report_to_json r =
  J.Obj
    [
      ("classes", J.Int r.classes);
      ( "violations",
        J.List
          (List.map
             (fun (v : P.violation) ->
               J.Obj
                 [
                   ("schedule", Minimize.Repro.schedule_to_json v.P.schedule);
                   ("property", J.String v.P.property);
                   ("detail", J.String v.P.detail);
                 ])
             r.violations) );
      ("violations_total", J.Int r.violations_total);
      ("shards_total", J.Int r.shards_total);
      ("executed", J.List (List.map (fun s -> J.Int s) r.executed));
      ("resumed", J.List (List.map (fun s -> J.Int s) r.resumed));
      ("regrants", J.Int r.regrants);
      ("duplicates", J.Int r.duplicates);
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d classes, %d violations@,\
     shards: %d total, %d executed, %d resumed, %d regrants, %d duplicates@]"
    r.classes r.violations_total r.shards_total (List.length r.executed)
    (List.length r.resumed) r.regrants r.duplicates

type client = {
  conn : P.conn;
  mutable worker : string;
  mutable leased : int option;
  mutable last_seen : float;
}

type state = {
  cfg : config;
  done_ : (int, P.shard_result) Hashtbl.t;
  pending : int Queue.t;
  mutable clients : client list;
  mutable executed : int list;
  resumed : int list;
  mutable regrants : int;
  mutable duplicates : int;
  mutable hellos : int;
      (* workers ever seen; gates granting until min_workers showed up, so
         small sweeps cannot be swallowed whole by the first arrival *)
}

let logf st fmt =
  Printf.ksprintf
    (fun s ->
      if st.cfg.verbose then begin
        Printf.eprintf "[coordinator] %s\n" s;
        flush stderr
      end)
    fmt

let complete st = Hashtbl.length st.done_ >= st.cfg.job.P.shards

let save_checkpoint st =
  match st.cfg.checkpoint with
  | None -> ()
  | Some file ->
    let results =
      Hashtbl.fold (fun _ r acc -> r :: acc) st.done_ []
      |> List.sort (fun a b -> compare a.P.shard b.P.shard)
    in
    Checkpoint.save ~file { Checkpoint.job = st.cfg.job; results }

(* Revoke a client's lease (if any) and put the shard back in the queue.
   Used for both silent-lease expiry and disconnects. *)
let revoke st client why =
  match client.leased with
  | None -> ()
  | Some shard ->
    client.leased <- None;
    if not (Hashtbl.mem st.done_ shard) then begin
      st.regrants <- st.regrants + 1;
      Queue.push shard st.pending;
      logf st "lease on shard %d revoked (%s, worker %s); re-queued" shard why
        client.worker
    end

let drop st client why =
  revoke st client why;
  P.close client.conn;
  st.clients <- List.filter (fun c -> c != client) st.clients

let send_or_drop st client msg =
  match P.send client.conn msg with
  | Ok () -> ()
  | Error why -> drop st client ("send failed: " ^ why)

let handle st client msg =
  client.last_seen <- Live.Sockets.now ();
  match msg with
  | P.Hello { worker } ->
    client.worker <- worker;
    st.hellos <- st.hellos + 1;
    send_or_drop st client (P.Job st.cfg.job)
  | P.Request ->
    if complete st then send_or_drop st client P.Done
    else if Queue.is_empty st.pending || st.hellos < st.cfg.min_workers then
      (* Everything is leased out (or the fleet hasn't fully arrived yet);
         the worker should poll again soon in case a lease times out and
         re-queues. *)
      send_or_drop st client
        (P.Wait { delay = Float.min 0.25 (st.cfg.lease_timeout /. 4.0) })
    else begin
      let shard = Queue.pop st.pending in
      client.leased <- Some shard;
      logf st "granted shard %d to %s" shard client.worker;
      send_or_drop st client (P.Grant { shard })
    end
  | P.Heartbeat { shard; checked } ->
    logf st "heartbeat from %s: shard %d, %d checked" client.worker shard
      checked
  | P.Result r ->
    if Hashtbl.mem st.done_ r.P.shard then begin
      (* First writer won; this is a replay or a revoked-lease straggler. *)
      st.duplicates <- st.duplicates + 1;
      logf st "duplicate result for shard %d from %s dropped" r.P.shard
        client.worker
    end
    else begin
      Hashtbl.replace st.done_ r.P.shard r;
      st.executed <- r.P.shard :: st.executed;
      (* Checkpoint before acknowledging: once the worker hears the ack it
         forgets the result, so the ack must imply durability. *)
      save_checkpoint st;
      logf st "shard %d done by %s (%d/%d)" r.P.shard client.worker
        (Hashtbl.length st.done_) st.cfg.job.P.shards
    end;
    (match client.leased with
    | Some s when s = r.P.shard -> client.leased <- None
    | Some _ | None -> ());
    send_or_drop st client (P.Ack { shard = r.P.shard });
    if complete st then
      List.iter (fun c -> send_or_drop st c P.Done) st.clients
  | P.Job _ | P.Grant _ | P.Wait _ | P.Ack _ | P.Done ->
    logf st "ignoring unexpected %s message from %s"
      (Format.asprintf "%a" P.pp_msg msg)
      client.worker

let pump st client =
  match P.read_available client.conn with
  | `Closed why -> drop st client why
  | `Ready ->
    let rec drain () =
      if List.memq client st.clients then
        match P.pop client.conn with
        | `Msg msg ->
          handle st client msg;
          drain ()
        | `None -> ()
        | `Closed why -> drop st client why
    in
    drain ()

let expire_leases st =
  let now = Live.Sockets.now () in
  List.iter
    (fun c ->
      match c.leased with
      | Some _ when now -. c.last_seen > st.cfg.lease_timeout ->
        revoke st c "heartbeat timeout"
      | Some _ | None -> ())
    st.clients

let finish st =
  let results =
    Hashtbl.fold (fun _ r acc -> r :: acc) st.done_ []
    |> List.sort (fun a b -> compare a.P.shard b.P.shard)
  in
  let classes = List.fold_left (fun acc r -> acc + r.P.classes) 0 results in
  let violations_total =
    List.fold_left (fun acc r -> acc + r.P.violations_total) 0 results
  in
  let violations =
    List.concat_map (fun r -> r.P.violations) results
    |> List.sort (fun (a : P.violation) (b : P.violation) ->
           Adversary.Canonical.compare a.P.schedule b.P.schedule)
  in
  {
    classes;
    violations;
    violations_total;
    shards_total = st.cfg.job.P.shards;
    executed = List.sort compare st.executed;
    resumed = st.resumed;
    regrants = st.regrants;
    duplicates = st.duplicates;
  }

let serve cfg =
  let ( let* ) = Result.bind in
  let* resumed_results =
    match cfg.checkpoint with
    | None -> Ok []
    | Some file -> (
      match Checkpoint.load_if_exists file with
      | Error why -> Error ("checkpoint: " ^ why)
      | Ok None -> Ok []
      | Ok (Some c) ->
        if P.job_equal c.Checkpoint.job cfg.job then Ok c.Checkpoint.results
        else
          Error
            (Format.asprintf
               "checkpoint %s records a different job (%a, expected %a)" file
               P.pp_job c.Checkpoint.job P.pp_job cfg.job))
  in
  let* lfd =
    match Live.Sockets.listen cfg.addr with
    | Ok fd -> Ok fd
    | Error e -> Error ("listen: " ^ Live.Sockets.error_to_string e)
  in
  let st =
    {
      cfg;
      done_ = Hashtbl.create 64;
      pending = Queue.create ();
      clients = [];
      executed = [];
      resumed =
        List.sort compare (List.map (fun r -> r.P.shard) resumed_results);
      regrants = 0;
      duplicates = 0;
      hellos = 0;
    }
  in
  List.iter (fun r -> Hashtbl.replace st.done_ r.P.shard r) resumed_results;
  for shard = 0 to cfg.job.P.shards - 1 do
    if not (Hashtbl.mem st.done_ shard) then Queue.push shard st.pending
  done;
  if st.resumed <> [] then
    logf st "resumed %d finished shards from the checkpoint"
      (List.length st.resumed);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let accept () =
    match Unix.accept lfd with
    | fd, _ ->
      Unix.set_close_on_exec fd;
      Unix.set_nonblock fd;
      st.clients <-
        {
          conn = P.conn fd;
          worker = "?";
          leased = None;
          last_seen = Live.Sockets.now ();
        }
        :: st.clients
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  in
  let step timeout =
    let fds = lfd :: List.map (fun c -> P.fd c.conn) st.clients in
    match Unix.select fds [] [] timeout with
    | ready, _, _ ->
      if List.memq lfd ready then accept ();
      List.iter
        (fun c -> if List.memq (P.fd c.conn) ready then pump st c)
        (* pump can drop clients: iterate over a snapshot *)
        (List.filter (fun c -> List.memq (P.fd c.conn) ready) st.clients)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  while not (complete st) do
    expire_leases st;
    step 0.2
  done;
  (* Completion already broadcast Done to everyone connected at that
     moment; linger briefly so stragglers that reconnect or request again
     hear it too instead of dying on a vanished address.  Workers hang up
     once they hear Done, so an empty client list ends the linger early. *)
  let linger_until = Live.Sockets.now () +. cfg.linger in
  while Live.Sockets.now () < linger_until && st.clients <> [] do
    step 0.05
  done;
  List.iter (fun c -> P.close c.conn) st.clients;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match cfg.addr with
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix.ADDR_INET _ -> ());
  Ok (finish st)
