(** Durable sweep checkpoints: what lets a SIGKILL'd coordinator resume.

    The checkpoint is one JSON document holding the job spec and every
    accepted shard result, rewritten through {!Obs.Json.save_atomic} (tmp
    write, fsync, atomic rename) after each accepted result — so at any
    kill point the file on disk is a complete, loadable prefix of the
    sweep.  On restart the coordinator {!load}s it, verifies the job spec
    matches (resuming a checkpoint into a different sweep is refused, not
    silently mixed), and only grants the shards that are not already
    recorded.

    Like {!Minimize.Repro.load}, {!load} never raises: truncated files,
    byte-flipped JSON and schema-valid-but-meaningless documents all come
    back as a structured [Error]. *)

type t = {
  job : Protocol.job;
  results : Protocol.shard_result list;  (** ascending shard order *)
}

val save : file:string -> t -> unit

val load : string -> (t, string) result
(** [Error] for unreadable files, corrupt JSON (with byte offset) and
    undecodable documents alike. *)

val load_if_exists : string -> (t option, string) result
(** [Ok None] when the file does not exist — a fresh sweep, not an error. *)
