module J = Obs.Json

type t = { job : Protocol.job; results : Protocol.shard_result list }

let version = 1

let to_json c =
  J.Obj
    [
      ("version", J.Int version);
      ("job", Protocol.job_to_json c.job);
      ( "results",
        J.List
          (List.map Protocol.shard_result_to_json
             (List.sort
                (fun a b ->
                  compare a.Protocol.shard b.Protocol.shard)
                c.results)) );
    ]

let save ~file c = J.save_atomic ~file (to_json c)

let ( let* ) = Result.bind

let of_json json =
  let* v =
    match J.member "version" json with
    | Some (J.Int v) -> Ok v
    | Some _ -> Error "version: expected an integer"
    | None -> Error "missing field \"version\""
  in
  if v <> version then
    Error (Printf.sprintf "unsupported checkpoint version %d (expected %d)" v version)
  else
    let* job =
      match J.member "job" json with
      | Some j -> Protocol.job_of_json j
      | None -> Error "missing field \"job\""
    in
    let* results =
      match J.member "results" json with
      | Some (J.List rs) ->
        List.fold_left
          (fun acc r ->
            let* acc = acc in
            let* r = Protocol.shard_result_of_json r in
            Ok (r :: acc))
          (Ok []) rs
      | Some _ -> Error "results: expected a list"
      | None -> Error "missing field \"results\""
    in
    (* Reject results that cannot belong to this job: a mangled checkpoint
       must fail to load, not silently mark ghost shards finished. *)
    let bad =
      List.find_opt
        (fun r -> r.Protocol.shard < 0 || r.Protocol.shard >= job.Protocol.shards)
        results
    in
    match bad with
    | Some r -> Error (Printf.sprintf "results: shard %d out of range" r.Protocol.shard)
    | None ->
      let seen = Hashtbl.create 16 in
      let dup =
        List.find_opt
          (fun r ->
            if Hashtbl.mem seen r.Protocol.shard then true
            else begin
              Hashtbl.add seen r.Protocol.shard ();
              false
            end)
          results
      in
      (match dup with
      | Some r -> Error (Printf.sprintf "results: duplicate shard %d" r.Protocol.shard)
      | None ->
        Ok
          {
            job;
            results =
              List.sort
                (fun a b -> compare a.Protocol.shard b.Protocol.shard)
                results;
          })

let load file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error why -> Error (file ^ ": " ^ why)
  | contents -> (
    match J.of_string_located contents with
    | Error (off, reason) ->
      Error (Printf.sprintf "%s: byte %d: JSON parse error: %s" file off reason)
    | Ok json -> (
      match of_json json with
      | Ok c -> Ok c
      | Error reason -> Error (file ^ ": " ^ reason)
      | exception e ->
        Error (file ^ ": malformed checkpoint: " ^ Printexc.to_string e)))

let load_if_exists file =
  if Sys.file_exists file then
    match load file with Ok c -> Ok (Some c) | Error e -> Error e
  else Ok None
