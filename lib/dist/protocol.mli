(** The coordinator/worker wire protocol of the distributed model checker.

    One sweep is described by a {!job}; the coordinator shards its canonical
    enumeration with {!Adversary.Enumerate.shard} and hands out shard indices
    under leases, and workers stream back one {!shard_result} per finished
    shard.  Every message is a single JSON document ({!Obs.Json}, no external
    dependency) carried as the payload of a [Frame.Data] frame with round 0 —
    the exact length-prefixed CRC-checked framing of the live node mesh, so
    a killed worker's truncated tail is detected by the frame decoder, not
    by a parser reading garbage.

    The message grammar is deliberately idempotent where failures bite:
    [Result] is deduplicated by shard id on the coordinator (first writer
    wins, later copies are acknowledged but dropped), so a worker may replay
    its unacknowledged results after any reconnect without double counting. *)

open Model

type job = {
  algo : string;  (** a {!Minimize.Algo} registry name *)
  n : int;
  max_f : int;
  max_round : int;
  shards : int;  (** residue classes the enumeration is sliced into *)
  symmetry : bool;  (** sweep canonical representatives, not the raw space *)
  heartbeat_every : float;
      (** seconds between worker heartbeats while a shard is running *)
}

val job_equal : job -> job -> bool
val pp_job : Format.formatter -> job -> unit

type violation = {
  schedule : Schedule.t;
  property : string;  (** the first failing uniform-consensus check *)
  detail : string;
}

type shard_result = {
  shard : int;
  classes : int;  (** schedules (symmetry classes) checked in this shard *)
  violations : violation list;
      (** capped to fit one frame; see {!cap_violations} *)
  violations_total : int;  (** uncapped count *)
  worker : string;  (** who computed it (diagnostic only) *)
}

type msg =
  | Hello of { worker : string }  (** worker -> coordinator, once per connect *)
  | Job of job  (** coordinator's reply to [Hello] *)
  | Request  (** worker asks for a shard lease *)
  | Grant of { shard : int }
  | Wait of { delay : float }
      (** nothing grantable right now (all leased); retry after [delay] *)
  | Heartbeat of { shard : int; checked : int }
      (** lease keep-alive with progress, sent while a shard runs *)
  | Result of shard_result
  | Ack of { shard : int }  (** coordinator accepted (or deduplicated) it *)
  | Done  (** sweep complete; the worker should exit *)

val pp_msg : Format.formatter -> msg -> unit

(** {1 Codec} *)

val msg_to_json : msg -> Obs.Json.t
val msg_of_json : Obs.Json.t -> (msg, string) result

val shard_result_to_json : shard_result -> Obs.Json.t
val shard_result_of_json : Obs.Json.t -> (shard_result, string) result

val job_to_json : job -> Obs.Json.t
val job_of_json : Obs.Json.t -> (job, string) result

val cap_violations : violation list -> violation list
(** Longest prefix whose encoding keeps a [Result] frame under
    [Frame.max_body]; [violations_total] preserves the true count. *)

(** {1 Framed transport} *)

type conn
(** One framed JSON message stream over a socket (fd + incremental frame
    decoder).  The fd is expected to be nonblocking. *)

val conn : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr
val close : conn -> unit

val send : conn -> msg -> (unit, string) result
(** Encode, frame and write the whole message (bounded internal deadline);
    any failure means the connection is unusable. *)

val recv : deadline:float -> conn -> [ `Msg of msg | `Timeout | `Closed of string ]
(** Next complete message, waiting until [deadline].  [`Closed] covers EOF,
    frame corruption and undecodable payloads alike — all are fatal to the
    connection, never to the process. *)

val read_available : conn -> [ `Ready | `Closed of string ]
(** Nonblocking pull of whatever bytes the socket holds into the decoder —
    the select-loop half of {!recv}: call when the fd polls readable, then
    drain with {!pop}. *)

val pop : conn -> [ `Msg of msg | `None | `Closed of string ]
(** Next already-buffered message, never touching the socket. *)
