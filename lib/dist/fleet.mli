(** Local fleets: the coordinator plus forked worker processes.

    The distributed checker's smoke lane (tests, CI, [bin check --serve
    --spawn]) runs everything on one machine: the coordinator in-process,
    each worker as a forked child talking over the same socket a remote
    worker would use.  The chaos plumbing rides along — a scripted worker
    can [_exit] mid-shard and the rest of the fleet must finish the sweep
    anyway. *)

val spawn_worker :
  ?patience:float ->
  ?chaos:Worker.chaos ->
  ?verbose:bool ->
  addr:Unix.sockaddr ->
  unit ->
  int
(** Fork one worker process; returns its pid.  The child never returns: it
    runs {!Worker.run} and [_exit]s 0 on [Ok], {!failed_exit_code} on
    [Error] (chaos deaths use {!Worker.chaos}'s own code). *)

val failed_exit_code : int

val auto_shards : ?straggler:int -> workers:int -> unit -> int
(** Shard count for a fleet of [workers]: [workers * straggler] (default
    straggler factor 8, minimum one worker).  Oversharding by the straggler
    factor keeps the tail short — when one worker lags or dies, the others
    absorb its remaining shards in small pieces instead of one half-space
    lease. *)

type outcome = {
  report : Coordinator.report;
  worker_failures : int;
      (** children that exited nonzero, scripted chaos deaths excluded *)
  chaos_deaths : int;  (** children that died at a scripted chaos point *)
}

val run_local :
  ?lease_timeout:float ->
  ?checkpoint:string ->
  ?verbose:bool ->
  ?kill_one_after:int ->
  workers:int ->
  addr:Unix.sockaddr ->
  Protocol.job ->
  (outcome, string) result
(** Serve [job] on [addr] with [workers] forked local workers, reaping every
    child before returning.  [kill_one_after k] arms worker 0 with
    [die_after_schedules = k]: it drops dead mid-shard, its lease times out,
    and the survivors absorb the work — the sweep must still complete, which
    is exactly what the CI smoke asserts.  With [workers = 1] and a kill,
    the fleet spawns one replacement worker so the sweep can still finish. *)
