module Make (A : Binding.ALGO) = struct
  module M = Mux.Make (A)

  type config = {
    n : int;
    t : int;
    instances : int;
    window : int;
    big_d : float;
    batch : bool;
    kill : Report.kill_spec option;
    max_rounds : int option;
    proposals : int -> int -> int;
  }

  let run cfg =
    if cfg.n < 2 then invalid_arg "Serve.Loopback: n must be >= 2";
    if cfg.instances < 0 then invalid_arg "Serve.Loopback: negative instances";
    let n = cfg.n in
    let window = max 1 cfg.window in
    let started = Unix.gettimeofday () in
    let now = ref 0.0 in
    let max_rounds =
      match cfg.max_rounds with Some m -> m | None -> cfg.t + 1
    in
    (* One incremental decoder per directed link, one Decide-stream decoder
       per node's client channel: the exact socket topology, minus the
       sockets.  A flushed batch buffer is fed to the receiving decoder in
       place (the decoder copies into its own buffer), so no per-flush
       string is ever materialized. *)
    let decoders =
      Array.init n (fun _ -> Array.init n (fun _ -> Live.Frame.decoder ()))
    in
    let client_dec = Array.init n (fun _ -> Live.Frame.decoder ()) in
    let moved = ref false in
    let batches : Batch.t option array = Array.make n None in
    let muxes =
      Array.init n (fun idx ->
          let me = idx + 1 in
          let kill_after =
            match cfg.kill with
            | Some k when k.Report.node = me -> Some k.Report.after_frames
            | _ -> None
          in
          let emit ~dest frame =
            match batches.(idx) with
            | Some b -> Batch.add b ~dest (Live.Frame.encode frame)
            | None -> assert false
          in
          M.create
            { Mux.me; n; t = cfg.t; big_d = cfg.big_d; max_rounds; kill_after }
            ~emit ())
    in
    Array.iteri
      (fun idx mux ->
        let send ~dest bytes ~len =
          moved := true;
          let s = Bytes.unsafe_to_string bytes in
          if dest = 0 then Live.Frame.feed client_dec.(idx) s ~pos:0 ~len
          else if dest >= 1 && dest <= n then
            Live.Frame.feed decoders.(idx).(dest - 1) s ~pos:0 ~len;
          `Done
        in
        batches.(idx) <-
          Some (Batch.create ~n ~batch:cfg.batch ~stats:(M.stats mux) ~send))
      muxes;
    let decisions = Array.init cfg.instances (fun _ -> Array.make n None) in
    let submit_t = Array.make (max 1 cfg.instances) 0.0 in
    let latencies = ref [] in
    let drain_link s d =
      let dec = decoders.(s).(d) in
      let rec go () =
        match Live.Frame.pop_view dec with
        | `View v ->
          moved := true;
          M.on_view muxes.(d) ~now:!now ~from:(s + 1) v;
          go ()
        | `Need_more -> ()
        | `Corrupt why -> failwith ("Serve.Loopback: corrupt stream: " ^ why)
      in
      go ()
    in
    let drain_client idx =
      let dec = client_dec.(idx) in
      let rec go () =
        match Live.Frame.pop_view dec with
        | `View v ->
          moved := true;
          (match v.Live.Frame.kind with
          | Live.Frame.K_decide ->
            let i = v.Live.Frame.instance in
            if i >= 0 && i < cfg.instances && decisions.(i).(idx) = None then
              decisions.(i).(idx) <-
                Some (v.Live.Frame.value, v.Live.Frame.round)
          | _ -> ());
          go ()
        | `Need_more -> ()
        | `Corrupt why ->
          failwith ("Serve.Loopback: corrupt client stream: " ^ why)
      in
      go ()
    in
    (* Deliver until quiescent at the current virtual instant: flush every
       batch, move link bytes, feed decoders — repeatedly, because consuming
       a frame can emit new ones. *)
    let deliver () =
      let continue = ref true in
      while !continue do
        moved := false;
        Array.iter
          (function Some b -> Batch.flush b | None -> ())
          batches;
        for s = 0 to n - 1 do
          for d = 0 to n - 1 do
            drain_link s d
          done
        done;
        for idx = 0 to n - 1 do
          drain_client idx
        done;
        continue := !moved
      done
    in
    let next_submit = ref 0 in
    let inflight = ref [] in
    let submit_instance i =
      submit_t.(i) <- !now;
      inflight := i :: !inflight;
      (* Descending node order, so the round-1 coordinator (p1) starts its
         sends only once every node has opened the instance — the common
         client pattern; the mux's early-frame parking covers the rest. *)
      for node = n downto 1 do
        M.submit muxes.(node - 1) ~now:!now ~instance:i
          ~proposal:(cfg.proposals i node)
      done
    in
    let is_settled i =
      let ok = ref true in
      for j = 0 to n - 1 do
        if decisions.(i).(j) = None && not (M.halted muxes.(j)) then ok := false
      done;
      !ok
    in
    let settle_pass () =
      inflight :=
        List.filter
          (fun i ->
            if is_settled i then begin
              latencies := (!now -. submit_t.(i)) :: !latencies;
              false
            end
            else true)
          !inflight
    in
    let refill () =
      let before = !next_submit in
      while List.length !inflight < window && !next_submit < cfg.instances do
        submit_instance !next_submit;
        incr next_submit
      done;
      !next_submit <> before
    in
    let stuck = ref false in
    let guard = ref ((cfg.instances * (max_rounds + 2)) + 64) in
    ignore (refill ());
    while !inflight <> [] && (not !stuck) && !guard > 0 do
      decr guard;
      (* message-speed fixed point at the current instant *)
      let rec instant () =
        deliver ();
        settle_pass ();
        if refill () then instant ()
      in
      instant ();
      if !inflight <> [] then begin
        let best = ref infinity in
        Array.iter
          (fun m ->
            match M.next_deadline m with
            | Some dl when dl < !best -> best := dl
            | _ -> ())
          muxes;
        if !best = infinity then stuck := true
        else begin
          now := max !now !best;
          Array.iter (fun m -> M.expire m ~now:!now) muxes
        end
      end
    done;
    let elapsed = Unix.gettimeofday () -. started in
    let victim =
      match cfg.kill with
      | Some k ->
        let m = muxes.(k.Report.node - 1) in
        if M.halted m then Some (k.Report.node, M.realized m) else None
      | None -> None
    in
    let stats =
      Array.to_list
        (Array.mapi
           (fun idx m ->
             let s = M.stats m in
             s.Stats.slab_capacity <- M.slab_capacity m;
             s.Stats.slab_reused <- M.slab_reused m;
             (idx + 1, s))
           muxes)
    in
    Report.build ~n ~t:cfg.t ~proposals:cfg.proposals ~decisions ~victim
      ~send_plan:A.send_plan ~elapsed ~latencies:!latencies ~stats
      ~kill:cfg.kill
end

module Rwwc = Make (Binding.Rwwc)
