type t = { mutable bits : Bytes.t }

let create () = { bits = Bytes.make 128 '\x00' }

let ensure t i =
  let need = (i lsr 3) + 1 in
  if need > Bytes.length t.bits then begin
    let cap = max need (2 * Bytes.length t.bits) in
    let fresh = Bytes.make cap '\x00' in
    Bytes.blit t.bits 0 fresh 0 (Bytes.length t.bits);
    t.bits <- fresh
  end

let set t i =
  if i < 0 then invalid_arg "Bitvec.set";
  ensure t i;
  let b = i lsr 3 in
  Bytes.set t.bits b
    (Char.chr (Char.code (Bytes.get t.bits b) lor (1 lsl (i land 7))))

let mem t i =
  if i < 0 then invalid_arg "Bitvec.mem";
  let b = i lsr 3 in
  b < Bytes.length t.bits
  && Char.code (Bytes.get t.bits b) land (1 lsl (i land 7)) <> 0
