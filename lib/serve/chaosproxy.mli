(** A socket-level chaos proxy for one directed mesh link.

    [spawn] forks a tiny proxy process that listens on a per-link
    address; the dialing engine is pointed at it through
    {!Engine.config.dial}, and every byte of the [src -> dst] connection
    then flows through the proxy's select loop, where a seeded, timed
    action script injects the faults the transport layer must survive:

    - {b Cut}: for the duration, the proxy stops moving bytes in either
      direction.  TCP flow control backs the sender up (the engine's
      {!Outq} absorbs the backlog) and delivery resumes when the cut
      heals — a partition with retransmit semantics, not message loss.
    - {b Reset}: both sides of the relay are closed abruptly; each
      engine sees a dead link and marks the other crashed.  A later
      rejoin re-dials through the same proxy (the listener survives
      sessions).
    - {b Throttle}: forwarded bytes are token-bucket limited per
      direction for the window — a slow link, not a dead one.
    - {b Corrupt}: a bit is flipped in each of the next [bytes] payload
      bytes moving [src -> dst].  The CRC framing downstream must reject
      the frame and kill the stream; this is the wire-level test that it
      does.

    Action times are seconds since the proxy process started, so a
    script is deterministic given the spawn order.  {!generate} derives
    a script from a seed in the {!Net.Fault_plan} style: same seed, same
    faults. *)

type action =
  | Cut of { at : float; duration : float }
  | Reset of { at : float }
  | Throttle of { at : float; duration : float; bytes_per_sec : int }
  | Corrupt of { at : float; bytes : int }

val pp_action : Format.formatter -> action -> unit

type link = {
  src : int;  (** the dialing node — its {!Engine.config.dial} is overridden *)
  dst : int;  (** the listening node the proxy relays to *)
  actions : action list;
}

val proxy_addr :
  transport:[ `Unix of string | `Tcp of int ] ->
  n:int ->
  src:int ->
  dst:int ->
  Unix.sockaddr
(** The per-link proxy rendezvous: [dir/chaos-<src>-<dst>.sock], or TCP
    port [base + n + (src - 1) * n + dst] — the block just above the
    engine listeners, so one [base] covers mesh and proxies. *)

val generate :
  seed:int ->
  horizon:float ->
  ?cuts:int ->
  ?cut_len:float ->
  ?resets:int ->
  ?throttles:int ->
  ?corrupts:int ->
  unit ->
  action list
(** A seeded random script: [cuts] cuts of [cut_len] (default 0.05 s),
    [resets] link resets, [throttles] 50 KiB/s slow-downs, and
    [corrupts] single-byte corruptions, all at uniform times in
    [(0, horizon)].  Deterministic in [seed]. *)

val spawn :
  transport:[ `Unix of string | `Tcp of int ] ->
  n:int ->
  link ->
  (int, string) result
(** Fork the proxy for [link]; returns its OS pid.  The listener is
    bound before [spawn] returns, so the dialer can connect immediately.
    The proxy serves relay sessions forever (a reset or a dead engine
    ends a session, not the proxy) — the supervisor SIGKILLs it at
    teardown. *)

val cleanup : transport:[ `Unix of string | `Tcp of int ] -> n:int -> link -> unit
(** Unlink the proxy's Unix-domain socket path, if any. *)
