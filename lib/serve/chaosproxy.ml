type action =
  | Cut of { at : float; duration : float }
  | Reset of { at : float }
  | Throttle of { at : float; duration : float; bytes_per_sec : int }
  | Corrupt of { at : float; bytes : int }

let pp_action ppf = function
  | Cut { at; duration } -> Format.fprintf ppf "cut@%.3f+%.3fs" at duration
  | Reset { at } -> Format.fprintf ppf "reset@%.3f" at
  | Throttle { at; duration; bytes_per_sec } ->
    Format.fprintf ppf "throttle@%.3f+%.3fs %dB/s" at duration bytes_per_sec
  | Corrupt { at; bytes } -> Format.fprintf ppf "corrupt@%.3f %dB" at bytes

type link = { src : int; dst : int; actions : action list }

let proxy_addr ~transport ~n ~src ~dst =
  match transport with
  | `Unix dir ->
    Unix.ADDR_UNIX
      (Filename.concat dir (Printf.sprintf "chaos-%d-%d.sock" src dst))
  | `Tcp base ->
    Unix.ADDR_INET (Unix.inet_addr_loopback, base + n + ((src - 1) * n) + dst)

let cleanup ~transport ~n:_ link =
  match transport with
  | `Unix dir -> (
    try
      Unix.unlink
        (Filename.concat dir
           (Printf.sprintf "chaos-%d-%d.sock" link.src link.dst))
    with Unix.Unix_error _ -> ())
  | `Tcp _ -> ()

let generate ~seed ~horizon ?(cuts = 0) ?(cut_len = 0.05) ?(resets = 0)
    ?(throttles = 0) ?(corrupts = 0) () =
  let rng = Prng.Rng.of_int seed in
  let at () = Prng.Rng.float rng horizon in
  let acc = ref [] in
  for _ = 1 to cuts do
    acc := Cut { at = at (); duration = cut_len } :: !acc
  done;
  for _ = 1 to resets do
    acc := Reset { at = at () } :: !acc
  done;
  for _ = 1 to throttles do
    acc :=
      Throttle { at = at (); duration = 2.0 *. cut_len; bytes_per_sec = 51200 }
      :: !acc
  done;
  for _ = 1 to corrupts do
    acc := Corrupt { at = at (); bytes = 1 } :: !acc
  done;
  List.sort
    (fun a b ->
      let at_of = function
        | Cut { at; _ } | Reset { at } | Throttle { at; _ } | Corrupt { at; _ }
          ->
          at
      in
      compare (at_of a) (at_of b))
    !acc

(* One-shot actions (Reset, Corrupt) fire once per proxy lifetime, not
   once per relay session — a healed link must not be reset again by the
   same script entry when the engine re-dials. *)
type live = { act : action; mutable fired : bool }

(* One relay direction: a fixed buffer holding the unforwarded remainder
   of the last read, plus a token bucket for throttling.  [allowance =
   infinity] means unthrottled. *)
type dir = {
  from_fd : Unix.file_descr;
  to_fd : Unix.file_descr;
  pending : Bytes.t;
  mutable off : int;
  mutable len : int;
  mutable allowance : float;
  corrupt : bool;  (* corruption applies to the src -> dst direction *)
}

let flush_dir d closed =
  if d.len > 0 then begin
    let quota =
      if d.allowance = infinity then d.len
      else min d.len (int_of_float d.allowance)
    in
    if quota > 0 then (
      match Unix.write d.to_fd d.pending d.off quota with
      | k ->
        d.off <- d.off + k;
        d.len <- d.len - k;
        if d.allowance <> infinity then
          d.allowance <- d.allowance -. float_of_int k;
        if d.len = 0 then d.off <- 0
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
      | exception Unix.Unix_error _ -> closed := true)
  end

let session ~t0 lives down up =
  Unix.set_nonblock down;
  Unix.set_nonblock up;
  let mk from_fd to_fd corrupt =
    {
      from_fd;
      to_fd;
      pending = Bytes.create 8192;
      off = 0;
      len = 0;
      allowance = infinity;
      corrupt;
    }
  in
  let dirs = [ mk down up true; mk up down false ] in
  let corrupt_left = ref 0 in
  let closed = ref false in
  let last = ref (Live.Sockets.now ()) in
  while not !closed do
    let nw = Live.Sockets.now () in
    let t = nw -. t0 in
    List.iter
      (fun l ->
        if not l.fired then
          match l.act with
          | Reset { at } when t >= at ->
            l.fired <- true;
            closed := true
          | Corrupt { at; bytes } when t >= at ->
            l.fired <- true;
            corrupt_left := !corrupt_left + bytes
          | _ -> ())
      lives;
    if not !closed then begin
      let cut =
        List.exists
          (fun l ->
            match l.act with
            | Cut { at; duration } -> t >= at && t < at +. duration
            | _ -> false)
          lives
      in
      let rate =
        List.fold_left
          (fun acc l ->
            match l.act with
            | Throttle { at; duration; bytes_per_sec }
              when t >= at && t < at +. duration -> (
              match acc with
              | None -> Some bytes_per_sec
              | Some r -> Some (min r bytes_per_sec))
            | _ -> acc)
          None lives
      in
      let dt = nw -. !last in
      last := nw;
      List.iter
        (fun d ->
          match rate with
          | None -> d.allowance <- infinity
          | Some r ->
            let r = float_of_int r in
            if d.allowance = infinity then d.allowance <- 0.0;
            d.allowance <- Float.min (2.0 *. r) (d.allowance +. (r *. dt)))
        dirs;
      List.iter (fun d -> if not !closed then flush_dir d closed) dirs;
      (* A direction with unforwarded bytes stops reading: TCP flow
         control then pushes the backlog to the sender, which is exactly
         how a real slow or cut link behaves. *)
      let want_read =
        if cut then [] else List.filter (fun d -> d.len = 0) dirs
      in
      let rfds = List.map (fun d -> d.from_fd) want_read in
      (match Unix.select rfds [] [] 0.02 with
      | ready, _, _ ->
        List.iter
          (fun d ->
            if (not !closed) && List.memq d.from_fd ready then
              match Live.Sockets.read_chunk d.from_fd d.pending with
              | `Closed -> closed := true
              | `Nothing -> ()
              | `Data k ->
                d.off <- 0;
                d.len <- k;
                if d.corrupt && !corrupt_left > 0 then begin
                  let m = min k !corrupt_left in
                  for i = 0 to m - 1 do
                    Bytes.set d.pending i
                      (Char.chr (Char.code (Bytes.get d.pending i) lxor 0x01))
                  done;
                  corrupt_left := !corrupt_left - m
                end;
                flush_dir d closed)
          want_read
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    end
  done;
  (try Unix.close down with Unix.Unix_error _ -> ());
  (try Unix.close up with Unix.Unix_error _ -> ())

let proxy_main ~transport ~lfd link =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Live.Sockets.now () in
  let lives = List.map (fun act -> { act; fired = false }) link.actions in
  let upstream = Live.Sockets.addr_of ~transport link.dst in
  let rec serve () =
    match Unix.accept lfd with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      serve ()
    | exception Unix.Unix_error _ -> ()
    | down, _ ->
      (match
         Live.Sockets.connect_retry
           ~deadline:(Live.Sockets.now () +. 5.0)
           upstream
       with
      | Error _ ->
        (* The listening engine is down (killed, not yet respawned):
           drop the dialer and let it retry through a fresh session. *)
        (try Unix.close down with Unix.Unix_error _ -> ());
        Live.Sockets.sleep_until (Live.Sockets.now () +. 0.05)
      | Ok up -> session ~t0 lives down up);
      serve ()
  in
  serve ()

let spawn ~transport ~n link =
  match proxy_addr ~transport ~n ~src:link.src ~dst:link.dst with
  | addr -> (
    match Live.Sockets.listen addr with
    | Error e ->
      Error
        (Printf.sprintf "chaos proxy %d->%d: %s" link.src link.dst
           (Live.Sockets.error_to_string e))
    | Ok lfd -> (
      match Unix.fork () with
      | 0 ->
        (try proxy_main ~transport ~lfd link with _ -> ());
        Unix._exit 0
      | pid ->
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        Ok pid))
