(** The per-node instance multiplexer: thousands of concurrent agreement
    instances advancing through their rounds over one shared mesh.

    Pure state machine — no sockets, no clocks of its own.  The engine
    (socket or loopback) feeds it decoded frame views, submits, and the
    current time; it answers through the [emit] callback (destination 0 is
    the client channel, 1..n are mesh peers) and exposes the earliest
    pending round deadline for the event loop's select timeout.

    Rounds are pipelined across instances: each instance tracks its own
    round and deadline, advancing {e early} the moment its
    {!Binding.ALGO.round_senders} certificate is complete (a fast round) and
    falling back to the deadline otherwise (an expired round — a crashed
    coordinator costs one [big_d] for that instance only; every other
    instance keeps deciding at message speed).

    A [kill_after] budget counts {e mesh} frame writes (Data/Ctl to peers —
    client-bound Decide frames don't burn it).  When the budget runs out
    the mux halts mid-send, recording for every live instance the exact
    prefix-crash phase it realized — the instance interrupted mid-round
    keeps its partial write count, everything else crashes before/after its
    current round's sends — so each surviving instance can be judged
    against the abstract engine under its own realized schedule. *)

type config = {
  me : int;
  n : int;
  t : int;
  big_d : float;  (** per-round receive window, seconds *)
  max_rounds : int;  (** horizon; [t + 1] suffices for RWWC *)
  kill_after : int option;
      (** halt before writing mesh frame number [k + 1] *)
}

type realized = { instance : int; round : int; phase : Live.Script.phase }

val realized_to_json : realized -> Obs.Json.t
val realized_of_json : Obs.Json.t -> (realized, string) result

module Make (A : Binding.ALGO) : sig
  type t

  val create :
    config ->
    ?persist:(instance:int -> value:int -> round:int -> unit) ->
    emit:(dest:int -> Live.Frame.t -> unit) ->
    unit ->
    t
  (** [emit] receives every outbound frame; destination 0 means "to the
      clients", otherwise the mesh peer id.  Called synchronously from
      {!submit}/{!on_view}/{!expire}.  [persist] (the WAL append) runs on
      every new decision {e before} its Decide frame is emitted, so any
      decision a client can observe is already durable. *)

  val submit : t -> now:float -> instance:int -> proposal:int -> unit
  (** Start (or ignore, if known) an instance with this node's proposal. *)

  val on_view : t -> now:float -> from:int -> Live.Frame.view -> unit
  (** Feed one decoded mesh frame.  The view is consumed before return, so
      the zero-copy payload window is safe to reuse. *)

  val expire : t -> now:float -> unit
  (** Advance every instance whose round deadline has passed. *)

  val seed_decision : t -> instance:int -> value:int -> round:int -> unit
  (** Recovery: mark an instance decided (WAL replay) without emitting or
      re-persisting.  Re-submits are then answered from the decision log
      instead of re-running the instance. *)

  val iter_decided :
    t -> (instance:int -> value:int -> round:int -> unit) -> unit
  (** Every decision in the log, in no particular order — the engine
      replays these as Catchup frames to a peer that rejoins the mesh. *)

  val decided_count : t -> int

  val set_mirror : t -> int list -> unit
  (** Peers that recently rejoined: every {e new} decision is also sent to
      them as a Catchup frame, covering instances that were in flight
      while they were down.  Mirrored frames don't burn the [kill_after]
      budget — they are recovery traffic, like client-bound Decides. *)

  val next_deadline : t -> float option
  val active : t -> int

  val halted : t -> bool
  val realized : t -> realized list
  (** After a budget halt: per-instance crash points, sorted by instance. *)

  val stats : t -> Stats.t
  val gave_up : t -> int
  val mesh_writes : t -> int
  val slab_capacity : t -> int
  val slab_reused : t -> int
end
