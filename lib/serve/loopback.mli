(** The deterministic serve engine: the full multiplexed mesh — muxes,
    batchers, per-link incremental decoders, client Decide streams — wired
    through in-memory FIFOs instead of sockets, driven by a virtual clock.

    Delivery runs to quiescence at each virtual instant (flush, move
    bytes, decode, repeat — consuming a frame can emit new ones), then the
    clock jumps straight to the earliest pending round deadline; a storm
    with a crashed coordinator costs virtual [big_d] but almost no wall
    time, which is what lets a 1000-instance kill storm run inside the
    test suite and the decisions/sec bench measure pure engine throughput.

    Same codec, same mux, same batching counters as the socket engine, so
    loopback results — including the realized per-instance crash points of
    a [kill] and their {!Live.Judge} verdicts — transfer. *)

module Make (A : Binding.ALGO) : sig
  type config = {
    n : int;
    t : int;
    instances : int;
    window : int;  (** concurrent instances in flight (client window) *)
    big_d : float;
    batch : bool;
    kill : Report.kill_spec option;
    max_rounds : int option;  (** default [t + 1] *)
    proposals : int -> int -> int;  (** instance -> node -> proposal *)
  }

  val run : config -> Report.t
end

module Rwwc : module type of Make (Binding.Rwwc)
