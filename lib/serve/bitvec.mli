(** A growable bit set over non-negative ints.

    The multiplexer marks decided instance ids here: one bit per instance
    ever served — bounded, unlike keeping released slots or a hash set
    alive — so late frames for finished instances are recognized and
    dropped in O(1) without resurrecting state. *)

type t

val create : unit -> t
val set : t -> int -> unit
val mem : t -> int -> bool
