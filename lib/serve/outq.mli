(** Per-destination outbound byte queues — the serve loop's no-blocking
    guarantee.

    The old engine called a blocking [write_all] (2 s deadline) for every
    send inside the select loop: one slow client stalled the whole mesh
    node and blew the round deadline for every instance — exactly the
    synchrony violation [lib/net] injects on purpose.  Now a send only
    {e enqueues} bytes; the event loop drains a queue when its fd reports
    writable, resuming partial writes where they left off, and a queue
    that climbs past its high-water mark marks the destination dead
    instead of stalling anyone else.

    Chunks are refcounted so a broadcast (the same Decide bytes fanned
    out to every client) enqueues one buffer [k] times without copying;
    the buffer returns to its owner's recycle pool only when the last
    queue has written it out. *)

type chunk
(** One refcounted byte range shared between queues. *)

val chunk :
  ?shares:int -> recycle:(Bytes.t -> unit) -> Bytes.t -> len:int -> chunk
(** Take ownership of [bytes] (callers must not mutate it afterwards).
    [shares] (default 1) is how many queues the chunk will be pushed to;
    [recycle] runs once, after the last share drains or is dropped. *)

type t

val create : ?hwm:int -> unit -> t
(** [hwm] (bytes, default 8 MiB) is the backlog level {!over_hwm} trips
    at; the engine uses it to declare a never-draining peer dead. *)

val push : t -> chunk -> unit
val is_empty : t -> bool
val queued_bytes : t -> int
val over_hwm : t -> bool

val drain : t -> ?stats:Stats.t -> Unix.file_descr -> [ `Empty | `Blocked | `Closed of string ]
(** Write queued chunks to [fd] until the queue empties ([`Empty]) or the
    fd stops accepting bytes ([`Blocked] — re-arm write interest).  A
    reset/closed peer reports [`Closed].  Never blocks: the fd must be
    in nonblocking mode.  [stats] counts actual [write(2)] calls and
    partial writes. *)

val drain_blocking : t -> deadline:float -> Unix.file_descr -> unit
(** Best-effort synchronous flush, waiting for writability up to
    [deadline] — used only off the event loop (pre-halt delivery of the
    kill budget's allowed prefix, final shutdown), never in steady
    state. *)

val clear : t -> unit
(** Drop everything queued, releasing each chunk's share (a dead
    destination's backlog returns to the recycle pool). *)
