(** The per-node serve event loop: one single-threaded [select] loop
    multiplexing the whole socket mesh, every connected client, and the
    mux's round deadlines.

    The loop accepts clients on the same listen socket the mesh handshake
    used (a Hello carrying node id 0 marks a client), feeds every readable
    fd through its incremental frame decoder into the {!Mux}, expires due
    rounds, and flushes the per-peer {!Batch} buffers — one buffered write
    per peer per iteration, which is where the decisions/sec headroom
    comes from.

    A [kill_after] budget makes the mux halt mid-send; the engine then
    flushes the pre-crash prefix (the frames the budget allowed), reports
    the realized per-instance crash points on the status channel, and
    SIGSTOPs itself for the supervising fleet to deliver the real
    SIGKILL — same protocol as {!Live.Node}.

    Without [linger], the engine exits cleanly once it has seen at least
    one client, the last client has disconnected, and no instance is
    active — after emitting a final ["stats"] status event. *)

type config = {
  me : int;
  n : int;
  t : int;
  transport : [ `Unix of string | `Tcp of int ];
  big_d : float;  (** per-round receive window, seconds *)
  max_rounds : int;
  batch : bool;  (** coalesce mesh frames per peer per loop iteration *)
  kill_after : int option;  (** mesh-frame kill budget (see {!Mux}) *)
  linger : bool;  (** keep serving after the last client disconnects *)
  status : out_channel;  (** JSON-lines: ready / halted / stats events *)
  log : out_channel;
}

module Make (A : Binding.ALGO) : sig
  val main : config -> unit
  (** Runs until clean exit; raises [Failure] on handshake errors and
      never returns after a kill-budget halt (SIGSTOP, then SIGKILL). *)
end

module Rwwc : sig
  val main : config -> unit
end
