(** The per-node serve event loop: one single-threaded readiness loop
    ({!Evloop}, select- or poll-backed) multiplexing the whole socket
    mesh, every connected client, and the mux's round deadlines — with
    the invariant that {b no syscall inside the loop can block}.

    Reads are nonblocking and feed incremental frame decoders into the
    {!Mux}; writes never touch a socket directly — {!Batch.flush} hands
    its coalesced buffers to per-destination {!Outq} queues, and the loop
    drains a queue only when its fd reports writable (partial writes
    resume where they stopped).  A destination whose backlog crosses the
    queue high-water mark is declared dead and dropped; it cannot stall
    the mesh.  Decide broadcasts reach every client through one
    refcounted chunk, so a fan-out of [k] clients costs zero extra
    copies.

    The listen socket is drained until [EAGAIN] on every readable wakeup;
    a new connection parks in a pending-hello state (nonblocking read,
    2 s deadline) until its Hello arrives, so a half-open or slow-loris
    connection costs one fd, never a stall.  Client Submits are decoded
    under a per-client frame budget with a rotating round-robin start, so
    one chatty client cannot starve another's instances.

    A [kill_after] budget makes the mux halt mid-send; the engine then
    drains the pre-crash prefix (the frames the budget allowed) with a
    bounded synchronous flush, reports the realized per-instance crash
    points on the status channel, and SIGSTOPs itself for the supervising
    fleet to deliver the real SIGKILL — same protocol as {!Live.Node}.

    Without [linger], the engine exits cleanly once it has seen at least
    one client, the last client has disconnected, and no instance is
    active — after emitting a final ["stats"] status event.

    {b Crash recovery.}  With [wal_dir] set, every decision is appended
    (fsync'd) to a per-node {!Wal} before its Decide frame is emitted.  A
    respawned engine sets [rejoin]: it replays its WAL into the mux,
    re-listens on its own address, dials {e every} peer (tolerating the
    dead ones), and holds client Submits until each reached peer has
    replayed its decision log as a Catchup batch — so re-submitted
    instances are answered from a log, never re-run.  Symmetrically, any
    engine accepts a post-startup mesh Hello as a peer rejoin: it
    reattaches the peer on the fresh connection, pushes its own decision
    log as Catchup frames (plus a round-0 end marker), and mirrors new
    decisions to the rejoined peer for a full round horizon, covering the
    instances that were in flight during the outage. *)

type config = {
  me : int;
  n : int;
  t : int;
  transport : [ `Unix of string | `Tcp of int ];
  big_d : float;  (** per-round receive window, seconds *)
  max_rounds : int;
  batch : bool;  (** coalesce mesh frames per peer per loop iteration *)
  backend : Evloop.backend;  (** readiness backend: [Select] or [Poll] *)
  kill_after : int option;  (** mesh-frame kill budget (see {!Mux}) *)
  linger : bool;  (** keep serving after the last client disconnects *)
  wal_dir : string option;  (** durable decision log directory (see {!Wal}) *)
  rejoin : bool;  (** restart: replay WAL, dial everyone, gate on catch-up *)
  dial : (int -> Unix.sockaddr) option;
      (** peer dial-address override (a chaos proxy interposes here);
          defaults to {!Live.Sockets.addr_of} *)
  status : out_channel;  (** JSON-lines: ready / halted / stats events *)
  log : out_channel;
}

module Make (A : Binding.ALGO) : sig
  val main : config -> unit
  (** Runs until clean exit; raises [Failure] on handshake errors and
      never returns after a kill-budget halt (SIGSTOP, then SIGKILL). *)
end

module Rwwc : sig
  val main : config -> unit
end
