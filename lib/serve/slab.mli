(** A slab/free-list of per-instance state keyed by instance id.

    Flat-engine style: a finished instance's slot record goes on a free
    list and the next instance recycles it in place via its [recycle]
    callback, so sustained storms allocate per {e concurrent} instance —
    the client window — never per decision.  [capacity] is the high-water
    mark of slots ever allocated and [reused] counts recycles; the slab
    test pins capacity to the window while instances run into the
    thousands.

    Iteration is in slot order (allocation order of the underlying array),
    which is deterministic for a deterministic operation sequence — the
    loopback engine relies on this. *)

type 'a t

val create : ?initial:int -> unit -> 'a t

val acquire :
  'a t -> instance:int -> create:(unit -> 'a) -> recycle:('a -> unit) -> 'a
(** Bind [instance] to a slot: recycles a freed slot through [recycle],
    or allocates a fresh one with [create].  Raises [Invalid_argument] if
    the instance is already active. *)

val find : 'a t -> instance:int -> 'a option
val release : 'a t -> instance:int -> unit

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Active slots only, in slot order. *)

val active : 'a t -> int
val capacity : 'a t -> int
val reused : 'a t -> int
