open Model

module type ALGO = sig
  include Live.Binding.ALGO

  val round_senders : n:int -> me:Pid.t -> round:int -> Pid.t list
  val decode_msg_view : Live.Frame.view -> (msg, string) result
end

module Rwwc :
  ALGO with type state = Core.Rwwc.state and type msg = Core.Rwwc.msg = struct
  include Live.Binding.Rwwc

  (* Figure 1: in round r only the coordinator p_r speaks, and toward any
     one destination its data message precedes its control message in the
     sequential write order (data ascending p_{r+1}..p_n, then control
     descending p_n..p_{r+1}).  Over FIFO links the control message
     therefore certifies the whole round's traffic from that sender. *)
  let round_senders ~n:_ ~me ~round =
    if Pid.to_int me = round then [] else [ Pid.of_int round ]

  let decode_msg_view (v : Live.Frame.view) =
    if v.Live.Frame.payload_len <> 4 then
      Error
        (Printf.sprintf "rwwc payload: expected 4 bytes, got %d"
           v.Live.Frame.payload_len)
    else
      let b = v.Live.Frame.payload_buf and p = v.Live.Frame.payload_pos in
      Ok
        (Core.Rwwc.Data
           ((Char.code (Bytes.get b p) lsl 24)
           lor (Char.code (Bytes.get b (p + 1)) lsl 16)
           lor (Char.code (Bytes.get b (p + 2)) lsl 8)
           lor Char.code (Bytes.get b (p + 3))))
end
