type t = {
  bufs : Buffer.t array;  (* index = dest: 0 client channel, 1..n peers *)
  counts : int array;  (* frames currently coalesced per dest *)
  batch : bool;
  stats : Stats.t;
  send : int -> string -> unit;
}

let create ~n ~batch ~stats ~send =
  {
    bufs = Array.init (n + 1) (fun _ -> Buffer.create 4096);
    counts = Array.make (n + 1) 0;
    batch;
    stats;
    send;
  }

let add t ~dest wire =
  t.stats.Stats.frames_out <- t.stats.Stats.frames_out + 1;
  t.stats.Stats.bytes_out <- t.stats.Stats.bytes_out + String.length wire;
  if t.batch then begin
    Buffer.add_string t.bufs.(dest) wire;
    t.counts.(dest) <- t.counts.(dest) + 1
  end
  else begin
    t.stats.Stats.write_calls <- t.stats.Stats.write_calls + 1;
    t.stats.Stats.max_batch <- max t.stats.Stats.max_batch 1;
    t.send dest wire
  end

let flush t =
  if t.batch then begin
    t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
    Array.iteri
      (fun dest buf ->
        if Buffer.length buf > 0 then begin
          let wire = Buffer.contents buf in
          Buffer.clear buf;
          t.stats.Stats.write_calls <- t.stats.Stats.write_calls + 1;
          t.stats.Stats.max_batch <- max t.stats.Stats.max_batch t.counts.(dest);
          t.counts.(dest) <- 0;
          t.send dest wire
        end)
      t.bufs
  end

let pending t ~dest = Buffer.length t.bufs.(dest) > 0
