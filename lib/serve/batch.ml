type bbuf = { mutable bytes : Bytes.t; mutable len : int }

type t = {
  bufs : bbuf array;  (* index = dest: 0 client channel, 1..n peers *)
  counts : int array;  (* frames currently coalesced per dest *)
  batch : bool;
  stats : Stats.t;
  send : dest:int -> Bytes.t -> len:int -> [ `Taken | `Done ];
  mutable pool : Bytes.t list;  (* buffers returned by put_back *)
  mutable pooled : int;
}

let initial_cap = 4096
let max_pooled = 64

let create ~n ~batch ~stats ~send =
  {
    bufs =
      Array.init (n + 1) (fun _ -> { bytes = Bytes.create initial_cap; len = 0 });
    counts = Array.make (n + 1) 0;
    batch;
    stats;
    send;
    pool = [];
    pooled = 0;
  }

let put_back t bytes =
  if t.pooled < max_pooled then begin
    t.pool <- bytes :: t.pool;
    t.pooled <- t.pooled + 1
  end

let take_buf t ~min =
  match t.pool with
  | b :: rest when Bytes.length b >= min ->
    t.pool <- rest;
    t.pooled <- t.pooled - 1;
    b
  | _ -> Bytes.create (max min initial_cap)

let ensure b extra =
  let need = b.len + extra in
  if Bytes.length b.bytes < need then begin
    let cap = ref (max initial_cap (2 * Bytes.length b.bytes)) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit b.bytes 0 nb 0 b.len;
    b.bytes <- nb
  end

let add t ~dest wire =
  t.stats.Stats.frames_out <- t.stats.Stats.frames_out + 1;
  t.stats.Stats.bytes_out <- t.stats.Stats.bytes_out + String.length wire;
  if t.batch then begin
    let b = t.bufs.(dest) in
    let len = String.length wire in
    ensure b len;
    Bytes.blit_string wire 0 b.bytes b.len len;
    b.len <- b.len + len;
    t.counts.(dest) <- t.counts.(dest) + 1
  end
  else begin
    (* One owned buffer per frame: the callee may keep it ([`Taken]), so
       the string's bytes are copied rather than unsafely aliased. *)
    t.stats.Stats.max_batch <- max t.stats.Stats.max_batch 1;
    let len = String.length wire in
    let bytes = take_buf t ~min:len in
    Bytes.blit_string wire 0 bytes 0 len;
    match t.send ~dest bytes ~len with
    | `Taken -> ()
    | `Done ->
      t.stats.Stats.write_calls <- t.stats.Stats.write_calls + 1;
      put_back t bytes
  end

let flush t =
  if t.batch then begin
    t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
    Array.iteri
      (fun dest b ->
        if b.len > 0 then begin
          t.stats.Stats.max_batch <- max t.stats.Stats.max_batch t.counts.(dest);
          t.counts.(dest) <- 0;
          let len = b.len in
          b.len <- 0;
          (* No [Buffer.contents]: the callee gets the buffer itself. *)
          t.stats.Stats.copies_saved <- t.stats.Stats.copies_saved + 1;
          match t.send ~dest b.bytes ~len with
          | `Taken -> b.bytes <- take_buf t ~min:initial_cap
          | `Done -> t.stats.Stats.write_calls <- t.stats.Stats.write_calls + 1
        end)
      t.bufs
  end

let pending t ~dest = t.bufs.(dest).len > 0
