(** Readiness multiplexing for the serve event loop.

    One registry of fd interest (read, write, or both) behind two
    interchangeable backends: a portable [Unix.select] one and a
    [poll(2)] one via a small C stub.  select silently fails past
    [FD_SETSIZE] (1024) descriptors — the cliff that caps how many
    clients a node can serve — while poll has no limit; the engine picks
    at runtime via [--backend] and the qcheck suite pins both backends
    to identical readiness sets on random interest updates.

    [wait] snapshots the registry before blocking, so a callback may
    freely register or deregister fds (accepting a connection, marking a
    peer dead) without invalidating the iteration. *)

type backend = Select | Poll

val poll_available : bool
(** Whether the poll stub is compiled in on this platform. *)

val backend_of_string : string -> (backend, string) result
val backend_to_string : backend -> string

type t

val create : ?backend:backend -> unit -> t
(** Default backend: [Select] (portable, deterministic baseline). *)

val backend : t -> backend

val register : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Set (or update) the interest for a fd.  [read:false ~write:false]
    keeps the fd registered with no interest — use {!deregister} to
    drop it. *)

val deregister : t -> Unix.file_descr -> unit
(** Forget a fd.  Safe to call for a fd that was never registered. *)

val interest : t -> Unix.file_descr -> (bool * bool) option
(** [(read, write)] interest currently registered, if any. *)

val registered : t -> int

val wait :
  t ->
  timeout:float ->
  handle:(Unix.file_descr -> readable:bool -> writable:bool -> unit) ->
  int
(** Block up to [timeout] seconds (negative means zero) for readiness and
    invoke [handle] once per ready fd; returns the number of ready fds.
    [EINTR] returns 0, like a timeout.  Callbacks may mutate the
    registry; readiness is reported from the pre-wait snapshot, so a
    callback must tolerate events for fds it has just dropped. *)
