type config = {
  n : int;
  transport : [ `Unix of string | `Tcp of int ];
  first : int;
  instances : int;
  window : int;
  proposals : int -> int -> int;
  timeout : float;  (** overall wall-clock budget, seconds *)
  reconnect : bool;  (** re-dial dead engines with jittered backoff *)
}

type outcome = {
  decisions : (int * int) option array array;
  latencies : float list;
  elapsed : float;
  undecided : int list;
  dead_nodes : int list;
  reconnects : int;
  resubmits : int;
}

type node = {
  pid : int;
  mutable fd : Unix.file_descr option;
  mutable decoder : Live.Frame.decoder;
  mutable attempts : int;  (* reconnect attempts since the last success *)
  mutable next_try : float;  (* infinity = no reconnect pending *)
}

let connect_timeout = 10.0
let send_timeout = 2.0
let reconnect_budget = 10
let reconnect_backoff = 0.05
let reconnect_backoff_max = 1.0

let run ?on_idle ?tick cfg =
  if cfg.n < 2 then Error "serve client: need n >= 2"
  else if cfg.instances < 0 then Error "serve client: negative instances"
  else if cfg.first < 0 then Error "serve client: negative first instance"
  else begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let nodes =
      Array.init cfg.n (fun i ->
          {
            pid = i + 1;
            fd = None;
            decoder = Live.Frame.decoder ();
            attempts = 0;
            next_try = infinity;
          })
    in
    let jitter = Prng.Rng.of_int 0x5eed in
    let hello = Live.Frame.encode (Live.Frame.Hello { node = 0 }) in
    let deadline = Live.Sockets.now () +. connect_timeout in
    let connect_err = ref None in
    Array.iter
      (fun node ->
        if !connect_err = None then
          match
            Live.Sockets.connect_retry ~deadline
              (Live.Sockets.addr_of ~transport:cfg.transport node.pid)
          with
          | Error e ->
            connect_err :=
              Some
                (Printf.sprintf "connect to p%d: %s" node.pid
                   (Live.Sockets.error_to_string e))
          | Ok fd -> (
            match Live.Sockets.write_all ~deadline fd hello with
            | Ok () ->
              Unix.set_nonblock fd;
              node.fd <- Some fd
            | Error e ->
              connect_err :=
                Some
                  (Printf.sprintf "hello to p%d: %s" node.pid
                     (Live.Sockets.error_to_string e))))
      nodes;
    match !connect_err with
    | Some e ->
      Array.iter
        (fun node ->
          match node.fd with
          | None -> ()
          | Some fd ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            node.fd <- None)
        nodes;
      Error e
    | None ->
      let window = max 1 cfg.window in
      let live = ref cfg.n in
      let decisions =
        Array.init cfg.instances (fun _ -> Array.make cfg.n None)
      in
      let submit_t = Array.make (max 1 cfg.instances) 0.0 in
      (* [missing.(idx)] = live nodes that have not yet reported a Decide
         for instance [first + idx]; reaching zero *is* settlement — no
         rescans, the bookkeeping is O(1) per Decide.  A reconnect that
         resubmits an instance re-adds the revived node to its count. *)
      let missing = Array.make (max 1 cfg.instances) max_int in
      let settled = Array.make (max 1 cfg.instances) false in
      let inflight : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let latencies = ref [] in
      let next_submit = ref 0 in
      let settled_count = ref 0 in
      let reconnects = ref 0 in
      let resubmits = ref 0 in
      let settle idx =
        if not settled.(idx) then begin
          settled.(idx) <- true;
          incr settled_count;
          Hashtbl.remove inflight idx;
          latencies := (Live.Sockets.now () -. submit_t.(idx)) :: !latencies
        end
      in
      (* One coalesced Submit burst per node per refill: the client-side
         mirror of the engines' per-peer batching. *)
      let submit_batch fresh =
        let per_node = Array.init cfg.n (fun _ -> Buffer.create 256) in
        List.iter
          (fun idx ->
            submit_t.(idx) <- Live.Sockets.now ();
            missing.(idx) <- !live;
            if !live = 0 then settle idx else Hashtbl.replace inflight idx ();
            let i = cfg.first + idx in
            Array.iter
              (fun node ->
                if node.fd <> None then
                  Buffer.add_string per_node.(node.pid - 1)
                    (Live.Frame.encode
                       (Live.Frame.Submit
                          { instance = i; proposal = cfg.proposals i node.pid })))
              nodes)
          fresh;
        Array.iter
          (fun node ->
            match node.fd with
            | None -> ()
            | Some fd ->
              let wire = Buffer.contents per_node.(node.pid - 1) in
              if wire <> "" then (
                match
                  Live.Sockets.write_all
                    ~deadline:(Live.Sockets.now () +. send_timeout)
                    fd wire
                with
                | Ok () -> ()
                | Error _ -> ()))
          nodes
      in
      (* Pipelined streaming: called the moment settlements free window
         slots, not once per tick. *)
      let refill () =
        let fresh = ref [] in
        while
          Hashtbl.length inflight + List.length !fresh < window
          && !next_submit < cfg.instances
        do
          fresh := !next_submit :: !fresh;
          incr next_submit
        done;
        if !fresh <> [] then submit_batch (List.rev !fresh)
      in
      (* A node death un-blocks every instance waiting only on it — and,
         with [reconnect], schedules a jittered backoff re-dial. *)
      let mark_dead node =
        match node.fd with
        | None -> ()
        | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          node.fd <- None;
          decr live;
          if cfg.reconnect && node.attempts < reconnect_budget then begin
            let backoff =
              Float.min reconnect_backoff_max
                (reconnect_backoff *. (2.0 ** float_of_int node.attempts))
            in
            node.next_try <-
              Live.Sockets.now () +. Live.Sockets.retry_wait ~jitter backoff
          end;
          let freed = ref [] in
          Hashtbl.iter
            (fun idx () ->
              if decisions.(idx).(node.pid - 1) = None then begin
                missing.(idx) <- missing.(idx) - 1;
                if missing.(idx) <= 0 then freed := idx :: !freed
              end)
            inflight;
          List.iter settle !freed
      in
      (* Every unsettled instance the revived node has not answered goes
         back to it — a re-Submit is idempotent on the engine side (a
         decided instance is re-answered from the log, a lost one is
         simply run).  The node re-joins each such instance's missing
         count; a failed send unwinds through [mark_dead] symmetrically. *)
      let resubmit node fd =
        let buf = Buffer.create 256 in
        let count = ref 0 in
        Hashtbl.iter
          (fun idx () ->
            if decisions.(idx).(node.pid - 1) = None then begin
              incr count;
              missing.(idx) <- missing.(idx) + 1;
              let i = cfg.first + idx in
              Buffer.add_string buf
                (Live.Frame.encode
                   (Live.Frame.Submit
                      { instance = i; proposal = cfg.proposals i node.pid }))
            end)
          inflight;
        resubmits := !resubmits + !count;
        if Buffer.length buf > 0 then
          match
            Live.Sockets.write_all
              ~deadline:(Live.Sockets.now () +. send_timeout)
              fd (Buffer.contents buf)
          with
          | Ok () -> ()
          | Error _ -> mark_dead node
      in
      let try_reconnects () =
        Array.iter
          (fun node ->
            if node.fd = None && Live.Sockets.now () >= node.next_try then begin
              node.next_try <- infinity;
              match
                Live.Sockets.connect_retry
                  ~deadline:(Live.Sockets.now () +. 0.2)
                  (Live.Sockets.addr_of ~transport:cfg.transport node.pid)
              with
              | Error _ ->
                node.attempts <- node.attempts + 1;
                if node.attempts < reconnect_budget then begin
                  let backoff =
                    Float.min reconnect_backoff_max
                      (reconnect_backoff
                      *. (2.0 ** float_of_int node.attempts))
                  in
                  node.next_try <-
                    Live.Sockets.now ()
                    +. Live.Sockets.retry_wait ~jitter backoff
                end
              | Ok fd -> (
                match
                  Live.Sockets.write_all
                    ~deadline:(Live.Sockets.now () +. send_timeout)
                    fd hello
                with
                | Error _ ->
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  node.attempts <- node.attempts + 1
                | Ok () ->
                  Unix.set_nonblock fd;
                  node.fd <- Some fd;
                  node.decoder <- Live.Frame.decoder ();
                  node.attempts <- 0;
                  incr live;
                  incr reconnects;
                  resubmit node fd)
            end)
          nodes
      in
      let drain node =
        let rec go () =
          match Live.Frame.pop_view node.decoder with
          | `View v ->
            (match v.Live.Frame.kind with
            | Live.Frame.K_decide ->
              let idx = v.Live.Frame.instance - cfg.first in
              if
                idx >= 0 && idx < cfg.instances
                && decisions.(idx).(node.pid - 1) = None
              then begin
                decisions.(idx).(node.pid - 1) <-
                  Some (v.Live.Frame.value, v.Live.Frame.round);
                if Hashtbl.mem inflight idx then begin
                  missing.(idx) <- missing.(idx) - 1;
                  if missing.(idx) <= 0 then settle idx
                end
              end
            | _ -> ());
            go ()
          | `Need_more -> ()
          | `Corrupt _ -> mark_dead node
        in
        go ()
      in
      let buf = Bytes.create 65536 in
      let started = Live.Sockets.now () in
      let wall_deadline = started +. cfg.timeout in
      refill ();
      while
        !settled_count < cfg.instances
        && Live.Sockets.now () < wall_deadline
        && Array.exists
             (fun node -> node.fd <> None || node.next_try < infinity)
             nodes
      do
        let fds =
          Array.to_list nodes |> List.filter_map (fun node -> node.fd)
        in
        (* Sleep until data, the next reconnect attempt, or the wall
           deadline — no fixed tick, so a Decide settles (and refills)
           the instant it arrives.  A [tick] cap exists for callers whose
           [on_idle] polls side channels. *)
        let timeout =
          let now = Live.Sockets.now () in
          let dt = Float.max 0.0 (wall_deadline -. now) in
          let dt =
            Array.fold_left
              (fun acc node ->
                if node.next_try < infinity then
                  Float.min acc (Float.max 0.0 (node.next_try -. now))
                else acc)
              dt nodes
          in
          match tick with None -> Float.min dt 1.0 | Some t -> Float.min dt t
        in
        (match Unix.select fds [] [] timeout with
        | ready, _, _ ->
          Array.iter
            (fun node ->
              match node.fd with
              | Some fd when List.memq fd ready -> (
                match Live.Sockets.read_chunk fd buf with
                | `Data k ->
                  Live.Frame.feed node.decoder (Bytes.unsafe_to_string buf)
                    ~pos:0 ~len:k;
                  drain node
                | `Closed -> mark_dead node
                | `Nothing -> ())
              | _ -> ())
            nodes
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        try_reconnects ();
        refill ();
        match on_idle with Some f -> f () | None -> ()
      done;
      let elapsed = Live.Sockets.now () -. started in
      let undecided =
        let acc = ref [] in
        for idx = cfg.instances - 1 downto 0 do
          if not settled.(idx) then acc := (cfg.first + idx) :: !acc
        done;
        !acc
      in
      (* Nodes still down when the storm closed: with [reconnect] these
         are exactly the ones that never came back (a revived node holds
         a live fd here). *)
      let dead_nodes =
        Array.to_list nodes
        |> List.filter_map (fun node ->
               if node.fd = None then Some node.pid else None)
      in
      Array.iter
        (fun node ->
          node.next_try <- infinity;
          mark_dead node)
        nodes;
      Ok
        {
          decisions;
          latencies = !latencies;
          elapsed;
          undecided;
          dead_nodes;
          reconnects = !reconnects;
          resubmits = !resubmits;
        }
  end
