type config = {
  n : int;
  transport : [ `Unix of string | `Tcp of int ];
  first : int;
  instances : int;
  window : int;
  proposals : int -> int -> int;
  timeout : float;  (** overall wall-clock budget, seconds *)
}

type outcome = {
  decisions : (int * int) option array array;
  latencies : float list;
  elapsed : float;
  undecided : int list;
  dead_nodes : int list;
}

type node = {
  pid : int;
  mutable fd : Unix.file_descr option;
  decoder : Live.Frame.decoder;
}

let connect_timeout = 10.0
let send_timeout = 2.0

let run ?on_idle ?tick cfg =
  if cfg.n < 2 then Error "serve client: need n >= 2"
  else if cfg.instances < 0 then Error "serve client: negative instances"
  else if cfg.first < 0 then Error "serve client: negative first instance"
  else begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let nodes =
      Array.init cfg.n (fun i ->
          { pid = i + 1; fd = None; decoder = Live.Frame.decoder () })
    in
    let hello = Live.Frame.encode (Live.Frame.Hello { node = 0 }) in
    let deadline = Live.Sockets.now () +. connect_timeout in
    let connect_err = ref None in
    Array.iter
      (fun node ->
        if !connect_err = None then
          match
            Live.Sockets.connect_retry ~deadline
              (Live.Sockets.addr_of ~transport:cfg.transport node.pid)
          with
          | Error e ->
            connect_err :=
              Some
                (Printf.sprintf "connect to p%d: %s" node.pid
                   (Live.Sockets.error_to_string e))
          | Ok fd -> (
            match Live.Sockets.write_all ~deadline fd hello with
            | Ok () ->
              Unix.set_nonblock fd;
              node.fd <- Some fd
            | Error e ->
              connect_err :=
                Some
                  (Printf.sprintf "hello to p%d: %s" node.pid
                     (Live.Sockets.error_to_string e))))
      nodes;
    match !connect_err with
    | Some e ->
      Array.iter
        (fun node ->
          match node.fd with
          | None -> ()
          | Some fd ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            node.fd <- None)
        nodes;
      Error e
    | None ->
      let window = max 1 cfg.window in
      let live = ref cfg.n in
      let decisions =
        Array.init cfg.instances (fun _ -> Array.make cfg.n None)
      in
      let submit_t = Array.make (max 1 cfg.instances) 0.0 in
      (* [missing.(idx)] = live nodes that have not yet reported a Decide
         for instance [first + idx]; reaching zero *is* settlement — no
         rescans, the bookkeeping is O(1) per Decide. *)
      let missing = Array.make (max 1 cfg.instances) max_int in
      let settled = Array.make (max 1 cfg.instances) false in
      let inflight : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let latencies = ref [] in
      let next_submit = ref 0 in
      let settled_count = ref 0 in
      let settle idx =
        if not settled.(idx) then begin
          settled.(idx) <- true;
          incr settled_count;
          Hashtbl.remove inflight idx;
          latencies := (Live.Sockets.now () -. submit_t.(idx)) :: !latencies
        end
      in
      (* One coalesced Submit burst per node per refill: the client-side
         mirror of the engines' per-peer batching. *)
      let submit_batch fresh =
        let per_node = Array.init cfg.n (fun _ -> Buffer.create 256) in
        List.iter
          (fun idx ->
            submit_t.(idx) <- Live.Sockets.now ();
            missing.(idx) <- !live;
            if !live = 0 then settle idx else Hashtbl.replace inflight idx ();
            let i = cfg.first + idx in
            Array.iter
              (fun node ->
                if node.fd <> None then
                  Buffer.add_string per_node.(node.pid - 1)
                    (Live.Frame.encode
                       (Live.Frame.Submit
                          { instance = i; proposal = cfg.proposals i node.pid })))
              nodes)
          fresh;
        Array.iter
          (fun node ->
            match node.fd with
            | None -> ()
            | Some fd ->
              let wire = Buffer.contents per_node.(node.pid - 1) in
              if wire <> "" then (
                match
                  Live.Sockets.write_all
                    ~deadline:(Live.Sockets.now () +. send_timeout)
                    fd wire
                with
                | Ok () -> ()
                | Error _ -> ()))
          nodes
      in
      (* Pipelined streaming: called the moment settlements free window
         slots, not once per tick. *)
      let refill () =
        let fresh = ref [] in
        while
          Hashtbl.length inflight + List.length !fresh < window
          && !next_submit < cfg.instances
        do
          fresh := !next_submit :: !fresh;
          incr next_submit
        done;
        if !fresh <> [] then submit_batch (List.rev !fresh)
      in
      (* A node death un-blocks every instance waiting only on it. *)
      let mark_dead node =
        match node.fd with
        | None -> ()
        | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          node.fd <- None;
          decr live;
          let freed = ref [] in
          Hashtbl.iter
            (fun idx () ->
              if decisions.(idx).(node.pid - 1) = None then begin
                missing.(idx) <- missing.(idx) - 1;
                if missing.(idx) <= 0 then freed := idx :: !freed
              end)
            inflight;
          List.iter settle !freed
      in
      let drain node =
        let rec go () =
          match Live.Frame.pop_view node.decoder with
          | `View v ->
            (match v.Live.Frame.kind with
            | Live.Frame.K_decide ->
              let idx = v.Live.Frame.instance - cfg.first in
              if
                idx >= 0 && idx < cfg.instances
                && decisions.(idx).(node.pid - 1) = None
              then begin
                decisions.(idx).(node.pid - 1) <-
                  Some (v.Live.Frame.value, v.Live.Frame.round);
                if Hashtbl.mem inflight idx then begin
                  missing.(idx) <- missing.(idx) - 1;
                  if missing.(idx) <= 0 then settle idx
                end
              end
            | _ -> ());
            go ()
          | `Need_more -> ()
          | `Corrupt _ -> mark_dead node
        in
        go ()
      in
      let buf = Bytes.create 65536 in
      let started = Live.Sockets.now () in
      let wall_deadline = started +. cfg.timeout in
      refill ();
      while
        !settled_count < cfg.instances
        && Live.Sockets.now () < wall_deadline
        && Array.exists (fun node -> node.fd <> None) nodes
      do
        let fds =
          Array.to_list nodes |> List.filter_map (fun node -> node.fd)
        in
        (* Sleep until data or the wall deadline — no fixed tick, so a
           Decide settles (and refills) the instant it arrives.  A [tick]
           cap exists for callers whose [on_idle] polls side channels. *)
        let timeout =
          let dt = Float.max 0.0 (wall_deadline -. Live.Sockets.now ()) in
          match tick with None -> Float.min dt 1.0 | Some t -> Float.min dt t
        in
        (match Unix.select fds [] [] timeout with
        | ready, _, _ ->
          Array.iter
            (fun node ->
              match node.fd with
              | Some fd when List.memq fd ready -> (
                match Live.Sockets.read_chunk fd buf with
                | `Data k ->
                  Live.Frame.feed node.decoder (Bytes.unsafe_to_string buf)
                    ~pos:0 ~len:k;
                  drain node
                | `Closed -> mark_dead node
                | `Nothing -> ())
              | _ -> ())
            nodes
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        refill ();
        match on_idle with Some f -> f () | None -> ()
      done;
      let elapsed = Live.Sockets.now () -. started in
      let undecided =
        let acc = ref [] in
        for idx = cfg.instances - 1 downto 0 do
          if not settled.(idx) then acc := (cfg.first + idx) :: !acc
        done;
        !acc
      in
      let dead_nodes =
        Array.to_list nodes
        |> List.filter_map (fun node ->
               if node.fd = None then Some node.pid else None)
      in
      Array.iter mark_dead nodes;
      Ok { decisions; latencies = !latencies; elapsed; undecided; dead_nodes }
  end
