type config = {
  n : int;
  transport : [ `Unix of string | `Tcp of int ];
  instances : int;
  window : int;
  proposals : int -> int -> int;
  timeout : float;  (** overall wall-clock budget, seconds *)
}

type outcome = {
  decisions : (int * int) option array array;
  latencies : float list;
  elapsed : float;
  undecided : int list;
  dead_nodes : int list;
}

type node = {
  pid : int;
  mutable fd : Unix.file_descr option;
  decoder : Live.Frame.decoder;
}

let connect_timeout = 10.0
let send_timeout = 2.0

let mark_dead node =
  match node.fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    node.fd <- None

let run ?(on_idle = fun () -> ()) cfg =
  if cfg.n < 2 then Error "serve client: need n >= 2"
  else if cfg.instances < 0 then Error "serve client: negative instances"
  else begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let nodes =
      Array.init cfg.n (fun i ->
          { pid = i + 1; fd = None; decoder = Live.Frame.decoder () })
    in
    let hello = Live.Frame.encode (Live.Frame.Hello { node = 0 }) in
    let deadline = Live.Sockets.now () +. connect_timeout in
    let connect_err = ref None in
    Array.iter
      (fun node ->
        if !connect_err = None then
          match
            Live.Sockets.connect_retry ~deadline
              (Live.Sockets.addr_of ~transport:cfg.transport node.pid)
          with
          | Error e ->
            connect_err :=
              Some
                (Printf.sprintf "connect to p%d: %s" node.pid
                   (Live.Sockets.error_to_string e))
          | Ok fd -> (
            match Live.Sockets.write_all ~deadline fd hello with
            | Ok () ->
              Unix.set_nonblock fd;
              node.fd <- Some fd
            | Error e ->
              connect_err :=
                Some
                  (Printf.sprintf "hello to p%d: %s" node.pid
                     (Live.Sockets.error_to_string e))))
      nodes;
    match !connect_err with
    | Some e ->
      Array.iter mark_dead nodes;
      Error e
    | None ->
      let window = max 1 cfg.window in
      let decisions =
        Array.init cfg.instances (fun _ -> Array.make cfg.n None)
      in
      let submit_t = Array.make (max 1 cfg.instances) 0.0 in
      let latencies = ref [] in
      let inflight = ref [] in
      let next_submit = ref 0 in
      let settled_count = ref 0 in
      (* One coalesced Submit burst per node per refill: the client-side
         mirror of the engines' per-peer batching. *)
      let submit_batch fresh =
        let per_node = Array.make cfg.n (Buffer.create 0) in
        Array.iteri (fun i _ -> per_node.(i) <- Buffer.create 256) per_node;
        List.iter
          (fun i ->
            submit_t.(i) <- Live.Sockets.now ();
            inflight := i :: !inflight;
            Array.iter
              (fun node ->
                if node.fd <> None then
                  Buffer.add_string per_node.(node.pid - 1)
                    (Live.Frame.encode
                       (Live.Frame.Submit
                          { instance = i; proposal = cfg.proposals i node.pid })))
              nodes)
          fresh;
        Array.iter
          (fun node ->
            match node.fd with
            | None -> ()
            | Some fd ->
              let wire = Buffer.contents per_node.(node.pid - 1) in
              if wire <> "" then (
                match
                  Live.Sockets.write_all
                    ~deadline:(Live.Sockets.now () +. send_timeout)
                    fd wire
                with
                | Ok () -> ()
                | Error _ -> mark_dead node))
          nodes
      in
      let refill () =
        let fresh = ref [] in
        while
          List.length !inflight + List.length !fresh < window
          && !next_submit < cfg.instances
        do
          fresh := !next_submit :: !fresh;
          incr next_submit
        done;
        if !fresh <> [] then submit_batch (List.rev !fresh)
      in
      let is_settled i =
        let ok = ref true in
        Array.iter
          (fun node ->
            if node.fd <> None && decisions.(i).(node.pid - 1) = None then
              ok := false)
          nodes;
        !ok
      in
      let settle_pass () =
        inflight :=
          List.filter
            (fun i ->
              if is_settled i then begin
                latencies := (Live.Sockets.now () -. submit_t.(i)) :: !latencies;
                incr settled_count;
                false
              end
              else true)
            !inflight
      in
      let drain node =
        let rec go () =
          match Live.Frame.pop_view node.decoder with
          | `View v ->
            (match v.Live.Frame.kind with
            | Live.Frame.K_decide ->
              let i = v.Live.Frame.instance in
              if
                i >= 0 && i < cfg.instances
                && decisions.(i).(node.pid - 1) = None
              then
                decisions.(i).(node.pid - 1) <-
                  Some (v.Live.Frame.value, v.Live.Frame.round)
            | _ -> ());
            go ()
          | `Need_more -> ()
          | `Corrupt _ -> mark_dead node
        in
        go ()
      in
      let buf = Bytes.create 65536 in
      let started = Live.Sockets.now () in
      let wall_deadline = started +. cfg.timeout in
      refill ();
      while
        !settled_count < cfg.instances
        && Live.Sockets.now () < wall_deadline
        && Array.exists (fun node -> node.fd <> None) nodes
      do
        let fds =
          Array.to_list nodes |> List.filter_map (fun node -> node.fd)
        in
        (match Unix.select fds [] [] 0.05 with
        | ready, _, _ ->
          Array.iter
            (fun node ->
              match node.fd with
              | Some fd when List.memq fd ready -> (
                match Live.Sockets.read_chunk fd buf with
                | `Data k ->
                  Live.Frame.feed node.decoder (Bytes.unsafe_to_string buf)
                    ~pos:0 ~len:k;
                  drain node
                | `Closed -> mark_dead node
                | `Nothing -> ())
              | _ -> ())
            nodes
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        (* A node death un-blocks every instance waiting only on it. *)
        settle_pass ();
        refill ();
        on_idle ()
      done;
      let elapsed = Live.Sockets.now () -. started in
      let undecided =
        List.sort_uniq compare
          (!inflight
          @ List.init
              (max 0 (cfg.instances - !next_submit))
              (fun k -> !next_submit + k))
      in
      let dead_nodes =
        Array.to_list nodes
        |> List.filter_map (fun node ->
               if node.fd = None then Some node.pid else None)
      in
      Array.iter mark_dead nodes;
      Ok { decisions; latencies = !latencies; elapsed; undecided; dead_nodes }
  end
