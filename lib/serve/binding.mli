(** What the serve layer needs from an algorithm, beyond the live wire
    binding: when a multiplexed round can complete {e early}, and a
    zero-copy payload decoder for the hot receive path. *)

open Model

module type ALGO = sig
  include Live.Binding.ALGO

  val round_senders : n:int -> me:Pid.t -> round:int -> Pid.t list
  (** The peers whose round-[round] traffic toward [me] is terminated by
      their control message under FIFO delivery — once a control message
      from each listed sender has arrived, every message the round can
      deliver to [me] has arrived, and the instance may advance without
      waiting out the round deadline.  An empty list means the round
      completes immediately after [me]'s own sends (e.g. the coordinator's
      round).  Crashed senders simply never complete the certificate and
      the instance falls back to the deadline — the paper's
      timeout-as-failure-detector, kept per instance. *)

  val decode_msg_view : Live.Frame.view -> (msg, string) result
  (** [decode_msg] reading straight out of a decoder view's payload
      window, so the event loop never copies a payload to a string. *)
end

module Rwwc :
  ALGO with type state = Core.Rwwc.state and type msg = Core.Rwwc.msg
