(** The serve fleet: forks one {!Engine} per node, waits for the mesh,
    drives the storm with an in-process {!Client}, and folds decisions,
    latencies, per-engine stats, and any realized kill into a {!Report}.

    Engine status pipes (ready / halted / stats JSON lines) are pumped
    from the driver's [on_idle] hook, so one select loop serves both
    jobs; a kill-budget victim's SIGSTOP is answered with SIGKILL from
    the same hook — mid-storm, while the other engines keep deciding.

    With [respawn], a killed engine does not stay dead: the same hook
    re-forks it with {!Engine.config.rejoin} set (replay the WAL, re-dial
    the mesh, catch up before serving), under the {!Live.Supervisor}
    respawn-budget / exponential-backoff idiom.  Clean exits are never
    respawned.  [chaos] interposes a {!Chaosproxy} on each listed mesh
    link via the dialing engine's [dial] override. *)

type config = {
  n : int;
  t : int;
  transport : [ `Unix of string | `Tcp of int ];
  workspace : string;  (** directory for socket files, WALs, engine logs *)
  instances : int;
  window : int;
  big_d : float;
  batch : bool;
  backend : Evloop.backend;  (** readiness backend for every engine *)
  kill : Report.kill_spec option;
  max_rounds : int option;  (** default [t + 1] *)
  proposals : int -> int -> int;  (** instance -> node -> proposal *)
  client_timeout : float option;  (** default derived from the deadline chain *)
  respawn : bool;  (** respawn killed engines (implies [wal]) *)
  respawn_budget : int;  (** respawn attempts per node *)
  respawn_backoff : float;  (** base backoff, doubled per attempt *)
  wal : bool;  (** durable decision WALs in [workspace] even without respawn *)
  chaos : Chaosproxy.link list;  (** proxied mesh links with fault scripts *)
  verbose : bool;
}

type mesh = {
  victim : (int * Mux.realized list) option;
      (** the kill victim's realized per-instance crash points *)
  node_stats : (int * Stats.t) list;
      (** final per-engine event-loop stats, summed across respawn lives *)
  respawned : (int * int) list;  (** node, respawn attempts consumed *)
}

val with_mesh :
  config ->
  (on_idle:(unit -> unit) -> kill:(int -> bool) -> ('a, string) result) ->
  ('a * mesh, string) result
(** Spawn the chaos proxies and engines, wait until every mesh handshake
    completes, run [drive ~on_idle ~kill] (calling [on_idle] frequently
    keeps status pipes drained, answers the victim's SIGSTOP, and
    performs due respawns; [kill node] SIGKILLs a live engine and
    reports whether a signal was sent), then collect final stats and
    tear the fleet down — kills, reaps, socket unlinks included.
    {!run}, the soak driver, and the multi-client tests are all this
    skeleton with a different [drive]. *)

val default_timeout : config -> float
(** The storm budget {!run} uses when [client_timeout] is [None]. *)

val run : config -> (Report.t, string) result
