(** The serve fleet: forks one {!Engine} per node, waits for the mesh,
    drives the storm with an in-process {!Client}, and folds decisions,
    latencies, per-engine stats, and any realized kill into a {!Report}.

    Engine status pipes (ready / halted / stats JSON lines) are pumped
    from the client's [on_idle] hook, so one select loop serves both
    jobs; a kill-budget victim's SIGSTOP is answered with SIGKILL from
    the same hook — mid-storm, while the other engines keep deciding. *)

type config = {
  n : int;
  t : int;
  transport : [ `Unix of string | `Tcp of int ];
  workspace : string;  (** directory for socket files and engine logs *)
  instances : int;
  window : int;
  big_d : float;
  batch : bool;
  kill : Report.kill_spec option;
  max_rounds : int option;  (** default [t + 1] *)
  proposals : int -> int -> int;  (** instance -> node -> proposal *)
  client_timeout : float option;  (** default derived from the deadline chain *)
  verbose : bool;
}

val run : config -> (Report.t, string) result
