(** The serve fleet: forks one {!Engine} per node, waits for the mesh,
    drives the storm with an in-process {!Client}, and folds decisions,
    latencies, per-engine stats, and any realized kill into a {!Report}.

    Engine status pipes (ready / halted / stats JSON lines) are pumped
    from the driver's [on_idle] hook, so one select loop serves both
    jobs; a kill-budget victim's SIGSTOP is answered with SIGKILL from
    the same hook — mid-storm, while the other engines keep deciding. *)

type config = {
  n : int;
  t : int;
  transport : [ `Unix of string | `Tcp of int ];
  workspace : string;  (** directory for socket files and engine logs *)
  instances : int;
  window : int;
  big_d : float;
  batch : bool;
  backend : Evloop.backend;  (** readiness backend for every engine *)
  kill : Report.kill_spec option;
  max_rounds : int option;  (** default [t + 1] *)
  proposals : int -> int -> int;  (** instance -> node -> proposal *)
  client_timeout : float option;  (** default derived from the deadline chain *)
  verbose : bool;
}

type mesh = {
  victim : (int * Mux.realized list) option;
      (** the kill victim's realized per-instance crash points *)
  node_stats : (int * Stats.t) list;  (** final per-engine event-loop stats *)
}

val with_mesh :
  config ->
  (on_idle:(unit -> unit) -> ('a, string) result) ->
  ('a * mesh, string) result
(** Spawn the engines, wait until every mesh handshake completes, run
    [drive ~on_idle] (calling [on_idle] frequently keeps status pipes
    drained and answers the victim's SIGSTOP), then collect final stats
    and tear the fleet down — kills, reaps, socket unlinks included.
    {!run}, the soak driver, and the multi-client tests are all this
    skeleton with a different [drive]. *)

val default_timeout : config -> float
(** The storm budget {!run} uses when [client_timeout] is [None]. *)

val run : config -> (Report.t, string) result
