type chunk = {
  bytes : Bytes.t;
  len : int;
  mutable shares : int;  (* queues still holding this chunk *)
  recycle : Bytes.t -> unit;
}

let chunk ?(shares = 1) ~recycle bytes ~len =
  if shares < 1 then invalid_arg "Outq.chunk: shares < 1";
  { bytes; len; shares; recycle }

let release_share c =
  c.shares <- c.shares - 1;
  if c.shares = 0 then c.recycle c.bytes

(* Per-queue cursor into the (shared) chunk: two clients draining the
   same broadcast chunk at different speeds each track their own offset. *)
type cell = { c : chunk; mutable off : int }

type t = {
  q : cell Queue.t;
  mutable queued : int;  (* unsent bytes across all cells *)
  hwm : int;
}

let default_hwm = 8 * 1024 * 1024

let create ?(hwm = default_hwm) () = { q = Queue.create (); queued = 0; hwm }

let push t c =
  Queue.push { c; off = 0 } t.q;
  t.queued <- t.queued + c.len

let is_empty t = Queue.is_empty t.q
let queued_bytes t = t.queued
let over_hwm t = t.queued > t.hwm

let drain t ?stats fd =
  let count_write n full =
    match stats with
    | None -> ()
    | Some s ->
      s.Stats.write_calls <- s.Stats.write_calls + 1;
      if not full then s.Stats.partial_writes <- s.Stats.partial_writes + 1;
      ignore n
  in
  let rec go () =
    match Queue.peek_opt t.q with
    | None -> `Empty
    | Some cell -> (
      let remaining = cell.c.len - cell.off in
      match Unix.write fd cell.c.bytes cell.off remaining with
      | n ->
        t.queued <- t.queued - n;
        count_write n (n = remaining);
        if n = remaining then begin
          ignore (Queue.pop t.q);
          release_share cell.c;
          go ()
        end
        else begin
          cell.off <- cell.off + n;
          (* The kernel took a partial write: the buffer is full, a
             longer spin would only get EAGAIN. *)
          `Blocked
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Blocked
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (errno, _, _) ->
        `Closed (Unix.error_message errno))
  in
  go ()

let drain_blocking t ~deadline fd =
  let rec go () =
    match drain t fd with
    | `Empty | `Closed _ -> ()
    | `Blocked ->
      let dt = deadline -. Unix.gettimeofday () in
      if dt > 0.0 then begin
        (match Unix.select [] [ fd ] [] dt with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
  in
  go ()

let clear t =
  Queue.iter (fun cell -> release_share cell.c) t.q;
  Queue.clear t.q;
  t.queued <- 0
