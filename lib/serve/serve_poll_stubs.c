/* poll(2) backend for Serve.Evloop.
 *
 * Unix.select caps at FD_SETSIZE (1024) file descriptors — a hard cliff
 * for a node serving hundreds of clients on top of its mesh.  poll has
 * no such limit.  The stub copies the interest arrays into a C pollfd
 * array, releases the OCaml runtime for the wait, and hands back one
 * revents bit set per fd (bit 0 = readable, bit 1 = writable).
 *
 * On Unix a Unix.file_descr is an immediate int, so the fd array is
 * read with Int_val directly; no conversion module is needed.
 */

#include <errno.h>
#include <poll.h>
#include <stdlib.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

CAMLprim value serve_poll_available(value unit)
{
  (void) unit;
  return Val_true;
}

/* serve_poll_wait fds events timeout_ms
 *
 * [fds] and [events] have the same length; events bit 0 asks for POLLIN,
 * bit 1 for POLLOUT.  Returns a fresh int array of result bits: bit 0 is
 * set when the fd is readable (or hung up / in error — the caller's read
 * will surface the close), bit 1 when writable.  EINTR reports as "no fd
 * ready", exactly like the select backend.
 */
CAMLprim value serve_poll_wait(value v_fds, value v_events, value v_timeout)
{
  CAMLparam3(v_fds, v_events, v_timeout);
  CAMLlocal1(v_res);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout);
  struct pollfd *pfd = NULL;
  mlsize_t i;
  int rc;

  if (n > 0) {
    pfd = (struct pollfd *) malloc(n * sizeof(struct pollfd));
    if (pfd == NULL) caml_failwith("Serve.Evloop: poll: out of memory");
    for (i = 0; i < n; i++) {
      int ev = Int_val(Field(v_events, i));
      pfd[i].fd = Int_val(Field(v_fds, i));
      pfd[i].events =
        (short) (((ev & 1) ? POLLIN : 0) | ((ev & 2) ? POLLOUT : 0));
      pfd[i].revents = 0;
    }
  }

  caml_release_runtime_system();
  rc = poll(pfd, (nfds_t) n, timeout);
  caml_acquire_runtime_system();

  if (rc < 0 && errno != EINTR) {
    free(pfd);
    caml_failwith("Serve.Evloop: poll failed");
  }

  v_res = caml_alloc(n, 0);
  for (i = 0; i < n; i++) {
    int out = 0;
    if (rc > 0) {
      short rev = pfd[i].revents;
      if (rev & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) out |= 1;
      if (rev & (POLLOUT | POLLERR | POLLHUP)) out |= 2;
    }
    Store_field(v_res, i, Val_int(out));
  }
  free(pfd);
  CAMLreturn(v_res);
}
