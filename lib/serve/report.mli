(** The outcome of a serve storm: throughput, latency percentiles,
    per-node event-loop stats, and — the part that keeps the perf layer
    honest — a per-instance verdict from the existing {!Live.Judge}.

    Every instance is judged as its own consensus run: the decisions each
    node reported become a {!Live.Transcript.t}, a victim's realized crash
    point becomes a scripted kill (instances the victim never activated
    count as killed before any round-1 write), and the differential
    comparison against the abstract engine runs under that realized
    schedule.  [ok] means every judged instance passed. *)

open Model

type kill_spec = { node : int; after_frames : int }

type instance_verdict = {
  instance : int;
  verdict : Live.Judge.verdict;
  transcript : Live.Transcript.t;
}

type latency = { p50 : float; p90 : float; p99 : float; max : float }

type t = {
  n : int;
  t : int;
  instances : int;
  completed : int;  (** instances every live node decided *)
  undecided : int;
  elapsed : float;  (** wall seconds over the whole storm *)
  decisions_per_sec : float;
  latency : latency option;  (** per-instance submit-to-settle latency *)
  stats : (int * Stats.t) list;
  total : Stats.t;
  kill : kill_spec option;
  judged : int;
  failures : instance_verdict list;
  ok : bool;
}

val build :
  n:int ->
  t:int ->
  proposals:(int -> int -> int) ->
  decisions:(int * int) option array array ->
  victim:(int * Mux.realized list) option ->
  send_plan:(n:int -> me:Pid.t -> round:int -> Pid.t list * Pid.t list) ->
  elapsed:float ->
  latencies:float list ->
  stats:(int * Stats.t) list ->
  kill:kill_spec option ->
  t
(** [proposals instance node] is the proposal node [node] submitted for
    [instance]; [decisions.(instance).(node-1)] the (value, round) that
    node reported, if any. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0..1]; the array must be sorted. *)

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit
