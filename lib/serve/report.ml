open Model

type kill_spec = { node : int; after_frames : int }

type instance_verdict = {
  instance : int;
  verdict : Live.Judge.verdict;
  transcript : Live.Transcript.t;
}

type latency = { p50 : float; p90 : float; p99 : float; max : float }

type t = {
  n : int;
  t : int;
  instances : int;
  completed : int;
  undecided : int;
  elapsed : float;
  decisions_per_sec : float;
  latency : latency option;
  stats : (int * Stats.t) list;
  total : Stats.t;
  kill : kill_spec option;
  judged : int;
  failures : instance_verdict list;
  ok : bool;
}

let percentile sorted q =
  let m = Array.length sorted in
  if m = 0 then 0.0
  else
    let idx = int_of_float (ceil (q *. float_of_int m)) - 1 in
    sorted.(max 0 (min (m - 1) idx))

let latency_of = function
  | [] -> None
  | samples ->
    let a = Array.of_list samples in
    Array.sort compare a;
    Some
      {
        p50 = percentile a 0.50;
        p90 = percentile a 0.90;
        p99 = percentile a 0.99;
        max = a.(Array.length a - 1);
      }

(* One multiplexed instance, judged exactly like a single-instance live
   run: statuses from the decisions each node reported for it, the
   victim's realized crash point as a scripted kill, and — every death
   being scripted — the differential against the abstract engine under
   the schedule that kill realizes. *)
let judge_instance ~n ~t ~proposals ~row ~victim ~send_plan instance =
  let realized_of =
    match victim with
    | None -> fun _ -> None
    | Some (node, table) -> (
      fun i ->
        if row.(node - 1) <> None then None (* decided before the halt *)
        else
          match Hashtbl.find_opt table i with
          | Some (r : Mux.realized) ->
            Some
              Live.Script.{ pid = Pid.of_int node; round = r.round; phase = r.phase }
          | None ->
            (* The victim never activated this instance: it crashed, for
               this instance's purposes, before any round-1 write. *)
            Some
              Live.Script.
                { pid = Pid.of_int node; round = 1; phase = Before_send })
  in
  let kill = realized_of instance in
  let statuses =
    Array.init n (fun j ->
        match row.(j) with
        | Some (value, at_round) -> Live.Transcript.Decided { value; at_round }
        | None -> (
          match kill with
          | Some k when Pid.to_int k.Live.Script.pid = j + 1 ->
            Live.Transcript.Killed
              { at_round = k.Live.Script.round; scripted = true }
          | _ -> Live.Transcript.Undecided))
  in
  let max_round =
    Array.fold_left
      (fun acc -> function
        | Live.Transcript.Decided { at_round; _ }
        | Live.Transcript.Killed { at_round; _ } ->
          max acc at_round
        | Live.Transcript.Undecided -> acc)
      1 statuses
  in
  let tr =
    {
      Live.Transcript.n;
      t;
      proposals = Array.init n (fun j -> proposals instance (j + 1));
      statuses;
      rounds = Array.make n [];
      max_round;
    }
  in
  let schedule =
    Live.Script.to_schedule
      ~send_plan:(fun ~me ~round -> send_plan ~n ~me ~round)
      (match kill with None -> [] | Some k -> [ k ])
  in
  let verdict = Live.Judge.judge ~schedule tr in
  { instance; verdict; transcript = tr }

let build ~n ~t:tolerance ~proposals ~decisions ~victim ~send_plan ~elapsed
    ~latencies ~stats ~kill =
  let instances = Array.length decisions in
  let victim_tbl =
    match victim with
    | None -> None
    | Some (node, realized) ->
      let tbl = Hashtbl.create 256 in
      List.iter
        (fun (r : Mux.realized) -> Hashtbl.replace tbl r.instance r)
        realized;
      Some (node, tbl)
  in
  let victim_node = match victim with Some (node, _) -> node | None -> -1 in
  let completed = ref 0 in
  let undecided = ref 0 in
  let failures = ref [] in
  for i = 0 to instances - 1 do
    let row = decisions.(i) in
    let live_nodes_decided = ref true in
    for j = 0 to n - 1 do
      if j + 1 <> victim_node && row.(j) = None then live_nodes_decided := false
    done;
    if !live_nodes_decided then incr completed else incr undecided;
    let iv =
      judge_instance ~n ~t:tolerance ~proposals ~row ~victim:victim_tbl
        ~send_plan i
    in
    if not iv.verdict.Live.Judge.ok then failures := iv :: !failures
  done;
  let total = Stats.create () in
  List.iter (fun (_, s) -> Stats.add total s) stats;
  {
    n;
    t = tolerance;
    instances;
    completed = !completed;
    undecided = !undecided;
    elapsed;
    decisions_per_sec =
      (if elapsed > 0.0 then float_of_int !completed /. elapsed else 0.0);
    latency = latency_of latencies;
    stats;
    total;
    kill;
    judged = instances;
    failures = List.rev !failures;
    ok = !failures = [];
  }

let latency_to_json l =
  Obs.Json.Obj
    [
      ("p50", Obs.Json.Float l.p50);
      ("p90", Obs.Json.Float l.p90);
      ("p99", Obs.Json.Float l.p99);
      ("max", Obs.Json.Float l.max);
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int r.n);
      ("t", Obs.Json.Int r.t);
      ("instances", Obs.Json.Int r.instances);
      ("completed", Obs.Json.Int r.completed);
      ("undecided", Obs.Json.Int r.undecided);
      ("elapsed_sec", Obs.Json.Float r.elapsed);
      ("decisions_per_sec", Obs.Json.Float r.decisions_per_sec);
      ( "latency",
        match r.latency with Some l -> latency_to_json l | None -> Obs.Json.Null
      );
      ( "kill",
        match r.kill with
        | Some k ->
          Obs.Json.Obj
            [
              ("node", Obs.Json.Int k.node);
              ("after_frames", Obs.Json.Int k.after_frames);
            ]
        | None -> Obs.Json.Null );
      ( "nodes",
        Obs.Json.List
          (List.map
             (fun (node, s) ->
               Obs.Json.Obj
                 [ ("node", Obs.Json.Int node); ("stats", Stats.to_json s) ])
             r.stats) );
      ("total", Stats.to_json r.total);
      ("judged", Obs.Json.Int r.judged);
      ( "failures",
        Obs.Json.List
          (List.map
             (fun iv ->
               Obs.Json.Obj
                 [
                   ("instance", Obs.Json.Int iv.instance);
                   ("judge", Live.Judge.to_json iv.transcript iv.verdict);
                 ])
             r.failures) );
      ("ok", Obs.Json.Bool r.ok);
    ]

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "serve: n=%d t=%d instances=%d%a@," r.n r.t r.instances
    (fun ppf -> function
      | Some k ->
        Format.fprintf ppf " kill=p%d@@frame=%d" k.node k.after_frames
      | None -> ())
    r.kill;
  Format.fprintf ppf "  completed %d / %d (%d undecided) in %.3fs — %.0f \
                      decisions/sec@,"
    r.completed r.instances r.undecided r.elapsed r.decisions_per_sec;
  (match r.latency with
  | Some l ->
    Format.fprintf ppf
      "  decision latency p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms@,"
      (1000.0 *. l.p50) (1000.0 *. l.p90) (1000.0 *. l.p99) (1000.0 *. l.max)
  | None -> ());
  List.iter
    (fun (node, s) -> Format.fprintf ppf "  p%d: %a@," node Stats.pp s)
    r.stats;
  Format.fprintf ppf "  total: %d frames in %d writes (batch factor %.1f)@,"
    r.total.Stats.frames_out r.total.Stats.write_calls
    (if r.total.Stats.write_calls > 0 then
       float_of_int r.total.Stats.frames_out
       /. float_of_int r.total.Stats.write_calls
     else 0.0);
  Format.fprintf ppf "  judged %d instances: %d failures@," r.judged
    (List.length r.failures);
  List.iter
    (fun iv ->
      Format.fprintf ppf "  instance %d FAILED:@,    @[<v>%a@]@," iv.instance
        Live.Judge.pp iv.verdict)
    r.failures;
  Format.fprintf ppf "verdict: %s@]" (if r.ok then "PASS" else "FAIL")
