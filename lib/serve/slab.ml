type 'a slot = { mutable id : int; value : 'a }

type 'a t = {
  mutable slots : 'a slot option array;
  mutable free : int list;
  mutable next : int;  (* high-water mark: slots ever allocated *)
  index : (int, int) Hashtbl.t;  (* instance id -> slot position *)
  mutable reused : int;
}

let create ?(initial = 64) () =
  {
    slots = Array.make (max 1 initial) None;
    free = [];
    next = 0;
    index = Hashtbl.create 64;
    reused = 0;
  }

let capacity t = t.next
let active t = Hashtbl.length t.index
let reused t = t.reused

let find t ~instance =
  match Hashtbl.find_opt t.index instance with
  | None -> None
  | Some i -> ( match t.slots.(i) with Some s -> Some s.value | None -> None)

let acquire t ~instance ~create:mk ~recycle =
  if Hashtbl.mem t.index instance then
    invalid_arg "Slab.acquire: instance already active";
  match t.free with
  | i :: rest ->
    t.free <- rest;
    let s = match t.slots.(i) with Some s -> s | None -> assert false in
    s.id <- instance;
    recycle s.value;
    t.reused <- t.reused + 1;
    Hashtbl.replace t.index instance i;
    s.value
  | [] ->
    if t.next = Array.length t.slots then begin
      let fresh = Array.make (2 * Array.length t.slots) None in
      Array.blit t.slots 0 fresh 0 t.next;
      t.slots <- fresh
    end;
    let v = mk () in
    t.slots.(t.next) <- Some { id = instance; value = v };
    Hashtbl.replace t.index instance t.next;
    t.next <- t.next + 1;
    v

let release t ~instance =
  match Hashtbl.find_opt t.index instance with
  | None -> ()
  | Some i ->
    Hashtbl.remove t.index instance;
    (match t.slots.(i) with Some s -> s.id <- -1 | None -> ());
    t.free <- i :: t.free

let iter t f =
  for i = 0 to t.next - 1 do
    match t.slots.(i) with
    | Some s when s.id >= 0 -> f s.id s.value
    | Some _ | None -> ()
  done
