type config = {
  me : int;
  n : int;
  t : int;
  transport : [ `Unix of string | `Tcp of int ];
  big_d : float;
  max_rounds : int;
  batch : bool;
  kill_after : int option;
  linger : bool;
  status : out_channel;
  log : out_channel;
}

let handshake_timeout = 10.0
let send_timeout = 2.0

module Make (A : Binding.ALGO) = struct
  module M = Mux.Make (A)

  type peer = {
    pid : int;
    mutable fd : Unix.file_descr option;
    decoder : Live.Frame.decoder;
  }

  type client = {
    cfd : Unix.file_descr;
    cdec : Live.Frame.decoder;
    mutable alive : bool;
  }

  let logf cfg fmt =
    Printf.ksprintf
      (fun s ->
        Printf.fprintf cfg.log "[%.6f p%d] %s\n" (Live.Sockets.now ()) cfg.me s;
        flush cfg.log)
      fmt

  let status_event cfg fields =
    output_string cfg.status (Obs.Json.to_string (Obs.Json.Obj fields));
    output_char cfg.status '\n';
    flush cfg.status

  let mark_dead cfg peer why =
    match peer.fd with
    | None -> ()
    | Some fd ->
      logf cfg "peer p%d gone: %s" peer.pid why;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      peer.fd <- None

  let hello_size =
    String.length (Live.Frame.encode (Live.Frame.Hello { node = 1 }))

  let read_exact ~deadline fd n =
    let buf = Bytes.create n in
    let rec go off =
      if off >= n then Ok (Bytes.to_string buf)
      else
        let dt = deadline -. Live.Sockets.now () in
        if dt <= 0.0 then Error "handshake: timed out"
        else
          match Unix.select [ fd ] [] [] dt with
          | [], _, _ -> go off
          | _ :: _, _, _ -> (
            match Unix.read fd buf off (n - off) with
            | 0 -> Error "handshake: peer closed"
            | k -> go (off + k)
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              go off)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let hello_of bytes =
    let d = Live.Frame.decoder () in
    Live.Frame.feed_string d bytes;
    match Live.Frame.pop d with
    | `Frame (Live.Frame.Hello { node }) -> Ok node
    | `Frame f -> Error (Format.asprintf "handshake: unexpected %a" Live.Frame.pp f)
    | `Corrupt why -> Error ("handshake: " ^ why)
    | `Need_more -> Error "handshake: short hello"

  (* The mesh handshake, with one serve-specific twist: the listen fd stays
     open for the engine's whole life (clients rendezvous on the same
     address), and a Hello carrying node 0 — a client racing the mesh — is
     accepted into the client list instead of failing the handshake. *)
  let establish cfg peers clients =
    let deadline = Live.Sockets.now () +. handshake_timeout in
    let lfd =
      match
        Live.Sockets.listen
          (Live.Sockets.addr_of ~transport:cfg.transport cfg.me)
      with
      | Ok fd -> fd
      | Error e -> failwith ("listen: " ^ Live.Sockets.error_to_string e)
    in
    let hello = Live.Frame.encode (Live.Frame.Hello { node = cfg.me }) in
    for p = cfg.me + 1 to cfg.n do
      match
        Live.Sockets.connect_retry ~deadline
          (Live.Sockets.addr_of ~transport:cfg.transport p)
      with
      | Error e ->
        failwith
          (Printf.sprintf "connect to p%d: %s" p (Live.Sockets.error_to_string e))
      | Ok fd -> (
        match Live.Sockets.write_all ~deadline fd hello with
        | Ok () ->
          peers.(p - 1).fd <- Some fd;
          logf cfg "dialed p%d" p
        | Error e ->
          failwith
            (Printf.sprintf "hello to p%d: %s" p (Live.Sockets.error_to_string e)))
    done;
    let expected = ref (cfg.me - 1) in
    while !expected > 0 do
      match Live.Sockets.accept_timeout ~deadline lfd with
      | Error e -> failwith (Live.Sockets.error_to_string e)
      | Ok fd -> (
        match read_exact ~deadline fd hello_size with
        | Error why -> failwith why
        | Ok bytes -> (
          match hello_of bytes with
          | Error why -> failwith why
          | Ok 0 ->
            Unix.set_nonblock fd;
            clients :=
              { cfd = fd; cdec = Live.Frame.decoder (); alive = true }
              :: !clients;
            logf cfg "client connected during handshake"
          | Ok node when node >= 1 && node < cfg.me ->
            if peers.(node - 1).fd <> None then
              failwith (Printf.sprintf "handshake: duplicate hello from p%d" node);
            peers.(node - 1).fd <- Some fd;
            decr expected;
            logf cfg "accepted p%d" node
          | Ok node -> failwith (Printf.sprintf "handshake: bad hello node %d" node)))
    done;
    lfd

  let halt_forever () =
    Unix.kill (Unix.getpid ()) Sys.sigstop;
    let rec forever () =
      ignore (Unix.sleep 3600);
      forever ()
    in
    forever ()

  let stats_json mux =
    let s = M.stats mux in
    s.Stats.slab_capacity <- M.slab_capacity mux;
    s.Stats.slab_reused <- M.slab_reused mux;
    Stats.to_json s

  let main cfg =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let peers =
      Array.init cfg.n (fun i ->
          { pid = i + 1; fd = None; decoder = Live.Frame.decoder () })
    in
    let clients = ref [] in
    let had_client = ref (!clients <> []) in
    let lfd = establish cfg peers clients in
    if !clients <> [] then had_client := true;
    Array.iter
      (fun p ->
        if p.pid <> cfg.me then
          match p.fd with Some fd -> Unix.set_nonblock fd | None -> ())
      peers;
    (* Mesh frames coalesce per peer; the Batch send closure is the only
       place engine bytes hit a socket.  Destination 0 broadcasts to every
       connected client — the fleet runs one, but nothing relies on that. *)
    let send_to_client c wire =
      if c.alive then
        match
          Live.Sockets.write_all
            ~deadline:(Live.Sockets.now () +. send_timeout)
            c.cfd wire
        with
        | Ok () -> ()
        | Error e ->
          logf cfg "client gone: %s" (Live.Sockets.error_to_string e);
          (try Unix.close c.cfd with Unix.Unix_error _ -> ());
          c.alive <- false
    in
    let send dest wire =
      if dest = 0 then List.iter (fun c -> send_to_client c wire) !clients
      else
        let peer = peers.(dest - 1) in
        match peer.fd with
        | None -> ()
        | Some fd -> (
          match
            Live.Sockets.write_all
              ~deadline:(Live.Sockets.now () +. send_timeout)
              fd wire
          with
          | Ok () -> ()
          | Error e -> mark_dead cfg peer (Live.Sockets.error_to_string e))
    in
    let batch_cell : Batch.t option ref = ref None in
    let mux =
      M.create
        {
          Mux.me = cfg.me;
          n = cfg.n;
          t = cfg.t;
          big_d = cfg.big_d;
          max_rounds = cfg.max_rounds;
          kill_after = cfg.kill_after;
        }
        ~emit:(fun ~dest frame ->
          match !batch_cell with
          | Some b -> Batch.add b ~dest (Live.Frame.encode frame)
          | None -> assert false)
    in
    let batch =
      Batch.create ~n:cfg.n ~batch:cfg.batch ~stats:(M.stats mux) ~send
    in
    batch_cell := Some batch;
    status_event cfg
      [ ("event", Obs.Json.String "ready"); ("node", Obs.Json.Int cfg.me) ];
    logf cfg "mesh up; serving";
    let buf = Bytes.create 65536 in
    let drain_peer peer =
      let rec go () =
        if not (M.halted mux) then
          match Live.Frame.pop_view peer.decoder with
          | `View v ->
            M.on_view mux ~now:(Live.Sockets.now ()) ~from:peer.pid v;
            go ()
          | `Need_more -> ()
          | `Corrupt why -> mark_dead cfg peer ("corrupt stream: " ^ why)
      in
      go ()
    in
    let drain_client c =
      let rec go () =
        if c.alive && not (M.halted mux) then
          match Live.Frame.pop_view c.cdec with
          | `View v ->
            (match v.Live.Frame.kind with
            | Live.Frame.K_submit ->
              M.submit mux ~now:(Live.Sockets.now ())
                ~instance:v.Live.Frame.instance ~proposal:v.Live.Frame.value
            | _ -> ());
            go ()
          | `Need_more -> ()
          | `Corrupt why ->
            logf cfg "client stream corrupt: %s" why;
            (try Unix.close c.cfd with Unix.Unix_error _ -> ());
            c.alive <- false
      in
      go ()
    in
    let read_into feed_target close_action fd =
      match Live.Sockets.read_chunk fd buf with
      | `Data k ->
        feed_target (Bytes.unsafe_to_string buf) k;
        true
      | `Closed ->
        close_action ();
        false
      | `Nothing -> true
    in
    let accept_pending () =
      match Unix.accept lfd with
      | fd, _ -> (
        Unix.set_close_on_exec fd;
        match read_exact ~deadline:(Live.Sockets.now () +. 2.0) fd hello_size with
        | Error why ->
          logf cfg "late connection dropped: %s" why;
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | Ok bytes -> (
          match hello_of bytes with
          | Ok 0 ->
            Unix.set_nonblock fd;
            clients :=
              { cfd = fd; cdec = Live.Frame.decoder (); alive = true }
              :: !clients;
            had_client := true;
            logf cfg "client connected"
          | Ok node ->
            logf cfg "unexpected mesh hello from p%d after startup; dropped" node;
            (try Unix.close fd with Unix.Unix_error _ -> ())
          | Error why ->
            logf cfg "bad late hello: %s" why;
            (try Unix.close fd with Unix.Unix_error _ -> ())))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
    in
    let running = ref true in
    while !running do
      let now0 = Live.Sockets.now () in
      let timeout =
        match M.next_deadline mux with
        | Some dl -> Float.max 0.0 (Float.min 0.25 (dl -. now0))
        | None -> 0.25
      in
      let peer_fds =
        Array.to_list peers
        |> List.filter_map (fun p -> if p.pid = cfg.me then None else p.fd)
      in
      let client_fds = List.filter_map (fun c -> if c.alive then Some c.cfd else None) !clients in
      (match Unix.select ((lfd :: peer_fds) @ client_fds) [] [] timeout with
      | ready, _, _ ->
        if List.memq lfd ready then accept_pending ();
        Array.iter
          (fun peer ->
            match peer.fd with
            | Some fd when peer.pid <> cfg.me && List.memq fd ready ->
              ignore
                (read_into
                   (fun s k ->
                     Live.Frame.feed peer.decoder s ~pos:0 ~len:k;
                     drain_peer peer)
                   (fun () -> mark_dead cfg peer "eof")
                   fd)
            | _ -> ())
          peers;
        List.iter
          (fun c ->
            if c.alive && List.memq c.cfd ready then
              ignore
                (read_into
                   (fun s k ->
                     Live.Frame.feed c.cdec s ~pos:0 ~len:k;
                     drain_client c)
                   (fun () ->
                     logf cfg "client disconnected";
                     (try Unix.close c.cfd with Unix.Unix_error _ -> ());
                     c.alive <- false)
                   c.cfd))
          !clients
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      clients := List.filter (fun c -> c.alive) !clients;
      M.expire mux ~now:(Live.Sockets.now ());
      (* Deliver everything this iteration produced — including, on a halt,
         the pre-crash prefix the budget allowed (the kernel would have
         flushed those buffers; the mux already stopped counting). *)
      Batch.flush batch;
      if M.halted mux then begin
        logf cfg "kill budget exhausted after %d mesh writes; stopping"
          (M.mesh_writes mux);
        status_event cfg
          [
            ("event", Obs.Json.String "halted");
            ("node", Obs.Json.Int cfg.me);
            ( "realized",
              Obs.Json.List (List.map Mux.realized_to_json (M.realized mux)) );
            ("stats", stats_json mux);
          ];
        halt_forever ()
      end
      else if
        (not cfg.linger) && !had_client && !clients = [] && M.active mux = 0
      then begin
        logf cfg "last client gone and no instance active; exiting";
        status_event cfg
          [
            ("event", Obs.Json.String "stats");
            ("node", Obs.Json.Int cfg.me);
            ("stats", stats_json mux);
          ];
        running := false
      end
    done;
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    Array.iter (fun p -> mark_dead cfg p "shutdown") peers
end

module Rwwc = Make (Binding.Rwwc)
