type config = {
  me : int;
  n : int;
  t : int;
  transport : [ `Unix of string | `Tcp of int ];
  big_d : float;
  max_rounds : int;
  batch : bool;
  backend : Evloop.backend;
  kill_after : int option;
  linger : bool;
  wal_dir : string option;
  rejoin : bool;
  dial : (int -> Unix.sockaddr) option;
  status : out_channel;
  log : out_channel;
}

let handshake_timeout = 10.0

(* A rejoining engine gives each peer this long to come up; a peer that is
   itself dead (or also mid-respawn) just stays disconnected — it will dial
   us when it recovers. *)
let rejoin_dial_timeout = 2.0

(* Fallback for the catch-up gate: if a dialed peer never sends its
   end-of-batch marker (killed mid-push), the rejoining engine starts
   serving clients anyway after this long. *)
let catchup_timeout = 5.0

(* A freshly accepted connection has this long to say Hello before the
   loop drops it — a slow-loris fd costs a map entry, never a stall. *)
let hello_deadline = 2.0

(* Outbound backlog (bytes) past which a never-draining destination is
   declared dead instead of holding memory forever.  Peers get more room
   than clients: a peer backlog means the mesh itself is sick. *)
let peer_hwm = 8 * 1024 * 1024
let client_hwm = 1024 * 1024

(* Frames decoded per client per wakeup before the loop moves to the next
   client — with the round-robin rotation below, a chatty client cannot
   starve another client's Submits. *)
let client_frame_budget = 1024

module Make (A : Binding.ALGO) = struct
  module M = Mux.Make (A)

  type peer = {
    pid : int;
    mutable fd : Unix.file_descr option;
    mutable decoder : Live.Frame.decoder;
        (* replaced wholesale when a restarted peer re-handshakes: the new
           connection is a fresh byte stream *)
    outq : Outq.t;
  }

  type client = {
    id : int;
    cfd : Unix.file_descr;
    cdec : Live.Frame.decoder;
    coutq : Outq.t;
    mutable alive : bool;
    mutable backlog : bool;  (* decoded frames left over from a budget cut *)
  }

  type pending = {
    pfd : Unix.file_descr;
    pbuf : Bytes.t;
    mutable got : int;
    pdeadline : float;
  }

  type kind = K_listen | K_peer of peer | K_client of client | K_pending of pending

  let logf cfg fmt =
    Printf.ksprintf
      (fun s ->
        Printf.fprintf cfg.log "[%.6f p%d] %s\n" (Live.Sockets.now ()) cfg.me s;
        flush cfg.log)
      fmt

  let status_event cfg fields =
    output_string cfg.status (Obs.Json.to_string (Obs.Json.Obj fields));
    output_char cfg.status '\n';
    flush cfg.status

  let hello_size =
    String.length (Live.Frame.encode (Live.Frame.Hello { node = 1 }))

  let read_exact ~deadline fd n =
    let buf = Bytes.create n in
    let rec go off =
      if off >= n then Ok (Bytes.to_string buf)
      else
        let dt = deadline -. Live.Sockets.now () in
        if dt <= 0.0 then Error "handshake: timed out"
        else
          match Unix.select [ fd ] [] [] dt with
          | [], _, _ -> go off
          | _ :: _, _, _ -> (
            match Unix.read fd buf off (n - off) with
            | 0 -> Error "handshake: peer closed"
            | k -> go (off + k)
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              go off)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let hello_of bytes =
    let d = Live.Frame.decoder () in
    Live.Frame.feed_string d bytes;
    match Live.Frame.pop d with
    | `Frame (Live.Frame.Hello { node }) -> Ok node
    | `Frame f -> Error (Format.asprintf "handshake: unexpected %a" Live.Frame.pp f)
    | `Corrupt why -> Error ("handshake: " ^ why)
    | `Need_more -> Error "handshake: short hello"

  (* One loop's worth of mutable wiring: the registry maps each live fd to
     what it is, and the client list is what the round-robin rotates over. *)
  type loop = {
    cfg : config;
    ev : Evloop.t;
    registry : (Unix.file_descr, kind) Hashtbl.t;
    peers : peer array;
    mutable clients : client list;
    mutable pendings : pending list;
    mutable next_client_id : int;
    mutable rr : int;  (* rotation cursor for fair client draining *)
    mutable had_client : bool;
  }

  let new_client lp fd =
    let c =
      {
        id = lp.next_client_id;
        cfd = fd;
        cdec = Live.Frame.decoder ();
        coutq = Outq.create ~hwm:client_hwm ();
        alive = true;
        backlog = false;
      }
    in
    lp.next_client_id <- lp.next_client_id + 1;
    lp.clients <- lp.clients @ [ c ];
    lp.had_client <- true;
    Hashtbl.replace lp.registry fd (K_client c);
    Evloop.register lp.ev fd ~read:true ~write:false;
    c

  let drop_fd lp fd =
    Evloop.deregister lp.ev fd;
    Hashtbl.remove lp.registry fd;
    try Unix.close fd with Unix.Unix_error _ -> ()

  let mark_dead lp peer why =
    match peer.fd with
    | None -> ()
    | Some fd ->
      logf lp.cfg "peer p%d gone: %s" peer.pid why;
      Outq.clear peer.outq;
      drop_fd lp fd;
      peer.fd <- None

  let client_dead lp c why =
    if c.alive then begin
      logf lp.cfg "client #%d gone: %s" c.id why;
      Outq.clear c.coutq;
      drop_fd lp c.cfd;
      c.alive <- false;
      c.backlog <- false
    end

  let drop_pending lp p why =
    logf lp.cfg "late connection dropped: %s" why;
    lp.pendings <- List.filter (fun q -> q != p) lp.pendings;
    drop_fd lp p.pfd

  let dial_addr cfg p =
    match cfg.dial with
    | Some f -> f p
    | None -> Live.Sockets.addr_of ~transport:cfg.transport p

  (* The mesh handshake, with one serve-specific twist: the listen fd stays
     open for the engine's whole life (clients rendezvous on the same
     address), and a Hello carrying node 0 — a client racing the mesh — is
     accepted into the client list instead of failing the handshake.

     A rejoining engine (restart after a crash) instead dials {e every}
     peer — the static dial-up/accept-down orientation only holds at fleet
     birth — with a bounded per-peer timeout, tolerating peers that are
     themselves down, and expects no accepts: its peers will push their
     decision logs as Catchup batches on the new connections.  Returns the
     listen fd and the number of peers reached (the number of catch-up
     end markers to wait for). *)
  let establish lp =
    let cfg = lp.cfg in
    let jitter =
      Some (Prng.Rng.of_int ((cfg.me * 7919) lxor Unix.getpid ()))
    in
    let lfd =
      match
        Live.Sockets.listen ~backlog:128
          (Live.Sockets.addr_of ~transport:cfg.transport cfg.me)
      with
      | Ok fd -> fd
      | Error e -> failwith ("listen: " ^ Live.Sockets.error_to_string e)
    in
    let hello = Live.Frame.encode (Live.Frame.Hello { node = cfg.me }) in
    if cfg.rejoin then begin
      let dialed = ref 0 in
      for p = 1 to cfg.n do
        if p <> cfg.me then begin
          let deadline = Live.Sockets.now () +. rejoin_dial_timeout in
          match Live.Sockets.connect_retry ?jitter ~deadline (dial_addr cfg p) with
          | Error e ->
            logf cfg "rejoin: p%d unreachable (%s)" p
              (Live.Sockets.error_to_string e)
          | Ok fd -> (
            match Live.Sockets.write_all ~deadline fd hello with
            | Ok () ->
              lp.peers.(p - 1).fd <- Some fd;
              incr dialed;
              logf cfg "rejoin: dialed p%d" p
            | Error e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              logf cfg "rejoin: hello to p%d failed (%s)" p
                (Live.Sockets.error_to_string e))
        end
      done;
      (lfd, !dialed)
    end
    else begin
      let deadline = Live.Sockets.now () +. handshake_timeout in
      for p = cfg.me + 1 to cfg.n do
        match Live.Sockets.connect_retry ?jitter ~deadline (dial_addr cfg p) with
        | Error e ->
          failwith
            (Printf.sprintf "connect to p%d: %s" p (Live.Sockets.error_to_string e))
        | Ok fd -> (
          match Live.Sockets.write_all ~deadline fd hello with
          | Ok () ->
            lp.peers.(p - 1).fd <- Some fd;
            logf cfg "dialed p%d" p
          | Error e ->
            failwith
              (Printf.sprintf "hello to p%d: %s" p (Live.Sockets.error_to_string e)))
      done;
      let expected = ref (cfg.me - 1) in
      while !expected > 0 do
        match Live.Sockets.accept_timeout ~deadline lfd with
        | Error e -> failwith (Live.Sockets.error_to_string e)
        | Ok fd -> (
          match read_exact ~deadline fd hello_size with
          | Error why -> failwith why
          | Ok bytes -> (
            match hello_of bytes with
            | Error why -> failwith why
            | Ok 0 ->
              Unix.set_nonblock fd;
              ignore (new_client lp fd);
              logf cfg "client connected during handshake"
            | Ok node when node >= 1 && node < cfg.me ->
              if lp.peers.(node - 1).fd <> None then
                failwith (Printf.sprintf "handshake: duplicate hello from p%d" node);
              lp.peers.(node - 1).fd <- Some fd;
              decr expected;
              logf cfg "accepted p%d" node
            | Ok node -> failwith (Printf.sprintf "handshake: bad hello node %d" node)))
      done;
      (lfd, 0)
    end

  let halt_forever () =
    Unix.kill (Unix.getpid ()) Sys.sigstop;
    let rec forever () =
      ignore (Unix.sleep 3600);
      forever ()
    in
    forever ()

  let stats_json mux =
    let s = M.stats mux in
    s.Stats.slab_capacity <- M.slab_capacity mux;
    s.Stats.slab_reused <- M.slab_reused mux;
    Stats.to_json s

  let main cfg =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (* Recover the durable decision log before touching the network: a
       rejected WAL (torn header, foreign node, unknown version) degrades
       to a clean fresh join — delete and re-create — never to replaying
       suspect decisions. *)
    let wal, recovered =
      match cfg.wal_dir with
      | None -> (None, [])
      | Some dir -> (
        let path = Wal.path ~dir ~node:cfg.me in
        match Wal.recover ~path ~node:cfg.me with
        | Ok (w, r) ->
          if r.Wal.discarded > 0 then
            logf cfg "wal: rejected %d torn/corrupt trailing bytes"
              r.Wal.discarded;
          (Some w, r.Wal.entries)
        | Error why ->
          logf cfg "wal rejected (%s); degrading to a fresh join" why;
          (try Sys.remove path with Sys_error _ -> ());
          (match Wal.recover ~path ~node:cfg.me with
          | Ok (w, r) -> (Some w, r.Wal.entries)
          | Error why -> failwith ("wal: " ^ why)))
    in
    let lp =
      {
        cfg;
        ev = Evloop.create ~backend:cfg.backend ();
        registry = Hashtbl.create 64;
        peers =
          Array.init cfg.n (fun i ->
              {
                pid = i + 1;
                fd = None;
                decoder = Live.Frame.decoder ();
                outq = Outq.create ~hwm:peer_hwm ();
              });
        clients = [];
        pendings = [];
        next_client_id = 0;
        rr = 0;
        had_client = false;
      }
    in
    let lfd, rejoin_dialed = establish lp in
    Unix.set_nonblock lfd;
    Hashtbl.replace lp.registry lfd K_listen;
    Evloop.register lp.ev lfd ~read:true ~write:false;
    Array.iter
      (fun p ->
        if p.pid <> cfg.me then
          match p.fd with
          | Some fd ->
            Unix.set_nonblock fd;
            Hashtbl.replace lp.registry fd (K_peer p);
            Evloop.register lp.ev fd ~read:true ~write:false
          | None -> ())
      lp.peers;
    let batch_cell : Batch.t option ref = ref None in
    let the_batch () =
      match !batch_cell with Some b -> b | None -> assert false
    in
    (* Mesh frames coalesce per peer; this send closure only *enqueues* —
       bytes hit a socket exclusively in [pump], when the fd is writable.
       Destination 0 broadcasts to every connected client through one
       refcounted chunk; the buffer returns to the batch pool when the
       last client drains it. *)
    let send ~dest bytes ~len =
      let recycle b = Batch.put_back (the_batch ()) b in
      if dest = 0 then begin
        let live = List.filter (fun c -> c.alive) lp.clients in
        match live with
        | [] -> `Done  (* nobody listening: drop, reuse the buffer *)
        | _ ->
          let chunk =
            Outq.chunk ~shares:(List.length live) ~recycle bytes ~len
          in
          List.iter (fun c -> Outq.push c.coutq chunk) live;
          `Taken
      end
      else
        let peer = lp.peers.(dest - 1) in
        match peer.fd with
        | None -> `Done  (* dead peer: drop *)
        | Some _ ->
          Outq.push peer.outq (Outq.chunk ~recycle bytes ~len);
          `Taken
    in
    let mux =
      M.create
        {
          Mux.me = cfg.me;
          n = cfg.n;
          t = cfg.t;
          big_d = cfg.big_d;
          max_rounds = cfg.max_rounds;
          kill_after = cfg.kill_after;
        }
        ?persist:
          (Option.map
             (fun w ~instance ~value ~round ->
               Wal.append w ~instance ~value ~round)
             wal)
        ~emit:(fun ~dest frame ->
          Batch.add (the_batch ()) ~dest (Live.Frame.encode frame))
        ()
    in
    List.iter
      (fun e ->
        M.seed_decision mux ~instance:e.Wal.instance ~value:e.Wal.value
          ~round:e.Wal.round)
      recovered;
    if recovered <> [] then
      logf cfg "wal: replayed %d decisions" (List.length recovered);
    let batch =
      Batch.create ~n:cfg.n ~batch:cfg.batch ~stats:(M.stats mux) ~send
    in
    batch_cell := Some batch;
    let stats = M.stats mux in
    (* Rejoin catch-up gate: until every reached peer has pushed its
       decision-log batch (or the fallback deadline passes), client
       Submits stay unread — re-running an instance the mesh already
       decided, alone and from round 1, could converge on a different
       value.  Mesh traffic flows normally throughout. *)
    let catchup_expect = ref rejoin_dialed in
    let catchup_got = ref 0 in
    let catchup_deadline = Live.Sockets.now () +. catchup_timeout in
    let caught_up = ref (not cfg.rejoin || rejoin_dialed = 0) in
    let check_caught_up () =
      if not !caught_up then
        if !catchup_got >= !catchup_expect then begin
          caught_up := true;
          logf cfg "caught up: %d peer batches, %d decisions adopted"
            !catchup_got stats.Stats.catchup_in
        end
        else if Live.Sockets.now () > catchup_deadline then begin
          caught_up := true;
          logf cfg "catch-up timed out (%d of %d batches); serving anyway"
            !catchup_got !catchup_expect
        end
    in
    (* Peers that recently rejoined keep receiving every new decision as a
       Catchup mirror until the instances that straddled their outage have
       drained — one full horizon plus slack. *)
    let mirror_window =
      (float_of_int (cfg.max_rounds + 2) *. cfg.big_d) +. 1.0
    in
    let mirror_until = Array.make cfg.n 0.0 in
    let mirror_refresh () =
      let now = Live.Sockets.now () in
      let live = ref [] in
      for p = cfg.n downto 1 do
        if p <> cfg.me && mirror_until.(p - 1) > now then live := p :: !live
      done;
      M.set_mirror mux !live
    in
    (* Drain one destination's queue opportunistically and keep its write
       interest armed exactly while bytes remain. *)
    let pump_peer peer =
      match peer.fd with
      | None -> ()
      | Some fd ->
        if Outq.over_hwm peer.outq then begin
          stats.Stats.overflow_kills <- stats.Stats.overflow_kills + 1;
          mark_dead lp peer
            (Printf.sprintf "outbound backlog over %d bytes" peer_hwm)
        end
        else (
          match Outq.drain peer.outq ~stats fd with
          | `Empty -> Evloop.register lp.ev fd ~read:true ~write:false
          | `Blocked -> Evloop.register lp.ev fd ~read:true ~write:true
          | `Closed why -> mark_dead lp peer why)
    in
    let pump_client c =
      if c.alive then
        if Outq.over_hwm c.coutq then begin
          stats.Stats.overflow_kills <- stats.Stats.overflow_kills + 1;
          client_dead lp c
            (Printf.sprintf "outbound backlog over %d bytes (never reads?)"
               client_hwm)
        end
        else
          match Outq.drain c.coutq ~stats c.cfd with
          | `Empty -> Evloop.register lp.ev c.cfd ~read:true ~write:false
          | `Blocked -> Evloop.register lp.ev c.cfd ~read:true ~write:true
          | `Closed why -> client_dead lp c why
    in
    let pump_all () =
      Array.iter
        (fun p -> if p.fd <> None && not (Outq.is_empty p.outq) then pump_peer p)
        lp.peers;
      List.iter
        (fun c -> if c.alive && not (Outq.is_empty c.coutq) then pump_client c)
        lp.clients
    in
    status_event cfg
      [
        ("event", Obs.Json.String "ready");
        ("node", Obs.Json.Int cfg.me);
        ("recovered", Obs.Json.Int (List.length recovered));
      ];
    logf cfg "mesh up; serving (%s backend)" (Evloop.backend_to_string cfg.backend);
    let buf = Bytes.create 65536 in
    let drain_peer peer =
      let rec go () =
        if not (M.halted mux) then
          match Live.Frame.pop_view peer.decoder with
          | `View v ->
            (* A Catchup with round 0 is a peer's end-of-batch marker for
               the rejoin gate, not a decision. *)
            if
              v.Live.Frame.kind = Live.Frame.K_catchup
              && v.Live.Frame.round = 0
            then begin
              incr catchup_got;
              logf lp.cfg "catch-up batch from p%d: %d decisions" peer.pid
                v.Live.Frame.value;
              check_caught_up ()
            end
            else M.on_view mux ~now:(Live.Sockets.now ()) ~from:peer.pid v;
            go ()
          | `Need_more -> ()
          | `Corrupt why -> mark_dead lp peer ("corrupt stream: " ^ why)
      in
      go ()
    in
    let read_peer peer =
      match peer.fd with
      | None -> ()
      | Some fd -> (
        match Live.Sockets.read_chunk fd buf with
        | `Data k ->
          Live.Frame.feed peer.decoder (Bytes.unsafe_to_string buf) ~pos:0 ~len:k;
          drain_peer peer
        | `Closed -> mark_dead lp peer "eof"
        | `Nothing -> ())
    in
    (* Decode at most [client_frame_budget] frames, then yield: leftover
       frames stay buffered and flag [backlog] so the next iteration (at
       timeout 0) resumes — after every other client had its turn. *)
    let drain_client c =
      let budget = ref client_frame_budget in
      let rec go () =
        if c.alive && not (M.halted mux) then
          if !budget = 0 then c.backlog <- true
          else
            match Live.Frame.pop_view c.cdec with
            | `View v ->
              decr budget;
              (match v.Live.Frame.kind with
              | Live.Frame.K_submit ->
                M.submit mux ~now:(Live.Sockets.now ())
                  ~instance:v.Live.Frame.instance ~proposal:v.Live.Frame.value
              | _ -> ());
              go ()
            | `Need_more -> c.backlog <- false
            | `Corrupt why -> client_dead lp c ("corrupt stream: " ^ why)
      in
      go ()
    in
    let read_client c =
      if c.alive then
        match Live.Sockets.read_chunk c.cfd buf with
        | `Data k ->
          Live.Frame.feed c.cdec (Bytes.unsafe_to_string buf) ~pos:0 ~len:k
        | `Closed -> client_dead lp c "disconnected"
        | `Nothing -> ()
    in
    let accept_drain () =
      let continue = ref true in
      while !continue do
        match Live.Sockets.accept_nonblock lfd with
        | `Conn fd ->
          let p =
            {
              pfd = fd;
              pbuf = Bytes.create hello_size;
              got = 0;
              pdeadline = Live.Sockets.now () +. hello_deadline;
            }
          in
          lp.pendings <- p :: lp.pendings;
          Hashtbl.replace lp.registry fd (K_pending p);
          Evloop.register lp.ev fd ~read:true ~write:false
        | `Nothing -> continue := false
        | `Error e ->
          logf cfg "accept: %s" (Live.Sockets.error_to_string e);
          continue := false
      done
    in
    let pending_read p =
      match Unix.read p.pfd p.pbuf p.got (hello_size - p.got) with
      | 0 -> drop_pending lp p "closed before hello"
      | k ->
        p.got <- p.got + k;
        if p.got >= hello_size then begin
          lp.pendings <- List.filter (fun q -> q != p) lp.pendings;
          match hello_of (Bytes.to_string p.pbuf) with
          | Ok 0 ->
            Hashtbl.remove lp.registry p.pfd;
            Evloop.deregister lp.ev p.pfd;
            ignore (new_client lp p.pfd);
            logf cfg "client connected"
          | Ok node when node >= 1 && node <= cfg.n && node <> cfg.me ->
            (* A restarted peer re-handshaking into the mesh.  Reattach it
               on the fresh connection (the old one, if still registered,
               is from its previous life), then replay the whole decision
               log as a Catchup batch — FIFO on the new link, so the
               batch and its end marker arrive before any round traffic
               we send the peer afterwards — and mirror new decisions to
               it for a full horizon. *)
            let peer = lp.peers.(node - 1) in
            mark_dead lp peer "replaced by rejoin";
            Hashtbl.remove lp.registry p.pfd;
            Evloop.deregister lp.ev p.pfd;
            peer.fd <- Some p.pfd;
            peer.decoder <- Live.Frame.decoder ();
            Hashtbl.replace lp.registry p.pfd (K_peer peer);
            Evloop.register lp.ev p.pfd ~read:true ~write:false;
            let count = M.decided_count mux in
            M.iter_decided mux (fun ~instance ~value ~round ->
                stats.Stats.catchup_out <- stats.Stats.catchup_out + 1;
                Batch.add (the_batch ()) ~dest:node
                  (Live.Frame.encode
                     (Live.Frame.Catchup { instance; value; round })));
            Batch.add (the_batch ()) ~dest:node
              (Live.Frame.encode
                 (Live.Frame.Catchup { instance = 0; value = count; round = 0 }));
            mirror_until.(node - 1) <- Live.Sockets.now () +. mirror_window;
            mirror_refresh ();
            logf cfg "p%d rejoined; replaying %d decisions" node count
          | Ok node ->
            logf cfg "unexpected mesh hello from p%d after startup; dropped" node;
            drop_fd lp p.pfd
          | Error why ->
            logf cfg "bad late hello: %s" why;
            drop_fd lp p.pfd
        end
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error (errno, _, _) ->
        drop_pending lp p (Unix.error_message errno)
    in
    let ready_clients : client list ref = ref [] in
    let lfd_ready = ref false in
    let handle fd ~readable ~writable =
      match Hashtbl.find_opt lp.registry fd with
      | None -> ()  (* dropped by an earlier callback this round *)
      | Some K_listen -> if readable then lfd_ready := true
      | Some (K_pending p) -> if readable then pending_read p
      | Some (K_peer peer) ->
        (* Peers are latency-critical (round progress): serve in place. *)
        if writable then pump_peer peer;
        if readable then read_peer peer
      | Some (K_client c) ->
        if writable then pump_client c;
        if readable && not (List.memq c !ready_clients) then
          ready_clients := c :: !ready_clients
    in
    let running = ref true in
    while !running do
      let now0 = Live.Sockets.now () in
      let timeout =
        if List.exists (fun c -> c.alive && c.backlog) lp.clients then 0.0
        else begin
          let dl = ref (now0 +. 0.25) in
          (match M.next_deadline mux with
          | Some d when d < !dl -> dl := d
          | _ -> ());
          List.iter
            (fun p -> if p.pdeadline < !dl then dl := p.pdeadline)
            lp.pendings;
          Float.max 0.0 (!dl -. now0)
        end
      in
      ready_clients := [];
      lfd_ready := false;
      ignore (Evloop.wait lp.ev ~timeout ~handle);
      if !lfd_ready then accept_drain ();
      (* Fair client service: rotate the starting point, read one chunk
         from each client that signalled, then decode under the shared
         budget — backlogged clients rejoin even without new bytes. *)
      check_caught_up ();
      let service =
        if not !caught_up then []
        else
          List.filter
            (fun c -> c.alive && (c.backlog || List.memq c !ready_clients))
            lp.clients
      in
      (match service with
      | [] -> ()
      | _ ->
        let m = List.length service in
        let start = lp.rr mod m in
        lp.rr <- lp.rr + 1;
        let arr = Array.of_list service in
        for k = 0 to m - 1 do
          let c = arr.((start + k) mod m) in
          if c.alive && not (M.halted mux) then begin
            if List.memq c !ready_clients then read_client c;
            drain_client c
          end
        done);
      (* Expired hellos cost their fd, nothing else. *)
      let now1 = Live.Sockets.now () in
      List.iter
        (fun p ->
          if p.pdeadline <= now1 then drop_pending lp p "hello timed out")
        lp.pendings;
      (* Retire mirrors whose horizon has drained. *)
      let nowm = Live.Sockets.now () in
      let mirror_changed = ref false in
      Array.iteri
        (fun i u ->
          if u > 0.0 && u <= nowm then begin
            mirror_until.(i) <- 0.0;
            mirror_changed := true
          end)
        mirror_until;
      if !mirror_changed then mirror_refresh ();
      M.expire mux ~now:(Live.Sockets.now ());
      (* Everything this iteration produced goes to the queues — including,
         on a halt, the pre-crash prefix the budget allowed (the kernel
         would have flushed those buffers; the mux already stopped
         counting) — and the queues drain only as far as the kernel
         accepts without blocking. *)
      Batch.flush batch;
      pump_all ();
      lp.clients <- List.filter (fun c -> c.alive) lp.clients;
      if M.halted mux then begin
        (* Off the steady-state loop now: deliver the allowed prefix with
           a bounded synchronous flush, then stop for the SIGKILL. *)
        let dl = Live.Sockets.now () +. 2.0 in
        Array.iter
          (fun p ->
            match p.fd with
            | Some fd -> Outq.drain_blocking p.outq ~deadline:dl fd
            | None -> ())
          lp.peers;
        List.iter
          (fun c ->
            if c.alive then Outq.drain_blocking c.coutq ~deadline:dl c.cfd)
          lp.clients;
        logf cfg "kill budget exhausted after %d mesh writes; stopping"
          (M.mesh_writes mux);
        status_event cfg
          [
            ("event", Obs.Json.String "halted");
            ("node", Obs.Json.Int cfg.me);
            ( "realized",
              Obs.Json.List (List.map Mux.realized_to_json (M.realized mux)) );
            ("stats", stats_json mux);
          ];
        halt_forever ()
      end
      else if
        (not cfg.linger) && lp.had_client && lp.clients = [] && M.active mux = 0
      then begin
        logf cfg "last client gone and no instance active; exiting";
        status_event cfg
          [
            ("event", Obs.Json.String "stats");
            ("node", Obs.Json.Int cfg.me);
            ("stats", stats_json mux);
          ];
        running := false
      end
    done;
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    Array.iter (fun p -> mark_dead lp p "shutdown") lp.peers;
    Option.iter Wal.close wal
end

module Rwwc = Make (Binding.Rwwc)
