type bucket = {
  since : float;
  count : int;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  duration : float;
  bucket_width : float;
  elapsed : float;
  settled : int;
  disagreements : int;
  undrained : int;
  decisions_per_sec : float;
  kills : int;
  reconnects : int;
  buckets : bucket list;
  ok : bool;
}

type flight = {
  t0 : float;
  mutable miss : int;
  mutable value : int option;
  mutable bad : bool;
}

let drain_grace = 3.0
let reconnect_backoff = 0.1
let reconnect_backoff_max = 1.0

let run ?kill_every cfg ~duration ~bucket =
  if duration <= 0.0 then Error "serve soak: duration must be positive"
  else if bucket <= 0.0 then Error "serve soak: bucket must be positive"
  else if kill_every <> None && not cfg.Fleet.respawn then
    Error "serve soak: --kill-every needs the respawn policy enabled"
  else
    let drive ~on_idle ~kill =
      let nodes_fd = Array.make cfg.Fleet.n None in
      let decoders =
        Array.init cfg.Fleet.n (fun _ -> Live.Frame.decoder ())
      in
      (* Reconnect state mirrors {!Client}: a dead engine is re-dialed
         under jittered backoff, so a respawned node rejoins the
         soak's agreement cross-check instead of shrinking it. *)
      let attempts = Array.make cfg.Fleet.n 0 in
      let next_try = Array.make cfg.Fleet.n infinity in
      let jitter = Prng.Rng.of_int 0x50a1 in
      let reconnects = ref 0 in
      let kills = ref 0 in
      let hello = Live.Frame.encode (Live.Frame.Hello { node = 0 }) in
      let deadline = Live.Sockets.now () +. 10.0 in
      let connect_err = ref None in
      for p = 1 to cfg.Fleet.n do
        if !connect_err = None then
          match
            Live.Sockets.connect_retry ~deadline
              (Live.Sockets.addr_of ~transport:cfg.Fleet.transport p)
          with
          | Error e ->
            connect_err :=
              Some
                (Printf.sprintf "connect to p%d: %s" p
                   (Live.Sockets.error_to_string e))
          | Ok fd -> (
            match Live.Sockets.write_all ~deadline fd hello with
            | Ok () ->
              Unix.set_nonblock fd;
              nodes_fd.(p - 1) <- Some fd
            | Error e ->
              connect_err :=
                Some
                  (Printf.sprintf "hello to p%d: %s" p
                     (Live.Sockets.error_to_string e)))
      done;
      match !connect_err with
      | Some e ->
        Array.iter
          (function
            | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
            | None -> ())
          nodes_fd;
        Error ("serve soak: " ^ e)
      | None ->
        let window = max 1 cfg.Fleet.window in
        let live = ref cfg.Fleet.n in
        let inflight : (int, flight) Hashtbl.t = Hashtbl.create 256 in
        let next_id = ref 0 in
        let settled = ref 0 in
        let disagreements = ref 0 in
        (* settle-time latencies keyed by bucket index *)
        let lat_buckets : (int, float list ref) Hashtbl.t = Hashtbl.create 32 in
        let started = Live.Sockets.now () in
        let soak_end = started +. duration in
        let next_kill =
          ref
            (match kill_every with
            | Some ke -> started +. ke
            | None -> infinity)
        in
        let next_victim = ref 1 in
        let settle id f =
          Hashtbl.remove inflight id;
          incr settled;
          let now = Live.Sockets.now () in
          let idx = int_of_float ((now -. started) /. bucket) in
          let cell =
            match Hashtbl.find_opt lat_buckets idx with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.replace lat_buckets idx r;
              r
          in
          cell := (now -. f.t0) :: !cell
        in
        let submit_burst fresh =
          let per_node = Array.init cfg.Fleet.n (fun _ -> Buffer.create 256) in
          List.iter
            (fun id ->
              Hashtbl.replace inflight id
                { t0 = Live.Sockets.now (); miss = !live; value = None; bad = false };
              for p = 1 to cfg.Fleet.n do
                if nodes_fd.(p - 1) <> None then
                  Buffer.add_string per_node.(p - 1)
                    (Live.Frame.encode
                       (Live.Frame.Submit
                          { instance = id; proposal = cfg.Fleet.proposals id p }))
              done)
            fresh;
          Array.iteri
            (fun i fdo ->
              match fdo with
              | None -> ()
              | Some fd ->
                let wire = Buffer.contents per_node.(i) in
                if wire <> "" then (
                  match
                    Live.Sockets.write_all
                      ~deadline:(Live.Sockets.now () +. 2.0)
                      fd wire
                  with
                  | Ok () -> ()
                  | Error _ -> ()))
            nodes_fd
        in
        let refill () =
          if Live.Sockets.now () < soak_end && !live > 0 then begin
            let fresh = ref [] in
            while Hashtbl.length inflight + List.length !fresh < window do
              fresh := !next_id :: !fresh;
              incr next_id
            done;
            if !fresh <> [] then submit_burst (List.rev !fresh)
          end
        in
        let mark_dead p =
          match nodes_fd.(p - 1) with
          | None -> ()
          | Some fd ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            nodes_fd.(p - 1) <- None;
            decr live;
            if cfg.Fleet.respawn then begin
              attempts.(p - 1) <- 0;
              next_try.(p - 1) <-
                Live.Sockets.now ()
                +. Live.Sockets.retry_wait ~jitter reconnect_backoff
            end;
            let freed = ref [] in
            Hashtbl.iter
              (fun id f ->
                f.miss <- f.miss - 1;
                if f.miss <= 0 then freed := (id, f) :: !freed)
              inflight;
            List.iter (fun (id, f) -> settle id f) !freed
        in
        let try_reconnects () =
          for p = 1 to cfg.Fleet.n do
            if
              nodes_fd.(p - 1) = None
              && Live.Sockets.now () >= next_try.(p - 1)
            then begin
              next_try.(p - 1) <- infinity;
              match
                Live.Sockets.connect_retry
                  ~deadline:(Live.Sockets.now () +. 0.2)
                  (Live.Sockets.addr_of ~transport:cfg.Fleet.transport p)
              with
              | Error _ ->
                attempts.(p - 1) <- attempts.(p - 1) + 1;
                let backoff =
                  Float.min reconnect_backoff_max
                    (reconnect_backoff
                    *. (2.0 ** float_of_int attempts.(p - 1)))
                in
                next_try.(p - 1) <-
                  Live.Sockets.now () +. Live.Sockets.retry_wait ~jitter backoff
              | Ok fd -> (
                match
                  Live.Sockets.write_all
                    ~deadline:(Live.Sockets.now () +. 2.0)
                    fd hello
                with
                | Error _ ->
                  (try Unix.close fd with Unix.Unix_error _ -> ());
                  attempts.(p - 1) <- attempts.(p - 1) + 1;
                  next_try.(p - 1) <-
                    Live.Sockets.now ()
                    +. Live.Sockets.retry_wait ~jitter reconnect_backoff
                | Ok () ->
                  Unix.set_nonblock fd;
                  nodes_fd.(p - 1) <- Some fd;
                  decoders.(p - 1) <- Live.Frame.decoder ();
                  incr reconnects)
            end
          done
        in
        let drain p =
          let dec = decoders.(p - 1) in
          let rec go () =
            match Live.Frame.pop_view dec with
            | `View v ->
              (match v.Live.Frame.kind with
              | Live.Frame.K_decide -> (
                match Hashtbl.find_opt inflight v.Live.Frame.instance with
                | None -> ()
                | Some f ->
                  (match f.value with
                  | None -> f.value <- Some v.Live.Frame.value
                  | Some w ->
                    if w <> v.Live.Frame.value && not f.bad then begin
                      f.bad <- true;
                      incr disagreements
                    end);
                  f.miss <- f.miss - 1;
                  if f.miss <= 0 then settle v.Live.Frame.instance f)
              | _ -> ());
              go ()
            | `Need_more -> ()
            | `Corrupt _ -> mark_dead p
          in
          go ()
        in
        let buf = Bytes.create 65536 in
        refill ();
        let hard_end = soak_end +. drain_grace in
        while
          (Live.Sockets.now () < soak_end
          || (Hashtbl.length inflight > 0 && Live.Sockets.now () < hard_end))
          && (!live > 0
             || Array.exists (fun t -> t < infinity) next_try)
        do
          (* The periodic chaos kill: SIGKILL the next engine round-robin
             and let the fleet's respawn policy bring it back through the
             WAL-replay / catch-up path. *)
          if Live.Sockets.now () >= !next_kill then begin
            if kill !next_victim then incr kills;
            next_victim := (!next_victim mod cfg.Fleet.n) + 1;
            (match kill_every with
            | Some ke -> next_kill := Live.Sockets.now () +. ke
            | None -> next_kill := infinity)
          end;
          let fds =
            Array.to_list nodes_fd |> List.filter_map (fun fdo -> fdo)
          in
          let timeout =
            Float.min 0.05
              (Float.max 0.0 (hard_end -. Live.Sockets.now ()))
          in
          (match Unix.select fds [] [] timeout with
          | ready, _, _ ->
            for p = 1 to cfg.Fleet.n do
              match nodes_fd.(p - 1) with
              | Some fd when List.memq fd ready -> (
                match Live.Sockets.read_chunk fd buf with
                | `Data k ->
                  Live.Frame.feed decoders.(p - 1) (Bytes.unsafe_to_string buf)
                    ~pos:0 ~len:k;
                  drain p
                | `Closed -> mark_dead p
                | `Nothing -> ())
              | _ -> ()
            done
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          try_reconnects ();
          refill ();
          on_idle ()
        done;
        let elapsed = Live.Sockets.now () -. started in
        let undrained = Hashtbl.length inflight in
        Array.iter
          (function
            | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
            | None -> ())
          nodes_fd;
        let buckets =
          Hashtbl.fold (fun idx lats acc -> (idx, !lats) :: acc) lat_buckets []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> List.map (fun (idx, lats) ->
                 let arr = Array.of_list lats in
                 Array.sort compare arr;
                 {
                   since = float_of_int idx *. bucket;
                   count = Array.length arr;
                   p50 = Report.percentile arr 0.50;
                   p90 = Report.percentile arr 0.90;
                   p99 = Report.percentile arr 0.99;
                 })
        in
        Ok
          {
            duration;
            bucket_width = bucket;
            elapsed;
            settled = !settled;
            disagreements = !disagreements;
            undrained;
            decisions_per_sec =
              (if elapsed > 0.0 then float_of_int !settled /. elapsed else 0.0);
            kills = !kills;
            reconnects = !reconnects;
            buckets;
            ok = !disagreements = 0;
          }
    in
    match Fleet.with_mesh cfg drive with
    | Error e -> Error e
    | Ok (t, _mesh) -> Ok t

let to_json t =
  Obs.Json.Obj
    [
      ("duration", Obs.Json.Float t.duration);
      ("bucket_width", Obs.Json.Float t.bucket_width);
      ("elapsed", Obs.Json.Float t.elapsed);
      ("settled", Obs.Json.Int t.settled);
      ("disagreements", Obs.Json.Int t.disagreements);
      ("undrained", Obs.Json.Int t.undrained);
      ("decisions_per_sec", Obs.Json.Float t.decisions_per_sec);
      ("kills", Obs.Json.Int t.kills);
      ("reconnects", Obs.Json.Int t.reconnects);
      ("ok", Obs.Json.Bool t.ok);
      ( "buckets",
        Obs.Json.List
          (List.map
             (fun b ->
               Obs.Json.Obj
                 [
                   ("since", Obs.Json.Float b.since);
                   ("count", Obs.Json.Int b.count);
                   ("p50", Obs.Json.Float b.p50);
                   ("p90", Obs.Json.Float b.p90);
                   ("p99", Obs.Json.Float b.p99);
                 ])
             t.buckets) );
    ]

let pp ppf t =
  Format.fprintf ppf "soak: %.0fs, %d settled (%.1f/s), %d disagreement(s)%s%s@."
    t.duration t.settled t.decisions_per_sec t.disagreements
    (if t.undrained > 0 then Printf.sprintf ", %d undrained" t.undrained else "")
    (if t.kills > 0 then
       Printf.sprintf ", %d kill(s) / %d reconnect(s)" t.kills t.reconnects
     else "");
  Format.fprintf ppf "  %8s %8s %10s %10s %10s@." "t" "count" "p50" "p90" "p99";
  List.iter
    (fun b ->
      Format.fprintf ppf "  %7.0fs %8d %9.2fms %9.2fms %9.2fms@." b.since
        b.count (1000.0 *. b.p50) (1000.0 *. b.p90) (1000.0 *. b.p99))
    t.buckets
