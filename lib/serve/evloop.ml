type backend = Select | Poll

external poll_stub_available : unit -> bool = "serve_poll_available"

external poll_wait :
  Unix.file_descr array -> int array -> int -> int array = "serve_poll_wait"

let poll_available = poll_stub_available ()

let backend_of_string = function
  | "select" -> Ok Select
  | "poll" ->
    if poll_available then Ok Poll
    else Error "evloop: poll backend not available on this platform"
  | s -> Error (Printf.sprintf "evloop: unknown backend %S (select|poll)" s)

let backend_to_string = function Select -> "select" | Poll -> "poll"

type interest = { mutable read : bool; mutable write : bool }

type t = {
  backend : backend;
  tbl : (Unix.file_descr, interest) Hashtbl.t;
}

let create ?(backend = Select) () = { backend; tbl = Hashtbl.create 64 }
let backend t = t.backend

let register t fd ~read ~write =
  match Hashtbl.find_opt t.tbl fd with
  | Some i ->
    i.read <- read;
    i.write <- write
  | None -> Hashtbl.replace t.tbl fd { read; write }

let deregister t fd = Hashtbl.remove t.tbl fd

let interest t fd =
  Option.map (fun i -> (i.read, i.write)) (Hashtbl.find_opt t.tbl fd)

let registered t = Hashtbl.length t.tbl

(* Both backends snapshot the registry into arrays before blocking:
   callbacks run against the snapshot, never against the live table. *)

let wait_select t ~timeout ~handle =
  let rd = ref [] and wr = ref [] in
  Hashtbl.iter
    (fun fd i ->
      if i.read then rd := fd :: !rd;
      if i.write then wr := fd :: !wr)
    t.tbl;
  match Unix.select !rd !wr [] (Float.max 0.0 timeout) with
  | readable, writable, _ ->
    (* One callback per fd, merging the two ready sets. *)
    let count = ref 0 in
    List.iter
      (fun fd ->
        incr count;
        handle fd ~readable:true ~writable:(List.memq fd writable))
      readable;
    List.iter
      (fun fd ->
        if not (List.memq fd readable) then begin
          incr count;
          handle fd ~readable:false ~writable:true
        end)
      writable;
    !count
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0

let wait_poll t ~timeout ~handle =
  let n = Hashtbl.length t.tbl in
  let fds = Array.make n Unix.stdin in
  let events = Array.make n 0 in
  let k = ref 0 in
  Hashtbl.iter
    (fun fd i ->
      fds.(!k) <- fd;
      events.(!k) <- (if i.read then 1 else 0) lor (if i.write then 2 else 0);
      incr k)
    t.tbl;
  let timeout_ms =
    if timeout <= 0.0 then 0
    else
      (* ceil: never round a positive timeout down to a busy-spin 0. *)
      int_of_float (Float.min 3600_000.0 (Float.ceil (timeout *. 1000.0)))
  in
  let revents = poll_wait fds events timeout_ms in
  let count = ref 0 in
  Array.iteri
    (fun i r ->
      (* Only report events the caller asked for: poll flags HUP/ERR
         unconditionally, select only flags fds in the interest sets. *)
      let r = r land events.(i) in
      if r <> 0 then begin
        incr count;
        handle fds.(i) ~readable:(r land 1 <> 0) ~writable:(r land 2 <> 0)
      end)
    revents;
  !count

let wait t ~timeout ~handle =
  match t.backend with
  | Select -> wait_select t ~timeout ~handle
  | Poll -> wait_poll t ~timeout ~handle
