let magic = "SAWL"
let version = 1
let header_len = 12

type t = { fd : Unix.file_descr; mutable appended : int }
type entry = { instance : int; value : int; round : int }
type recovery = { entries : entry list; discarded : int }

let path ~dir ~node = Filename.concat dir (Printf.sprintf "wal-p%d.bin" node)

let be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let header ~node =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr ((version lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((version lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((version lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (version land 0xff));
  Buffer.add_char b (Char.chr ((node lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((node lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((node lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (node land 0xff));
  Buffer.contents b

let check_header ~node s =
  if String.length s < header_len then Error "wal: file shorter than header"
  else if String.sub s 0 4 <> magic then Error "wal: bad magic"
  else if be32 s 4 <> version then
    Error (Printf.sprintf "wal: unknown version %d" (be32 s 4))
  else if be32 s 8 <> node then
    Error (Printf.sprintf "wal: log belongs to node %d, not %d" (be32 s 8) node)
  else Ok ()

(* Pop CRC-valid Decide frames off the byte stream after the header.  The
   first byte the decoder cannot account for — a torn tail, a flipped bit,
   or a valid frame of a kind the writer never emits — ends the scan; the
   entries popped before it are the recovered prefix. *)
let scan bytes =
  let dec = Live.Frame.decoder () in
  Live.Frame.feed dec bytes ~pos:header_len
    ~len:(String.length bytes - header_len);
  let rec go acc =
    (* Measured before the pop: a wrong-kind frame is consumed by [pop]
       but still belongs to the rejected suffix. *)
    let unread = Live.Frame.buffered dec in
    match Live.Frame.pop dec with
    | `Frame (Live.Frame.Decide { instance; value; round }) ->
      go ({ instance; value; round } :: acc)
    | `Frame _ | `Corrupt _ | `Need_more ->
      { entries = List.rev acc; discarded = unread }
  in
  go []

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let load ~path ~node =
  match read_file path with
  | None -> Ok { entries = []; discarded = 0 }
  | Some bytes -> (
    match check_header ~node bytes with
    | Error _ as e -> e
    | Ok () -> Ok (scan bytes))

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let recover ~path ~node =
  let fresh () =
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    write_all fd (header ~node);
    Unix.fsync fd;
    ({ fd; appended = 0 }, { entries = []; discarded = 0 })
  in
  match read_file path with
  | None -> Ok (fresh ())
  | Some bytes -> (
    match check_header ~node bytes with
    | Error _ as e -> e
    | Ok () ->
      let r = scan bytes in
      let keep = String.length bytes - r.discarded in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      if r.discarded > 0 then begin
        Unix.ftruncate fd keep;
        Unix.fsync fd
      end;
      ignore (Unix.lseek fd keep Unix.SEEK_SET);
      Ok ({ fd; appended = 0 }, r))

let append t ~instance ~value ~round =
  write_all t.fd (Live.Frame.encode (Live.Frame.Decide { instance; value; round }));
  Unix.fsync t.fd;
  t.appended <- t.appended + 1

let appended t = t.appended
let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
