(** The per-engine durable decision log.

    An append-only file the mux writes at every decide, {e before} the
    Decide frame is handed to the outbound queues: once a client can see a
    decision, the decision survives the process.  A respawned engine
    replays its WAL to re-seed the mux's decision log, so re-submitted
    instances are answered idempotently and never re-run.

    Layout: a 12-byte header — magic ["SAWL"], a be32 format version and
    the be32 owning node id (a header mismatch means the file is not this
    node's log and recovery degrades to a clean fresh join) — followed by
    one CRC-framed {!Live.Frame.Decide} per decision, exactly the wire
    encoding.  Reads are incremental and adversarial, in the
    [Minimize.Repro.load] tradition: a torn tail (the fsync'd prefix of a
    crashed append) or any CRC/kind corruption rejects the file {e from
    that point on} — the valid prefix is kept, because every entry in it
    carried a valid CRC when written, and the suffix is discarded, never
    resurrected.  {!recover} additionally truncates the discarded suffix
    so the next append extends a clean log. *)

type t
(** An open log, positioned for appending. *)

type entry = { instance : int; value : int; round : int }

type recovery = {
  entries : entry list;  (** the valid prefix, in append order *)
  discarded : int;  (** torn/corrupt suffix bytes rejected by the read *)
}

val path : dir:string -> node:int -> string
(** The conventional location of node [node]'s log under a fleet
    workspace: [dir/wal-p<node>.bin]. *)

val load : path:string -> node:int -> (recovery, string) result
(** Read-only recovery scan.  A missing file is an empty log; a header
    mismatch (bad magic, unknown version, wrong node) is [Error].  Never
    raises. *)

val recover : path:string -> node:int -> (t * recovery, string) result
(** Open [path] for appending, creating it (with a fresh header) if
    missing.  Replays the valid prefix, truncates any rejected suffix in
    place (fsync'd), and leaves the log positioned at its end.  [Error]
    on a header mismatch — delete the file and {!recover} again for a
    fresh join. *)

val append : t -> instance:int -> value:int -> round:int -> unit
(** Append one decision and fsync before returning: when [append] returns,
    the decision is durable. *)

val appended : t -> int
(** Entries appended through this handle (excludes replayed ones). *)

val close : t -> unit
