(** Per-destination output coalescing — the serve layer's key perf lever.

    Without batching every frame is its own send; a round touching
    hundreds of instances then costs hundreds of syscalls per peer.  The
    batcher appends encoded frames to one growable byte buffer per
    destination and [flush] hands each non-empty buffer to the transport
    {e without copying}: the [send] callback either takes ownership of
    the buffer ([`Taken] — the engine wraps it in a refcounted
    {!Outq.chunk} and the bytes come back through {!put_back} once
    drained) or consumes it synchronously in place ([`Done] — the
    loopback feeds its decoders straight from the buffer).  Either way
    the [Buffer.contents] copy the old flush paid per destination per
    wakeup is gone; {!Stats.t.copies_saved} counts how often.

    Destination 0 is the client channel; 1..n are mesh peers.  In
    [batch:false] mode [add] sends each frame immediately (its own
    buffer, its own write) and [flush] is a no-op — the same code path,
    only the coalescing differs, which is what keeps the comparison
    honest.  [write_calls] is counted here only for [`Done] sends;
    [`Taken] buffers are counted by the queue at the actual [write(2)]. *)

type t

val create :
  n:int ->
  batch:bool ->
  stats:Stats.t ->
  send:(dest:int -> Bytes.t -> len:int -> [ `Taken | `Done ]) -> t
(** [send ~dest bytes ~len] delivers the first [len] bytes of [bytes].
    Return [`Taken] to keep the buffer (return it later via {!put_back});
    return [`Done] if it was fully consumed before returning. *)

val add : t -> dest:int -> string -> unit
val flush : t -> unit

val put_back : t -> Bytes.t -> unit
(** Return a previously [`Taken] buffer for reuse. *)

val pending : t -> dest:int -> bool
(** Batched bytes not yet flushed toward [dest]. *)
