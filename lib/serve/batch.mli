(** Per-peer output coalescing — the serve layer's key perf lever.

    Without batching every frame is its own [write(2)]; a round touching
    hundreds of instances then costs hundreds of syscalls per peer.  The
    batcher appends encoded frames to one buffer per destination and
    [flush] hands each non-empty buffer to the transport as a single
    writev-style send, counting actual sends in {!Stats.t.write_calls} so
    a [--no-batch] run can demonstrate the difference.

    Destination 0 is the client channel; 1..n are mesh peers.  In
    [batch:false] mode [add] sends immediately and [flush] is a no-op —
    the same code path, only the coalescing differs, which is what makes
    the comparison honest. *)

type t

val create :
  n:int -> batch:bool -> stats:Stats.t -> send:(int -> string -> unit) -> t
(** [send dest wire] performs the actual transport write; it is invoked
    once per frame in no-batch mode and once per destination per flush in
    batch mode. *)

val add : t -> dest:int -> string -> unit
val flush : t -> unit

val pending : t -> dest:int -> bool
(** Batched bytes not yet flushed toward [dest]. *)
