type config = {
  n : int;
  t : int;
  transport : [ `Unix of string | `Tcp of int ];
  workspace : string;
  instances : int;
  window : int;
  big_d : float;
  batch : bool;
  backend : Evloop.backend;
  kill : Report.kill_spec option;
  max_rounds : int option;
  proposals : int -> int -> int;
  client_timeout : float option;
  respawn : bool;
  respawn_budget : int;
  respawn_backoff : float;
  wal : bool;
  chaos : Chaosproxy.link list;
  verbose : bool;
}

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let vlog cfg fmt =
  Printf.ksprintf
    (fun s -> if cfg.verbose then Printf.eprintf "serve: %s\n%!" s)
    fmt

type child = {
  node : int;
  mutable os_pid : int;
  mutable status_fd : Unix.file_descr option;
  buf : Buffer.t;
  mutable ready : bool;
  mutable realized : Mux.realized list option;  (* from a "halted" event *)
  mutable stats : Stats.t option;  (* summed across lives *)
  mutable reaped : bool;
  mutable respawns : int;  (* respawn-budget consumed, Supervisor-style *)
  mutable respawn_at : float;  (* 0.0 = no respawn pending *)
}

let close_parent_fd parent_fds fd =
  parent_fds := List.filter (fun f -> f <> fd) !parent_fds;
  try Unix.close fd with Unix.Unix_error _ -> ()

let handle_event c line =
  match Obs.Json.of_string line with
  | Error _ -> ()
  | Ok j -> (
    (* A respawned engine reports a fresh stats block at its own exit;
       sum across lives so the report sees the node's total work. *)
    let merge_stats () =
      match Obs.Json.member "stats" j with
      | Some sj -> (
        match Stats.of_json sj with
        | Error _ -> ()
        | Ok s -> (
          match c.stats with
          | None -> c.stats <- Some s
          | Some old ->
            Stats.add old s;
            c.stats <- Some old))
      | None -> ()
    in
    match Obs.Json.member "event" j with
    | Some (Obs.Json.String "ready") -> c.ready <- true
    | Some (Obs.Json.String "stats") -> merge_stats ()
    | Some (Obs.Json.String "halted") ->
      merge_stats ();
      (match Obs.Json.member "realized" j with
      | Some (Obs.Json.List items) ->
        let rs =
          List.filter_map
            (fun item ->
              match Mux.realized_of_json item with
              | Ok r -> Some r
              | Error _ -> None)
            items
        in
        c.realized <- Some rs
      | _ -> c.realized <- Some [])
    | _ -> ())

let process_lines c =
  let rec go () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | None -> ()
    | Some i ->
      let line = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      Buffer.clear c.buf;
      Buffer.add_string c.buf rest;
      handle_event c line;
      go ()
  in
  go ()

let pump parent_fds c =
  match c.status_fd with
  | None -> ()
  | Some fd -> (
    let b = Bytes.create 4096 in
    match Unix.read fd b 0 4096 with
    | 0 ->
      close_parent_fd parent_fds fd;
      c.status_fd <- None
    | k ->
      Buffer.add_subbytes c.buf b 0 k;
      process_lines c
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ())

let select_pump ~timeout parent_fds children =
  let fds = Array.to_list children |> List.filter_map (fun c -> c.status_fd) in
  if fds = [] then (
    if timeout > 0.0 then
      Live.Sockets.sleep_until (Live.Sockets.now () +. timeout))
  else
    match Unix.select fds [] [] timeout with
    | [], _, _ -> ()
    | ready, _, _ ->
      Array.iter
        (fun c ->
          match c.status_fd with
          | Some fd when List.mem fd ready -> pump parent_fds c
          | _ -> ())
        children
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* A killed engine (SIGSTOP answered with SIGKILL, or a direct SIGKILL
   from the driver / a chaos script) is eligible for a supervised
   respawn: budgeted attempts with exponential backoff, the
   {!Live.Supervisor} idiom.  A clean exit is never respawned. *)
let schedule_respawn cfg ~accepting c =
  if cfg.respawn && accepting then
    if c.respawns >= cfg.respawn_budget then
      vlog cfg "node %d: respawn budget (%d) exhausted" c.node
        cfg.respawn_budget
    else begin
      let backoff =
        cfg.respawn_backoff *. (2.0 ** float_of_int c.respawns)
      in
      c.respawn_at <- Live.Sockets.now () +. backoff;
      vlog cfg "node %d died; respawn in %.2fs (attempt %d of %d)" c.node
        backoff (c.respawns + 1) cfg.respawn_budget
    end

(* SIGSTOP from a kill-budget halt is answered with the real SIGKILL;
   normal exits are just reaped. *)
let reap_one cfg ~accepting c =
  if not c.reaped then
    match Unix.waitpid [ Unix.WNOHANG; Unix.WUNTRACED ] c.os_pid with
    | 0, _ -> ()
    | _, Unix.WSTOPPED _ ->
      vlog cfg "node %d stopped at its kill point; SIGKILL" c.node;
      (try Unix.kill c.os_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] c.os_pid) with Unix.Unix_error _ -> ());
      c.reaped <- true;
      schedule_respawn cfg ~accepting c
    | _, Unix.WSIGNALED _ ->
      c.reaped <- true;
      schedule_respawn cfg ~accepting c
    | _, Unix.WEXITED _ -> c.reaped <- true
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> c.reaped <- true

let cleanup cfg parent_fds children proxies =
  Array.iter
    (fun c ->
      if not c.reaped then begin
        (try Unix.kill c.os_pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] c.os_pid) with Unix.Unix_error _ -> ());
        c.reaped <- true
      end)
    children;
  List.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    proxies;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    !parent_fds;
  parent_fds := [];
  Array.iter (fun c -> c.status_fd <- None) children;
  List.iter
    (fun link -> Chaosproxy.cleanup ~transport:cfg.transport ~n:cfg.n link)
    cfg.chaos;
  match cfg.transport with
  | `Unix dir ->
    for i = 1 to cfg.n do
      try Unix.unlink (Filename.concat dir (Printf.sprintf "node-%d.sock" i))
      with Unix.Unix_error _ -> ()
    done
  | `Tcp _ -> ()

type mesh = {
  victim : (int * Mux.realized list) option;
  node_stats : (int * Stats.t) list;
  respawned : (int * int) list;
}

(* Spawn the engines, wait for every mesh handshake, run [drive] with an
   [on_idle] that pumps status pipes, answers the victim's SIGSTOP, and
   respawns killed engines, then drain final stats and tear everything
   down.  [run] and the soak / multi-client tests are all this skeleton
   with a different [drive]. *)
let with_mesh cfg drive =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if cfg.n < 2 then Error "serve fleet: need n >= 2"
  else if cfg.t < 0 || cfg.t >= cfg.n then Error "serve fleet: need 0 <= t < n"
  else begin
    let max_rounds =
      match cfg.max_rounds with Some m -> m | None -> cfg.t + 1
    in
    mkdir_p cfg.workspace;
    let parent_fds = ref [] in
    (* Chaos proxies come up before any engine, so the first dial through
       an interposed link already finds its listener. *)
    let proxies = ref [] in
    let proxy_err = ref None in
    List.iter
      (fun link ->
        if !proxy_err = None then
          match Chaosproxy.spawn ~transport:cfg.transport ~n:cfg.n link with
          | Ok pid ->
            vlog cfg "chaos proxy %d->%d up (pid %d)" link.Chaosproxy.src
              link.Chaosproxy.dst pid;
            proxies := pid :: !proxies
          | Error e -> proxy_err := Some e)
      cfg.chaos;
    match !proxy_err with
    | Some e ->
      cleanup cfg parent_fds [||] !proxies;
      Error ("serve fleet: " ^ e)
    | None ->
      let wal_dir =
        if cfg.wal || cfg.respawn then Some cfg.workspace else None
      in
      let dial_for i =
        if cfg.chaos = [] then None
        else
          Some
            (fun p ->
              if
                List.exists
                  (fun l -> l.Chaosproxy.src = i && l.Chaosproxy.dst = p)
                  cfg.chaos
              then
                Chaosproxy.proxy_addr ~transport:cfg.transport ~n:cfg.n ~src:i
                  ~dst:p
              else Live.Sockets.addr_of ~transport:cfg.transport p)
      in
      let spawn_child ~rejoin i =
        let status_r, status_w = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          (try
             Unix.close status_r;
             List.iter
               (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
               !parent_fds;
             let log =
               open_out_gen
                 [ Open_append; Open_creat ]
                 0o644
                 (Filename.concat cfg.workspace
                    (Printf.sprintf "serve-%d.log" i))
             in
             let kill_after =
               match cfg.kill with
               | Some k when k.Report.node = i && not rejoin ->
                 Some k.Report.after_frames
               | _ -> None
             in
             Engine.Rwwc.main
               {
                 Engine.me = i;
                 n = cfg.n;
                 t = cfg.t;
                 transport = cfg.transport;
                 big_d = cfg.big_d;
                 max_rounds;
                 batch = cfg.batch;
                 backend = cfg.backend;
                 kill_after;
                 linger = false;
                 wal_dir;
                 rejoin;
                 dial = dial_for i;
                 status = Unix.out_channel_of_descr status_w;
                 log;
               };
             Unix._exit 0
           with e ->
             (try
                let oc =
                  open_out_gen
                    [ Open_append; Open_creat ]
                    0o644
                    (Filename.concat cfg.workspace
                       (Printf.sprintf "serve-%d.log" i))
                in
                Printf.fprintf oc "fatal: %s\n" (Printexc.to_string e);
                close_out oc
              with _ -> ());
             Unix._exit 3)
        | pid ->
          Unix.close status_w;
          parent_fds := status_r :: !parent_fds;
          (pid, status_r)
      in
      let children =
        Array.init cfg.n (fun idx ->
            let i = idx + 1 in
            let pid, status_r = spawn_child ~rejoin:false i in
            {
              node = i;
              os_pid = pid;
              status_fd = Some status_r;
              buf = Buffer.create 256;
              ready = false;
              realized = None;
              stats = None;
              reaped = false;
              respawns = 0;
              respawn_at = 0.0;
            })
      in
      vlog cfg "spawned %d engines" cfg.n;
      (* Respawns stop once the drive is over: a victim dying during
         teardown stays down. *)
      let accepting = ref true in
      let maybe_respawn () =
        if !accepting then
          Array.iter
            (fun c ->
              if
                c.reaped && c.respawn_at > 0.0
                && Live.Sockets.now () >= c.respawn_at
              then begin
                (match c.status_fd with
                | Some fd ->
                  close_parent_fd parent_fds fd;
                  c.status_fd <- None
                | None -> ());
                let pid, status_r = spawn_child ~rejoin:true c.node in
                c.os_pid <- pid;
                c.status_fd <- Some status_r;
                Buffer.clear c.buf;
                c.ready <- false;
                c.reaped <- false;
                c.respawn_at <- 0.0;
                c.respawns <- c.respawns + 1;
                vlog cfg "node %d respawned (attempt %d of %d, pid %d)"
                  c.node c.respawns cfg.respawn_budget pid
              end)
            children
      in
      let body () =
        (* Startup: every engine reports ready once its mesh is up. *)
        let start_deadline = Live.Sockets.now () +. 15.0 in
        let rec wait_ready () =
          if Array.for_all (fun c -> c.ready) children then Ok ()
          else if Live.Sockets.now () > start_deadline then
            Error "serve fleet: startup timeout — not every engine became ready"
          else begin
            select_pump ~timeout:0.05 parent_fds children;
            let died =
              Array.exists
                (fun c ->
                  (not c.ready)
                  &&
                  match Unix.waitpid [ Unix.WNOHANG ] c.os_pid with
                  | 0, _ -> false
                  | _, _ ->
                    c.reaped <- true;
                    true
                  | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                    c.reaped <- true;
                    true)
                children
            in
            if died then
              Error "serve fleet: an engine died during startup (see logs)"
            else wait_ready ()
          end
        in
        match wait_ready () with
        | Error e -> Error e
        | Ok () ->
          vlog cfg "all engines ready";
          let on_idle () =
            select_pump ~timeout:0.0 parent_fds children;
            Array.iter (reap_one cfg ~accepting:!accepting) children;
            maybe_respawn ()
          in
          (* A direct SIGKILL for drivers that storm the fleet with
             scheduled crashes ([--kill-every]); the reap path then
             applies the same respawn policy as a budget kill. *)
          let kill node =
            match Array.find_opt (fun c -> c.node = node) children with
            | Some c when not c.reaped -> (
              vlog cfg "driver kills node %d (pid %d)" node c.os_pid;
              match Unix.kill c.os_pid Sys.sigkill with
              | () -> true
              | exception Unix.Unix_error _ -> false)
            | _ -> false
          in
          (match drive ~on_idle ~kill with
          | Error e -> Error e
          | Ok v ->
            accepting := false;
            (* Engines exit once the last client hangs up; drain their
               final stats events, answer a late SIGSTOP, then close
               out. *)
            let grace = Live.Sockets.now () +. 5.0 in
            while
              Array.exists (fun c -> c.status_fd <> None) children
              && Live.Sockets.now () < grace
            do
              select_pump ~timeout:0.05 parent_fds children;
              Array.iter (reap_one cfg ~accepting:false) children
            done;
            Array.iter (reap_one cfg ~accepting:false) children;
            let victim =
              Array.to_list children
              |> List.find_map (fun c ->
                     match c.realized with
                     | Some rs -> Some (c.node, rs)
                     | None -> None)
            in
            let node_stats =
              Array.to_list children
              |> List.filter_map (fun c ->
                     match c.stats with
                     | Some s -> Some (c.node, s)
                     | None -> None)
            in
            let respawned =
              Array.to_list children
              |> List.filter_map (fun c ->
                     if c.respawns > 0 then Some (c.node, c.respawns)
                     else None)
            in
            Ok (v, { victim; node_stats; respawned }))
      in
      let result =
        try body ()
        with e -> Error ("serve fleet: " ^ Printexc.to_string e)
      in
      cleanup cfg parent_fds children !proxies;
      result
  end

let default_timeout cfg =
  let max_rounds = match cfg.max_rounds with Some m -> m | None -> cfg.t + 1 in
  (* worst case: every window-batch burns the full deadline chain *)
  let batches = float_of_int ((cfg.instances / max 1 cfg.window) + 2) in
  (batches *. cfg.big_d *. float_of_int (max_rounds + 1)) +. 10.0

let run cfg =
  let timeout =
    match cfg.client_timeout with
    | Some s -> s
    | None -> default_timeout cfg
  in
  let drive ~on_idle ~kill:_ =
    let client_cfg =
      {
        Client.n = cfg.n;
        transport = cfg.transport;
        first = 0;
        instances = cfg.instances;
        window = cfg.window;
        proposals = cfg.proposals;
        timeout;
        reconnect = cfg.respawn;
      }
    in
    match Client.run ~on_idle ~tick:0.05 client_cfg with
    | Error e -> Error ("serve fleet: client: " ^ e)
    | Ok outcome -> Ok outcome
  in
  match with_mesh cfg drive with
  | Error e -> Error e
  | Ok (outcome, mesh) ->
    Ok
      (Report.build ~n:cfg.n ~t:cfg.t ~proposals:cfg.proposals
         ~decisions:outcome.Client.decisions ~victim:mesh.victim
         ~send_plan:Binding.Rwwc.send_plan ~elapsed:outcome.Client.elapsed
         ~latencies:outcome.Client.latencies ~stats:mesh.node_stats
         ~kill:cfg.kill)
