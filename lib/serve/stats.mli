(** The event-loop stats sink: every per-node counter the serve layer
    reports, including the [write_calls] count that demonstrates batching
    (the acceptance metric vs [--no-batch]).

    [fast_rounds] counts rounds a multiplexed instance advanced as soon as
    the round's expected control messages arrived; [expired_rounds] counts
    rounds that had to wait out the full round deadline (a crashed
    coordinator, exactly the paper's failure-detector-by-timeout). *)

type t = {
  mutable frames_out : int;
  mutable bytes_out : int;
  mutable write_calls : int;  (** actual write(2)-level sends after batching *)
  mutable partial_writes : int;  (** writes the kernel cut short (resumed later) *)
  mutable copies_saved : int;  (** batch buffers handed over without copying *)
  mutable overflow_kills : int;  (** destinations dropped at the queue high-water mark *)
  mutable flushes : int;  (** batch flush sweeps *)
  mutable max_batch : int;  (** most frames coalesced into one write *)
  mutable frames_in : int;
  mutable submits : int;
  mutable decides : int;
  mutable fast_rounds : int;
  mutable expired_rounds : int;
  mutable late_frames : int;  (** frames for rounds already advanced past *)
  mutable dropped_frames : int;  (** frames for decided/unknown instances *)
  mutable slab_capacity : int;  (** instance slots ever allocated (gauge) *)
  mutable slab_reused : int;  (** slots recycled through the free list *)
  mutable wal_appends : int;  (** decisions made durable in the WAL *)
  mutable wal_replayed : int;  (** decisions recovered from the WAL at restart *)
  mutable catchup_in : int;  (** peer catch-up decisions adopted *)
  mutable catchup_out : int;  (** decisions replayed/mirrored to rejoined peers *)
}

val create : unit -> t
val add : t -> t -> unit
val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
val pp : Format.formatter -> t -> unit
