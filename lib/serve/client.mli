(** The serve front-end: one process driving a whole storm through the
    engines' client channels.

    Connects to every node (Hello node 0), keeps [window] instances in
    flight with coalesced Submit bursts, collects Decide frames, and
    settles an instance the moment its live-node missing-count reaches
    zero — settlement is O(1) per Decide (no per-tick rescans), and the
    window refills immediately, so the Submit stream is pipelined rather
    than tick-quantized.  A node that dies (the kill victim) stops
    blocking settlement the moment its socket closes, exactly the
    judgment rule {!Report} uses.

    The select timeout is derived from the wall deadline, not a fixed
    50 ms tick: a storm's p50 latency reflects the mesh, not the client's
    polling interval.  Callers that need periodic service (the fleet
    pumps engine status pipes and catches the victim's SIGSTOP via
    [on_idle]) pass [tick] to cap the sleep.

    With [reconnect], a dead socket is re-dialed under a bounded
    jittered backoff ({!Live.Sockets.retry_wait}); on success the client
    re-Hellos, swaps in a fresh decoder, and resubmits every unsettled
    instance the node has not answered — engines answer re-Submits of
    decided instances idempotently from their WAL, so a respawned node's
    verdict column fills back in instead of staying dead. *)

type config = {
  n : int;
  transport : [ `Unix of string | `Tcp of int ];
  first : int;  (** first instance id to submit (ids [first..first+instances-1]) *)
  instances : int;  (** how many instances this client drives *)
  window : int;
  proposals : int -> int -> int;  (** instance -> node -> proposal *)
  timeout : float;  (** overall wall-clock budget, seconds *)
  reconnect : bool;  (** re-dial dead engines with jittered backoff *)
}

type outcome = {
  decisions : (int * int) option array array;
      (** [decisions.(i - first).(node-1)] = (value, round), first report wins *)
  latencies : float list;  (** submit-to-settle, settled instances only *)
  elapsed : float;  (** first submit to loop exit *)
  undecided : int list;  (** absolute instance ids that never settled *)
  dead_nodes : int list;
      (** nodes down when the run closed — with [reconnect], the ones
          that never came back *)
  reconnects : int;  (** successful re-dials of dead engines *)
  resubmits : int;  (** instances re-Submitted after a reconnect *)
}

val run :
  ?on_idle:(unit -> unit) -> ?tick:float -> config -> (outcome, string) result
(** [on_idle] runs once per loop iteration; pass [tick] alongside it to
    bound the select sleep (the fleet uses 0.05 s) — without [tick] the
    loop sleeps until data or the wall deadline. *)
