(** The serve front-end: one process driving a whole storm through the
    engines' client channels.

    Connects to every node (Hello node 0), keeps [window] instances in
    flight with coalesced Submit bursts, collects Decide frames, and
    settles an instance once every still-connected node has reported —
    a node that dies (the kill victim) stops blocking settlement the
    moment its socket closes, exactly the judgment rule {!Report} uses.

    [on_idle] runs once per select iteration (~20 Hz); the fleet uses it
    to pump engine status pipes and catch the victim's SIGSTOP without a
    second event loop. *)

type config = {
  n : int;
  transport : [ `Unix of string | `Tcp of int ];
  instances : int;
  window : int;
  proposals : int -> int -> int;  (** instance -> node -> proposal *)
  timeout : float;  (** overall wall-clock budget, seconds *)
}

type outcome = {
  decisions : (int * int) option array array;
      (** [decisions.(instance).(node-1)] = (value, round), first report wins *)
  latencies : float list;  (** submit-to-settle, settled instances only *)
  elapsed : float;  (** first submit to loop exit *)
  undecided : int list;  (** instances that never settled (incl. unsubmitted) *)
  dead_nodes : int list;  (** nodes whose socket died during the run *)
}

val run : ?on_idle:(unit -> unit) -> config -> (outcome, string) result
