(** Sustained-load soak driver: run a real fleet for a wall-clock
    duration, stream an unbounded sequence of instances through it, and
    report time-bucketed latency percentiles — the view that catches
    degradation over time (queue growth, allocator drift, fd leaks)
    which a fixed-instance storm's single aggregate hides.

    Instances are submitted with the same windowed pipelining as
    {!Client}; each settled instance files its submit-to-settle latency
    into the bucket its settle time falls in.  Agreement is checked on
    the fly: any instance where two nodes report different values counts
    as a disagreement (and fails {!ok}).

    With [kill_every] (requires the fleet's respawn policy), a periodic
    round-robin SIGKILL storms the mesh: the fleet respawns each victim
    through the WAL-replay / catch-up path while the soak's own client
    re-dials it — the bucketed percentiles then show the recovery dips,
    and {!ok} still demands zero disagreements across every kill. *)

type bucket = {
  since : float;  (** bucket start, seconds from soak start *)
  count : int;  (** instances settled in this bucket *)
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  duration : float;  (** requested soak length, seconds *)
  bucket_width : float;
  elapsed : float;  (** actual wall time incl. the drain grace *)
  settled : int;
  disagreements : int;
  undrained : int;  (** instances still in flight when the soak closed *)
  decisions_per_sec : float;  (** settled / elapsed *)
  kills : int;  (** scheduled SIGKILLs delivered ([kill_every]) *)
  reconnects : int;  (** successful re-dials of respawned engines *)
  buckets : bucket list;  (** ascending by [since]; empty buckets omitted *)
  ok : bool;  (** no disagreements *)
}

val run :
  ?kill_every:float ->
  Fleet.config ->
  duration:float ->
  bucket:float ->
  (t, string) result
(** Drives [cfg.window]-wide load over the fleet for [duration] seconds
    (ignoring [cfg.instances] — the stream is unbounded), then allows a
    short drain grace for in-flight instances.  [bucket] is the
    histogram bucket width in seconds.  [kill_every] schedules a
    round-robin engine SIGKILL every that many seconds; it requires
    [cfg.respawn]. *)

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit
