type t = {
  mutable frames_out : int;
  mutable bytes_out : int;
  mutable write_calls : int;
  mutable partial_writes : int;
  mutable copies_saved : int;
  mutable overflow_kills : int;
  mutable flushes : int;
  mutable max_batch : int;
  mutable frames_in : int;
  mutable submits : int;
  mutable decides : int;
  mutable fast_rounds : int;
  mutable expired_rounds : int;
  mutable late_frames : int;
  mutable dropped_frames : int;
  mutable slab_capacity : int;
  mutable slab_reused : int;
  mutable wal_appends : int;
  mutable wal_replayed : int;
  mutable catchup_in : int;
  mutable catchup_out : int;
}

let create () =
  {
    frames_out = 0;
    bytes_out = 0;
    write_calls = 0;
    partial_writes = 0;
    copies_saved = 0;
    overflow_kills = 0;
    flushes = 0;
    max_batch = 0;
    frames_in = 0;
    submits = 0;
    decides = 0;
    fast_rounds = 0;
    expired_rounds = 0;
    late_frames = 0;
    dropped_frames = 0;
    slab_capacity = 0;
    slab_reused = 0;
    wal_appends = 0;
    wal_replayed = 0;
    catchup_in = 0;
    catchup_out = 0;
  }

let add a b =
  a.frames_out <- a.frames_out + b.frames_out;
  a.bytes_out <- a.bytes_out + b.bytes_out;
  a.write_calls <- a.write_calls + b.write_calls;
  a.partial_writes <- a.partial_writes + b.partial_writes;
  a.copies_saved <- a.copies_saved + b.copies_saved;
  a.overflow_kills <- a.overflow_kills + b.overflow_kills;
  a.flushes <- a.flushes + b.flushes;
  a.max_batch <- max a.max_batch b.max_batch;
  a.frames_in <- a.frames_in + b.frames_in;
  a.submits <- a.submits + b.submits;
  a.decides <- a.decides + b.decides;
  a.fast_rounds <- a.fast_rounds + b.fast_rounds;
  a.expired_rounds <- a.expired_rounds + b.expired_rounds;
  a.late_frames <- a.late_frames + b.late_frames;
  a.dropped_frames <- a.dropped_frames + b.dropped_frames;
  a.slab_capacity <- max a.slab_capacity b.slab_capacity;
  a.slab_reused <- a.slab_reused + b.slab_reused;
  a.wal_appends <- a.wal_appends + b.wal_appends;
  a.wal_replayed <- a.wal_replayed + b.wal_replayed;
  a.catchup_in <- a.catchup_in + b.catchup_in;
  a.catchup_out <- a.catchup_out + b.catchup_out

let to_json s =
  Obs.Json.Obj
    [
      ("frames_out", Obs.Json.Int s.frames_out);
      ("bytes_out", Obs.Json.Int s.bytes_out);
      ("write_calls", Obs.Json.Int s.write_calls);
      ("partial_writes", Obs.Json.Int s.partial_writes);
      ("copies_saved", Obs.Json.Int s.copies_saved);
      ("overflow_kills", Obs.Json.Int s.overflow_kills);
      ("flushes", Obs.Json.Int s.flushes);
      ("max_batch", Obs.Json.Int s.max_batch);
      ("frames_in", Obs.Json.Int s.frames_in);
      ("submits", Obs.Json.Int s.submits);
      ("decides", Obs.Json.Int s.decides);
      ("fast_rounds", Obs.Json.Int s.fast_rounds);
      ("expired_rounds", Obs.Json.Int s.expired_rounds);
      ("late_frames", Obs.Json.Int s.late_frames);
      ("dropped_frames", Obs.Json.Int s.dropped_frames);
      ("slab_capacity", Obs.Json.Int s.slab_capacity);
      ("slab_reused", Obs.Json.Int s.slab_reused);
      ("wal_appends", Obs.Json.Int s.wal_appends);
      ("wal_replayed", Obs.Json.Int s.wal_replayed);
      ("catchup_in", Obs.Json.Int s.catchup_in);
      ("catchup_out", Obs.Json.Int s.catchup_out);
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let int name =
    match json with
    | Obs.Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some (Obs.Json.Int i) -> Ok i
      | Some _ -> Error (Printf.sprintf "stats.%s: not an int" name)
      | None -> Ok 0)
    | _ -> Error "stats: not an object"
  in
  let* frames_out = int "frames_out" in
  let* bytes_out = int "bytes_out" in
  let* write_calls = int "write_calls" in
  let* partial_writes = int "partial_writes" in
  let* copies_saved = int "copies_saved" in
  let* overflow_kills = int "overflow_kills" in
  let* flushes = int "flushes" in
  let* max_batch = int "max_batch" in
  let* frames_in = int "frames_in" in
  let* submits = int "submits" in
  let* decides = int "decides" in
  let* fast_rounds = int "fast_rounds" in
  let* expired_rounds = int "expired_rounds" in
  let* late_frames = int "late_frames" in
  let* dropped_frames = int "dropped_frames" in
  let* slab_capacity = int "slab_capacity" in
  let* slab_reused = int "slab_reused" in
  let* wal_appends = int "wal_appends" in
  let* wal_replayed = int "wal_replayed" in
  let* catchup_in = int "catchup_in" in
  let* catchup_out = int "catchup_out" in
  Ok
    {
      frames_out;
      bytes_out;
      write_calls;
      partial_writes;
      copies_saved;
      overflow_kills;
      flushes;
      max_batch;
      frames_in;
      submits;
      decides;
      fast_rounds;
      expired_rounds;
      late_frames;
      dropped_frames;
      slab_capacity;
      slab_reused;
      wal_appends;
      wal_replayed;
      catchup_in;
      catchup_out;
    }

let pp ppf s =
  Format.fprintf ppf
    "out: %d frames / %d bytes in %d writes (%d partial, %d flushes, max \
     batch %d, %d copies saved) · in: %d frames · %d submits, %d decides · \
     rounds: %d fast / %d expired · %d late, %d dropped · slab %d slots (%d \
     reused)%s%s"
    s.frames_out s.bytes_out s.write_calls s.partial_writes s.flushes
    s.max_batch s.copies_saved s.frames_in s.submits s.decides s.fast_rounds
    s.expired_rounds s.late_frames s.dropped_frames s.slab_capacity
    s.slab_reused
    (if s.overflow_kills > 0 then
       Printf.sprintf " · %d overflow kills" s.overflow_kills
     else "")
    (if s.wal_appends + s.wal_replayed + s.catchup_in + s.catchup_out > 0 then
       Printf.sprintf " · wal %d+%d replayed · catchup %d in / %d out"
         s.wal_appends s.wal_replayed s.catchup_in s.catchup_out
     else "")
