open Model

type config = {
  me : int;
  n : int;
  t : int;
  big_d : float;
  max_rounds : int;
  kill_after : int option;
}

type realized = { instance : int; round : int; phase : Live.Script.phase }

let realized_to_json r =
  Obs.Json.Obj
    [
      ("instance", Obs.Json.Int r.instance);
      ("round", Obs.Json.Int r.round);
      ("phase", Obs.Json.String (Live.Script.phase_to_string r.phase));
    ]

let realized_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Obs.Json.Obj fields ->
    let int name =
      match List.assoc_opt name fields with
      | Some (Obs.Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "realized.%s: missing or not an int" name)
    in
    let* instance = int "instance" in
    let* round = int "round" in
    let* phase =
      match List.assoc_opt "phase" fields with
      | Some (Obs.Json.String s) -> (
        (* Reuse the script parser via a synthetic kill spec. *)
        match Live.Script.parse_kill (Printf.sprintf "p1@r1:%s" s) with
        | Ok k -> Ok k.Live.Script.phase
        | Error why -> Error why)
      | _ -> Error "realized.phase: missing or not a string"
    in
    Ok { instance; round; phase }
  | _ -> Error "realized: not an object"

module Make (A : Binding.ALGO) = struct
  type slot = {
    mutable instance : int;
    mutable state : A.state;
    mutable round : int;
    mutable deadline : float;
    mutable sent : bool;  (* current round's send phase completed *)
    mutable data : (Pid.t * A.msg) list;
    mutable syncs : Pid.t list;
    mutable pending : entry list;  (* frames for rounds not yet entered *)
  }

  and entry = E_data of int * Pid.t * A.msg | E_ctl of int * Pid.t

  type t = {
    cfg : config;
    stats : Stats.t;
    slab : slot Slab.t;
    early : (int, entry list) Hashtbl.t;  (* frames before the submit *)
    finished : Bitvec.t;  (* decided or horizon-released instances *)
    decided : (int, int * int) Hashtbl.t;
        (* instance -> (value, round): the durable decision log — a
           re-submitted finished instance is answered from here *)
    persist : (instance:int -> value:int -> round:int -> unit) option;
        (* WAL append: runs before the Decide frame is emitted, so a
           decision a client can observe is already durable *)
    emit : dest:int -> Live.Frame.t -> unit;
    mutable mirror : int list;
        (* recently-rejoined peers: every new decision is also sent to
           them as a Catchup, closing the gap between their rejoin
           snapshot and the instances still in flight *)
    mutable mesh_writes : int;
    mutable halted : bool;
    mutable realized : realized list;
    mutable gave_up : int;
  }

  let create cfg ?persist ~emit () =
    {
      cfg;
      stats = Stats.create ();
      slab = Slab.create ~initial:256 ();
      early = Hashtbl.create 64;
      finished = Bitvec.create ();
      decided = Hashtbl.create 256;
      persist;
      emit;
      mirror = [];
      mesh_writes = 0;
      halted = false;
      realized = [];
      gave_up = 0;
    }

  let stats t = t.stats
  let active t = Slab.active t.slab
  let halted t = t.halted
  let realized t = t.realized
  let gave_up t = t.gave_up
  let mesh_writes t = t.mesh_writes
  let slab_capacity t = Slab.capacity t.slab
  let slab_reused t = Slab.reused t.slab
  let set_mirror t peers = t.mirror <- peers
  let decided_count t = Hashtbl.length t.decided

  let iter_decided t f =
    Hashtbl.iter (fun instance (value, round) -> f ~instance ~value ~round)
      t.decided

  (* Replay one WAL entry: mark decided without emitting or re-persisting.
     Runs before any socket exists, so there is no one to tell yet —
     re-submits and rejoined peers are answered from the table later. *)
  let seed_decision t ~instance ~value ~round =
    if not (Hashtbl.mem t.decided instance) then begin
      t.stats.Stats.wal_replayed <- t.stats.Stats.wal_replayed + 1;
      Bitvec.set t.finished instance;
      Hashtbl.replace t.decided instance (value, round)
    end

  (* Adopt a decision a peer reached (catch-up batch at rejoin, or a
     mirrored decide for an instance that was in flight while this node
     was down).  Adopting beats re-running: a lone re-run of an instance
     the rest of the mesh already finished could converge on a different
     value.  Also upgrades an instance this node gave up on — the peer's
     decision is the one its clients saw. *)
  let adopt t ~now:_ ~instance ~value ~round =
    if not (Hashtbl.mem t.decided instance) then begin
      t.stats.Stats.catchup_in <- t.stats.Stats.catchup_in + 1;
      Bitvec.set t.finished instance;
      Hashtbl.replace t.decided instance (value, round);
      (match t.persist with
      | Some persist ->
        persist ~instance ~value ~round;
        t.stats.Stats.wal_appends <- t.stats.Stats.wal_appends + 1
      | None -> ());
      Hashtbl.remove t.early instance;
      if Slab.find t.slab ~instance <> None then
        Slab.release t.slab ~instance;
      t.emit ~dest:0 (Live.Frame.Decide { instance; value; round })
    end

  let budget_left t =
    match t.cfg.kill_after with
    | Some k -> t.mesh_writes < k
    | None -> true

  (* Freeze every surviving instance at its realized crash point.  The
     instance caught mid-send keeps its partial-write phase; all others
     realize as Before_send/After_send at their current round, which is
     exactly what a whole-process kill means for them: their next write
     never happens. *)
  let halt t ~mid =
    t.halted <- true;
    let mid_inst =
      match mid with Some (r : realized) -> r.instance | None -> -1
    in
    let acc = ref (match mid with Some r -> [ r ] | None -> []) in
    Slab.iter t.slab (fun id slot ->
        if id <> mid_inst then
          acc :=
            {
              instance = id;
              round = slot.round;
              phase =
                (if slot.sent then Live.Script.After_send
                 else Live.Script.Before_send);
            }
            :: !acc);
    t.realized <-
      List.sort
        (fun (a : realized) (b : realized) -> compare a.instance b.instance)
        !acc

  (* The send phase of [slot]'s current round.  Mesh writes burn the kill
     budget one frame at a time, so a scripted kill lands between two
     writes of one instance's round — the paper's sequential-write prefix
     crash, realized mid-storm. *)
  let send_round t slot =
    let round = slot.round in
    let data = A.data_sends slot.state ~round in
    let syncs = A.sync_sends slot.state ~round in
    let d_count = List.length data in
    let c_count = List.length syncs in
    let written = ref 0 in
    let ok = ref true in
    List.iter
      (fun (dest, msg) ->
        if !ok then
          if budget_left t then begin
            t.mesh_writes <- t.mesh_writes + 1;
            t.emit ~dest:(Pid.to_int dest)
              (Live.Frame.Data
                 { instance = slot.instance; round; payload = A.encode_msg msg });
            incr written
          end
          else ok := false)
      data;
    List.iter
      (fun dest ->
        if !ok then
          if budget_left t then begin
            t.mesh_writes <- t.mesh_writes + 1;
            t.emit ~dest:(Pid.to_int dest)
              (Live.Frame.Ctl { instance = slot.instance; round });
            incr written
          end
          else ok := false)
      syncs;
    if !ok then begin
      slot.sent <- true;
      `Sent
    end
    else begin
      let k = !written in
      let phase =
        if k = 0 then Live.Script.Before_send
        else if k < d_count then Live.Script.During_data k
        else if k < d_count + c_count then Live.Script.During_ctl (k - d_count)
        else Live.Script.After_send
      in
      halt t ~mid:(Some { instance = slot.instance; round; phase });
      `Halted
    end

  let entry_round = function E_data (r, _, _) -> r | E_ctl (r, _) -> r

  let apply_entry slot = function
    | E_data (_, from, msg) -> slot.data <- (from, msg) :: slot.data
    | E_ctl (_, from) ->
      if not (List.exists (Pid.equal from) slot.syncs) then
        slot.syncs <- from :: slot.syncs

  let round_done t slot =
    slot.sent
    && List.for_all
         (fun s -> List.exists (Pid.equal s) slot.syncs)
         (A.round_senders ~n:t.cfg.n ~me:(Pid.of_int t.cfg.me)
            ~round:slot.round)

  let by_pid a b = compare (Pid.to_int a) (Pid.to_int b)

  let rec advance t slot ~now ~fast =
    if fast then t.stats.Stats.fast_rounds <- t.stats.Stats.fast_rounds + 1
    else t.stats.Stats.expired_rounds <- t.stats.Stats.expired_rounds + 1;
    let round = slot.round in
    let data =
      List.sort (fun (a, _) (b, _) -> by_pid a b) slot.data
    in
    let syncs = List.sort_uniq by_pid slot.syncs in
    let state, decision = A.compute slot.state ~round ~data ~syncs in
    slot.state <- state;
    match decision with
    | Some value ->
      t.stats.Stats.decides <- t.stats.Stats.decides + 1;
      Bitvec.set t.finished slot.instance;
      Hashtbl.replace t.decided slot.instance (value, round);
      let instance = slot.instance in
      (match t.persist with
      | Some persist ->
        persist ~instance ~value ~round;
        t.stats.Stats.wal_appends <- t.stats.Stats.wal_appends + 1
      | None -> ());
      t.emit ~dest:0 (Live.Frame.Decide { instance; value; round });
      List.iter
        (fun peer ->
          t.stats.Stats.catchup_out <- t.stats.Stats.catchup_out + 1;
          t.emit ~dest:peer (Live.Frame.Catchup { instance; value; round }))
        t.mirror;
      Slab.release t.slab ~instance
    | None ->
      if round >= t.cfg.max_rounds then begin
        (* Past the horizon nothing can decide (more deaths than [t]);
           release the slot and let the client time the instance out. *)
        t.gave_up <- t.gave_up + 1;
        Bitvec.set t.finished slot.instance;
        Slab.release t.slab ~instance:slot.instance
      end
      else begin
        slot.round <- round + 1;
        slot.sent <- false;
        slot.data <- [];
        slot.syncs <- [];
        start_round t slot ~now
      end

  and start_round t slot ~now =
    match send_round t slot with
    | `Halted -> ()
    | `Sent ->
      let round = slot.round in
      let stay, arrived =
        List.partition (fun e -> entry_round e <> round) slot.pending
      in
      slot.pending <- stay;
      List.iter (apply_entry slot) arrived;
      slot.deadline <- now +. t.cfg.big_d;
      if round_done t slot then advance t slot ~now ~fast:true

  let submit t ~now ~instance ~proposal =
    if t.halted then ()
    else if Bitvec.mem t.finished instance then (
      (* Decided long ago (or given up): serve the logged decision instead
         of re-running the instance — a late or reconnecting client gets
         the same answer the first one did. *)
      match Hashtbl.find_opt t.decided instance with
      | Some (value, round) ->
        t.emit ~dest:0 (Live.Frame.Decide { instance; value; round })
      | None -> ())
    else if Slab.find t.slab ~instance = None then begin
      t.stats.Stats.submits <- t.stats.Stats.submits + 1;
      let me = Pid.of_int t.cfg.me in
      let fresh_state () = A.init ~n:t.cfg.n ~t:t.cfg.t ~me ~proposal in
      let slot =
        Slab.acquire t.slab ~instance
          ~create:(fun () ->
            {
              instance;
              state = fresh_state ();
              round = 1;
              deadline = infinity;
              sent = false;
              data = [];
              syncs = [];
              pending = [];
            })
          ~recycle:(fun s ->
            s.instance <- instance;
            s.state <- fresh_state ();
            s.round <- 1;
            s.deadline <- infinity;
            s.sent <- false;
            s.data <- [];
            s.syncs <- [];
            s.pending <- [])
      in
      (match Hashtbl.find_opt t.early instance with
      | Some entries ->
        Hashtbl.remove t.early instance;
        slot.pending <- entries
      | None -> ());
      start_round t slot ~now
    end

  let entry_of ~from (v : Live.Frame.view) =
    match v.Live.Frame.kind with
    | Live.Frame.K_data -> (
      match A.decode_msg_view v with
      | Ok msg -> Some (E_data (v.Live.Frame.round, from, msg))
      | Error _ -> None)
    | Live.Frame.K_ctl -> Some (E_ctl (v.Live.Frame.round, from))
    | _ -> None

  let on_view t ~now ~from (v : Live.Frame.view) =
    let from = Pid.of_int from in
    if not t.halted then begin
      t.stats.Stats.frames_in <- t.stats.Stats.frames_in + 1;
      match v.Live.Frame.kind with
      | Live.Frame.K_hello | Live.Frame.K_decide -> ()
      | Live.Frame.K_catchup ->
        (* Round 0 is the end-of-batch marker, handled by the engine; a
           real decision always has round >= 1. *)
        if v.Live.Frame.round >= 1 then
          adopt t ~now ~instance:v.Live.Frame.instance
            ~value:v.Live.Frame.value ~round:v.Live.Frame.round
      | Live.Frame.K_submit ->
        submit t ~now ~instance:v.Live.Frame.instance
          ~proposal:v.Live.Frame.value
      | Live.Frame.K_data | Live.Frame.K_ctl -> (
        let instance = v.Live.Frame.instance in
        let round = v.Live.Frame.round in
        if Bitvec.mem t.finished instance then
          t.stats.Stats.dropped_frames <- t.stats.Stats.dropped_frames + 1
        else
          match Slab.find t.slab ~instance with
          | Some slot ->
            if round < slot.round then
              t.stats.Stats.late_frames <- t.stats.Stats.late_frames + 1
            else if round > slot.round then (
              match entry_of ~from v with
              | Some e -> slot.pending <- e :: slot.pending
              | None ->
                t.stats.Stats.dropped_frames <-
                  t.stats.Stats.dropped_frames + 1)
            else (
              match entry_of ~from v with
              | Some e ->
                apply_entry slot e;
                if round_done t slot then advance t slot ~now ~fast:true
              | None ->
                t.stats.Stats.dropped_frames <-
                  t.stats.Stats.dropped_frames + 1)
          | None -> (
            (* The local client has not submitted this instance yet; park
               the frame so a slow submit still finds the round intact. *)
            match entry_of ~from v with
            | Some e ->
              let q =
                Option.value ~default:[] (Hashtbl.find_opt t.early instance)
              in
              Hashtbl.replace t.early instance (e :: q)
            | None ->
              t.stats.Stats.dropped_frames <- t.stats.Stats.dropped_frames + 1))
    end

  let expire t ~now =
    if not t.halted then begin
      let due = ref [] in
      Slab.iter t.slab (fun _ slot ->
          if slot.sent && slot.deadline <= now then due := slot :: !due);
      List.iter
        (fun slot ->
          (* A slot may have advanced or finished while an earlier
             expiry cascaded; re-check before computing. *)
          let still_bound =
            match Slab.find t.slab ~instance:slot.instance with
            | Some s -> s == slot
            | None -> false
          in
          if (not t.halted) && still_bound && slot.sent && slot.deadline <= now
          then advance t slot ~now ~fast:false)
        (List.rev !due)
    end

  let next_deadline t =
    if t.halted then None
    else begin
      let best = ref infinity in
      Slab.iter t.slab (fun _ slot ->
          if slot.sent && slot.deadline < !best then best := slot.deadline);
      if !best = infinity then None else Some !best
    end
end
