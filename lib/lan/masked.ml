open Model
open Timed_sim

module Make
    (A : Sync_sim.Algorithm_intf.S)
    (Params : sig
      val big_d : float
      val delta : float
      val retry_budget : int
    end) =
struct
  type payload = Data of A.msg | Ctl

  type msg =
    | Payload of { round : int; seq : int; body : payload }
    | Ack of { round : int; seq : int }

  type pending = { dest : Pid.t; body : payload; attempts : int }

  (* Keys of messages already delivered: (sender, round, seq).  A retransmit
     or a duplicated copy of a seen message is re-acked and otherwise
     ignored; only a *fresh* message can be late. *)
  module Seen = Set.Make (struct
    type t = int * int * int

    let compare = compare
  end)

  type state = {
    a : A.state;
    me : Pid.t;
    max_round : int;
    round : int;  (* currently open round *)
    computed : int;  (* highest round whose computation phase ran *)
    outstanding : (int * pending) list;  (* this round's unacked sends *)
    buf_data : (int * Pid.t * A.msg) list;  (* (round, from, msg) *)
    buf_syncs : (int * Pid.t) list;
    seen : Seen.t;
  }

  let name = A.name ^ "-masked-lan"

  let () =
    if Params.big_d <= 0.0 || Params.delta <= 0.0 then
      invalid_arg "Lan.Masked: D and delta must be positive";
    if Params.delta > Params.big_d then
      invalid_arg "Lan.Masked: the model premise is delta << D";
    if Params.retry_budget < 0 then
      invalid_arg "Lan.Masked: retry_budget must be >= 0"

  (* One transmission plus its ack takes at most 2D; a retransmission fires
     every rto.  After the last allowed transmission (the [retry_budget]-th
     retry, at T_r + retry_budget * rto) the ack is conclusive by
     T_r + (retry_budget + 1) * rto — the window.  The computation phase
     sits after the window, so "still unacked at compute time" is a sound
     violation verdict, not a race. *)
  let rto = 2.0 *. Params.big_d

  let window = float_of_int (Params.retry_budget + 1) *. rto

  let period = window +. Params.delta

  let round_start r = float_of_int (r - 1) *. period

  let compute_time r = round_start r +. window +. (Params.delta /. 2.0)

  let round_of_time time =
    int_of_float (Float.round ((time +. (Params.delta /. 2.0)) /. period))

  let tag_open r = 4 * r

  let tag_retry r = (4 * r) + 1

  let tag_compute r = (4 * r) + 2

  let pp_payload ppf = function
    | Data m -> A.pp_msg ppf m
    | Ctl -> Format.pp_print_string ppf "ctl"

  let pp_msg ppf = function
    | Payload { round; seq; body } ->
      Format.fprintf ppf "r%d#%d:%a" round seq pp_payload body
    | Ack { round; seq } -> Format.fprintf ppf "ack:r%d#%d" round seq

  let transmit ~round (seq, p) =
    Process_intf.Send (p.dest, Payload { round; seq; body = p.body })

  (* Open round [r]: send the data batch then the ordered control batch
     (each message sequence-numbered for ack matching), arm the retry timer
     if there is anything to mask, and schedule the computation phase. *)
  let open_round state ~round:r =
    let items =
      List.map (fun (dest, m) -> (dest, Data m)) (A.data_sends state.a ~round:r)
      @ List.map (fun dest -> (dest, Ctl)) (A.sync_sends state.a ~round:r)
    in
    let outstanding =
      List.mapi (fun seq (dest, body) -> (seq, { dest; body; attempts = 1 })) items
    in
    let sends = List.map (transmit ~round:r) outstanding in
    let timers =
      (if Params.retry_budget > 0 && outstanding <> [] then
         [
           Process_intf.Set_timer
             { at = round_start r +. rto; tag = tag_retry r };
         ]
       else [])
      @ [ Process_intf.Set_timer { at = compute_time r; tag = tag_compute r } ]
    in
    ({ state with round = r; outstanding }, sends @ timers)

  let init (ctx : Process_intf.ctx) ~me ~proposal =
    let state =
      {
        a = A.init ~n:ctx.n ~t:ctx.t ~me ~proposal;
        me;
        max_round = ctx.t + 2;
        round = 0;
        computed = 0;
        outstanding = [];
        buf_data = [];
        buf_syncs = [];
        seen = Seen.empty;
      }
    in
    open_round state ~round:1

  let on_message state ~now ~from msg =
    match msg with
    | Ack { round; seq } ->
      if round = state.round then
        ( { state with outstanding = List.remove_assoc seq state.outstanding },
          [] )
      else (state, []) (* an ack for an already-closed round: harmless *)
    | Payload { round = mr; seq; body } ->
      let key = (Pid.to_int from, mr, seq) in
      let ack = Process_intf.Send (from, Ack { round = mr; seq }) in
      if Seen.mem key state.seen then
        (* Retransmit of something we have (our ack was lost or slow), or a
           duplicated copy: re-ack, ignore the content. *)
        (state, [ ack ])
      else if mr <= state.computed then
        (* Fresh content for a round whose computation already ran: the
           channel broke the latency assumption and masking cannot repair
           it — degrade gracefully instead of computing on a wrong view. *)
        ( state,
          [
            Process_intf.Abort
              (Net.Synchrony_violation.late_arrival ~round:mr ~src:from
                 ~dst:state.me ~at:now
                 ~observed:(now -. round_start mr)
                 ~assumed:window);
          ] )
      else
        let state = { state with seen = Seen.add key state.seen } in
        let state =
          match body with
          | Data m -> { state with buf_data = (mr, from, m) :: state.buf_data }
          | Ctl -> { state with buf_syncs = (mr, from) :: state.buf_syncs }
        in
        (state, [ ack ])

  let on_timer state ~now ~tag =
    let r = tag / 4 in
    match tag mod 4 with
    | 0 -> open_round state ~round:r
    | 1 ->
      (* Retry point: retransmit everything still unacked, and keep the
         timer chain alive while the budget allows another attempt. *)
      if r <> state.round || state.outstanding = [] then (state, [])
      else begin
        let outstanding =
          List.map
            (fun (seq, p) -> (seq, { p with attempts = p.attempts + 1 }))
            state.outstanding
        in
        let resends = List.map (transmit ~round:r) outstanding in
        let more_allowed =
          List.exists
            (fun (_, p) -> p.attempts <= Params.retry_budget)
            outstanding
        in
        let timers =
          if more_allowed then
            [ Process_intf.Set_timer { at = now +. rto; tag = tag_retry r } ]
          else []
        in
        ({ state with outstanding }, resends @ timers)
      end
    | _ -> begin
      (* Computation phase of round r. *)
      match state.outstanding with
      | (_, p) :: _ ->
        (* The retry budget is spent and an ack never came: either every
           copy or every ack was lost — beyond what masking covers. *)
        ( state,
          [
            Process_intf.Abort
              (Net.Synchrony_violation.retry_exhausted ~round:r ~src:state.me
                 ~dst:p.dest ~at:now ~attempts:p.attempts);
          ] )
      | [] ->
        let mine r' = Int.equal r r' in
        let data =
          List.sort
            (fun (a, _) (b, _) -> Pid.compare a b)
            (List.filter_map
               (fun (r', from, m) -> if mine r' then Some (from, m) else None)
               state.buf_data)
        and syncs =
          List.sort Pid.compare
            (List.filter_map
               (fun (r', from) -> if mine r' then Some from else None)
               state.buf_syncs)
        in
        let state =
          {
            state with
            computed = r;
            buf_data = List.filter (fun (r', _, _) -> not (mine r')) state.buf_data;
            buf_syncs = List.filter (fun (r', _) -> not (mine r')) state.buf_syncs;
          }
        in
        let a, decision = A.compute state.a ~round:r ~data ~syncs in
        let state = { state with a } in
        (match decision with
        | Some v -> (state, [ Process_intf.Decide v ])
        | None ->
          if r + 1 > state.max_round then (state, [])
          else
            ( state,
              [
                Process_intf.Set_timer
                  { at = round_start (r + 1); tag = tag_open (r + 1) };
              ] ))
    end

  let on_suspicion state ~now:_ ~suspects:_ = (state, [])
end
