(** A fault-masking realization of the extended round model.

    {!Realization} proves Section 2.2's claim on a {e perfect} LAN: every
    message arrives within [D], so a round costs [D + δ].  This module is
    the same construction hardened for an {e unreliable} LAN (a
    {!Net.Fault_plan} dropping, duplicating and delaying messages): every
    data/control message is sequence-numbered and acknowledged, and a
    bounded retransmission protocol masks channel faults below a
    configurable budget.

    {b Timing.}  With a retransmit timeout of [rto = 2D] (one transmission
    plus its ack) and a budget of [k] retries per message, a round's send
    window stretches to [(k+1) · 2D] and the realized round duration is
    [(k+1) · 2D + δ] — masking is not free, it buys reliability with wall
    clock, exactly the currency of Section 2.2.

    {b Guarantee.}  Runs whose faults are masked (every message or one of
    its retransmits acknowledged in its window, nothing fresh arriving
    late) decide exactly like the abstract {!Sync_sim.Engine}.  Runs whose
    faults exceed the budget never decide wrongly: the first process to
    observe an unmaskable fault — a spent retry budget without ack, or a
    fresh message landing after its round's computation phase — aborts the
    whole run with a structured {!Net.Synchrony_violation} naming the
    round, the link and the observed-vs-assumed latency.

    {b Scope.}  The masking argument assumes the network is the only
    adversary.  Combining fault plans with crash schedules can produce
    deliveries no crash point of the abstract model can express (e.g. a
    non-prefix subset of a dead coordinator's control messages, which no
    retransmission can repair); the chaos harness therefore exercises
    crashes and network faults separately. *)

module Make
    (A : Sync_sim.Algorithm_intf.S)
    (Params : sig
      val big_d : float
      (** D: bound on one-way message transfer + processing *)

      val delta : float
      (** δ: pipelining allowance for the control step *)

      val retry_budget : int
      (** max retransmissions per message ([0] = detect-only: any loss
          aborts) *)
    end) : sig
  include Timed_sim.Process_intf.S

  val rto : float
  (** Retransmit timeout, [2D]. *)

  val window : float
  (** [(retry_budget + 1) · rto]: the stretched send window of a round. *)

  val period : float
  (** [window + δ], the realized round duration. *)

  val round_start : int -> float

  val compute_time : int -> float
  (** [round_start r + window + δ/2] — where round [r]'s computation phase
      (and any decision or violation verdict) lands. *)

  val round_of_time : float -> int
  (** Map a decision timestamp back to the abstract round that produced
      it. *)
end
