(** Blocking-free socket plumbing for the live runtime.

    Everything here degrades gracefully instead of aborting: a connect
    retries with exponential backoff until a deadline (peers come up in
    arbitrary order), a send gives up after a per-peer timeout, and a dead
    peer surfaces as [Error] / [`Closed] — the caller marks it crashed and
    keeps going, which is the whole point of running consensus under
    [kill -9]. *)

val now : unit -> float
(** [Unix.gettimeofday] — one clock for every process on the machine, which
    is what makes supervisor-distributed round deadlines meaningful. *)

val sleep_until : float -> unit
(** Absolute-time sleep, EINTR-proof. *)

val addr_of : transport:[ `Unix of string | `Tcp of int ] -> int -> Unix.sockaddr
(** The rendezvous address of node [i]: [dir/node-i.sock], or
    [127.0.0.1:(base + i)]. *)

val listen : Unix.sockaddr -> Unix.file_descr
(** Bind (unlinking a stale Unix-domain path) and listen. *)

val connect_retry :
  deadline:float -> Unix.sockaddr -> (Unix.file_descr, string) result
(** Connect with retry and exponential backoff (20 ms doubling to 320 ms)
    until [deadline]; refused / not-yet-bound addresses are retried,
    anything else is an error. *)

val accept_timeout :
  deadline:float -> Unix.file_descr -> (Unix.file_descr, string) result

val write_all :
  deadline:float -> Unix.file_descr -> string -> (unit, string) result
(** Write the whole string to a nonblocking fd, waiting for writability up
    to [deadline] — the per-peer send timeout.  [Error] on timeout, EPIPE,
    or reset: the peer is gone. *)

val read_chunk :
  Unix.file_descr -> bytes -> [ `Data of int | `Closed | `Nothing ]
(** One nonblocking read: bytes read, orderly/abortive close, or nothing
    available. *)
