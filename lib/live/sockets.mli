(** Blocking-free socket plumbing for the live runtime.

    Everything here degrades gracefully instead of aborting: a connect
    retries with exponential backoff until a deadline (peers come up in
    arbitrary order), a send gives up after a per-peer timeout, and a dead
    peer surfaces as [Error] / [`Closed] — the caller marks it crashed and
    keeps going, which is the whole point of running consensus under
    [kill -9].

    No entry point raises [Unix.Unix_error]: every failure comes back as a
    structured {!error} carrying the operation, the errno (when there is
    one) and a human-readable detail, so callers can match on the cause
    (retry a refused connect, absorb a reset peer) without parsing
    strings. *)

type error = {
  op : string;  (** the socket operation that failed: "connect", "bind", … *)
  errno : Unix.error option;  (** the errno, when the failure was a syscall *)
  detail : string;  (** human-readable context (address, timeout, …) *)
}

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val now : unit -> float
(** [Unix.gettimeofday] — one clock for every process on the machine, which
    is what makes supervisor-distributed round deadlines meaningful. *)

val sleep_until : float -> unit
(** Absolute-time sleep, EINTR-proof. *)

val addr_of : transport:[ `Unix of string | `Tcp of int ] -> int -> Unix.sockaddr
(** The rendezvous address of node [i]: [dir/node-i.sock], or
    [127.0.0.1:(base + i)]. *)

val listen : ?backlog:int -> Unix.sockaddr -> (Unix.file_descr, error) result
(** Bind (unlinking a stale Unix-domain path) and listen.  A taken port, a
    read-only socket directory or an over-long Unix path all come back as
    [Error], never as a raised [Unix_error]. *)

val connect_retry :
  ?backoff:float ->
  ?backoff_max:float ->
  ?jitter:Prng.Rng.t ->
  deadline:float ->
  Unix.sockaddr ->
  (Unix.file_descr, error) result
(** Connect with retry and bounded exponential backoff (default 20 ms
    doubling to 320 ms) until the overall [deadline]; refused / not-yet-bound
    addresses are retried, anything else is an error.  [EINTR] during the
    connect or the backoff sleep restarts the attempt, it never leaks out.
    With [jitter], each wait is the backoff level scaled by a uniform draw
    in [0.5, 1.5) from the seeded stream, so a mass respawn doesn't
    thundering-herd the listener; see {!retry_wait}. *)

val retry_wait : ?jitter:Prng.Rng.t -> float -> float
(** The wait {!connect_retry} sleeps before a retry at backoff level
    [backoff]: [backoff] itself, or — with [jitter] — a draw from the
    envelope [\[0.5 * backoff, 1.5 * backoff)].  Exposed so tests can pin
    the envelope. *)

val accept_timeout :
  deadline:float -> Unix.file_descr -> (Unix.file_descr, error) result

val accept_nonblock :
  Unix.file_descr -> [ `Conn of Unix.file_descr | `Nothing | `Error of error ]
(** One nonblocking accept on a nonblocking listen fd: the connection
    (close-on-exec, nonblocking) or [`Nothing] when the backlog is empty
    ([EAGAIN]/[EINTR]/an aborted handshake).  The serve event loop calls
    this in a drain-until-[`Nothing] loop per readable wakeup, so a burst
    of clients costs one wakeup, not one each. *)

val write_all :
  deadline:float -> Unix.file_descr -> string -> (unit, error) result
(** Write the whole string to a fd, retrying [EINTR] and short writes, and
    waiting for writability up to [deadline] — the per-peer send timeout.
    [Error] on timeout, EPIPE, or reset: the peer is gone. *)

val read_chunk :
  Unix.file_descr -> bytes -> [ `Data of int | `Closed | `Nothing ]
(** One nonblocking read: bytes read, orderly/abortive close, or nothing
    available. *)
