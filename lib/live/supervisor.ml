open Model

type event =
  | Respawned of { node : int; attempt : int }
  | Absorbed of { node : int; at_round : int }

let pp_event ppf = function
  | Respawned { node; attempt } ->
    Format.fprintf ppf "node %d respawned (attempt %d)" node attempt
  | Absorbed { node; at_round } ->
    Format.fprintf ppf "node %d died unscripted in round %d; absorbed" node
      at_round

type transport = [ `Unix of string | `Tcp of string * int ]

type config = {
  n : int;
  t : int;
  script : Script.t;
  transport : transport;
  big_d : float;
  delta : float;
  proposals : int array option;
  max_rounds : int option;
  verbose : bool;
  respawn_budget : int;
  respawn_backoff : float;
  instrument : event Obs.Instrument.t;
  chaos_startup_kills : int list;
  chaos_run_kills : (int * float) list;
}

let config ?proposals ?max_rounds ?(verbose = false) ?(respawn_budget = 1)
    ?(respawn_backoff = 0.05) ?(instrument = Obs.Instrument.null)
    ?(chaos_startup_kills = []) ?(chaos_run_kills = []) ~n ~t ~script
    ~transport ~big_d ~delta () =
  {
    n;
    t;
    script;
    transport;
    big_d;
    delta;
    proposals;
    max_rounds;
    verbose;
    respawn_budget;
    respawn_backoff;
    instrument;
    chaos_startup_kills;
    chaos_run_kills;
  }

let workspace cfg = match cfg.transport with `Unix d -> d | `Tcp (d, _) -> d

let node_transport cfg =
  match cfg.transport with `Unix d -> `Unix d | `Tcp (_, base) -> `Tcp base

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let vlog cfg fmt =
  Printf.ksprintf
    (fun s -> if cfg.verbose then Printf.eprintf "live: %s\n%!" s)
    fmt

type child = {
  node : int;
  mutable os_pid : int;
  mutable status_fd : Unix.file_descr option;
  mutable go_fd : Unix.file_descr option;
  buf : Buffer.t;
  mutable rounds : Transcript.round_obs list;  (* newest first *)
  mutable decided : (int * int) option;  (* value, round *)
  mutable undecided_evt : bool;
  mutable ready : bool;
  mutable exit_obs : [ `Exited of int | `Signaled of int | `Stop_killed ] option;
  mutable final : Transcript.status option;
  mutable respawns : int;  (* startup respawns consumed *)
  mutable awaiting_respawn : bool;  (* dead pre-mesh, backoff running *)
  mutable next_respawn_at : float;
}

(* Parent-side pipe ends, closed inside every freshly forked child so that a
   status pipe's EOF means "this node is gone", not "some sibling still
   holds a copy".  Closing always goes through [close_parent_fd] so a
   recycled descriptor number can never be closed out from under a later
   child. *)
let close_parent_fd parent_fds fd =
  parent_fds := List.filter (fun f -> f <> fd) !parent_fds;
  try Unix.close fd with Unix.Unix_error _ -> ()

let handle_event c line =
  match Obs.Json.of_string line with
  | Error _ -> ()
  | Ok j -> (
    let int k =
      match Obs.Json.member k j with Some (Obs.Json.Int i) -> Some i | _ -> None
    in
    let flt k =
      match Obs.Json.member k j with
      | Some (Obs.Json.Float f) -> f
      | Some (Obs.Json.Int i) -> float_of_int i
      | _ -> 0.0
    in
    match Obs.Json.member "event" j with
    | Some (Obs.Json.String "ready") -> c.ready <- true
    | Some (Obs.Json.String "round") -> (
      match (int "round", int "data_recv", int "ctl_recv") with
      | Some round, Some data_recv, Some ctl_recv ->
        c.rounds <-
          {
            Transcript.round;
            open_skew = flt "open_skew";
            close_skew = flt "close_skew";
            data_recv;
            ctl_recv;
          }
          :: c.rounds
      | _ -> ())
    | Some (Obs.Json.String "decide") -> (
      match (int "value", int "round") with
      | Some v, Some r -> c.decided <- Some (v, r)
      | _ -> ())
    | Some (Obs.Json.String "undecided") -> c.undecided_evt <- true
    | _ -> ())

let process_lines c =
  let rec go () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | None -> ()
    | Some i ->
      let line = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      Buffer.clear c.buf;
      Buffer.add_string c.buf rest;
      handle_event c line;
      go ()
  in
  go ()

let pump parent_fds c =
  match c.status_fd with
  | None -> ()
  | Some fd -> (
    let b = Bytes.create 4096 in
    match Unix.read fd b 0 4096 with
    | 0 ->
      close_parent_fd parent_fds fd;
      c.status_fd <- None
    | k ->
      Buffer.add_subbytes c.buf b 0 k;
      process_lines c
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ())

let select_pump ~timeout parent_fds children =
  let fds = Array.to_list children |> List.filter_map (fun c -> c.status_fd) in
  if fds = [] then (
    if timeout > 0.0 then Sockets.sleep_until (Sockets.now () +. timeout))
  else
    match Unix.select fds [] [] timeout with
    | [], _, _ -> ()
    | ready, _, _ ->
      Array.iter
        (fun c ->
          match c.status_fd with
          | Some fd when List.mem fd ready -> pump parent_fds c
          | _ -> ())
        children
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let last_round c =
  match c.rounds with [] -> 0 | r :: _ -> r.Transcript.round

let finalize cfg c obs =
  match obs with
  | `Stop_killed -> (
    match Script.find cfg.script (Pid.of_int c.node) with
    | Some k -> Transcript.Killed { at_round = k.Script.round; scripted = true }
    | None -> Transcript.Killed { at_round = last_round c + 1; scripted = false })
  | `Exited 0 -> (
    match c.decided with
    | Some (value, at_round) -> Transcript.Decided { value; at_round }
    | None ->
      if c.undecided_evt then Transcript.Undecided
      else Transcript.Killed { at_round = last_round c + 1; scripted = false })
  | `Exited _ | `Signaled _ ->
    Transcript.Killed { at_round = last_round c + 1; scripted = false }

let cleanup cfg parent_fds children =
  Array.iter
    (fun c ->
      if c.exit_obs = None then begin
        (try Unix.kill c.os_pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] c.os_pid) with Unix.Unix_error _ -> ());
        c.exit_obs <- Some (`Signaled Sys.sigkill)
      end)
    children;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    !parent_fds;
  parent_fds := [];
  Array.iter
    (fun c ->
      c.status_fd <- None;
      c.go_fd <- None)
    children;
  match cfg.transport with
  | `Unix dir ->
    for i = 1 to cfg.n do
      try Unix.unlink (Filename.concat dir (Printf.sprintf "node-%d.sock" i))
      with Unix.Unix_error _ -> ()
    done
  | `Tcp _ -> ()

let run cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let n = cfg.n and t = cfg.t in
  if n < 2 then Error "live: need at least 2 nodes"
  else if t < 0 || t >= n then Error "live: need 0 <= t < n"
  else
    match Script.validate ~n ~max_kills:t cfg.script with
    | Error why -> Error ("live: " ^ why)
    | Ok () -> (
      let proposals =
        match cfg.proposals with
        | Some p -> p
        | None -> Sync_sim.Engine.distinct_proposals n
      in
      if Array.length proposals <> n then Error "live: proposals length <> n"
      else begin
        let max_rounds =
          match cfg.max_rounds with Some m -> m | None -> t + 2
        in
        let dir = workspace cfg in
        mkdir_p dir;
        let parent_fds = ref [] in
        let spawn_child i =
          let status_r, status_w = Unix.pipe () in
          let go_r, go_w = Unix.pipe () in
          match Unix.fork () with
          | 0 ->
            (* the node process: never returns *)
            (try
               Unix.close status_r;
               Unix.close go_w;
               List.iter
                 (fun fd ->
                   try Unix.close fd with Unix.Unix_error _ -> ())
                 !parent_fds;
               let log =
                 open_out (Filename.concat dir (Printf.sprintf "node-%d.log" i))
               in
               let ncfg =
                 {
                   Node.me = i;
                   n;
                   t;
                   proposal = proposals.(i - 1);
                   transport = node_transport cfg;
                   big_d = cfg.big_d;
                   delta = cfg.delta;
                   max_rounds;
                   kill = Script.find cfg.script (Pid.of_int i);
                   status = Unix.out_channel_of_descr status_w;
                   go = Unix.in_channel_of_descr go_r;
                   log;
                 }
               in
               Node.Rwwc.main ncfg;
               Unix._exit 0
             with e ->
               (try
                  let oc =
                    open_out_gen
                      [ Open_append; Open_creat ]
                      0o644
                      (Filename.concat dir (Printf.sprintf "node-%d.log" i))
                  in
                  Printf.fprintf oc "fatal: %s\n" (Printexc.to_string e);
                  close_out oc
                with _ -> ());
               Unix._exit 3)
          | pid ->
            Unix.close status_w;
            Unix.close go_r;
            parent_fds := status_r :: go_w :: !parent_fds;
            (pid, status_r, go_w)
        in
        (* Fault-injection bookkeeping: how many times each node is still
           owed a chaos SIGKILL right after (re)spawn. *)
        let startup_kills = Hashtbl.create 4 in
        List.iter
          (fun node ->
            Hashtbl.replace startup_kills node
              (1 + Option.value ~default:0 (Hashtbl.find_opt startup_kills node)))
          cfg.chaos_startup_kills;
        let chaos_kill_fresh node pid =
          match Hashtbl.find_opt startup_kills node with
          | Some k when k > 0 ->
            Hashtbl.replace startup_kills node (k - 1);
            vlog cfg "chaos: SIGKILL node %d during startup" node;
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          | Some _ | None -> ()
        in
        let children =
          Array.init n (fun idx ->
              let i = idx + 1 in
              let pid, status_r, go_w = spawn_child i in
              {
                node = i;
                os_pid = pid;
                status_fd = Some status_r;
                go_fd = Some go_w;
                buf = Buffer.create 256;
                rounds = [];
                decided = None;
                undecided_evt = false;
                ready = false;
                exit_obs = None;
                final = None;
                respawns = 0;
                awaiting_respawn = false;
                next_respawn_at = 0.0;
              })
        in
        Array.iter (fun c -> chaos_kill_fresh c.node c.os_pid) children;
        vlog cfg "spawned %d nodes" n;
        let wait_ready () =
          let deadline = Sockets.now () +. 15.0 in
          let rec go () =
            if Array.for_all (fun c -> c.ready) children then Ok ()
            else if Sockets.now () > deadline then
              Error "live: startup timeout — not every node became ready"
            else begin
              select_pump ~timeout:0.05 parent_fds children;
              let failure = ref None in
              Array.iter
                (fun c ->
                  if (not c.ready) && c.exit_obs = None && !failure = None then
                    if c.awaiting_respawn then begin
                      (* self-healing window: before the mesh forms a fresh
                         process can still take the dead one's place, after
                         this attempt's backoff has elapsed *)
                      if Sockets.now () >= c.next_respawn_at then begin
                        Buffer.clear c.buf;
                        let pid, status_r, go_w = spawn_child c.node in
                        c.os_pid <- pid;
                        c.status_fd <- Some status_r;
                        c.go_fd <- Some go_w;
                        c.awaiting_respawn <- false;
                        c.respawns <- c.respawns + 1;
                        vlog cfg "node %d respawned (attempt %d of %d)" c.node
                          c.respawns cfg.respawn_budget;
                        Obs.Instrument.emit cfg.instrument
                          (Respawned { node = c.node; attempt = c.respawns });
                        chaos_kill_fresh c.node pid
                      end
                    end
                    else
                      match Unix.waitpid [ Unix.WNOHANG ] c.os_pid with
                      | 0, _ -> ()
                      | _, _ ->
                        if c.respawns >= cfg.respawn_budget then
                          failure :=
                            Some
                              (Printf.sprintf
                                 "live: node %d died %d times during startup \
                                  (respawn budget %d exhausted)"
                                 c.node (c.respawns + 1) cfg.respawn_budget)
                        else begin
                          let backoff =
                            cfg.respawn_backoff
                            *. Float.of_int (1 lsl c.respawns)
                          in
                          vlog cfg
                            "node %d died during startup; respawning in %.2fs"
                            c.node backoff;
                          (match c.status_fd with
                          | Some fd ->
                            close_parent_fd parent_fds fd;
                            c.status_fd <- None
                          | None -> ());
                          (match c.go_fd with
                          | Some fd ->
                            close_parent_fd parent_fds fd;
                            c.go_fd <- None
                          | None -> ());
                          c.awaiting_respawn <- true;
                          c.next_respawn_at <- Sockets.now () +. backoff
                        end
                      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ())
                children;
              match !failure with Some e -> Error e | None -> go ()
            end
          in
          go ()
        in
        let body () =
          match wait_ready () with
          | Error e -> Error e
          | Ok () ->
            let t0 = Sockets.now () +. 0.3 in
            vlog cfg "all nodes ready; t0 in 0.3 s";
            Array.iter
              (fun c ->
                match c.go_fd with
                | None -> ()
                | Some fd -> (
                  let line = Printf.sprintf "go %.6f\n" t0 in
                  try ignore (Unix.write_substring fd line 0 (String.length line))
                  with Unix.Unix_error _ -> ()))
              children;
            let period = cfg.big_d +. cfg.delta in
            let watchdog =
              t0 +. (float_of_int max_rounds *. period) +. cfg.big_d +. 2.0
            in
            let unresolved () = Array.exists (fun c -> c.final = None) children in
            let record_final c st =
              (match st with
              | Transcript.Killed { at_round; scripted = false } ->
                Obs.Instrument.emit cfg.instrument
                  (Absorbed { node = c.node; at_round })
              | Transcript.Killed _ | Transcript.Decided _ | Transcript.Undecided
                ->
                ());
              c.final <- Some st
            in
            let run_kills = ref cfg.chaos_run_kills in
            let fire_run_kills () =
              run_kills :=
                List.filter
                  (fun (node, delay) ->
                    if Sockets.now () >= t0 +. delay then begin
                      Array.iter
                        (fun c ->
                          if c.node = node && c.exit_obs = None then begin
                            vlog cfg "chaos: SIGKILL node %d at t0+%.2fs" node
                              delay;
                            try Unix.kill c.os_pid Sys.sigkill
                            with Unix.Unix_error _ -> ()
                          end)
                        children;
                      false
                    end
                    else true)
                  !run_kills
            in
            while unresolved () && Sockets.now () < watchdog do
              fire_run_kills ();
              select_pump ~timeout:0.05 parent_fds children;
              Array.iter
                (fun c ->
                  if c.final = None then begin
                    (if c.exit_obs = None then
                       match
                         Unix.waitpid [ Unix.WNOHANG; Unix.WUNTRACED ] c.os_pid
                       with
                       | 0, _ -> ()
                       | _, Unix.WSTOPPED _ ->
                         (* the scripted crash point: answer the node's
                            self-stop with the real kill *)
                         vlog cfg "node %d stopped at its kill point; SIGKILL"
                           c.node;
                         (try Unix.kill c.os_pid Sys.sigkill
                          with Unix.Unix_error _ -> ());
                         (try ignore (Unix.waitpid [] c.os_pid)
                          with Unix.Unix_error _ -> ());
                         c.exit_obs <- Some `Stop_killed
                       | _, Unix.WEXITED code ->
                         c.exit_obs <- Some (`Exited code)
                       | _, Unix.WSIGNALED s -> c.exit_obs <- Some (`Signaled s)
                       | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                         c.exit_obs <- Some (`Exited 0));
                    match c.exit_obs with
                    | Some obs when c.status_fd = None ->
                      let st = finalize cfg c obs in
                      vlog cfg "node %d: %s" c.node
                        (match st with
                        | Transcript.Decided { value; at_round } ->
                          Printf.sprintf "decided %d in round %d" value at_round
                        | Transcript.Killed { at_round; scripted } ->
                          Printf.sprintf "killed in round %d (%s)" at_round
                            (if scripted then "scripted" else "unscripted")
                        | Transcript.Undecided -> "undecided");
                      record_final c st
                    | _ -> ()
                  end)
                children
            done;
            (* watchdog: anything still unresolved gets drained once more,
               then killed and closed out *)
            select_pump ~timeout:0.05 parent_fds children;
            Array.iter
              (fun c ->
                if c.final = None then begin
                  (match c.exit_obs with
                  | None ->
                    vlog cfg "node %d past the watchdog; SIGKILL" c.node;
                    (try Unix.kill c.os_pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    (try ignore (Unix.waitpid [] c.os_pid)
                     with Unix.Unix_error _ -> ());
                    c.final <-
                      Some
                        (match c.decided with
                        | Some (value, at_round) ->
                          Transcript.Decided { value; at_round }
                        | None -> Transcript.Undecided)
                  | Some obs -> record_final c (finalize cfg c obs))
                end)
              children;
            let statuses =
              Array.map
                (fun c -> Option.value c.final ~default:Transcript.Undecided)
                children
            in
            let rounds = Array.map (fun c -> List.rev c.rounds) children in
            let max_round =
              Array.fold_left
                (fun acc c ->
                  let from_status =
                    match c.final with
                    | Some (Transcript.Decided { at_round; _ })
                    | Some (Transcript.Killed { at_round; _ }) ->
                      at_round
                    | _ -> 0
                  in
                  max acc (max from_status (last_round c)))
                0 children
            in
            let tr =
              { Transcript.n; t; proposals; statuses; rounds; max_round }
            in
            let schedule =
              Script.to_schedule
                ~send_plan:(Binding.Rwwc.send_plan ~n)
                cfg.script
            in
            Ok (tr, Judge.judge ~schedule tr)
        in
        let result =
          try body ()
          with e -> Error ("live: supervisor: " ^ Printexc.to_string e)
        in
        cleanup cfg parent_fds children;
        result
      end)
