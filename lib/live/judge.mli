(** The live-run judge: the chaos judge's property checks applied to a
    transcript, plus an optional differential comparison against the
    abstract engine.

    A live run passes when the {!Spec.Properties.uniform_consensus} checks
    — validity, uniform agreement, termination, and the [f + 1] round
    bound, the exact checkers behind EXP-CHAOS — all hold of the
    transcript, and (when every death was scripted) its decisions equal
    those of {!Sync_sim.Engine} on the schedule the script realizes.  The
    differential is skipped on runs with unscripted deaths: the abstract
    crash point of a surprise [kill -9] is unknown, but the safety and
    liveness checks still apply. *)

type verdict = {
  checks : Spec.Properties.check list;
  differential : (string, string) result option;
      (** [Some (Ok detail)] — decisions match the abstract engine;
          [Some (Error why)] — they diverge; [None] — comparison skipped
          (unscripted deaths). *)
  ok : bool;
}

val judge :
  ?schedule:Model.Schedule.t ->
  Transcript.t ->
  verdict
(** [schedule] is the abstract realization of the kill script
    ({!Script.to_schedule}); when present and all deaths were scripted the
    differential runs the Figure 1 algorithm on it and compares decision
    triples [(pid, value, round)]. *)

val pp : Format.formatter -> verdict -> unit

val to_json : Transcript.t -> verdict -> Obs.Json.t
(** The verdict artifact [bin live] writes next to the node logs, so a CI
    failure uploads machine-readable evidence. *)
