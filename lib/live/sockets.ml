let now () = Unix.gettimeofday ()

let sleep_until t =
  let rec go () =
    let dt = t -. now () in
    if dt > 0.0 then begin
      (match Unix.select [] [] [] dt with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let addr_of ~transport i =
  match transport with
  | `Unix dir -> Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "node-%d.sock" i))
  | `Tcp base -> Unix.ADDR_INET (Unix.inet_addr_loopback, base + i)

let listen addr =
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec fd;
  (match addr with
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd addr;
  Unix.listen fd 16;
  fd

let connect_retry ~deadline addr =
  let rec go backoff =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      Unix.close fd;
      if now () >= deadline then Error "connect: peer never came up"
      else begin
        sleep_until (Float.min deadline (now () +. backoff));
        go (Float.min 0.32 (backoff *. 2.0))
      end
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      Error ("connect: " ^ Unix.error_message e)
  in
  go 0.02

let accept_timeout ~deadline fd =
  let rec go () =
    let dt = deadline -. now () in
    if dt <= 0.0 then Error "accept: timed out waiting for a peer"
    else
      match Unix.select [ fd ] [] [] dt with
      | [], _, _ -> go ()
      | _ :: _, _, _ -> (
        match Unix.accept fd with
        | conn, _ ->
          Unix.set_close_on_exec conn;
          Ok conn
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let write_all ~deadline fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        let dt = deadline -. now () in
        if dt <= 0.0 then Error "send timeout"
        else (
          (match Unix.select [] [ fd ] [] dt with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go off)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        Error "peer closed"
      | exception Unix.Unix_error (e, _, _) ->
        Error ("write: " ^ Unix.error_message e)
  in
  go 0

let read_chunk fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> `Closed
  | n -> `Data n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    `Nothing
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Closed
