type error = { op : string; errno : Unix.error option; detail : string }

let error_to_string e =
  match e.errno with
  | Some errno ->
    Printf.sprintf "%s: %s (%s)" e.op e.detail (Unix.error_message errno)
  | None -> Printf.sprintf "%s: %s" e.op e.detail

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let err ?errno op detail = Error { op; errno; detail }

let string_of_sockaddr = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (host, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port

let now () = Unix.gettimeofday ()

let sleep_until t =
  let rec go () =
    let dt = t -. now () in
    if dt > 0.0 then begin
      (match Unix.select [] [] [] dt with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let addr_of ~transport i =
  match transport with
  | `Unix dir -> Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "node-%d.sock" i))
  | `Tcp base -> Unix.ADDR_INET (Unix.inet_addr_loopback, base + i)

let listen ?(backlog = 16) addr =
  match
    let domain = Unix.domain_of_sockaddr addr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    (match addr with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
    match Unix.bind fd addr with
    | () ->
      Unix.listen fd backlog;
      fd
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (errno, op, _) ->
    err ~errno op (string_of_sockaddr addr)

(* The wait before retry attempt: the exponential backoff level, scaled —
   when a jitter stream is given — by a uniform draw in [0.5, 1.5).  A mass
   respawn (a fleet's worth of engines re-dialing one listener) then spreads
   its retries across the envelope instead of hammering in lockstep. *)
let retry_wait ?jitter backoff =
  match jitter with
  | None -> backoff
  | Some rng -> backoff *. (0.5 +. Prng.Rng.float rng 1.0)

let connect_retry ?(backoff = 0.02) ?(backoff_max = 0.32) ?jitter ~deadline addr
    =
  let rec go backoff =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec fd;
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception
        Unix.Unix_error
          ( (Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR) as errno,
            _,
            _ )
      ->
      Unix.close fd;
      if now () >= deadline then
        err ~errno "connect"
          (Printf.sprintf "peer %s never came up before the deadline"
             (string_of_sockaddr addr))
      else begin
        sleep_until (Float.min deadline (now () +. retry_wait ?jitter backoff));
        go (Float.min backoff_max (backoff *. 2.0))
      end
    | exception Unix.Unix_error (errno, _, _) ->
      Unix.close fd;
      err ~errno "connect" (string_of_sockaddr addr)
  in
  go backoff

let accept_timeout ~deadline fd =
  let rec go () =
    let dt = deadline -. now () in
    if dt <= 0.0 then err "accept" "timed out waiting for a peer"
    else
      match Unix.select [ fd ] [] [] dt with
      | [], _, _ -> go ()
      | _ :: _, _, _ -> (
        match Unix.accept fd with
        | conn, _ ->
          Unix.set_close_on_exec conn;
          Ok conn
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> go ()
        | exception Unix.Unix_error (errno, _, _) -> err ~errno "accept" "")
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (errno, _, _) -> err ~errno "accept" "select"
  in
  go ()

let accept_nonblock fd =
  match Unix.accept fd with
  | conn, _ ->
    Unix.set_close_on_exec conn;
    Unix.set_nonblock conn;
    `Conn conn
  | exception
      Unix.Unix_error
        ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED ),
          _,
          _ ) ->
    `Nothing
  | exception Unix.Unix_error (errno, op, _) ->
    `Error { op; errno = Some errno; detail = "accept" }

let write_all ~deadline fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        let dt = deadline -. now () in
        if dt <= 0.0 then
          err "write"
            (Printf.sprintf "send timeout with %d of %d bytes unsent" (len - off)
               len)
        else (
          (match Unix.select [] [ fd ] [] dt with
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go off)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET) as errno, _, _)
        ->
        err ~errno "write" "peer closed"
      | exception Unix.Unix_error (errno, _, _) -> err ~errno "write" ""
  in
  go 0

let read_chunk fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> `Closed
  | n -> `Data n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    `Nothing
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Closed
