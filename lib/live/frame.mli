(** The live wire protocol: length-prefixed, CRC-checked frames.

    Layout (all integers big-endian):

    {v
      +------+------+----------------+-------+
      | 0xFA | 0xCF | len (4 bytes)  | body  |  crc32(body) (4 bytes)
      +------+------+----------------+-------+
    v}

    The second magic byte is the codec version: [0xD0] is the current (v3)
    wire format, which extends v2 with a Catchup kind so a restarted engine
    can be brought up to date on decisions taken while it was down.  The
    decoder also accepts v2 frames ([0xCF], same bodies minus Catchup) and
    the original single-instance v1 frames ([0xCE], no instance field —
    decoded as instance 0), so transcripts, captures and WAL files from
    older builds still parse; the encoder always emits v3 ([encode_v1] and
    [encode_v2] exist for compatibility tests).

    The v3 body starts with a one-byte kind tag:
    - [0x01] Hello:  node id (4 bytes) — sent once per direction when a
      connection opens, so the receiving end learns who is talking; node id
      0 identifies a client connection rather than a mesh peer;
    - [0x02] Data:   varint instance + round (4 bytes) + opaque payload;
    - [0x03] Ctl:    varint instance + round (4 bytes) — a synchronization
      message; like the paper's control messages it carries no payload;
    - [0x04] Submit: varint instance + proposal (4 bytes) — client asks the
      receiving node to start that agreement instance with this proposal;
    - [0x05] Decide: varint instance + round (4 bytes) + value (4 bytes) —
      node reports its decision for the instance back to clients;
    - [0x06] Catchup: varint instance + round (4 bytes) + value (4 bytes) —
      a peer replays one entry of its decision log to a node that
      re-handshook into the mesh after a restart (v3 only).

    The same encoder/decoder pair runs under both the socket transport and
    the in-memory loopback, so loopback tests exercise the exact bytes that
    go on a real wire.  Decoding is incremental: a decoder is fed arbitrary
    byte slices (whatever [read] returned) and pops complete frames; a
    truncated tail — what a killed sender leaves in flight — simply never
    completes, and any header/CRC mismatch is reported as corruption, which
    callers treat as a dead peer.  The hot read path is zero-copy: a reused
    {!view} exposes each frame's fields, with Data payloads as a window into
    the decoder's own buffer. *)

type t =
  | Hello of { node : int }
  | Data of { instance : int; round : int; payload : string }
  | Ctl of { instance : int; round : int }
  | Submit of { instance : int; proposal : int }
  | Decide of { instance : int; value : int; round : int }
  | Catchup of { instance : int; value : int; round : int }

val encode : t -> string
(** One full v3 frame, ready for a single sequential write. *)

val encode_v1 : t -> string
(** The pre-instance-id v1 encoding, kept so tests can pin backward
    compatibility.  Raises [Invalid_argument] on a nonzero instance id or a
    kind v1 cannot express (Submit/Decide/Catchup). *)

val encode_v2 : t -> string
(** The pre-catchup v2 encoding, kept so tests can pin backward
    compatibility.  Raises [Invalid_argument] on a kind v2 cannot express
    (Catchup). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val max_body : int
(** Upper bound on accepted body length (64 KiB); a length prefix beyond it
    is corruption, not a huge allocation. *)

val max_instance : int
(** Largest encodable instance id ([2^30 - 1]); ids beyond it are rejected
    by the encoder and read as corruption by the decoder. *)

(** Incremental decoder over one connection's byte stream. *)
type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> pos:int -> len:int -> unit
(** Append received bytes. *)

val feed_string : decoder -> string -> unit

val pop : decoder -> [ `Frame of t | `Need_more | `Corrupt of string ]
(** Extract the next complete frame.  [`Need_more] when the buffered bytes
    end mid-frame; [`Corrupt] on bad magic, oversized length, CRC mismatch
    or an unknown kind tag — the stream is unusable from that point on and
    every later [pop] returns the same error. *)

(** Zero-copy read path: one mutable record per decoder, overwritten by
    every successful {!pop_view}.  For Data frames the payload is exposed as
    the window [payload_buf.[payload_pos .. payload_pos+payload_len)] into
    the decoder's receive buffer — valid only until the decoder is next fed
    or popped, so consume (or {!view_payload}-copy) it immediately. *)
type view = private {
  mutable kind : kind;
  mutable node : int;  (** Hello *)
  mutable instance : int;  (** Data/Ctl/Submit/Decide *)
  mutable round : int;  (** Data/Ctl/Decide *)
  mutable value : int;  (** Submit proposal / Decide value *)
  mutable payload_buf : Bytes.t;
  mutable payload_pos : int;
  mutable payload_len : int;
}

and kind = K_hello | K_data | K_ctl | K_submit | K_decide | K_catchup

val pop_view : decoder -> [ `View of view | `Need_more | `Corrupt of string ]
(** Like {!pop} but without materializing: no allocation per frame.  The
    returned view aliases decoder-owned storage and is invalidated by the
    next [feed]/[pop]/[pop_view] on the same decoder. *)

val view_payload : view -> string
(** Copy a Data view's payload out as a fresh string. *)

val frame_of_view : view -> t
(** Materialize (copies the payload). *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by popped frames. *)
