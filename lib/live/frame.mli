(** The live wire protocol: length-prefixed, CRC-checked frames.

    Layout (all integers big-endian):

    {v
      +------+------+----------------+-------+
      | 0xFA | 0xCE | len (4 bytes)  | body  |  crc32(body) (4 bytes)
      +------+------+----------------+-------+
    v}

    The body starts with a one-byte kind tag:
    - [0x01] Hello:  node id (4 bytes) — sent once per direction when a
      connection opens, so the receiving end learns who is talking;
    - [0x02] Data:   round (4 bytes) + opaque algorithm payload;
    - [0x03] Ctl:    round (4 bytes) — a synchronization message; like the
      paper's control messages it carries no payload (one tag, one round).

    The same encoder/decoder pair runs under both the socket transport and
    the in-memory loopback, so loopback tests exercise the exact bytes that
    go on a real wire.  Decoding is incremental: a decoder is fed arbitrary
    byte slices (whatever [read] returned) and pops complete frames; a
    truncated tail — what a killed sender leaves in flight — simply never
    completes, and any header/CRC mismatch is reported as corruption, which
    callers treat as a dead peer. *)

type t =
  | Hello of { node : int }
  | Data of { round : int; payload : string }
  | Ctl of { round : int }

val encode : t -> string
(** One full frame, ready for a single sequential write. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val max_body : int
(** Upper bound on accepted body length (64 KiB); a length prefix beyond it
    is corruption, not a huge allocation. *)

(** Incremental decoder over one connection's byte stream. *)
type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> pos:int -> len:int -> unit
(** Append received bytes. *)

val feed_string : decoder -> string -> unit

val pop : decoder -> [ `Frame of t | `Need_more | `Corrupt of string ]
(** Extract the next complete frame.  [`Need_more] when the buffered bytes
    end mid-frame; [`Corrupt] on bad magic, oversized length, CRC mismatch
    or an unknown kind tag — the stream is unusable from that point on and
    every later [pop] returns the same error. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by popped frames. *)
