open Model

type status =
  | Decided of { value : int; at_round : int }
  | Killed of { at_round : int; scripted : bool }
  | Undecided

type round_obs = {
  round : int;
  open_skew : float;
  close_skew : float;
  data_recv : int;
  ctl_recv : int;
}

type t = {
  n : int;
  t : int;
  proposals : int array;
  statuses : status array;
  rounds : round_obs list array;
  max_round : int;
}

let equal_status a b =
  match (a, b) with
  | Decided { value = v1; at_round = r1 }, Decided { value = v2; at_round = r2 }
    ->
    Int.equal v1 v2 && Int.equal r1 r2
  | ( Killed { at_round = r1; scripted = s1 },
      Killed { at_round = r2; scripted = s2 } ) ->
    Int.equal r1 r2 && Bool.equal s1 s2
  | Undecided, Undecided -> true
  | (Decided _ | Killed _ | Undecided), _ -> false

let equal_observable a b =
  a.n = b.n && a.t = b.t
  && a.proposals = b.proposals
  && a.max_round = b.max_round
  && Array.for_all2 equal_status a.statuses b.statuses

let f_actual tr =
  Array.fold_left
    (fun acc -> function Killed _ -> acc + 1 | Decided _ | Undecided -> acc)
    0 tr.statuses

let to_run_result tr =
  {
    Sync_sim.Run_result.n = tr.n;
    t = tr.t;
    proposals = tr.proposals;
    statuses =
      Array.map
        (function
          | Decided { value; at_round } ->
            Sync_sim.Run_result.Decided { value; at_round }
          | Killed { at_round; _ } -> Sync_sim.Run_result.Crashed { at_round }
          | Undecided -> Sync_sim.Run_result.Undecided)
        tr.statuses;
    rounds_executed = tr.max_round;
    data_msgs = 0;
    data_bits = 0;
    sync_msgs = 0;
    sync_bits = 0;
    post_decision_crashes = Pid.Set.empty;
    trace = [];
  }

let decisions tr =
  let out = ref [] in
  Array.iteri
    (fun i -> function
      | Decided { value; at_round } ->
        out := (Pid.of_int (i + 1), value, at_round) :: !out
      | Killed _ | Undecided -> ())
    tr.statuses;
  List.rev !out

let pp_status ppf = function
  | Decided { value; at_round } ->
    Format.fprintf ppf "decided %d @@r%d" value at_round
  | Killed { at_round; scripted } ->
    Format.fprintf ppf "%s @@r%d"
      (if scripted then "killed" else "died-unscripted")
      at_round
  | Undecided -> Format.pp_print_string ppf "undecided"

let pp ppf tr =
  Format.fprintf ppf "@[<v>live n=%d t=%d (f=%d, %d rounds)" tr.n tr.t
    (f_actual tr) tr.max_round;
  Array.iteri
    (fun i st -> Format.fprintf ppf "@,  p%d: %a" (i + 1) pp_status st)
    tr.statuses;
  Format.fprintf ppf "@]"
