open Model

module type ALGO = sig
  include Sync_sim.Algorithm_intf.S

  val encode_msg : msg -> string
  val decode_msg : string -> (msg, string) result
  val send_plan : n:int -> me:Pid.t -> round:int -> Pid.t list * Pid.t list
end

module Rwwc = struct
  include Core.Rwwc

  let encode_msg (Core.Rwwc.Data v) =
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
    Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b 3 (Char.chr (v land 0xff));
    Bytes.to_string b

  let decode_msg s =
    if String.length s <> 4 then
      Error (Printf.sprintf "rwwc payload: expected 4 bytes, got %d" (String.length s))
    else
      Ok
        (Core.Rwwc.Data
           ((Char.code s.[0] lsl 24)
           lor (Char.code s.[1] lsl 16)
           lor (Char.code s.[2] lsl 8)
           lor Char.code s.[3]))

  (* Figure 1: only the round's coordinator sends — data ascending to
     p_{r+1}..p_n, then commits descending p_n..p_{r+1}. *)
  let send_plan ~n ~me ~round =
    if Pid.to_int me = round then
      (Pid.range ~lo:(round + 1) ~hi:n, Pid.range_desc ~hi:n ~lo:(round + 1))
    else ([], [])
end
