type t =
  | Hello of { node : int }
  | Data of { round : int; payload : string }
  | Ctl of { round : int }

let magic0 = '\xFA'
let magic1 = '\xCE'
let max_body = 65536

let equal a b =
  match (a, b) with
  | Hello { node = a }, Hello { node = b } -> Int.equal a b
  | Data { round = r1; payload = p1 }, Data { round = r2; payload = p2 } ->
    Int.equal r1 r2 && String.equal p1 p2
  | Ctl { round = a }, Ctl { round = b } -> Int.equal a b
  | (Hello _ | Data _ | Ctl _), _ -> false

let pp ppf = function
  | Hello { node } -> Format.fprintf ppf "hello(p%d)" node
  | Data { round; payload } ->
    Format.fprintf ppf "data(r%d,%d bytes)" round (String.length payload)
  | Ctl { round } -> Format.fprintf ppf "ctl(r%d)" round

let add_be32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let body_of = function
  | Hello { node } ->
    let b = Buffer.create 5 in
    Buffer.add_char b '\x01';
    add_be32 b node;
    Buffer.contents b
  | Data { round; payload } ->
    let b = Buffer.create (5 + String.length payload) in
    Buffer.add_char b '\x02';
    add_be32 b round;
    Buffer.add_string b payload;
    Buffer.contents b
  | Ctl { round } ->
    let b = Buffer.create 5 in
    Buffer.add_char b '\x03';
    add_be32 b round;
    Buffer.contents b

let encode frame =
  let body = body_of frame in
  let len = String.length body in
  if len > max_body then invalid_arg "Frame.encode: body too large";
  let out = Buffer.create (10 + len) in
  Buffer.add_char out magic0;
  Buffer.add_char out magic1;
  add_be32 out len;
  Buffer.add_string out body;
  add_be32 out (Int32.to_int (Crc32.string body) land 0xFFFFFFFF);
  Buffer.contents out

(* --- Incremental decoding ------------------------------------------------- *)

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable stop : int;  (* one past the last valid byte *)
  mutable corrupt : string option;  (* sticky *)
}

let decoder () =
  { buf = Bytes.create 1024; start = 0; stop = 0; corrupt = None }

let buffered d = d.stop - d.start

let feed d s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Frame.feed: out of bounds";
  let avail = Bytes.length d.buf - d.stop in
  if avail < len then begin
    let live = buffered d in
    let need = live + len in
    let cap = max (2 * Bytes.length d.buf) need in
    let fresh = Bytes.create cap in
    Bytes.blit d.buf d.start fresh 0 live;
    d.buf <- fresh;
    d.start <- 0;
    d.stop <- live
  end;
  Bytes.blit_string s pos d.buf d.stop len;
  d.stop <- d.stop + len

let feed_string d s = feed d s ~pos:0 ~len:(String.length s)

let be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let fail d msg =
  d.corrupt <- Some msg;
  `Corrupt msg

let decode_body d body =
  let blen = String.length body in
  if blen < 5 then fail d "body shorter than its fixed fields"
  else
    let v = be32 (Bytes.of_string body) 1 in
    match body.[0] with
    | '\x01' ->
      if blen <> 5 then fail d "hello body has trailing bytes"
      else `Frame (Hello { node = v })
    | '\x02' -> `Frame (Data { round = v; payload = String.sub body 5 (blen - 5) })
    | '\x03' ->
      if blen <> 5 then fail d "ctl body has trailing bytes"
      else `Frame (Ctl { round = v })
    | c -> fail d (Printf.sprintf "unknown frame kind 0x%02x" (Char.code c))

let pop d =
  match d.corrupt with
  | Some msg -> `Corrupt msg
  | None ->
    let live = buffered d in
    if live < 6 then `Need_more
    else if
      Bytes.get d.buf d.start <> magic0 || Bytes.get d.buf (d.start + 1) <> magic1
    then fail d "bad frame magic"
    else
      let len = be32 d.buf (d.start + 2) in
      if len > max_body then
        fail d (Printf.sprintf "frame length %d exceeds limit %d" len max_body)
      else if live < 6 + len + 4 then `Need_more
      else begin
        let body = Bytes.sub_string d.buf (d.start + 6) len in
        let declared = be32 d.buf (d.start + 6 + len) in
        let actual = Int32.to_int (Crc32.string body) land 0xFFFFFFFF in
        if declared <> actual then
          fail d (Printf.sprintf "CRC mismatch (wire %08x, computed %08x)" declared actual)
        else begin
          d.start <- d.start + 6 + len + 4;
          if d.start = d.stop then begin
            d.start <- 0;
            d.stop <- 0
          end;
          decode_body d body
        end
      end
