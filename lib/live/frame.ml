type t =
  | Hello of { node : int }
  | Data of { instance : int; round : int; payload : string }
  | Ctl of { instance : int; round : int }
  | Submit of { instance : int; proposal : int }
  | Decide of { instance : int; value : int; round : int }
  | Catchup of { instance : int; value : int; round : int }

let magic0 = '\xFA'
let magic1_v1 = '\xCE'
let magic1_v2 = '\xCF'
let magic1_v3 = '\xD0'
let max_body = 65536
let max_instance = (1 lsl 30) - 1

let equal a b =
  match (a, b) with
  | Hello { node = a }, Hello { node = b } -> Int.equal a b
  | ( Data { instance = i1; round = r1; payload = p1 },
      Data { instance = i2; round = r2; payload = p2 } ) ->
    Int.equal i1 i2 && Int.equal r1 r2 && String.equal p1 p2
  | Ctl { instance = i1; round = r1 }, Ctl { instance = i2; round = r2 } ->
    Int.equal i1 i2 && Int.equal r1 r2
  | ( Submit { instance = i1; proposal = p1 },
      Submit { instance = i2; proposal = p2 } ) ->
    Int.equal i1 i2 && Int.equal p1 p2
  | ( Decide { instance = i1; value = v1; round = r1 },
      Decide { instance = i2; value = v2; round = r2 } ) ->
    Int.equal i1 i2 && Int.equal v1 v2 && Int.equal r1 r2
  | ( Catchup { instance = i1; value = v1; round = r1 },
      Catchup { instance = i2; value = v2; round = r2 } ) ->
    Int.equal i1 i2 && Int.equal v1 v2 && Int.equal r1 r2
  | (Hello _ | Data _ | Ctl _ | Submit _ | Decide _ | Catchup _), _ -> false

let pp ppf = function
  | Hello { node } -> Format.fprintf ppf "hello(p%d)" node
  | Data { instance; round; payload } ->
    Format.fprintf ppf "data(i%d,r%d,%d bytes)" instance round
      (String.length payload)
  | Ctl { instance; round } -> Format.fprintf ppf "ctl(i%d,r%d)" instance round
  | Submit { instance; proposal } ->
    Format.fprintf ppf "submit(i%d,v%d)" instance proposal
  | Decide { instance; value; round } ->
    Format.fprintf ppf "decide(i%d,v%d,r%d)" instance value round
  | Catchup { instance; value; round } ->
    Format.fprintf ppf "catchup(i%d,v%d,r%d)" instance value round

let add_be32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

(* Instance ids ride as LEB128 varints: 7 value bits per byte, low group
   first, high bit set on every byte but the last.  The common case — low
   ids in a fresh storm — costs one byte, and the cap at [max_instance]
   bounds decoding to five bytes. *)
let add_varint buf v =
  if v < 0 || v > max_instance then
    invalid_arg "Frame: instance id out of range";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let body_of = function
  | Hello { node } ->
    let b = Buffer.create 5 in
    Buffer.add_char b '\x01';
    add_be32 b node;
    Buffer.contents b
  | Data { instance; round; payload } ->
    let b = Buffer.create (10 + String.length payload) in
    Buffer.add_char b '\x02';
    add_varint b instance;
    add_be32 b round;
    Buffer.add_string b payload;
    Buffer.contents b
  | Ctl { instance; round } ->
    let b = Buffer.create 10 in
    Buffer.add_char b '\x03';
    add_varint b instance;
    add_be32 b round;
    Buffer.contents b
  | Submit { instance; proposal } ->
    let b = Buffer.create 10 in
    Buffer.add_char b '\x04';
    add_varint b instance;
    add_be32 b proposal;
    Buffer.contents b
  | Decide { instance; value; round } ->
    let b = Buffer.create 14 in
    Buffer.add_char b '\x05';
    add_varint b instance;
    add_be32 b round;
    add_be32 b value;
    Buffer.contents b
  | Catchup { instance; value; round } ->
    let b = Buffer.create 14 in
    Buffer.add_char b '\x06';
    add_varint b instance;
    add_be32 b round;
    add_be32 b value;
    Buffer.contents b

let frame_of ~magic1 body =
  let len = String.length body in
  if len > max_body then invalid_arg "Frame.encode: body too large";
  let out = Buffer.create (10 + len) in
  Buffer.add_char out magic0;
  Buffer.add_char out magic1;
  add_be32 out len;
  Buffer.add_string out body;
  add_be32 out (Int32.to_int (Crc32.string body) land 0xFFFFFFFF);
  Buffer.contents out

let encode frame = frame_of ~magic1:magic1_v3 (body_of frame)

let encode_v2 frame =
  (match frame with
  | Catchup _ -> invalid_arg "Frame.encode_v2: kind not in v2"
  | Hello _ | Data _ | Ctl _ | Submit _ | Decide _ -> ());
  frame_of ~magic1:magic1_v2 (body_of frame)

let body_of_v1 = function
  | Hello { node } ->
    let b = Buffer.create 5 in
    Buffer.add_char b '\x01';
    add_be32 b node;
    Buffer.contents b
  | Data { instance; round; payload } ->
    if instance <> 0 then invalid_arg "Frame.encode_v1: nonzero instance id";
    let b = Buffer.create (5 + String.length payload) in
    Buffer.add_char b '\x02';
    add_be32 b round;
    Buffer.add_string b payload;
    Buffer.contents b
  | Ctl { instance; round } ->
    if instance <> 0 then invalid_arg "Frame.encode_v1: nonzero instance id";
    let b = Buffer.create 5 in
    Buffer.add_char b '\x03';
    add_be32 b round;
    Buffer.contents b
  | Submit _ | Decide _ | Catchup _ ->
    invalid_arg "Frame.encode_v1: kind not in v1"

let encode_v1 frame = frame_of ~magic1:magic1_v1 (body_of_v1 frame)

(* --- Incremental decoding ------------------------------------------------- *)

type kind = K_hello | K_data | K_ctl | K_submit | K_decide | K_catchup

type view = {
  mutable kind : kind;
  mutable node : int;
  mutable instance : int;
  mutable round : int;
  mutable value : int;  (* Submit proposal / Decide value *)
  mutable payload_buf : Bytes.t;  (* Data only: window into the decoder *)
  mutable payload_pos : int;
  mutable payload_len : int;
}

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable stop : int;  (* one past the last valid byte *)
  mutable corrupt : string option;  (* sticky *)
  view : view;  (* reused across pops: no per-frame allocation *)
}

let decoder () =
  {
    buf = Bytes.create 1024;
    start = 0;
    stop = 0;
    corrupt = None;
    view =
      {
        kind = K_hello;
        node = 0;
        instance = 0;
        round = 0;
        value = 0;
        payload_buf = Bytes.empty;
        payload_pos = 0;
        payload_len = 0;
      };
  }

let buffered d = d.stop - d.start

let feed d s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Frame.feed: out of bounds";
  let avail = Bytes.length d.buf - d.stop in
  if avail < len then begin
    let live = buffered d in
    let need = live + len in
    if need <= Bytes.length d.buf then begin
      (* Compact in place: sliding the live tail left is cheaper than a
         fresh allocation and keeps the buffer — and any views into it —
         at a stable capacity on the warm path. *)
      Bytes.blit d.buf d.start d.buf 0 live;
      d.start <- 0;
      d.stop <- live
    end
    else begin
      let cap = max (2 * Bytes.length d.buf) need in
      let fresh = Bytes.create cap in
      Bytes.blit d.buf d.start fresh 0 live;
      d.buf <- fresh;
      d.start <- 0;
      d.stop <- live
    end
  end;
  Bytes.blit_string s pos d.buf d.stop len;
  d.stop <- d.stop + len

let feed_string d s = feed d s ~pos:0 ~len:(String.length s)

let be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let fail d msg =
  d.corrupt <- Some msg;
  `Corrupt msg

(* Returns [Some (value, next_off)], or [None] on truncation, a group
   beyond five bytes, or a decoded value over [max_instance]. *)
let read_varint b ~off ~stop =
  let rec go acc shift off =
    if off >= stop || shift > 28 then None
    else
      let c = Char.code (Bytes.get b off) in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then
        if acc > max_instance then None else Some (acc, off + 1)
      else go acc (shift + 7) (off + 1)
  in
  go 0 0 off

(* Parse one CRC-validated body in place: [off..stop) inside [d.buf].
   Fills the decoder's reused [view]; Data payloads stay a window into the
   receive buffer. *)
let parse_body d ~version ~off ~stop =
  if stop - off < 1 then fail d "body shorter than its fixed fields"
  else begin
    let v = d.view in
    let kind = Bytes.get d.buf off in
    let off = off + 1 in
    match (version, kind) with
    | _, '\x01' ->
      if stop - off <> 4 then fail d "hello body has trailing bytes"
      else begin
        v.kind <- K_hello;
        v.node <- be32 d.buf off;
        `View v
      end
    | 1, '\x02' ->
      if stop - off < 4 then fail d "body shorter than its fixed fields"
      else begin
        v.kind <- K_data;
        v.instance <- 0;
        v.round <- be32 d.buf off;
        v.payload_buf <- d.buf;
        v.payload_pos <- off + 4;
        v.payload_len <- stop - off - 4;
        `View v
      end
    | 1, '\x03' ->
      if stop - off <> 4 then fail d "ctl body has trailing bytes"
      else begin
        v.kind <- K_ctl;
        v.instance <- 0;
        v.round <- be32 d.buf off;
        `View v
      end
    | (2 | 3), '\x02' -> begin
      match read_varint d.buf ~off ~stop with
      | None -> fail d "bad varint instance id"
      | Some (instance, off) ->
        if stop - off < 4 then fail d "body shorter than its fixed fields"
        else begin
          v.kind <- K_data;
          v.instance <- instance;
          v.round <- be32 d.buf off;
          v.payload_buf <- d.buf;
          v.payload_pos <- off + 4;
          v.payload_len <- stop - off - 4;
          `View v
        end
    end
    | (2 | 3), '\x03' -> begin
      match read_varint d.buf ~off ~stop with
      | None -> fail d "bad varint instance id"
      | Some (instance, off) ->
        if stop - off <> 4 then fail d "ctl body has trailing bytes"
        else begin
          v.kind <- K_ctl;
          v.instance <- instance;
          v.round <- be32 d.buf off;
          `View v
        end
    end
    | (2 | 3), '\x04' -> begin
      match read_varint d.buf ~off ~stop with
      | None -> fail d "bad varint instance id"
      | Some (instance, off) ->
        if stop - off <> 4 then fail d "submit body has trailing bytes"
        else begin
          v.kind <- K_submit;
          v.instance <- instance;
          v.value <- be32 d.buf off;
          `View v
        end
    end
    | (2 | 3), '\x05' -> begin
      match read_varint d.buf ~off ~stop with
      | None -> fail d "bad varint instance id"
      | Some (instance, off) ->
        if stop - off <> 8 then fail d "decide body has trailing bytes"
        else begin
          v.kind <- K_decide;
          v.instance <- instance;
          v.round <- be32 d.buf off;
          v.value <- be32 d.buf (off + 4);
          `View v
        end
    end
    | 3, '\x06' -> begin
      match read_varint d.buf ~off ~stop with
      | None -> fail d "bad varint instance id"
      | Some (instance, off) ->
        if stop - off <> 8 then fail d "catchup body has trailing bytes"
        else begin
          v.kind <- K_catchup;
          v.instance <- instance;
          v.round <- be32 d.buf off;
          v.value <- be32 d.buf (off + 4);
          `View v
        end
    end
    | _, c -> fail d (Printf.sprintf "unknown frame kind 0x%02x" (Char.code c))
  end

let pop_view d =
  match d.corrupt with
  | Some msg -> `Corrupt msg
  | None ->
    let live = buffered d in
    if live < 6 then `Need_more
    else if Bytes.get d.buf d.start <> magic0 then fail d "bad frame magic"
    else
      let version =
        let m1 = Bytes.get d.buf (d.start + 1) in
        if m1 = magic1_v1 then 1
        else if m1 = magic1_v2 then 2
        else if m1 = magic1_v3 then 3
        else 0
      in
      if version = 0 then fail d "bad frame magic"
      else
        let len = be32 d.buf (d.start + 2) in
        if len > max_body then
          fail d (Printf.sprintf "frame length %d exceeds limit %d" len max_body)
        else if live < 6 + len + 4 then `Need_more
        else begin
          let body = d.start + 6 in
          let declared = be32 d.buf (body + len) in
          let actual = Int32.to_int (Crc32.bytes d.buf ~pos:body ~len) land 0xFFFFFFFF in
          if declared <> actual then
            fail d (Printf.sprintf "CRC mismatch (wire %08x, computed %08x)" declared actual)
          else begin
            match parse_body d ~version ~off:body ~stop:(body + len) with
            | `View v ->
              (* Consuming only moves indices, never bytes, so the view's
                 payload window stays valid until the next [feed]. *)
              d.start <- body + len + 4;
              if d.start = d.stop then begin
                d.start <- 0;
                d.stop <- 0
              end;
              `View v
            | `Corrupt _ as c -> c
          end
        end

let view_payload v = Bytes.sub_string v.payload_buf v.payload_pos v.payload_len

let frame_of_view v =
  match v.kind with
  | K_hello -> Hello { node = v.node }
  | K_data ->
    Data { instance = v.instance; round = v.round; payload = view_payload v }
  | K_ctl -> Ctl { instance = v.instance; round = v.round }
  | K_submit -> Submit { instance = v.instance; proposal = v.value }
  | K_decide -> Decide { instance = v.instance; value = v.value; round = v.round }
  | K_catchup ->
    Catchup { instance = v.instance; value = v.value; round = v.round }

let pop d =
  match pop_view d with
  | `View v -> `Frame (frame_of_view v)
  | `Need_more -> `Need_more
  | `Corrupt msg -> `Corrupt msg
