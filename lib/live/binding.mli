(** What the live runtime needs to know about an algorithm beyond the
    abstract {!Sync_sim.Algorithm_intf.S} contract: how its data messages
    look on a wire, and where its sends of a given round are addressed.

    [send_plan] exists for the judge, not the node: a scripted kill names a
    write {e prefix}, and translating that prefix into an abstract
    {!Model.Crash.point} (which names delivered {e destinations}) requires
    the send order.  It must agree with what [data_sends]/[sync_sends]
    return for a live, undecided process — for the Figure 1 algorithm the
    destinations depend only on [(me, round, n)], never on the estimate. *)

open Model

module type ALGO = sig
  include Sync_sim.Algorithm_intf.S

  val encode_msg : msg -> string
  (** Wire payload of a data message. *)

  val decode_msg : string -> (msg, string) result
  (** Inverse of [encode_msg]; [Error] on malformed payloads (the frame
      layer already filtered corruption, so this only rejects
      wrong-protocol peers). *)

  val send_plan : n:int -> me:Pid.t -> round:int -> Pid.t list * Pid.t list
  (** [(data destinations in send order, control destinations in send
      order)] of a live undecided [me] in [round]. *)
end

module Rwwc : ALGO with type msg = Core.Rwwc.msg and type state = Core.Rwwc.state
(** The paper's Figure 1 algorithm with a 4-byte big-endian estimate
    payload. *)
