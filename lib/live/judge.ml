open Model

type verdict = {
  checks : Spec.Properties.check list;
  differential : (string, string) result option;
  ok : bool;
}

module Abstract = Sync_sim.Engine.Make (Core.Rwwc)

let pp_decisions ds =
  if ds = [] then "none"
  else
    String.concat ", "
      (List.map
         (fun (pid, v, r) -> Printf.sprintf "%s=%d@r%d" (Pid.to_string pid) v r)
         ds)

let differential ~schedule tr =
  match
    Abstract.run
      (Sync_sim.Engine.config ~schedule ~n:tr.Transcript.n ~t:tr.Transcript.t
         ~proposals:tr.Transcript.proposals ())
  with
  | abstract ->
    let live = Transcript.decisions tr in
    let expected = Sync_sim.Run_result.decisions abstract in
    if live = expected then Ok (pp_decisions live)
    else
      Error
        (Printf.sprintf "live decided {%s} but the abstract engine decided {%s}"
           (pp_decisions live) (pp_decisions expected))
  | exception e ->
    Error ("abstract engine failed on the realized schedule: " ^ Printexc.to_string e)

let judge ?schedule tr =
  let f = Transcript.f_actual tr in
  let checks =
    Spec.Properties.uniform_consensus ~bound:(f + 1)
      (Transcript.to_run_result tr)
  in
  let all_scripted =
    Array.for_all
      (function
        | Transcript.Killed { scripted = false; _ } -> false
        | Transcript.Killed _ | Transcript.Decided _ | Transcript.Undecided ->
          true)
      tr.Transcript.statuses
  in
  let differential =
    match schedule with
    | Some schedule when all_scripted -> Some (differential ~schedule tr)
    | Some _ | None -> None
  in
  let ok =
    Spec.Properties.all_ok checks
    && match differential with Some (Error _) -> false | Some (Ok _) | None -> true
  in
  { checks; differential; ok }

let pp ppf v =
  Format.fprintf ppf "@[<v>";
  List.iter (fun c -> Format.fprintf ppf "%a@," Spec.Properties.pp_check c) v.checks;
  (match v.differential with
  | Some (Ok detail) ->
    Format.fprintf ppf "[ok]   abstract-engine-match: %s@," detail
  | Some (Error why) ->
    Format.fprintf ppf "[FAIL] abstract-engine-match: %s@," why
  | None ->
    Format.fprintf ppf "[-]    abstract-engine-match: skipped (unscripted deaths)@,");
  Format.fprintf ppf "verdict: %s@]" (if v.ok then "PASS" else "FAIL")

let to_json tr v =
  let status_json = function
    | Transcript.Decided { value; at_round } ->
      Obs.Json.Obj
        [
          ("state", Obs.Json.String "decided");
          ("value", Obs.Json.Int value);
          ("round", Obs.Json.Int at_round);
        ]
    | Transcript.Killed { at_round; scripted } ->
      Obs.Json.Obj
        [
          ("state", Obs.Json.String "killed");
          ("round", Obs.Json.Int at_round);
          ("scripted", Obs.Json.Bool scripted);
        ]
    | Transcript.Undecided -> Obs.Json.Obj [ ("state", Obs.Json.String "undecided") ]
  in
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int tr.Transcript.n);
      ("t", Obs.Json.Int tr.Transcript.t);
      ("f", Obs.Json.Int (Transcript.f_actual tr));
      ("max_round", Obs.Json.Int tr.Transcript.max_round);
      ( "statuses",
        Obs.Json.List (Array.to_list (Array.map status_json tr.Transcript.statuses)) );
      ( "checks",
        Obs.Json.List
          (List.map
             (fun (c : Spec.Properties.check) ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String c.Spec.Properties.name);
                   ("ok", Obs.Json.Bool c.Spec.Properties.ok);
                   ("detail", Obs.Json.String c.Spec.Properties.detail);
                 ])
             v.checks) );
      ( "abstract_engine_match",
        match v.differential with
        | Some (Ok d) ->
          Obs.Json.Obj [ ("ok", Obs.Json.Bool true); ("detail", Obs.Json.String d) ]
        | Some (Error why) ->
          Obs.Json.Obj [ ("ok", Obs.Json.Bool false); ("detail", Obs.Json.String why) ]
        | None -> Obs.Json.Null );
      ("verdict", Obs.Json.String (if v.ok then "PASS" else "FAIL"));
    ]
