open Model

type config = {
  me : int;
  n : int;
  t : int;
  proposal : int;
  transport : [ `Unix of string | `Tcp of int ];
  big_d : float;
  delta : float;
  max_rounds : int;
  kill : Script.kill option;
  status : out_channel;
  go : in_channel;
  log : out_channel;
}

let handshake_timeout = 10.0

module Make (A : Binding.ALGO) = struct
  type item = Data_item of string | Ctl_item

  type peer = {
    pid : int;
    mutable fd : Unix.file_descr option;
    decoder : Frame.decoder;
    mutable pending : (int * item) list;
        (* frames for rounds we have not opened yet, newest first *)
  }

  let logf cfg fmt =
    Printf.ksprintf
      (fun s ->
        Printf.fprintf cfg.log "[%.6f p%d] %s\n" (Sockets.now ()) cfg.me s;
        flush cfg.log)
      fmt

  let status_event cfg fields =
    output_string cfg.status (Obs.Json.to_string (Obs.Json.Obj fields));
    output_char cfg.status '\n';
    flush cfg.status

  let mark_dead cfg peer why =
    match peer.fd with
    | None -> ()
    | Some fd ->
      logf cfg "peer p%d gone: %s" peer.pid why;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      peer.fd <- None

  (* All Hello frames have the same size, so the accept side can read
     exactly one — no peer bytes beyond the handshake ever land in the
     wrong decoder. *)
  let hello_size = String.length (Frame.encode (Frame.Hello { node = 1 }))

  let read_exact ~deadline fd n =
    let buf = Bytes.create n in
    let rec go off =
      if off >= n then Ok (Bytes.to_string buf)
      else
        let dt = deadline -. Sockets.now () in
        if dt <= 0.0 then Error "handshake: timed out"
        else
          match Unix.select [ fd ] [] [] dt with
          | [], _, _ -> go off
          | _ :: _, _, _ -> (
            match Unix.read fd buf off (n - off) with
            | 0 -> Error "handshake: peer closed"
            | k -> go (off + k)
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              go off)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  (* Listen first, dial the higher ids (with retry — peers come up in any
     order), then accept the lower ids: every edge of the mesh has exactly
     one dialer, so the handshake cannot deadlock. *)
  let establish cfg peers =
    let deadline = Sockets.now () +. handshake_timeout in
    let lfd =
      match Sockets.listen (Sockets.addr_of ~transport:cfg.transport cfg.me) with
      | Ok fd -> fd
      | Error e -> failwith ("listen: " ^ Sockets.error_to_string e)
    in
    let hello = Frame.encode (Frame.Hello { node = cfg.me }) in
    for p = cfg.me + 1 to cfg.n do
      match
        Sockets.connect_retry ~deadline (Sockets.addr_of ~transport:cfg.transport p)
      with
      | Error e ->
        failwith (Printf.sprintf "connect to p%d: %s" p (Sockets.error_to_string e))
      | Ok fd -> (
        match Sockets.write_all ~deadline fd hello with
        | Ok () ->
          peers.(p - 1).fd <- Some fd;
          logf cfg "dialed p%d" p
        | Error e ->
          failwith
            (Printf.sprintf "hello to p%d: %s" p (Sockets.error_to_string e)))
    done;
    for _ = 1 to cfg.me - 1 do
      match Sockets.accept_timeout ~deadline lfd with
      | Error e -> failwith (Sockets.error_to_string e)
      | Ok fd -> (
        match read_exact ~deadline fd hello_size with
        | Error why -> failwith why
        | Ok bytes -> (
          let d = Frame.decoder () in
          Frame.feed_string d bytes;
          match Frame.pop d with
          | `Frame (Frame.Hello { node }) when node >= 1 && node < cfg.me ->
            if peers.(node - 1).fd <> None then
              failwith (Printf.sprintf "handshake: duplicate hello from p%d" node);
            peers.(node - 1).fd <- Some fd;
            logf cfg "accepted p%d" node
          | `Frame f ->
            failwith (Format.asprintf "handshake: unexpected %a" Frame.pp f)
          | `Corrupt why -> failwith ("handshake: " ^ why)
          | `Need_more -> failwith "handshake: short hello"))
    done;
    Unix.close lfd

  let wait_go cfg =
    match input_line cfg.go with
    | line -> (
      match String.split_on_char ' ' (String.trim line) with
      | [ "go"; t0 ] -> (
        match float_of_string_opt t0 with
        | Some t0 -> t0
        | None -> failwith ("bad go line: " ^ line))
      | _ -> failwith ("bad go line: " ^ line))
    | exception End_of_file -> failwith "supervisor vanished before go"

  (* The scripted crash point: write budget exhausted.  Stop and wait for
     the supervisor's SIGKILL — the stop is the deterministic marker, the
     kill is real. *)
  let halt_scripted cfg =
    logf cfg "scripted kill point reached: stopping for the supervisor";
    Unix.kill (Unix.getpid ()) Sys.sigstop;
    let rec forever () =
      ignore (Unix.sleep 3600);
      forever ()
    in
    forever ()

  let send_round cfg peers ~round state =
    let data = A.data_sends state ~round in
    let ctl = A.sync_sends state ~round in
    let writes =
      List.map
        (fun (dest, msg) ->
          ( Pid.to_int dest,
            Frame.encode
              (Frame.Data { instance = 0; round; payload = A.encode_msg msg })
          ))
        data
      @ List.map
          (fun dest ->
            (Pid.to_int dest, Frame.encode (Frame.Ctl { instance = 0; round })))
          ctl
    in
    let budget =
      match cfg.kill with
      | Some k when k.Script.round = round ->
        Some
          (Script.writes_completed k.Script.phase ~data:(List.length data)
             ~ctl:(List.length ctl))
      | Some _ | None -> None
    in
    let deadline = Sockets.now () +. cfg.big_d in
    let rec emit k = function
      | [] -> ()
      | (dest, bytes) :: rest ->
        if budget = Some k then halt_scripted cfg
        else begin
          (if dest = cfg.me then
             (* self-delivery shares the wire path: same frames, own decoder *)
             Frame.feed_string peers.(dest - 1).decoder bytes
           else
             let peer = peers.(dest - 1) in
             match peer.fd with
             | None -> ()
             | Some fd -> (
               match Sockets.write_all ~deadline fd bytes with
               | Ok () -> ()
               | Error e -> mark_dead cfg peer (Sockets.error_to_string e)));
          emit (k + 1) rest
        end
    in
    emit 0 writes;
    match budget with Some _ -> halt_scripted cfg | None -> ()

  let collect cfg peers ~round ~close data syncs =
    let consume peer = function
      | Data_item payload -> (
        match A.decode_msg payload with
        | Ok m -> data := (Pid.of_int peer.pid, m) :: !data
        | Error why -> mark_dead cfg peer ("bad payload: " ^ why))
      | Ctl_item -> syncs := Pid.of_int peer.pid :: !syncs
    in
    let rec drain peer =
      match Frame.pop peer.decoder with
      | `Need_more -> ()
      | `Corrupt why -> mark_dead cfg peer ("corrupt stream: " ^ why)
      | `Frame f ->
        (match f with
        | Frame.Hello _ | Frame.Submit _ | Frame.Decide _ | Frame.Catchup _ ->
          ()
        | Frame.Data { round = fr; payload; _ } ->
          if fr = round then consume peer (Data_item payload)
          else if fr > round then
            peer.pending <- (fr, Data_item payload) :: peer.pending
          else logf cfg "late data frame (r%d) from p%d" fr peer.pid
        | Frame.Ctl { round = fr; _ } ->
          if fr = round then consume peer Ctl_item
          else if fr > round then peer.pending <- (fr, Ctl_item) :: peer.pending
          else logf cfg "late ctl frame (r%d) from p%d" fr peer.pid);
        drain peer
    in
    (* First serve anything a fast peer delivered while we were still in an
       earlier round, then whatever the self-link already holds. *)
    Array.iter
      (fun peer ->
        let mine, rest =
          List.partition (fun (fr, _) -> fr = round) (List.rev peer.pending)
        in
        peer.pending <- List.rev rest;
        List.iter (fun (_, it) -> consume peer it) mine;
        if peer.pid = cfg.me then drain peer)
      peers;
    let buf = Bytes.create 65536 in
    let rec loop () =
      let dt = close -. Sockets.now () in
      if dt > 0.0 then begin
        let fds =
          Array.to_list peers
          |> List.filter_map (fun p -> if p.pid = cfg.me then None else p.fd)
        in
        (match Unix.select fds [] [] dt with
        | [], _, _ -> ()
        | ready, _, _ ->
          Array.iter
            (fun peer ->
              match peer.fd with
              | Some fd when peer.pid <> cfg.me && List.memq fd ready -> (
                match Sockets.read_chunk fd buf with
                | `Data k ->
                  Frame.feed peer.decoder (Bytes.unsafe_to_string buf) ~pos:0
                    ~len:k;
                  drain peer
                | `Closed -> mark_dead cfg peer "eof"
                | `Nothing -> ())
              | _ -> ())
            peers
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      end
    in
    loop ()

  let main cfg =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let peers =
      Array.init cfg.n (fun i ->
          { pid = i + 1; fd = None; decoder = Frame.decoder (); pending = [] })
    in
    establish cfg peers;
    Array.iter
      (fun p -> match p.fd with Some fd -> Unix.set_nonblock fd | None -> ())
      peers;
    status_event cfg
      [ ("event", Obs.Json.String "ready"); ("node", Obs.Json.Int cfg.me) ];
    let t0 = wait_go cfg in
    logf cfg "go: t0 in %.3f s" (t0 -. Sockets.now ());
    let state =
      ref (A.init ~n:cfg.n ~t:cfg.t ~me:(Pid.of_int cfg.me) ~proposal:cfg.proposal)
    in
    let decided = ref false in
    let r = ref 1 in
    while (not !decided) && !r <= cfg.max_rounds do
      let round = !r in
      let open_t = t0 +. (float_of_int (round - 1) *. (cfg.big_d +. cfg.delta)) in
      let close_t = open_t +. cfg.big_d in
      Sockets.sleep_until open_t;
      let open_skew = Sockets.now () -. open_t in
      send_round cfg peers ~round !state;
      let data = ref [] and syncs = ref [] in
      collect cfg peers ~round ~close:close_t data syncs;
      let close_skew = Sockets.now () -. close_t in
      let data = List.sort (fun (a, _) (b, _) -> Pid.compare a b) !data in
      let syncs = List.sort Pid.compare !syncs in
      let st, decision = A.compute !state ~round ~data ~syncs in
      state := st;
      status_event cfg
        [
          ("event", Obs.Json.String "round");
          ("node", Obs.Json.Int cfg.me);
          ("round", Obs.Json.Int round);
          ("open_skew", Obs.Json.Float open_skew);
          ("close_skew", Obs.Json.Float close_skew);
          ("data_recv", Obs.Json.Int (List.length data));
          ("ctl_recv", Obs.Json.Int (List.length syncs));
        ];
      (match decision with
      | Some value ->
        decided := true;
        logf cfg "decided %d in round %d" value round;
        status_event cfg
          [
            ("event", Obs.Json.String "decide");
            ("node", Obs.Json.Int cfg.me);
            ("value", Obs.Json.Int value);
            ("round", Obs.Json.Int round);
          ]
      | None -> ());
      incr r
    done;
    if not !decided then begin
      logf cfg "round horizon reached without deciding";
      status_event cfg
        [ ("event", Obs.Json.String "undecided"); ("node", Obs.Json.Int cfg.me) ]
    end;
    Array.iter (fun p -> mark_dead cfg p "shutdown") peers
end

module Rwwc_node = Make (Binding.Rwwc)

module Rwwc = struct
  let main = Rwwc_node.main
end
