open Model

type phase =
  | Before_send
  | During_data of int
  | During_ctl of int
  | After_send

type kill = { pid : Pid.t; round : int; phase : phase }

type t = kill list

let phase_to_string = function
  | Before_send -> "before"
  | During_data k -> Printf.sprintf "data=%d" k
  | During_ctl k -> Printf.sprintf "ctl=%d" k
  | After_send -> "after"

let kill_to_string k =
  Printf.sprintf "%s@r%d:%s" (Pid.to_string k.pid) k.round (phase_to_string k.phase)

let to_string script = String.concat " " (List.map kill_to_string script)

let pp ppf script =
  Format.pp_print_string ppf
    (if script = [] then "no-kill" else to_string script)

let parse_kill s =
  let fail () =
    Error
      (Printf.sprintf
         "cannot parse kill %S (expected pN@rN:before|data=K|ctl=K|after)" s)
  in
  let int_of s = match int_of_string_opt s with Some i -> Ok i | None -> fail () in
  match String.index_opt s '@' with
  | None -> fail ()
  | Some at -> (
    match String.index_from_opt s at ':' with
    | None -> fail ()
    | Some colon ->
      let pid_s = String.sub s 0 at in
      let round_s = String.sub s (at + 1) (colon - at - 1) in
      let phase_s = String.sub s (colon + 1) (String.length s - colon - 1) in
      let ( let* ) = Result.bind in
      let* pid =
        if String.length pid_s >= 2 && pid_s.[0] = 'p' then
          let* i = int_of (String.sub pid_s 1 (String.length pid_s - 1)) in
          if i >= 1 then Ok (Pid.of_int i) else fail ()
        else fail ()
      in
      let* round =
        if String.length round_s >= 2 && round_s.[0] = 'r' then
          let* r = int_of (String.sub round_s 1 (String.length round_s - 1)) in
          if r >= 1 then Ok r else fail ()
        else fail ()
      in
      let* phase =
        match phase_s with
        | "before" -> Ok Before_send
        | "after" -> Ok After_send
        | _ -> (
          match String.index_opt phase_s '=' with
          | Some eq -> (
            let step = String.sub phase_s 0 eq in
            let* k =
              int_of (String.sub phase_s (eq + 1) (String.length phase_s - eq - 1))
            in
            if k < 0 then fail ()
            else
              match step with
              | "data" -> Ok (During_data k)
              | "ctl" -> Ok (During_ctl k)
              | _ -> fail ())
          | None -> fail ())
      in
      Ok { pid; round; phase })

let find script pid = List.find_opt (fun k -> Pid.equal k.pid pid) script

let validate ~n ~max_kills script =
  let ( let* ) = Result.bind in
  let* () =
    if List.length script <= max_kills then Ok ()
    else
      Error
        (Printf.sprintf "script kills %d processes but at most %d may crash"
           (List.length script) max_kills)
  in
  List.fold_left
    (fun acc k ->
      let* () = acc in
      let* () =
        if Pid.to_int k.pid <= n then Ok ()
        else Error (Printf.sprintf "%s outside 1..%d" (Pid.to_string k.pid) n)
      in
      if
        List.exists
          (fun k' -> k' != k && Pid.equal k'.pid k.pid)
          script
      then Error (Printf.sprintf "%s is killed twice" (Pid.to_string k.pid))
      else Ok ())
    (Ok ()) script

let writes_completed phase ~data ~ctl =
  match phase with
  | Before_send -> 0
  | During_data k -> min k data
  | During_ctl k -> data + min k ctl
  | After_send -> data + ctl

let default ~n ~f =
  List.init f (fun i ->
      let r = i + 1 in
      let data = max 0 (n - r) in
      let half = max 1 ((data + 1) / 2) in
      let phase =
        if i mod 2 = 0 then During_data (min half data) else During_ctl half
      in
      { pid = Pid.of_int r; round = r; phase })

let to_schedule ~send_plan script =
  Schedule.of_list
    (List.map
       (fun k ->
         let data_order, ctl_order = send_plan ~me:k.pid ~round:k.round in
         let point =
           match k.phase with
           | Before_send -> Crash.Before_send
           | During_data i ->
             let rec take acc n = function
               | d :: rest when n > 0 -> take (d :: acc) (n - 1) rest
               | _ -> List.rev acc
             in
             let delivered = take [] i data_order in
             if List.length delivered = List.length data_order then
               (* all data written: on the wire this is indistinguishable
                  from dying just before the first control write *)
               Crash.After_data 0
             else Crash.During_data (Pid.Set.of_list delivered)
           | During_ctl i -> Crash.After_data (min i (List.length ctl_order))
           | After_send -> Crash.After_send
         in
         (k.pid, Crash.make ~round:k.round point))
       script)
