(** The self-healing supervisor: spawns one OS process per node, injects
    the scripted kills for real, and turns whatever survives into a judged
    transcript.

    Lifecycle:

    + fork the fleet (one [Node] process each, with a status pipe back to
      the supervisor, a go pipe forward, and a per-node log file);
    + wait for every node's [ready] — a node that dies during startup is
      respawned with exponential backoff, up to [respawn_budget] times (the
      self-healing window: before the mesh forms, a fresh process can still
      take its place); exhausting the budget or the readiness timeout
      aborts the run;
    + broadcast [go t0], the common round-clock origin;
    + collect events, watching children with [waitpid(WUNTRACED)]: a
      SIGSTOP is a node at its scripted crash point, answered with a real
      [SIGKILL]; an unexpected death is absorbed as one more (unscripted)
      crash and the run continues; a watchdog kills stragglers past the
      round horizon;
    + always reap and kill every child and remove the socket files, then
      judge the transcript ({!Judge.judge}, with the differential schedule
      from {!Script.to_schedule}).

    Every self-healing action is also emitted as an {!event} through the
    configured {!Obs.Instrument} sink, so soaks can count respawns and
    absorptions instead of grepping logs.

    Runs the paper's Figure 1 algorithm ({!Binding.Rwwc}). *)

type event =
  | Respawned of { node : int; attempt : int }
      (** a node that died before the mesh formed was replaced by a fresh
          process; [attempt] counts from 1 up to the respawn budget *)
  | Absorbed of { node : int; at_round : int }
      (** an unscripted post-mesh death was absorbed as one more crash and
          the run continued *)

val pp_event : Format.formatter -> event -> unit

type transport =
  [ `Unix of string  (** workspace dir: sockets, logs *)
  | `Tcp of string * int  (** workspace dir for logs, TCP port base *) ]

type config = {
  n : int;
  t : int;
  script : Script.t;
  transport : transport;
  big_d : float;
  delta : float;
  proposals : int array option;  (** default: distinct proposals 1..n *)
  max_rounds : int option;  (** default: [t + 2] *)
  verbose : bool;  (** progress lines on stderr *)
  respawn_budget : int;
      (** startup respawns allowed per node (default 1 — the historical
          respawn-once window) *)
  respawn_backoff : float;
      (** base respawn delay in seconds, doubling per attempt (default
          0.05) *)
  instrument : event Obs.Instrument.t;
      (** sink for {!event}s (default {!Obs.Instrument.null}) *)
  chaos_startup_kills : int list;
      (** fault injection for soaks: each listed node is SIGKILLed by the
          supervisor right after (re)spawn, before it can become ready —
          listing a node twice kills its replacement too.  Default []. *)
  chaos_run_kills : (int * float) list;
      (** fault injection for soaks: node [i] is SIGKILLed [delay] seconds
          after [t0] — an unscripted death the run must absorb.
          Default []. *)
}

val config :
  ?proposals:int array ->
  ?max_rounds:int ->
  ?verbose:bool ->
  ?respawn_budget:int ->
  ?respawn_backoff:float ->
  ?instrument:event Obs.Instrument.t ->
  ?chaos_startup_kills:int list ->
  ?chaos_run_kills:(int * float) list ->
  n:int ->
  t:int ->
  script:Script.t ->
  transport:transport ->
  big_d:float ->
  delta:float ->
  unit ->
  config

val workspace : config -> string
(** The directory holding node logs (and Unix-domain sockets). *)

val run : config -> (Transcript.t * Judge.verdict, string) result
(** [Error] only for runs that never got going (invalid script, startup
    failure, respawn budget exhausted); once the fleet is running,
    crashes — scripted or not — are data, not errors. *)
