(** The self-healing supervisor: spawns one OS process per node, injects
    the scripted kills for real, and turns whatever survives into a judged
    transcript.

    Lifecycle:

    + fork the fleet (one [Node] process each, with a status pipe back to
      the supervisor, a go pipe forward, and a per-node log file);
    + wait for every node's [ready] — a node that dies during startup is
      respawned once (the self-healing window: before the mesh forms, a
      fresh process can still take its place), a second death or a
      readiness timeout aborts the run;
    + broadcast [go t0], the common round-clock origin;
    + collect events, watching children with [waitpid(WUNTRACED)]: a
      SIGSTOP is a node at its scripted crash point, answered with a real
      [SIGKILL]; an unexpected death is absorbed as one more (unscripted)
      crash and the run continues; a watchdog kills stragglers past the
      round horizon;
    + always reap and kill every child and remove the socket files, then
      judge the transcript ({!Judge.judge}, with the differential schedule
      from {!Script.to_schedule}).

    Runs the paper's Figure 1 algorithm ({!Binding.Rwwc}). *)

type transport =
  [ `Unix of string  (** workspace dir: sockets, logs *)
  | `Tcp of string * int  (** workspace dir for logs, TCP port base *) ]

type config = {
  n : int;
  t : int;
  script : Script.t;
  transport : transport;
  big_d : float;
  delta : float;
  proposals : int array option;  (** default: distinct proposals 1..n *)
  max_rounds : int option;  (** default: [t + 2] *)
  verbose : bool;  (** progress lines on stderr *)
}

val config :
  ?proposals:int array ->
  ?max_rounds:int ->
  ?verbose:bool ->
  n:int ->
  t:int ->
  script:Script.t ->
  transport:transport ->
  big_d:float ->
  delta:float ->
  unit ->
  config

val workspace : config -> string
(** The directory holding node logs (and Unix-domain sockets). *)

val run : config -> (Transcript.t * Judge.verdict, string) result
(** [Error] only for runs that never got going (invalid script, startup
    failure); once the fleet is running, crashes — scripted or not — are
    data, not errors. *)
