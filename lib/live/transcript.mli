(** What a live run leaves behind: per-node outcomes and per-round timing,
    collected by the supervisor over the status pipes (socket mode) or
    produced directly by the deterministic loopback engine.

    The transcript is the judge's only input — the same record regardless
    of transport, so the loopback tests and the real-socket smoke assert
    the identical contract. *)

open Model

type status =
  | Decided of { value : int; at_round : int }
  | Killed of { at_round : int; scripted : bool }
      (** [scripted = false] marks an unexpected process death the
          supervisor absorbed (self-healing: the run continues and the
          death is judged as one more crash) *)
  | Undecided  (** alive at the round horizon without deciding *)

type round_obs = {
  round : int;
  open_skew : float;  (** seconds between nominal round start and first write *)
  close_skew : float;  (** seconds between nominal round close and compute *)
  data_recv : int;
  ctl_recv : int;
}

type t = {
  n : int;
  t : int;
  proposals : int array;
  statuses : status array;  (** index [i] holds process [i+1] *)
  rounds : round_obs list array;  (** chronological, per process *)
  max_round : int;  (** latest round any process executed *)
}

val equal_status : status -> status -> bool

val equal_observable : t -> t -> bool
(** Statuses and round horizon — timing skews excluded (wall-clock noise in
    socket mode, zero in loopback).  The determinism assertion of the
    loopback engine. *)

val f_actual : t -> int
(** Processes that died, scripted or not — the paper's [f]. *)

val to_run_result : t -> Sync_sim.Run_result.t
(** The transcript as an abstract run outcome, so the existing
    {!Spec.Properties} checkers judge live runs unchanged.  Wire counters
    are zero (the live runtime counts frames, not Theorem 2 bits); the
    trace is empty. *)

val decisions : t -> (Pid.t * int * int) list

val pp : Format.formatter -> t -> unit
