(** The in-memory loopback transport: the live wire protocol without the
    sockets.

    Each ordered process pair owns a byte stream; a "write" appends an
    encoded {!Frame} to it and a recipient drains its streams through the
    same incremental decoder the socket transport uses — so every byte that
    the loopback delivers went through encode, CRC and decode exactly as it
    would on a real wire.  Rounds are lockstep (no clock), processes step
    in pid order, and scripted kills truncate the victim's write sequence
    at the scripted position; the result is a fully deterministic
    {!Transcript.t}, which is what `dune runtest` pins. *)

module Make (A : Binding.ALGO) : sig
  val run :
    ?proposals:int array ->
    ?max_rounds:int ->
    n:int ->
    t:int ->
    script:Script.t ->
    unit ->
    Transcript.t
  (** Defaults: distinct proposals [1..n], [max_rounds = t + 2].  Raises
      [Invalid_argument] on an invalid script (bad pid, duplicate victim,
      more than [t] kills) and [Failure] on wire corruption (which would be
      a codec bug — loopback streams cannot be damaged in flight). *)
end

module Rwwc : sig
  val run :
    ?proposals:int array ->
    ?max_rounds:int ->
    n:int ->
    t:int ->
    script:Script.t ->
    unit ->
    Transcript.t
end
(** The Figure 1 algorithm over the loopback transport. *)
