(** One live consensus process: the per-node main loop forked by the
    supervisor.

    The node builds the full socket mesh (listen first, dial higher ids,
    accept lower ids — deadlock-free), reports readiness on its status
    pipe, waits for the supervisor's [go t0] line, and then runs
    deadline-synchronized rounds: round [r] opens at
    [t0 + (r-1)(D + delta)], the send phase is one sequence of sequential
    writes (data frames, then control frames), receiving lasts until the
    close at [open + D], and the computation runs inside the [delta]
    slack.  A scripted kill completes exactly its write budget and then
    SIGSTOPs itself — the supervisor observes the stop and delivers the
    real [SIGKILL], so the bytes on the wire are exactly the prefix the
    extended model's crash semantics promise.

    Dead peers (EOF, send timeout, corrupt stream) are degraded to
    "crashed" and the round structure carries on — the algorithm is the
    thing that must tolerate them. *)

type config = {
  me : int;
  n : int;
  t : int;
  proposal : int;
  transport : [ `Unix of string | `Tcp of int ];
  big_d : float;  (** the paper's [D]: send + receive window per round *)
  delta : float;  (** the paper's [delta]: computation slack per round *)
  max_rounds : int;
  kill : Script.kill option;  (** this node's scripted death, if any *)
  status : out_channel;  (** JSON event lines to the supervisor *)
  go : in_channel;  (** the supervisor's [go t0] line *)
  log : out_channel;
}

module Make (_ : Binding.ALGO) : sig
  val main : config -> unit
  (** Runs to decision, round horizon, or scripted stop.  Raises on
      unrecoverable setup failures (mesh never formed); the forking parent
      turns that into a nonzero exit. *)
end

module Rwwc : sig
  val main : config -> unit
end
