open Model

module Make (A : Binding.ALGO) = struct
  type node = {
    mutable state : A.state;
    mutable status : Transcript.status;
    mutable rounds : Transcript.round_obs list;  (* reverse chronological *)
  }

  let live node =
    match node.status with
    | Transcript.Undecided -> true
    | Transcript.Decided _ | Transcript.Killed _ -> false

  let run ?proposals ?max_rounds ~n ~t ~script () =
    let proposals =
      match proposals with
      | Some p -> p
      | None -> Sync_sim.Engine.distinct_proposals n
    in
    if Array.length proposals <> n then
      invalid_arg "Loopback.run: proposals length <> n";
    (match Script.validate ~n ~max_kills:t script with
    | Ok () -> ()
    | Error why -> invalid_arg ("Loopback.run: " ^ why));
    let max_rounds = match max_rounds with Some m -> m | None -> t + 2 in
    let nodes =
      Array.init n (fun i ->
          {
            state =
              A.init ~n ~t ~me:(Pid.of_int (i + 1)) ~proposal:proposals.(i);
            status = Transcript.Undecided;
            rounds = [];
          })
    in
    (* links.(s).(d): the byte stream from p_{s+1} to p_{d+1}. *)
    let links = Array.init n (fun _ -> Array.init n (fun _ -> Frame.decoder ())) in
    let executed = ref 0 in
    let r = ref 1 in
    while !r <= max_rounds && Array.exists live nodes do
      let round = !r in
      executed := round;
      (* Send phase: sequential writes, data step then control step, with
         scripted kills truncating at the scripted write index. *)
      Array.iteri
        (fun i node ->
          if live node then begin
            let me = Pid.of_int (i + 1) in
            let data = A.data_sends node.state ~round in
            let syncs = A.sync_sends node.state ~round in
            let writes =
              List.map
                (fun (dest, msg) ->
                  ( dest,
                    Frame.encode
                      (Frame.Data
                         { instance = 0; round; payload = A.encode_msg msg }) ))
                data
              @ List.map
                  (fun dest ->
                    (dest, Frame.encode (Frame.Ctl { instance = 0; round })))
                  syncs
            in
            let budget =
              match Script.find script me with
              | Some k when k.Script.round = round ->
                Some
                  (Script.writes_completed k.Script.phase
                     ~data:(List.length data) ~ctl:(List.length syncs))
              | Some _ | None -> None
            in
            let rec emit k = function
              | [] -> ()
              | (dest, bytes) :: rest ->
                if budget = Some k then ()
                else begin
                  Frame.feed_string links.(i).(Pid.to_int dest - 1) bytes;
                  emit (k + 1) rest
                end
            in
            emit 0 writes;
            match budget with
            | Some _ ->
              node.status <- Transcript.Killed { at_round = round; scripted = true }
            | None -> ()
          end)
        nodes;
      (* Compute phase: drain each incoming stream through the shared
         decoder, then run the algorithm exactly as the abstract engine
         would — received data and control senders in increasing pid
         order. *)
      Array.iteri
        (fun i node ->
          if live node then begin
            let data = ref [] and syncs = ref [] in
            for s = 0 to n - 1 do
              let d = links.(s).(i) in
              let rec drain () =
                match Frame.pop d with
                | `Need_more -> ()
                | `Corrupt why -> failwith ("Loopback: corrupt stream: " ^ why)
                | `Frame (Frame.Hello _ | Frame.Submit _ | Frame.Decide _
                         | Frame.Catchup _) ->
                  drain ()
                | `Frame (Frame.Data { round = fr; payload; _ }) ->
                  if fr <> round then
                    failwith
                      (Printf.sprintf "Loopback: round %d frame in round %d" fr
                         round);
                  (match A.decode_msg payload with
                  | Ok msg -> data := (Pid.of_int (s + 1), msg) :: !data
                  | Error why -> failwith ("Loopback: bad payload: " ^ why));
                  drain ()
                | `Frame (Frame.Ctl { round = fr; _ }) ->
                  if fr <> round then
                    failwith
                      (Printf.sprintf "Loopback: round %d ctl in round %d" fr
                         round);
                  syncs := Pid.of_int (s + 1) :: !syncs;
                  drain ()
              in
              drain ()
            done;
            let data =
              List.sort (fun (a, _) (b, _) -> Pid.compare a b) !data
            in
            let syncs = List.sort Pid.compare !syncs in
            let state, decision = A.compute node.state ~round ~data ~syncs in
            node.state <- state;
            node.rounds <-
              {
                Transcript.round = round;
                open_skew = 0.0;
                close_skew = 0.0;
                data_recv = List.length data;
                ctl_recv = List.length syncs;
              }
              :: node.rounds;
            match decision with
            | Some value ->
              node.status <- Transcript.Decided { value; at_round = round }
            | None -> ()
          end)
        nodes;
      incr r
    done;
    {
      Transcript.n;
      t;
      proposals;
      statuses = Array.map (fun node -> node.status) nodes;
      rounds = Array.map (fun node -> List.rev node.rounds) nodes;
      max_round = !executed;
    }
end

module Rwwc_engine = Make (Binding.Rwwc)

module Rwwc = struct
  let run = Rwwc_engine.run
end
