(** Scripted process kills for the live runtime.

    A kill names a victim, a round, and a position inside the round's send
    phase, counted in completed {e writes} — the natural coordinate on a
    real wire, where the two send steps of the extended model are one
    sequence of sequential writes (data first, then ordered control).
    Killing a process after [k] writes therefore yields exactly the crash
    semantics of Section 2: an order-prefix of the data destinations, or
    all data plus a prefix of the control sequence.

    Concrete syntax (one kill per victim):
    {v
      p3@r2:before      killed before any round-2 write
      p1@r1:data=2      killed after 2 data writes of round 1
      p2@r2:ctl=1       killed after all data and 1 control write
      p4@r3:after       killed after the full send phase, before computing
    v} *)

open Model

type phase =
  | Before_send
  | During_data of int  (** completed data writes *)
  | During_ctl of int  (** all data writes plus this many control writes *)
  | After_send

type kill = { pid : Pid.t; round : int; phase : phase }

type t = kill list

val parse_kill : string -> (kill, string) result
val phase_to_string : phase -> string
val kill_to_string : kill -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val find : t -> Pid.t -> kill option
(** The victim's kill, if scripted. *)

val validate : n:int -> max_kills:int -> t -> (unit, string) result
(** Pids in range, rounds positive, at most one kill per victim, at most
    [max_kills] kills in total. *)

val writes_completed : phase -> data:int -> ctl:int -> int
(** How many of the round's [data + ctl] sequential writes complete before
    the victim stops, clamped to the actual send counts. *)

val default : n:int -> f:int -> t
(** The canonical f-kill script used by [bin live --f]: coordinators
    [p_1 .. p_f] die in their own rounds, alternating mid-data-step and
    mid-control-step kills (each after half the writes of that step) — the
    acceptance scenario of the live runtime. *)

val to_schedule :
  send_plan:(me:Pid.t -> round:int -> Pid.t list * Pid.t list) ->
  t ->
  Schedule.t
(** The abstract crash schedule a faithfully executed script realizes,
    for differential judging against {!Sync_sim.Engine}: [During_data k]
    becomes {!Model.Crash.During_data} of the first [k] planned data
    destinations, [During_ctl k] becomes {!Model.Crash.After_data}[ k]. *)
