(** CRC-32 (IEEE 802.3, the zlib/Ethernet polynomial), table-driven.

    Guards every live wire frame: a frame whose body fails its checksum is
    treated as line corruption and the connection it arrived on as dead —
    never fed to the algorithm.  Self-contained so the live runtime adds no
    dependency beyond [unix]. *)

val digest : ?init:int32 -> string -> pos:int -> len:int -> int32
(** Checksum of [len] bytes of the string starting at [pos].  [init]
    continues a running digest (default: fresh). *)

val string : string -> int32
(** [string s] = [digest s ~pos:0 ~len:(String.length s)]. *)

val bytes : ?init:int32 -> Bytes.t -> pos:int -> len:int -> int32
(** Same digest over a [Bytes.t] range, without copying — the decoder uses
    this to checksum a frame body in place inside its receive buffer. *)
