open Model

(* The engine installs its delivery closures once per execution; the
   emitter record itself lives in the run scratch, so a steady-state send
   phase allocates nothing.  Crash filtering (During_data subsets,
   After_data prefixes) happens inside the closures — the algorithm always
   emits its full plan and never sees the adversary. *)

type 'msg t = {
  mutable on_data : int -> 'msg -> unit;
  mutable on_sync : int -> unit;
}

let ignore_data _ _ = ()
let ignore_sync _ = ()
let create () = { on_data = ignore_data; on_sync = ignore_sync }

let install t ~on_data ~on_sync =
  t.on_data <- on_data;
  t.on_sync <- on_sync

let data t dest msg = t.on_data (Pid.to_int dest) msg
let sync t dest = t.on_sync (Pid.to_int dest)
