open Model

type config = {
  n : int;
  t : int;
  proposals : int array;
  schedule : Schedule.t;
  value_bits : int;
  max_rounds : int;
  record_trace : bool;
  instrument : Obs.Event.t Obs.Instrument.t;
}

exception Model_violation of string

let config ?(value_bits = 32) ?max_rounds ?(record_trace = false)
    ?(instrument = Obs.Instrument.null) ?(schedule = Schedule.empty) ~n ~t
    ~proposals () =
  if n < 2 then invalid_arg "Engine.config: n must be >= 2";
  if t < 0 || t >= n then invalid_arg "Engine.config: t must satisfy 0 <= t < n";
  if Array.length proposals <> n then
    invalid_arg "Engine.config: proposals length must be n";
  if value_bits < 2 then invalid_arg "Engine.config: value_bits must be >= 2";
  let max_rounds = Option.value max_rounds ~default:(t + 2) in
  if max_rounds < 1 then invalid_arg "Engine.config: max_rounds must be >= 1";
  { n; t; proposals; schedule; value_bits; max_rounds; record_trace; instrument }

let distinct_proposals n = Array.init n (fun i -> i + 1)

let bits_per_word = Sys.int_size

(* Process status, flattened into parallel int arrays so a status change
   never allocates: 0 = running, 1 = halted (decided and stopped, or dead
   after announcing), 2 = announced (decided, still participating),
   3 = dead.  [st_value]/[st_round] carry the decision value and the
   decision or crash round. *)
let st_running = 0

let st_halted = 1
let st_announced = 2
let st_dead = 3

module Make_flat (A : Algorithm_intf.FLAT) = struct
  (* All round buffers live in per-run scratch reused across rounds and —
     via [runner] — across whole runs:

     - Data inboxes are one arena: parallel arrays [data_from]/[data_msg]
       of [n * cap] cells, process [i] owning segment [i*cap .. i*cap +
       data_len.(i) - 1].  Delivery writes two cells and bumps a length;
       the arena doubles (rarely) when any segment fills.
     - Control receive-sets are one word bitmap [sync_words] of [n * swpp]
       words, process [i] owning words [i*swpp ..]; bit [sender-1] set iff
       a control message from that sender arrived this round.
     - The crash plan is flattened into [crash_round]/[crash_point] so the
       send phase never touches the schedule map.

     A steady-state round is therefore a few array sweeps: no lists, no
     options, no per-message heap blocks beyond what the algorithm's own
     payloads cost. *)
  type scratch = {
    cfg : config;
    n : int;
    swpp : int;  (* sync words per process *)
    states : A.state array;
    status : int array;
    st_value : int array;
    st_round : int array;
    mutable cap : int;  (* data-arena cells per process *)
    mutable data_from : int array;
    mutable data_msg : A.msg array;
    data_len : int array;
    sync_words : int array;
    crash_round : int array;  (* 0 = never crashes *)
    crash_point : Crash.point array;
    counters : Obs.Counters.t;
    view : A.msg Round_view.t;
    emitter : A.msg Emitter.t;
    (* Current-sender delivery filter, read by the emitter closures. *)
    mutable cur_from : int;  (* 1-based pid of the sender being served *)
    mutable cur_round : int;
    mutable data_all : bool;  (* false: filter data by [survivors] *)
    mutable survivors : Pid.Set.t;
    mutable sync_left : int;  (* remaining control deliveries this sender *)
    (* Quiet-round bookkeeping, used only on the [Coordinator_rounds]
       fast path (see [exec]): which inboxes received anything this round,
       and the crash plan re-sorted by round so a round's crashers are
       found without scanning all n processes. *)
    mutable track_dirty : bool;
    dirty_flag : int array;  (* 1 iff the inbox got a delivery this round *)
    dirty_idx : int array;  (* stack of dirty process indices *)
    mutable dirty_count : int;
    crash_by_round : int array;  (* crash entries sorted by round... *)
    crash_by_idx : int array;  (* ...stable, so pid order within a round *)
    mutable ncrash : int;
    mutable crash_cursor : int;
    (* Last successfully validated schedule: a reused runner replaying the
       same (immutable) schedule skips re-validation. *)
    mutable validated : Schedule.t;
  }

  let init_state (cfg : config) i =
    A.init ~n:cfg.n ~t:cfg.t ~me:(Pid.of_int (i + 1)) ~proposal:cfg.proposals.(i)

  let scratch_of_config (cfg : config) =
    let n = cfg.n in
    {
      cfg;
      n;
      swpp = (n + bits_per_word - 1) / bits_per_word;
      states = Array.init n (init_state cfg);
      status = Array.make n st_running;
      st_value = Array.make n 0;
      st_round = Array.make n 0;
      cap = 0;
      data_from = [||];
      data_msg = [||];
      data_len = Array.make n 0;
      sync_words = Array.make (n * ((n + bits_per_word - 1) / bits_per_word)) 0;
      crash_round = Array.make n 0;
      crash_point = Array.make n Crash.Before_send;
      counters = Obs.Counters.create ();
      view = Round_view.create ();
      emitter = Emitter.create ();
      cur_from = 1;
      cur_round = 0;
      data_all = true;
      survivors = Pid.Set.empty;
      sync_left = 0;
      track_dirty = false;
      dirty_flag = Array.make n 0;
      dirty_idx = Array.make n 0;
      dirty_count = 0;
      crash_by_round = Array.make n 0;
      crash_by_idx = Array.make n 0;
      ncrash = 0;
      crash_cursor = 0;
      validated = Schedule.empty;
    }

  (* Double the arena, preserving every segment.  [fill] seeds the fresh msg
     cells (the classic growable-array trick: the first pushed message is
     as good a dummy as any). *)
  let grow s fill =
    (* Start at a single cell per process: a fresh [n = 64] scratch then
       stays under the 256-word minor-allocation limit, so one-shot [run]
       configs never touch the major heap (large major-heap arenas per run
       were forcing a GC slice per benchmark iteration). *)
    let ncap = if s.cap = 0 then 1 else 2 * s.cap in
    let nfrom = Array.make (s.n * ncap) 0 in
    let nmsg = Array.make (s.n * ncap) fill in
    for i = 0 to s.n - 1 do
      Array.blit s.data_from (i * s.cap) nfrom (i * ncap) s.data_len.(i);
      Array.blit s.data_msg (i * s.cap) nmsg (i * ncap) s.data_len.(i)
    done;
    s.data_from <- nfrom;
    s.data_msg <- nmsg;
    s.cap <- ncap

  (* In-place insertion sort of one segment by sender pid; ties keep the
     later arrival first, matching the historical list representation (a
     stable sort of the reverse-arrival cons list).  Arrivals are already
     grouped by ascending sender (the send phase runs in pid order), so
     this is one near-linear sweep. *)
  let sort_segment from msgs off len =
    for i = 1 to len - 1 do
      let f = Array.unsafe_get from (off + i)
      and m = Array.unsafe_get msgs (off + i) in
      let j = ref (i - 1) in
      while !j >= 0 && Array.unsafe_get from (off + !j) >= f do
        Array.unsafe_set from (off + !j + 1) (Array.unsafe_get from (off + !j));
        Array.unsafe_set msgs (off + !j + 1) (Array.unsafe_get msgs (off + !j));
        decr j
      done;
      Array.unsafe_set from (off + !j + 1) f;
      Array.unsafe_set msgs (off + !j + 1) m
    done

  let reset s schedule =
    Obs.Counters.reset s.counters;
    for i = 0 to s.n - 1 do
      s.states.(i) <- init_state s.cfg i;
      s.status.(i) <- st_running;
      s.data_len.(i) <- 0;
      s.crash_round.(i) <- 0
    done;
    Array.fill s.sync_words 0 (Array.length s.sync_words) 0;
    Array.fill s.dirty_flag 0 s.n 0;
    s.dirty_count <- 0;
    s.ncrash <- 0;
    s.crash_cursor <- 0;
    Schedule.iter
      (fun pid (ev : Crash.event) ->
        let i = Pid.to_int pid - 1 in
        s.crash_round.(i) <- ev.round;
        s.crash_point.(i) <- ev.point;
        if s.track_dirty then begin
          (* Stable insertion by round: [Schedule.iter] ascends by pid, so
             same-round crashers keep pid order, matching the full path's
             send-phase scan. *)
          let j = ref s.ncrash in
          while !j > 0 && s.crash_by_round.(!j - 1) > ev.round do
            s.crash_by_round.(!j) <- s.crash_by_round.(!j - 1);
            s.crash_by_idx.(!j) <- s.crash_by_idx.(!j - 1);
            decr j
          done;
          s.crash_by_round.(!j) <- ev.round;
          s.crash_by_idx.(!j) <- i;
          s.ncrash <- s.ncrash + 1
        end)
      schedule

  let exec s schedule =
    let cfg = s.cfg in
    if schedule != s.validated then begin
      (match Schedule.validate ~model:A.model ~n:cfg.n ~t:cfg.t schedule with
      | Ok () -> ()
      | Error msg -> raise (Model_violation msg));
      s.validated <- schedule
    end;
    let n = s.n in
    let counters = s.counters in
    let trace_sink = if cfg.record_trace then Some (Obs.Trace_sink.create ()) else None in
    let inst =
      match trace_sink with
      | None -> cfg.instrument
      | Some ts ->
        Obs.Instrument.compose (Obs.Trace_sink.instrument ts) cfg.instrument
    in
    (* The null instrument costs nothing: every emission below is guarded by
       [observing], so the un-observed hot path allocates no events. *)
    let observing = not (Obs.Instrument.is_null inst) in
    (* Quiet-round fast path: a [Coordinator_rounds] algorithm lets each
       round touch only its coordinator, its crashers, and the inboxes that
       actually received something.  Observed runs take the full path — the
       fast path reorders events {e within} a round (crashers before the
       coordinator, receives in delivery order), which is invisible in the
       observable result but not in a trace. *)
    let fast =
      (match A.quiescence with
      | Algorithm_intf.Coordinator_rounds -> true
      | Algorithm_intf.Chatty -> false)
      && not observing
    in
    s.track_dirty <- fast;
    reset s schedule;
    let emit ev = Obs.Instrument.emit inst ev in
    let post_decision_crashes = ref Pid.Set.empty in
    let classic =
      match A.model with Model_kind.Classic -> true | Model_kind.Extended -> false
    in
    let value_bits = cfg.value_bits in
    (* Hot-loop array aliases: these arrays are never replaced (only the data
       arena can move, on grow), so hoisting them saves a record load per
       access.  [Array.unsafe_*] below is justified because every index is in
       range by construction: [i < n] from the loops and the explicit
       [dest <= n] guards, [o < n * cap] from the grow-on-full check, and
       [w < n * swpp] from [dest <= n] and [b < n <= swpp * bits_per_word]. *)
    let status = s.status and states = s.states and data_len = s.data_len in
    let sync_words = s.sync_words and swpp = s.swpp in
    let crash_round = s.crash_round and st_round = s.st_round in
    let dirty_flag = s.dirty_flag and dirty_idx = s.dirty_idx in
    let mark_dirty i =
      if s.track_dirty && Array.unsafe_get dirty_flag i = 0 then begin
        Array.unsafe_set dirty_flag i 1;
        Array.unsafe_set dirty_idx s.dirty_count i;
        s.dirty_count <- s.dirty_count + 1
      end
    in
    (* Delivery closures, installed once per run.  Channels are reliable: a
       delivered message always reaches the destination's buffers; a crashed
       or decided destination simply never processes them. *)
    let on_data dest msg =
      if dest > n then
        invalid_arg (A.name ^ ": data message addressed outside 1..n");
      if s.data_all || Pid.Set.mem (Pid.of_int dest) s.survivors then begin
        let bits = A.msg_bits ~value_bits msg in
        Obs.Counters.record_data counters ~bits;
        if observing then
          emit
            (Obs.Event.Data_sent
               {
                 round = s.cur_round;
                 from = Pid.of_int s.cur_from;
                 dest = Pid.of_int dest;
                 bits;
                 payload = lazy (Format.asprintf "%a" A.pp_msg msg);
               });
        let i = dest - 1 in
        mark_dirty i;
        let len = Array.unsafe_get data_len i in
        if len >= s.cap then grow s msg;
        let o = (i * s.cap) + len in
        Array.unsafe_set s.data_from o s.cur_from;
        Array.unsafe_set s.data_msg o msg;
        Array.unsafe_set data_len i (len + 1)
      end
    in
    let on_sync dest =
      if classic then
        raise
          (Model_violation
             (A.name ^ " emits control messages under the classic model"));
      if dest > n then
        invalid_arg (A.name ^ ": control message addressed outside 1..n");
      if s.sync_left > 0 then begin
        s.sync_left <- s.sync_left - 1;
        Obs.Counters.record_sync counters;
        if observing then
          emit
            (Obs.Event.Sync_sent
               {
                 round = s.cur_round;
                 from = Pid.of_int s.cur_from;
                 dest = Pid.of_int dest;
               });
        mark_dirty (dest - 1);
        let b = s.cur_from - 1 in
        (* All senders fit one word up to n = bits_per_word: skip the
           division on that fast path. *)
        let w =
          if b < bits_per_word then (dest - 1) * swpp
          else ((dest - 1) * swpp) + (b / bits_per_word)
        and bit =
          if b < bits_per_word then 1 lsl b else 1 lsl (b mod bits_per_word)
        in
        Array.unsafe_set sync_words w (Array.unsafe_get sync_words w lor bit)
      end
    in
    Emitter.install s.emitter ~on_data ~on_sync;
    (* One recursive closure per run, not one per round: a warm round must
       not allocate. *)
    let rec some_running i =
      i < n && (Array.unsafe_get status i = st_running || some_running (i + 1))
    in
    (* Crash a live process at round [r]: serve its (possibly truncated)
       sends under the crash-point's delivery filters, then record the
       death.  [st] is its status on round entry. *)
    let crash_proc i st r =
      s.cur_from <- i + 1;
      (match s.crash_point.(i) with
      | Crash.Before_send -> ()
      | Crash.During_data survivors ->
        s.data_all <- false;
        s.survivors <- survivors;
        s.sync_left <- 0;
        A.send (Array.unsafe_get states i) ~round:r s.emitter;
        s.data_all <- true
      | Crash.After_data prefix ->
        s.data_all <- true;
        s.sync_left <- prefix;
        A.send (Array.unsafe_get states i) ~round:r s.emitter
      | Crash.After_send ->
        s.data_all <- true;
        s.sync_left <- max_int;
        A.send (Array.unsafe_get states i) ~round:r s.emitter);
      if st = st_announced then begin
        (* The decision already happened; the crash only ends the
           process's participation. *)
        post_decision_crashes :=
          Pid.Set.add (Pid.of_int (i + 1)) !post_decision_crashes;
        Array.unsafe_set status i st_halted
      end
      else begin
        Array.unsafe_set status i st_dead;
        Array.unsafe_set st_round i r
      end;
      if observing then
        emit
          (Obs.Event.Crashed
             { round = r; pid = Pid.of_int (i + 1); point = s.crash_point.(i) })
    in
    (* One live process's receive + compute + decision bookkeeping for round
       [r].  Reads the arena through [s] — it may have moved since the last
       round's reads — but [Round_view.set_arrays] is still done once per
       round by the callers, not here. *)
    let receive_one i st r =
      let len = Array.unsafe_get data_len i in
      let off = i * s.cap in
      let swoff = i * swpp in
      if len > 1 then sort_segment s.data_from s.data_msg off len;
      Round_view.set_segment s.view ~off ~len ~swoff ~swlen:swpp;
      let state = Array.unsafe_get states i in
      let state' = A.receive state ~round:r s.view in
      (* Steady-state processes return their state unchanged; the guard
         skips the write barrier on that path. *)
      if state' != state then Array.unsafe_set states i state';
      Array.unsafe_set data_len i 0;
      for w = swoff to swoff + swpp - 1 do
        Array.unsafe_set sync_words w 0
      done;
      if Round_view.decided s.view && st = st_running then begin
        let value = Round_view.decision s.view in
        (match A.decision_mode with
        | `Halt -> Array.unsafe_set status i st_halted
        | `Announce -> Array.unsafe_set status i st_announced);
        s.st_value.(i) <- value;
        Array.unsafe_set st_round i r;
        if observing then
          emit (Obs.Event.Decided { round = r; pid = Pid.of_int (i + 1); value })
      end
    in
    let clear_inbox i =
      Array.unsafe_set data_len i 0;
      let swoff = i * swpp in
      for w = swoff to swoff + swpp - 1 do
        Array.unsafe_set sync_words w 0
      done
    in
    let round = ref 0 in
    while some_running 0 && !round < cfg.max_rounds do
      incr round;
      let r = !round in
      if observing then emit (Obs.Event.Round_begin { round = r });
      s.cur_round <- r;
      if fast then begin
        (* Send phase, quiet rounds skipped: only this round's crashers and
           its coordinator can emit or change status. *)
        while
          s.crash_cursor < s.ncrash
          && Array.unsafe_get s.crash_by_round s.crash_cursor = r
        do
          let i = Array.unsafe_get s.crash_by_idx s.crash_cursor in
          s.crash_cursor <- s.crash_cursor + 1;
          let st = Array.unsafe_get status i in
          if st = st_running || st = st_announced then crash_proc i st r
        done;
        (if r <= n then
           let i = r - 1 in
           let st = Array.unsafe_get status i in
           if
             (st = st_running || st = st_announced)
             && Array.unsafe_get crash_round i <> r
           then begin
             s.cur_from <- r;
             s.data_all <- true;
             s.sync_left <- max_int;
             A.send (Array.unsafe_get states i) ~round:r s.emitter
           end);
        (* Receive phase: the dirty inboxes, plus the coordinator even on an
           empty inbox (its own round is the one round where quiescence
           promises nothing).  Everyone else provably no-ops. *)
        Round_view.set_arrays s.view ~from:s.data_from ~msgs:s.data_msg
          ~sync_words;
        let coord_live =
          r <= n
          &&
          let st = Array.unsafe_get status (r - 1) in
          st = st_running || st = st_announced
        in
        let coord_dirty =
          r <= n && Array.unsafe_get dirty_flag (r - 1) = 1
        in
        for k = 0 to s.dirty_count - 1 do
          let i = Array.unsafe_get dirty_idx k in
          Array.unsafe_set dirty_flag i 0;
          let st = Array.unsafe_get status i in
          if st = st_halted || st = st_dead then clear_inbox i
          else receive_one i st r
        done;
        s.dirty_count <- 0;
        if coord_live && not coord_dirty then
          receive_one (r - 1) (Array.unsafe_get status (r - 1)) r
      end
      else begin
        (* Send phase: processes emit in pid order (the order is irrelevant
           to the semantics — all round-r messages are received in round r —
           but it keeps traces deterministic). *)
        for i = 0 to n - 1 do
          let st = Array.unsafe_get status i in
          if st = st_running || st = st_announced then
            if Array.unsafe_get crash_round i <> r then begin
              s.cur_from <- i + 1;
              s.data_all <- true;
              s.sync_left <- max_int;
              A.send (Array.unsafe_get states i) ~round:r s.emitter
            end
            else crash_proc i st r
        done;
        (* Receive + compute phase: only processes that are still running
           (in particular, not crashed this round) process their round-r
           buffers; messages to dead or decided processes are discarded.
           The arena can only move during the send phase just above, so the
           view's array pointers are refreshed once per round. *)
        Round_view.set_arrays s.view ~from:s.data_from ~msgs:s.data_msg
          ~sync_words;
        for i = 0 to n - 1 do
          let st = Array.unsafe_get status i in
          if st = st_halted || st = st_dead then clear_inbox i
          else receive_one i st r
        done
      end
    done;
    (* A truncated run (horizon hit with processes still undecided) is
       diagnosed structurally, never silently. *)
    if observing then begin
      let undecided = ref [] in
      for i = n - 1 downto 0 do
        if s.status.(i) = st_running then
          undecided := Pid.of_int (i + 1) :: !undecided
      done;
      if !undecided <> [] then
        emit
          (Obs.Event.Round_limit
             { round = !round; max_rounds = cfg.max_rounds; undecided = !undecided });
      emit (Obs.Event.Run_end { rounds = !round })
    end;
    {
      Run_result.n = cfg.n;
      t = cfg.t;
      proposals = Array.copy cfg.proposals;
      statuses =
        Array.init n (fun i ->
            if s.status.(i) = st_running then Run_result.Undecided
            else if s.status.(i) = st_dead then
              Run_result.Crashed { at_round = s.st_round.(i) }
            else
              Run_result.Decided
                { value = s.st_value.(i); at_round = s.st_round.(i) });
      rounds_executed = !round;
      data_msgs = counters.Obs.Counters.data_msgs;
      data_bits = counters.Obs.Counters.data_bits;
      sync_msgs = counters.Obs.Counters.sync_msgs;
      sync_bits = counters.Obs.Counters.sync_bits;
      post_decision_crashes = !post_decision_crashes;
      trace =
        (match trace_sink with
        | None -> []
        | Some ts -> List.filter_map Trace.of_obs (Obs.Trace_sink.events ts));
    }

  let run cfg = exec (scratch_of_config cfg) cfg.schedule

  let runner cfg =
    let s = scratch_of_config cfg in
    fun schedule -> exec s schedule
end

(* The legacy list-API entry point: every existing [Engine.Make (A)] call
   site now runs on the flat core through the thin adapter, paying only the
   per-round lists the old engine built anyway. *)
module Make (A : Algorithm_intf.S) = Make_flat (Algorithm_intf.Of_list (A))
