open Model

type config = {
  n : int;
  t : int;
  proposals : int array;
  schedule : Schedule.t;
  value_bits : int;
  max_rounds : int;
  record_trace : bool;
  instrument : Obs.Event.t Obs.Instrument.t;
}

exception Model_violation of string

let config ?(value_bits = 32) ?max_rounds ?(record_trace = false)
    ?(instrument = Obs.Instrument.null) ?(schedule = Schedule.empty) ~n ~t
    ~proposals () =
  if n < 2 then invalid_arg "Engine.config: n must be >= 2";
  if t < 0 || t >= n then invalid_arg "Engine.config: t must satisfy 0 <= t < n";
  if Array.length proposals <> n then
    invalid_arg "Engine.config: proposals length must be n";
  if value_bits < 2 then invalid_arg "Engine.config: value_bits must be >= 2";
  let max_rounds = Option.value max_rounds ~default:(t + 2) in
  if max_rounds < 1 then invalid_arg "Engine.config: max_rounds must be >= 1";
  { n; t; proposals; schedule; value_bits; max_rounds; record_trace; instrument }

let distinct_proposals n = Array.init n (fun i -> i + 1)

(* Internal per-process run status. *)
type proc_status =
  | Running
  | Halted of { value : int; at_round : int }
  | Announced of { value : int; at_round : int }
      (* decided but still participating (`Announce decision mode) *)
  | Dead of { at_round : int }

module Make (A : Algorithm_intf.S) = struct
  (* Inboxes are preallocated growable parallel arrays (sender pid /
     payload), reused across rounds and — via [runner] — across whole runs:
     steady-state delivery writes two cells and bumps a length, allocating
     nothing.  The cons-list representation this replaces allocated a cell
     per message plus the [List.sort] intermediates every round. *)
  type inbox = {
    mutable from : int array;
    mutable msg : A.msg array;
    mutable len : int;
  }

  type proc = {
    pid : Pid.t;
    mutable state : A.state;
    mutable status : proc_status;
    inbox : inbox;
    mutable sync_from : int array;
    mutable sync_len : int;
  }

  let push_data b ~from msg =
    let cap = Array.length b.msg in
    if b.len = cap then begin
      let ncap = max 8 (2 * cap) in
      let nf = Array.make ncap from and nm = Array.make ncap msg in
      Array.blit b.from 0 nf 0 b.len;
      Array.blit b.msg 0 nm 0 b.len;
      b.from <- nf;
      b.msg <- nm
    end;
    b.from.(b.len) <- from;
    b.msg.(b.len) <- msg;
    b.len <- b.len + 1

  let push_sync p ~from =
    let cap = Array.length p.sync_from in
    if p.sync_len = cap then begin
      let nf = Array.make (max 8 (2 * cap)) from in
      Array.blit p.sync_from 0 nf 0 p.sync_len;
      p.sync_from <- nf
    end;
    p.sync_from.(p.sync_len) <- from;
    p.sync_len <- p.sync_len + 1

  (* In-place insertion sort by sender pid; ties keep the later arrival
     first, matching the previous representation (a stable sort of the
     reverse-arrival cons list).  Inboxes hold at most O(n) messages. *)
  let sort_data b =
    for i = 1 to b.len - 1 do
      let f = b.from.(i) and m = b.msg.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && b.from.(!j) >= f do
        b.from.(!j + 1) <- b.from.(!j);
        b.msg.(!j + 1) <- b.msg.(!j);
        decr j
      done;
      b.from.(!j + 1) <- f;
      b.msg.(!j + 1) <- m
    done

  let sort_syncs p =
    for i = 1 to p.sync_len - 1 do
      let f = p.sync_from.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && p.sync_from.(!j) >= f do
        p.sync_from.(!j + 1) <- p.sync_from.(!j);
        decr j
      done;
      p.sync_from.(!j + 1) <- f
    done

  let data_list b =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) ((Pid.of_int b.from.(i), b.msg.(i)) :: acc)
    in
    go (b.len - 1) []

  let sync_list p =
    let rec go i acc =
      if i < 0 then acc else go (i - 1) (Pid.of_int p.sync_from.(i) :: acc)
    in
    go (p.sync_len - 1) []

  type scratch = { cfg : config; procs : proc array; counters : Obs.Counters.t }

  let scratch_of_config cfg =
    {
      cfg;
      procs =
        Array.init cfg.n (fun i ->
            let pid = Pid.of_int (i + 1) in
            {
              pid;
              state =
                A.init ~n:cfg.n ~t:cfg.t ~me:pid ~proposal:cfg.proposals.(i);
              status = Running;
              inbox = { from = [||]; msg = [||]; len = 0 };
              sync_from = [||];
              sync_len = 0;
            });
      counters = Obs.Counters.create ();
    }

  let reset s =
    Obs.Counters.reset s.counters;
    Array.iteri
      (fun i p ->
        p.state <-
          A.init ~n:s.cfg.n ~t:s.cfg.t ~me:p.pid ~proposal:s.cfg.proposals.(i);
        p.status <- Running;
        p.inbox.len <- 0;
        p.sync_len <- 0)
      s.procs

  let exec s schedule =
    let cfg = s.cfg in
    (match Schedule.validate ~model:A.model ~n:cfg.n ~t:cfg.t schedule with
    | Ok () -> ()
    | Error msg -> raise (Model_violation msg));
    reset s;
    let procs = s.procs in
    let proc pid = procs.(Pid.to_int pid - 1) in
    (* Wire accounting is part of the run's semantics (Theorem 2) and is
       accumulated unconditionally; everything else is observable only
       through the instrument.  [record_trace] is itself a trace sink
       composed in front of the caller's instrument. *)
    let counters = s.counters in
    let trace_sink = if cfg.record_trace then Some (Obs.Trace_sink.create ()) else None in
    let inst =
      match trace_sink with
      | None -> cfg.instrument
      | Some ts ->
        Obs.Instrument.compose (Obs.Trace_sink.instrument ts) cfg.instrument
    in
    (* The null instrument costs nothing: every emission below is guarded by
       [observing], so the un-observed hot path allocates no events. *)
    let observing = not (Obs.Instrument.is_null inst) in
    let emit ev = Obs.Instrument.emit inst ev in
    let post_decision_crashes = ref Pid.Set.empty in
    let deliver_data ~round ~from (dest, msg) =
      let bits = A.msg_bits ~value_bits:cfg.value_bits msg in
      Obs.Counters.record_data counters ~bits;
      if observing then
        emit
          (Obs.Event.Data_sent
             {
               round;
               from;
               dest;
               bits;
               payload = lazy (Format.asprintf "%a" A.pp_msg msg);
             });
      let q = proc dest in
      (* Channels are reliable: the message always reaches the destination;
         a crashed or decided destination simply never processes it. *)
      push_data q.inbox ~from:(Pid.to_int from) msg
    in
    let deliver_sync ~round ~from dest =
      Obs.Counters.record_sync counters;
      if observing then emit (Obs.Event.Sync_sent { round; from; dest });
      push_sync (proc dest) ~from:(Pid.to_int from)
    in
    let some_running () =
      Array.exists (fun p -> p.status = Running) procs
    in
    let round = ref 0 in
    while some_running () && !round < cfg.max_rounds do
      incr round;
      let r = !round in
      if observing then emit (Obs.Event.Round_begin { round = r });
      (* Send phase: processes emit in pid order (the order is irrelevant to
         the semantics — all round-r messages are received in round r — but
         it keeps traces deterministic). *)
      Array.iter
        (fun p ->
          match p.status with
          | Halted _ | Dead _ -> ()
          | Running | Announced _ ->
            let planned_data = A.data_sends p.state ~round:r in
            let planned_sync = A.sync_sends p.state ~round:r in
            (match (A.model, planned_sync) with
            | Model_kind.Classic, _ :: _ ->
              raise
                (Model_violation
                   (A.name ^ " emits control messages under the classic model"))
            | (Model_kind.Classic | Model_kind.Extended), _ -> ());
            let crash_now =
              match Schedule.find schedule p.pid with
              | Some ev when ev.Crash.round = r -> Some ev.Crash.point
              | Some _ | None -> None
            in
            (match crash_now with
            | None ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iter (deliver_sync ~round:r ~from:p.pid) planned_sync
            | Some Crash.Before_send -> ()
            | Some (Crash.During_data survivors) ->
              List.iter
                (fun (dest, msg) ->
                  if Pid.Set.mem dest survivors then
                    deliver_data ~round:r ~from:p.pid (dest, msg))
                planned_data
            | Some (Crash.After_data prefix) ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iteri
                (fun i dest ->
                  if i < prefix then deliver_sync ~round:r ~from:p.pid dest)
                planned_sync
            | Some Crash.After_send ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iter (deliver_sync ~round:r ~from:p.pid) planned_sync);
            (match crash_now with
            | None -> ()
            | Some point ->
              (match p.status with
              | Announced { value; at_round } ->
                (* The decision already happened; the crash only ends the
                   process's participation. *)
                post_decision_crashes := Pid.Set.add p.pid !post_decision_crashes;
                p.status <- Halted { value; at_round }
              | Running | Halted _ | Dead _ ->
                p.status <- Dead { at_round = r });
              if observing then
                emit (Obs.Event.Crashed { round = r; pid = p.pid; point })))
        procs;
      (* Receive + compute phase: only processes that are still running (in
         particular, not crashed this round) process their round-r inbox. *)
      Array.iter
        (fun p ->
          match p.status with
          | Halted _ | Dead _ ->
            (* Messages to dead or decided processes are simply discarded. *)
            p.inbox.len <- 0;
            p.sync_len <- 0
          | Announced _ ->
            sort_data p.inbox;
            sort_syncs p;
            let data = data_list p.inbox and syncs = sync_list p in
            p.inbox.len <- 0;
            p.sync_len <- 0;
            (* Still participating: evolve the state, but the decision is
               already fixed. *)
            let state, _ = A.compute p.state ~round:r ~data ~syncs in
            p.state <- state
          | Running ->
            sort_data p.inbox;
            sort_syncs p;
            let data = data_list p.inbox and syncs = sync_list p in
            p.inbox.len <- 0;
            p.sync_len <- 0;
            let state, decision = A.compute p.state ~round:r ~data ~syncs in
            p.state <- state;
            (match decision with
            | None -> ()
            | Some value ->
              (match A.decision_mode with
              | `Halt -> p.status <- Halted { value; at_round = r }
              | `Announce -> p.status <- Announced { value; at_round = r });
              if observing then
                emit (Obs.Event.Decided { round = r; pid = p.pid; value })))
        procs
    done;
    (* A truncated run (horizon hit with processes still undecided) is
       diagnosed structurally, never silently. *)
    if observing then begin
      let undecided =
        Array.to_list procs
        |> List.filter_map (fun p ->
               match p.status with
               | Running -> Some p.pid
               | Halted _ | Announced _ | Dead _ -> None)
      in
      if undecided <> [] then
        emit
          (Obs.Event.Round_limit
             { round = !round; max_rounds = cfg.max_rounds; undecided })
    end;
    if observing then emit (Obs.Event.Run_end { rounds = !round });
    {
      Run_result.n = cfg.n;
      t = cfg.t;
      proposals = Array.copy cfg.proposals;
      statuses =
        Array.map
          (fun p ->
            match p.status with
            | Running -> Run_result.Undecided
            | Halted { value; at_round } | Announced { value; at_round } ->
              Run_result.Decided { value; at_round }
            | Dead { at_round } -> Run_result.Crashed { at_round })
          procs;
      rounds_executed = !round;
      data_msgs = counters.Obs.Counters.data_msgs;
      data_bits = counters.Obs.Counters.data_bits;
      sync_msgs = counters.Obs.Counters.sync_msgs;
      sync_bits = counters.Obs.Counters.sync_bits;
      post_decision_crashes = !post_decision_crashes;
      trace =
        (match trace_sink with
        | None -> []
        | Some ts -> List.filter_map Trace.of_obs (Obs.Trace_sink.events ts));
    }

  let run cfg = exec (scratch_of_config cfg) cfg.schedule

  let runner cfg =
    let s = scratch_of_config cfg in
    fun schedule -> exec s schedule
end
