open Model

type config = {
  n : int;
  t : int;
  proposals : int array;
  schedule : Schedule.t;
  value_bits : int;
  max_rounds : int;
  record_trace : bool;
  instrument : Obs.Event.t Obs.Instrument.t;
}

exception Model_violation of string

let config ?(value_bits = 32) ?max_rounds ?(record_trace = false)
    ?(instrument = Obs.Instrument.null) ?(schedule = Schedule.empty) ~n ~t
    ~proposals () =
  if n < 2 then invalid_arg "Engine.config: n must be >= 2";
  if t < 0 || t >= n then invalid_arg "Engine.config: t must satisfy 0 <= t < n";
  if Array.length proposals <> n then
    invalid_arg "Engine.config: proposals length must be n";
  if value_bits < 2 then invalid_arg "Engine.config: value_bits must be >= 2";
  let max_rounds = Option.value max_rounds ~default:(t + 2) in
  if max_rounds < 1 then invalid_arg "Engine.config: max_rounds must be >= 1";
  { n; t; proposals; schedule; value_bits; max_rounds; record_trace; instrument }

let distinct_proposals n = Array.init n (fun i -> i + 1)

(* Internal per-process run status. *)
type proc_status =
  | Running
  | Halted of { value : int; at_round : int }
  | Announced of { value : int; at_round : int }
      (* decided but still participating (`Announce decision mode) *)
  | Dead of { at_round : int }

module Make (A : Algorithm_intf.S) = struct
  type proc = {
    pid : Pid.t;
    mutable state : A.state;
    mutable status : proc_status;
    mutable inbox_data : (Pid.t * A.msg) list;  (* reverse arrival order *)
    mutable inbox_syncs : Pid.t list;
  }

  let check_schedule cfg =
    match
      Schedule.validate ~model:A.model ~n:cfg.n ~t:cfg.t cfg.schedule
    with
    | Ok () -> ()
    | Error msg -> raise (Model_violation msg)

  let run cfg =
    check_schedule cfg;
    let procs =
      Array.init cfg.n (fun i ->
          let pid = Pid.of_int (i + 1) in
          {
            pid;
            state = A.init ~n:cfg.n ~t:cfg.t ~me:pid ~proposal:cfg.proposals.(i);
            status = Running;
            inbox_data = [];
            inbox_syncs = [];
          })
    in
    let proc pid = procs.(Pid.to_int pid - 1) in
    (* Wire accounting is part of the run's semantics (Theorem 2) and is
       accumulated unconditionally; everything else is observable only
       through the instrument.  [record_trace] is itself a trace sink
       composed in front of the caller's instrument. *)
    let counters = Obs.Counters.create () in
    let trace_sink = if cfg.record_trace then Some (Obs.Trace_sink.create ()) else None in
    let inst =
      match trace_sink with
      | None -> cfg.instrument
      | Some ts ->
        Obs.Instrument.compose (Obs.Trace_sink.instrument ts) cfg.instrument
    in
    (* The null instrument costs nothing: every emission below is guarded by
       [observing], so the un-observed hot path allocates no events. *)
    let observing = not (Obs.Instrument.is_null inst) in
    let emit ev = Obs.Instrument.emit inst ev in
    let post_decision_crashes = ref Pid.Set.empty in
    let deliver_data ~round ~from (dest, msg) =
      let bits = A.msg_bits ~value_bits:cfg.value_bits msg in
      Obs.Counters.record_data counters ~bits;
      if observing then
        emit
          (Obs.Event.Data_sent
             {
               round;
               from;
               dest;
               bits;
               payload = lazy (Format.asprintf "%a" A.pp_msg msg);
             });
      let q = proc dest in
      (* Channels are reliable: the message always reaches the destination;
         a crashed or decided destination simply never processes it. *)
      q.inbox_data <- (from, msg) :: q.inbox_data
    in
    let deliver_sync ~round ~from dest =
      Obs.Counters.record_sync counters;
      if observing then emit (Obs.Event.Sync_sent { round; from; dest });
      let q = proc dest in
      q.inbox_syncs <- from :: q.inbox_syncs
    in
    let some_running () =
      Array.exists (fun p -> p.status = Running) procs
    in
    let round = ref 0 in
    while some_running () && !round < cfg.max_rounds do
      incr round;
      let r = !round in
      if observing then emit (Obs.Event.Round_begin { round = r });
      (* Send phase: processes emit in pid order (the order is irrelevant to
         the semantics — all round-r messages are received in round r — but
         it keeps traces deterministic). *)
      Array.iter
        (fun p ->
          match p.status with
          | Halted _ | Dead _ -> ()
          | Running | Announced _ ->
            let planned_data = A.data_sends p.state ~round:r in
            let planned_sync = A.sync_sends p.state ~round:r in
            (match (A.model, planned_sync) with
            | Model_kind.Classic, _ :: _ ->
              raise
                (Model_violation
                   (A.name ^ " emits control messages under the classic model"))
            | (Model_kind.Classic | Model_kind.Extended), _ -> ());
            let crash_now =
              match Schedule.find cfg.schedule p.pid with
              | Some ev when ev.Crash.round = r -> Some ev.Crash.point
              | Some _ | None -> None
            in
            (match crash_now with
            | None ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iter (deliver_sync ~round:r ~from:p.pid) planned_sync
            | Some Crash.Before_send -> ()
            | Some (Crash.During_data survivors) ->
              List.iter
                (fun (dest, msg) ->
                  if Pid.Set.mem dest survivors then
                    deliver_data ~round:r ~from:p.pid (dest, msg))
                planned_data
            | Some (Crash.After_data prefix) ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iteri
                (fun i dest ->
                  if i < prefix then deliver_sync ~round:r ~from:p.pid dest)
                planned_sync
            | Some Crash.After_send ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iter (deliver_sync ~round:r ~from:p.pid) planned_sync);
            (match crash_now with
            | None -> ()
            | Some point ->
              (match p.status with
              | Announced { value; at_round } ->
                (* The decision already happened; the crash only ends the
                   process's participation. *)
                post_decision_crashes := Pid.Set.add p.pid !post_decision_crashes;
                p.status <- Halted { value; at_round }
              | Running | Halted _ | Dead _ ->
                p.status <- Dead { at_round = r });
              if observing then
                emit (Obs.Event.Crashed { round = r; pid = p.pid; point })))
        procs;
      (* Receive + compute phase: only processes that are still running (in
         particular, not crashed this round) process their round-r inbox. *)
      Array.iter
        (fun p ->
          let data =
            List.sort (fun (a, _) (b, _) -> Pid.compare a b) p.inbox_data
          and syncs = List.sort Pid.compare p.inbox_syncs in
          p.inbox_data <- [];
          p.inbox_syncs <- [];
          match p.status with
          | Halted _ | Dead _ -> ()
          | Announced _ ->
            (* Still participating: evolve the state, but the decision is
               already fixed. *)
            let state, _ = A.compute p.state ~round:r ~data ~syncs in
            p.state <- state
          | Running ->
            let state, decision = A.compute p.state ~round:r ~data ~syncs in
            p.state <- state;
            (match decision with
            | None -> ()
            | Some value ->
              (match A.decision_mode with
              | `Halt -> p.status <- Halted { value; at_round = r }
              | `Announce -> p.status <- Announced { value; at_round = r });
              if observing then
                emit (Obs.Event.Decided { round = r; pid = p.pid; value })))
        procs
    done;
    (* A truncated run (horizon hit with processes still undecided) is
       diagnosed structurally, never silently. *)
    if observing then begin
      let undecided =
        Array.to_list procs
        |> List.filter_map (fun p ->
               match p.status with
               | Running -> Some p.pid
               | Halted _ | Announced _ | Dead _ -> None)
      in
      if undecided <> [] then
        emit
          (Obs.Event.Round_limit
             { round = !round; max_rounds = cfg.max_rounds; undecided })
    end;
    if observing then emit (Obs.Event.Run_end { rounds = !round });
    {
      Run_result.n = cfg.n;
      t = cfg.t;
      proposals = Array.copy cfg.proposals;
      statuses =
        Array.map
          (fun p ->
            match p.status with
            | Running -> Run_result.Undecided
            | Halted { value; at_round } | Announced { value; at_round } ->
              Run_result.Decided { value; at_round }
            | Dead { at_round } -> Run_result.Crashed { at_round })
          procs;
      rounds_executed = !round;
      data_msgs = counters.Obs.Counters.data_msgs;
      data_bits = counters.Obs.Counters.data_bits;
      sync_msgs = counters.Obs.Counters.sync_msgs;
      sync_bits = counters.Obs.Counters.sync_bits;
      post_decision_crashes = !post_decision_crashes;
      trace =
        (match trace_sink with
        | None -> []
        | Some ts -> List.filter_map Trace.of_obs (Obs.Trace_sink.events ts));
    }
end
