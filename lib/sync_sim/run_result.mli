(** The observable outcome of one simulated run. *)

open Model

type status =
  | Decided of { value : int; at_round : int }
      (** The process invoked [return(value)] during [at_round]'s
          computation phase.  A process that decides terminates; a crash
          scheduled for a later round has no effect on it. *)
  | Crashed of { at_round : int }
      (** The process crashed (without having decided). *)
  | Undecided
      (** Still running when the engine hit its round limit — a termination
          failure unless the limit was deliberately tight. *)

type t = {
  n : int;
  t : int;
  proposals : int array;
  statuses : status array;  (** index [i] holds the status of process [i+1] *)
  rounds_executed : int;
  data_msgs : int;  (** data messages put on the wire *)
  data_bits : int;
  sync_msgs : int;  (** control messages put on the wire *)
  sync_bits : int;
  post_decision_crashes : Pid.Set.t;
      (** processes that crashed {e after} announcing a decision (only
          possible for [`Announce]-mode algorithms).  Their status stays
          [Decided] — the decision counts for uniform agreement — but they
          are faulty in the run: they count towards [f] and are excluded
          from {!correct}. *)
  trace : Trace.event list;  (** chronological; empty unless recording was on *)
}

val status : t -> Pid.t -> status

val decisions : t -> (Pid.t * int * int) list
(** [(pid, value, round)] for each decided process, increasing pid. *)

val decided_values : t -> int list
(** De-duplicated decided values. *)

val crashed : t -> Pid.Set.t
(** Processes that crashed without deciding. *)

val all_crashes : t -> Pid.Set.t
(** Every process that crashed during the run, decided or not — the
    paper's [f]. *)

val correct : t -> Pid.Set.t
(** Processes that never crashed — neither before nor after deciding. *)

val max_decision_round : t -> int option
(** Latest round in which some process decided; [None] if nobody did. *)

val all_correct_decided : t -> bool

val equal_observable : t -> t -> bool
(** Equality on everything except the trace: statuses, rounds executed,
    wire counters and post-decision crashes.  This is the relation the
    differential oracle checks between {!Engine.run} and the reused-scratch
    {!Engine.runner} — traces are excluded because recording is optional
    and orthogonal to the outcome. *)

val total_msgs : t -> int
val total_bits : t -> int

val pp : Format.formatter -> t -> unit
(** Compact per-process summary (no trace). *)
