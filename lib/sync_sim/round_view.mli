(** The receive half of the zero-copy algorithm API.

    A ['msg t] is a read-only window into the engine's flat round buffers:
    the data messages received this round (sorted by increasing sender, ties
    in reverse arrival order — the historical list-API order) and the
    control receive-set as a word bitmap over senders.  Reading through the
    indexed accessors or the iterators allocates nothing beyond what the
    caller's closures do.

    The view is valid only during the [receive] call it is passed to: the
    engine repoints one view record at every process's buffers in turn, so
    retaining it observes another process's round.

    A decision is signalled through {!decide} instead of an [int option]
    return — the flat hot path constructs no options. *)

open Model

type 'msg t

(** {1 Data messages} *)

val data_count : _ t -> int

val data_sender : _ t -> int -> Pid.t
(** [data_sender v k] is the sender of the [k]-th message, [0 <= k <
    data_count v]; senders are non-decreasing in [k].  Raises
    [Invalid_argument] out of range. *)

val data_payload : 'msg t -> int -> 'msg

val iter_data : (Pid.t -> 'msg -> unit) -> 'msg t -> unit
val fold_data : ('a -> Pid.t -> 'msg -> 'a) -> 'a -> 'msg t -> 'a

val data_list : 'msg t -> (Pid.t * 'msg) list
(** The legacy list-API receive list, materialized.  Allocates; the thin
    adapter over {!Algorithm_intf.S} is its only hot-path caller. *)

(** {1 Control receive-set} *)

val has_sync : _ t -> Pid.t -> bool
(** One word load and an AND. *)

val sync_count : _ t -> int
val iter_syncs : (Pid.t -> unit) -> _ t -> unit
val fold_syncs : ('a -> Pid.t -> 'a) -> 'a -> _ t -> 'a

val sync_list : _ t -> Pid.t list
(** Senders in increasing order, materialized (legacy adapter). *)

(** {1 Deciding} *)

val decide : _ t -> int -> unit
(** Record this round's decision; the last call in a [receive] wins.  The
    engine resets the flag before every [receive]. *)

val decided : _ t -> bool
(** Whether {!decide} was called since the engine handed the view out —
    wrappers such as [Truncated] use it to add fallback decisions. *)

val decision : _ t -> int

(**/**)

(* Engine-side: not for algorithms. *)

val create : unit -> 'msg t

val set_arrays :
  'msg t -> from:int array -> msgs:'msg array -> sync_words:int array -> unit
(** Install the backing arrays (pointer writes, guarded by physical
    equality).  Call whenever the arena may have moved. *)

val set_segment : _ t -> off:int -> len:int -> swoff:int -> swlen:int -> unit
(** Select one process's window and reset the decision flag — immediate
    (integer) stores only, no write barrier. *)
