(** The send half of the zero-copy algorithm API.

    In its send phase an algorithm emits messages directly into the engine's
    flat buffers instead of returning lists: {!data} appends one data
    message, {!sync} serves the next destination of the ordered control
    sequence.  Emission order is the semantics: control destinations must be
    emitted in the algorithm's chosen order, because a crash during the
    control step delivers a {e prefix} of that sequence.  Data and control
    emissions may interleave; both must be computed from the start-of-round
    state only.

    The engine owns the emitter and installs its delivery closures once per
    run; emitting a message is two loads and a call — no allocation. *)

open Model

type 'msg t

val data : 'msg t -> Pid.t -> 'msg -> unit
(** Put one data message on the wire (subject to the adversary's crash
    filtering, which the algorithm never observes). *)

val sync : 'msg t -> Pid.t -> unit
(** Serve the next ordered control destination.  Raises
    {!Engine.Model_violation} when the algorithm declared the classic
    model. *)

(**/**)

(* Engine-side: not for algorithms. *)

val create : unit -> 'msg t

val install :
  'msg t -> on_data:(int -> 'msg -> unit) -> on_sync:(int -> unit) -> unit
