(** The interface a round-based algorithm presents to the engine.

    An algorithm is a deterministic per-process state machine.  In each round
    the engine asks it, in this order, for (1) its data messages, (2) its
    ordered control-message destinations, and then — if the process is still
    alive — feeds it everything it received and lets it compute, possibly
    deciding.  The two send steps happen "without a break": both are
    computed from the state as it stood at the start of the round, never
    from anything received during the round. *)

open Model

(** A static promise about when a process is guaranteed to be inert,
    letting the flat engine skip whole per-process steps on quiet rounds.

    [Chatty] promises nothing: the engine calls [send] and [receive] for
    every live process every round.  Always safe.

    [Coordinator_rounds] declares the rotating-coordinator shape of the
    paper's algorithms: process [p] emits messages {e only} in round [p],
    and in any round [r <> p] a [receive] over an empty view (no data, no
    control messages) returns the state unchanged and never decides.  The
    engine may then, on unobserved runs, touch only the round's
    coordinator, the processes with non-empty inboxes, and the processes
    crashing that round — everything else provably does nothing.  The
    observable result (statuses, decisions, wire counters) is identical to
    the [Chatty] execution; only event {e ordering} inside a round may
    differ, which is why traced runs always take the full path. *)
type quiescence = Chatty | Coordinator_rounds

module type S = sig
  type state
  (** Per-process local state. *)

  type msg
  (** Data-message payloads.  Control (synchronization) messages carry no
      payload; the engine represents them implicitly. *)

  val name : string
  (** Human-readable algorithm name for reports. *)

  val model : Model_kind.t
  (** The model the algorithm is written for.  The engine refuses to run an
      [Extended] algorithm that emits control messages under the classic
      model. *)

  val decision_mode : [ `Halt | `Announce ]
  (** What a decision means operationally.

      [`Halt] — the paper's [return(v)]: the process terminates on deciding
      and sends nothing afterwards (every algorithm in the paper).

      [`Announce] — {e early deciding} without {e early stopping}: the
      process records its decision but keeps executing rounds (relaying
      information) until the run winds down.  This is the mode of the
      classic-model non-uniform f+1 baseline, where a decided process must
      keep relaying or correct processes could disagree; a crash after the
      announcement is tracked separately
      ({!Run_result.post_decision_crashes}) because the decision still
      counts for (uniform) agreement. *)

  val msg_bits : value_bits:int -> msg -> int
  (** Size of a data message in bits, given the declared size [value_bits]
      of a proposal value (the paper's |v|).  Control messages always count
      for one bit (Theorem 2). *)

  val pp_msg : Format.formatter -> msg -> unit

  val init : n:int -> t:int -> me:Pid.t -> proposal:int -> state
  (** Initial state of process [me] proposing [proposal] in a system of [n]
      processes of which at most [t] may crash. *)

  val data_sends : state -> round:int -> (Pid.t * msg) list
  (** Data messages to emit this round, in sending order. *)

  val sync_sends : state -> round:int -> Pid.t list
  (** Ordered destinations of the control message for this round; must be
      [[]] when {!model} is [Classic].  If the process crashes during this
      step, an arbitrary {e prefix} of the list is served. *)

  val compute :
    state ->
    round:int ->
    data:(Pid.t * msg) list ->
    syncs:Pid.t list ->
    state * int option
  (** Computation phase: [data] are the received data messages and [syncs]
      the senders of received control messages, both in increasing sender
      order.  Returns the new state and an optional decision.  A decision
      terminates the process (it sends nothing in later rounds). *)
end

(** The zero-copy extension of {!S}: the same algorithm, additionally able
    to run against the flat engine core without per-round list building.

    [send] replaces [data_sends]/[sync_sends] by emitting directly into the
    engine's arena buffers; [receive] replaces [compute] by reading a
    {!Round_view.t} over them and signalling decisions through
    {!Round_view.decide}.  The list functions stay part of the signature —
    the lower-bound stepper and bivalency explorer still drive algorithms
    through them, and {!Of_list} derives the flat half mechanically — so a
    module of this type runs identically under both engine paths.

    One semantic note: the flat receive-set is a bitset over senders, so
    duplicate control messages from one sender to one destination in a
    single round collapse into one.  Control messages are idempotent
    liveness signals and no algorithm in this repository emits duplicates;
    the list API preserved them only as an artifact of its representation. *)
module type FLAT = sig
  include S

  val quiescence : quiescence
  (** See {!type:quiescence}.  Declare [Coordinator_rounds] only when both
      of its guarantees hold for every reachable state; when in doubt,
      [Chatty] is always correct. *)

  val send : state -> round:int -> msg Emitter.t -> unit
  (** Emit this round's data messages and ordered control destinations,
      all computed from the start-of-round state ("without a break").
      Control emission order is the crash-prefix order. *)

  val receive : state -> round:int -> msg Round_view.t -> state
  (** Computation phase over the view.  Decide via {!Round_view.decide};
      return the new state (returning [state] itself is the zero-allocation
      steady state). *)
end

(** The thin adapter keeping the legacy list API runnable on the flat
    engine: [send] replays [data_sends] then [sync_sends] through the
    emitter, [receive] materializes the view as the two sorted lists
    [compute] expects.  Per round this allocates exactly the lists the old
    engine built anyway — migrated algorithms skip it entirely. *)
module Of_list (A : S) : FLAT with type state = A.state and type msg = A.msg =
struct
  include A

  (* The list API gives no visibility into [compute]'s behaviour on empty
     inboxes, so the adapter can never promise quiescence. *)
  let quiescence = Chatty

  (* Plain recursion instead of [List.iter]: the iterated closures would
     otherwise be two fresh allocations on every process-round. *)
  let rec replay_data e = function
    | [] -> ()
    | (dest, m) :: tl ->
      Emitter.data e dest m;
      replay_data e tl

  let rec replay_syncs e = function
    | [] -> ()
    | dest :: tl ->
      Emitter.sync e dest;
      replay_syncs e tl

  let send state ~round e =
    replay_data e (A.data_sends state ~round);
    replay_syncs e (A.sync_sends state ~round)

  let receive state ~round view =
    let data = Round_view.data_list view and syncs = Round_view.sync_list view in
    let state, decision = A.compute state ~round ~data ~syncs in
    (match decision with None -> () | Some v -> Round_view.decide view v);
    state
end
