open Model

type event =
  | Round_begin of int
  | Data_sent of { round : int; from : Pid.t; dest : Pid.t; payload : string }
  | Sync_sent of { round : int; from : Pid.t; dest : Pid.t }
  | Crashed of { round : int; pid : Pid.t; point : Crash.point }
  | Decided of { round : int; pid : Pid.t; value : int }

let pp_event ppf = function
  | Round_begin r -> Format.fprintf ppf "--- round %d ---" r
  | Data_sent { from; dest; payload; _ } ->
    Format.fprintf ppf "%a -> %a : DATA(%s)" Pid.pp from Pid.pp dest payload
  | Sync_sent { from; dest; _ } ->
    Format.fprintf ppf "%a -> %a : COMMIT" Pid.pp from Pid.pp dest
  | Crashed { pid; point; _ } ->
    Format.fprintf ppf "%a CRASHES (%a)" Pid.pp pid Crash.pp_point point
  | Decided { pid; value; _ } ->
    Format.fprintf ppf "%a DECIDES %d" Pid.pp pid value

let pp ppf events =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_event ppf events

let to_string events = Format.asprintf "%a" pp events

let of_obs = function
  | Obs.Event.Round_begin { round } -> Some (Round_begin round)
  | Obs.Event.Data_sent { round; from; dest; payload; _ } ->
    Some (Data_sent { round; from; dest; payload = Lazy.force payload })
  | Obs.Event.Sync_sent { round; from; dest } ->
    Some (Sync_sent { round; from; dest })
  | Obs.Event.Crashed { round; pid; point } ->
    Some (Crashed { round; pid; point })
  | Obs.Event.Decided { round; pid; value } ->
    Some (Decided { round; pid; value })
  | Obs.Event.Round_limit _ | Obs.Event.Run_end _ -> None

let decisions events =
  List.filter_map
    (function
      | Decided { pid; value; round } -> Some (pid, value, round)
      | Round_begin _ | Data_sent _ | Sync_sent _ | Crashed _ -> None)
    events
