(** The round-based synchronous executor, flat-memory core.

    Implements the lockstep semantics of Section 2.1 for both models:
    - every message sent in round [r] to a live-enough destination is
      received in round [r] (reliable channels);
    - a sender crashing during the data step delivers to the adversary's
      chosen subset of its planned destinations;
    - a sender crashing during the control step delivers to a prefix of its
      ordered control destinations (extended model only);
    - a process that crashes in round [r] performs no computation in round
      [r] (and none ever after); a process that decides halts.

    Bit accounting follows Theorem 2: a data message costs
    [msg_bits ~value_bits], a control message costs one bit; only messages
    actually put on the wire are counted.

    Memory layout (DESIGN.md §13): all per-round receive state lives in
    preallocated flat buffers — one data arena (parallel sender/payload
    arrays with a fixed-size segment per process), one word bitmap for the
    control receive-sets, and struct-of-arrays process bookkeeping.  A
    steady-state round allocates nothing; algorithms implementing
    {!Algorithm_intf.FLAT} run zero-copy through {!Make_flat}, while the
    legacy list API runs unchanged through {!Make} (a thin adapter over the
    same core).  The previous engine generation is preserved verbatim as
    {!Engine_reference} and pinned byte-identical by the golden differential
    suite.

    Quiet-round fast path: an algorithm declaring
    {!Algorithm_intf.Coordinator_rounds} quiescence lets unobserved runs
    touch, per round, only the round's coordinator, the processes crashing
    that round and the inboxes that received something; the observable
    result is unchanged (the byte-identity suite covers this path), but
    traced or instrumented runs always take the full per-process scan so
    event order inside a round stays the historical one.

    Observability: the engine emits every run event ({!Obs.Event.t}) through
    the configured {!Obs.Instrument.t}.  With the null instrument the hot
    path constructs no events at all; [record_trace] is sugar for composing
    an {!Obs.Trace_sink} in front of the caller's instrument and storing the
    projection ({!Trace.of_obs}) in the result. *)

open Model

type config = {
  n : int;  (** number of processes, [>= 2] *)
  t : int;  (** resilience: max tolerated crashes, [0 <= t < n] *)
  proposals : int array;  (** length [n]; proposal of [p_i] at index [i-1] *)
  schedule : Schedule.t;  (** the adversary's crash plan *)
  value_bits : int;  (** the paper's |v|, [>= 2] *)
  max_rounds : int;  (** hard stop; processes still running then stay
                         [Undecided] *)
  record_trace : bool;
  instrument : Obs.Event.t Obs.Instrument.t;
      (** observer sink fed with every run event; [Obs.Instrument.null]
          (the default) costs nothing *)
}

val config :
  ?value_bits:int ->
  ?max_rounds:int ->
  ?record_trace:bool ->
  ?instrument:Obs.Event.t Obs.Instrument.t ->
  ?schedule:Schedule.t ->
  n:int ->
  t:int ->
  proposals:int array ->
  unit ->
  config
(** Smart constructor with defaults: [value_bits = 32], [max_rounds = t + 2]
    (enough for every native algorithm in this repository: f+1, f+2 and t+1
    round protocols all fit), [record_trace = false],
    [instrument = Obs.Instrument.null], empty schedule.  Validates all
    invariants listed on the record fields; raises [Invalid_argument] on
    violation. *)

val distinct_proposals : int -> int array
(** [distinct_proposals n] is [[|1; 2; ...; n|]] — the canonical workload in
    which every decision can be traced back to its proposer. *)

exception Model_violation of string
(** Raised when an algorithm declared [Classic] emits control messages, or
    when the schedule contains a crash point invalid for the algorithm's
    model. *)

module Make_flat (A : Algorithm_intf.FLAT) : sig
  val run : config -> Run_result.t
  (** Execute one run to completion (all processes decided or crashed) or to
      [max_rounds]. *)

  val runner : config -> Schedule.t -> Run_result.t
  (** [runner cfg] preallocates the run scratch (state/status arrays, the
      data arena, the control bitmap, the flattened crash plan, wire
      counters) once and returns a closure executing one run per given
      schedule against it.  [cfg.schedule] is ignored — each call validates
      and runs the schedule it is passed.  Results are identical to
      [run { cfg with schedule }]; the point is the sweep hot path: a warm
      runner round performs {e zero} minor-heap allocation for an algorithm
      whose [send]/[receive] are themselves allocation-free (pinned by the
      Gc-counter test), which is what makes exhaustive model checking over
      millions of schedules and single runs at [n >= 1024] feasible.  The
      closure owns mutable scratch and is {e not} thread-safe: create one
      runner per domain. *)
end

module Make (A : Algorithm_intf.S) : sig
  val run : config -> Run_result.t
  val runner : config -> Schedule.t -> Run_result.t
end
(** Legacy list-API entry point: [Make (A)] is [Make_flat] over the
    {!Algorithm_intf.Of_list} adapter.  Per round it allocates exactly the
    receive lists the previous engine built anyway; results are
    byte-identical. *)
