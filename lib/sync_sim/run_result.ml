open Model

type status =
  | Decided of { value : int; at_round : int }
  | Crashed of { at_round : int }
  | Undecided

type t = {
  n : int;
  t : int;
  proposals : int array;
  statuses : status array;
  rounds_executed : int;
  data_msgs : int;
  data_bits : int;
  sync_msgs : int;
  sync_bits : int;
  post_decision_crashes : Pid.Set.t;
  trace : Trace.event list;
}

let status res pid = res.statuses.(Pid.to_int pid - 1)

let decisions res =
  let acc = ref [] in
  for i = res.n - 1 downto 0 do
    match res.statuses.(i) with
    | Decided { value; at_round } ->
      acc := (Pid.of_int (i + 1), value, at_round) :: !acc
    | Crashed _ | Undecided -> ()
  done;
  !acc

let decided_values res =
  List.sort_uniq Int.compare (List.map (fun (_, v, _) -> v) (decisions res))

let crashed res =
  let acc = ref Pid.Set.empty in
  Array.iteri
    (fun i st ->
      match st with
      | Crashed _ -> acc := Pid.Set.add (Pid.of_int (i + 1)) !acc
      | Decided _ | Undecided -> ())
    res.statuses;
  !acc

let all_crashes res = Pid.Set.union (crashed res) res.post_decision_crashes

let correct res =
  let acc = ref Pid.Set.empty in
  Array.iteri
    (fun i st ->
      match st with
      | Decided _ | Undecided -> acc := Pid.Set.add (Pid.of_int (i + 1)) !acc
      | Crashed _ -> ())
    res.statuses;
  Pid.Set.diff !acc res.post_decision_crashes

let max_decision_round res =
  Array.fold_left
    (fun acc st ->
      match st with
      | Decided { at_round; _ } ->
        Some (match acc with None -> at_round | Some m -> max m at_round)
      | Crashed _ | Undecided -> acc)
    None res.statuses

let all_correct_decided res =
  Array.for_all
    (function Decided _ | Crashed _ -> true | Undecided -> false)
    res.statuses

let equal_observable a b =
  a.n = b.n && a.t = b.t
  && a.proposals = b.proposals
  && a.statuses = b.statuses
  && a.rounds_executed = b.rounds_executed
  && a.data_msgs = b.data_msgs
  && a.data_bits = b.data_bits
  && a.sync_msgs = b.sync_msgs
  && a.sync_bits = b.sync_bits
  && Pid.Set.equal a.post_decision_crashes b.post_decision_crashes

let total_msgs res = res.data_msgs + res.sync_msgs
let total_bits res = res.data_bits + res.sync_bits

let pp_status ppf = function
  | Decided { value; at_round } ->
    Format.fprintf ppf "decided %d @r%d" value at_round
  | Crashed { at_round } -> Format.fprintf ppf "crashed @r%d" at_round
  | Undecided -> Format.pp_print_string ppf "undecided"

let pp ppf res =
  Format.fprintf ppf "@[<v>rounds=%d msgs=%d bits=%d@," res.rounds_executed
    (total_msgs res) (total_bits res);
  if not (Pid.Set.is_empty res.post_decision_crashes) then
    Format.fprintf ppf "crashed after deciding: %a@," Pid.pp_set
      res.post_decision_crashes;
  Array.iteri
    (fun i st ->
      Format.fprintf ppf "%a: %a@," Pid.pp (Pid.of_int (i + 1)) pp_status st)
    res.statuses;
  Format.fprintf ppf "@]"
