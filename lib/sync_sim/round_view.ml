open Model

(* A window into the engine's flat round buffers: the data messages land in
   one arena ([from]/[msgs], segment [off .. off+len-1], sorted by sender
   before the view is handed out) and the control receive-set is a word
   bitmap slice ([sync_words], [swlen] words starting at [swoff], bit
   [sender-1] set iff a control message from that sender arrived).

   One view record per run scratch: the engine repoints it at each process's
   segment in turn, so the receive phase allocates nothing.  The view is
   valid only for the duration of the [receive] call it is passed to —
   algorithms must not retain it. *)

let bits_per_word = Sys.int_size

type 'msg t = {
  mutable from : int array;
  mutable msgs : 'msg array;
  mutable off : int;
  mutable len : int;
  mutable sync_words : int array;
  mutable swoff : int;
  mutable swlen : int;
  mutable decided : bool;
  mutable decision : int;
}

let create () =
  {
    from = [||];
    msgs = [||];
    off = 0;
    len = 0;
    sync_words = [||];
    swoff = 0;
    swlen = 0;
    decided = false;
    decision = 0;
  }

(* Engine-side repointing is split in two so the per-process step writes
   only immediate fields: [set_arrays] installs the backing arrays (once per
   round — the data arena can move when it grows; the physical-equality
   guards skip the caml_modify write barrier when it has not), while
   [set_segment] selects one process's window with integer stores only. *)
let set_arrays v ~from ~msgs ~sync_words =
  if v.from != from then v.from <- from;
  if v.msgs != msgs then v.msgs <- msgs;
  if v.sync_words != sync_words then v.sync_words <- sync_words

let set_segment v ~off ~len ~swoff ~swlen =
  v.off <- off;
  v.len <- len;
  v.swoff <- swoff;
  v.swlen <- swlen;
  v.decided <- false;
  v.decision <- 0

(* --- Decisions ------------------------------------------------------------ *)

let decide v value =
  v.decided <- true;
  v.decision <- value

let decided v = v.decided
let decision v = v.decision

(* --- Data messages, in increasing sender order ---------------------------- *)

let data_count v = v.len

let check v k who =
  if k < 0 || k >= v.len then
    invalid_arg (Printf.sprintf "Round_view.%s: index %d out of 0..%d" who k (v.len - 1))

let data_sender v k =
  check v k "data_sender";
  Pid.of_int v.from.(v.off + k)

let data_payload v k =
  check v k "data_payload";
  v.msgs.(v.off + k)

let iter_data f v =
  for k = 0 to v.len - 1 do
    f (Pid.of_int v.from.(v.off + k)) v.msgs.(v.off + k)
  done

let fold_data f init v =
  let acc = ref init in
  for k = 0 to v.len - 1 do
    acc := f !acc (Pid.of_int v.from.(v.off + k)) v.msgs.(v.off + k)
  done;
  !acc

let data_list v =
  let rec go k acc =
    if k < 0 then acc
    else go (k - 1) ((Pid.of_int v.from.(v.off + k), v.msgs.(v.off + k)) :: acc)
  in
  go (v.len - 1) []

(* --- Control receive-set (bitset over senders) ---------------------------- *)

let has_sync v pid =
  let b = Pid.to_int pid - 1 in
  (* Senders fit one word for n <= 63: skip the general division. *)
  if b < bits_per_word then
    0 < v.swlen && v.sync_words.(v.swoff) land (1 lsl b) <> 0
  else
    let w = b / bits_per_word in
    w < v.swlen
    && v.sync_words.(v.swoff + w) land (1 lsl (b mod bits_per_word)) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let sync_count v =
  let c = ref 0 in
  for w = 0 to v.swlen - 1 do
    c := !c + popcount v.sync_words.(v.swoff + w)
  done;
  !c

let iter_syncs f v =
  for w = 0 to v.swlen - 1 do
    let x = ref v.sync_words.(v.swoff + w) in
    while !x <> 0 do
      let bit = !x land - !x in
      f (Pid.of_int ((w * bits_per_word) + popcount (bit - 1) + 1));
      x := !x land (!x - 1)
    done
  done

let fold_syncs f init v =
  let acc = ref init in
  iter_syncs (fun pid -> acc := f !acc pid) v;
  !acc

let sync_list v = List.rev (fold_syncs (fun acc p -> p :: acc) [] v)
