(** The previous engine generation (PR 4: growable per-process inboxes,
    list receive API), preserved verbatim as a {e differential reference}
    for the flat core in {!Engine}.

    Same semantics, independent implementation: no buffer, layout or code is
    shared with {!Engine.Make_flat} beyond the config record and the
    {!Engine.Model_violation} exception.  The golden byte-identity suite
    ([test/test_flat.ml]) pins {!Run_result.equal_observable} equality
    between the two engines across the whole algorithm registry and the
    canonical schedule sweeps; the minimizer's oracle runs it as an extra
    lane.  Not a hot path — use {!Engine} everywhere else. *)

open Model

module Make (A : Algorithm_intf.S) : sig
  val run : Engine.config -> Run_result.t
  val runner : Engine.config -> Schedule.t -> Run_result.t
end
