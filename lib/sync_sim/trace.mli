(** Chronological event traces of simulated runs.

    Traces drive the Figure 1 reproduction (EXP-F1) and make failed property
    tests debuggable: a counterexample schedule can be replayed and printed
    round by round. *)

open Model

type event =
  | Round_begin of int
  | Data_sent of { round : int; from : Pid.t; dest : Pid.t; payload : string }
  | Sync_sent of { round : int; from : Pid.t; dest : Pid.t }
  | Crashed of { round : int; pid : Pid.t; point : Crash.point }
  | Decided of { round : int; pid : Pid.t; value : int }

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> event list -> unit
(** One event per line, chronological order. *)

val to_string : event list -> string

val of_obs : Obs.Event.t -> event option
(** Project an observer-layer event onto the trace vocabulary, forcing the
    payload.  [Run_end] has no trace counterpart and maps to [None]. *)

val decisions : event list -> (Pid.t * int * int) list
(** [(pid, value, round)] for every decision, chronological. *)
