open Model

(* The previous engine generation (growable per-process inboxes, list-based
   receive API), preserved verbatim as a differential reference for the flat
   core in [Engine].  Nothing here is a hot path: it exists so the golden
   byte-identity suite and the minimizer's oracle can cross-check every run
   of the flat engine against an independent implementation of the same
   semantics.  Do not "optimize" this module — its value is that it does not
   share buffers, layout or bugs with [Engine.Make_flat]. *)

(* Internal per-process run status. *)
type proc_status =
  | Running
  | Halted of { value : int; at_round : int }
  | Announced of { value : int; at_round : int }
      (* decided but still participating (`Announce decision mode) *)
  | Dead of { at_round : int }

module Make (A : Algorithm_intf.S) = struct
  type inbox = {
    mutable from : int array;
    mutable msg : A.msg array;
    mutable len : int;
  }

  type proc = {
    pid : Pid.t;
    mutable state : A.state;
    mutable status : proc_status;
    inbox : inbox;
    mutable sync_from : int array;
    mutable sync_len : int;
  }

  let push_data b ~from msg =
    let cap = Array.length b.msg in
    if b.len = cap then begin
      let ncap = max 8 (2 * cap) in
      let nf = Array.make ncap from and nm = Array.make ncap msg in
      Array.blit b.from 0 nf 0 b.len;
      Array.blit b.msg 0 nm 0 b.len;
      b.from <- nf;
      b.msg <- nm
    end;
    b.from.(b.len) <- from;
    b.msg.(b.len) <- msg;
    b.len <- b.len + 1

  let push_sync p ~from =
    let cap = Array.length p.sync_from in
    if p.sync_len = cap then begin
      let nf = Array.make (max 8 (2 * cap)) from in
      Array.blit p.sync_from 0 nf 0 p.sync_len;
      p.sync_from <- nf
    end;
    p.sync_from.(p.sync_len) <- from;
    p.sync_len <- p.sync_len + 1

  (* In-place insertion sort by sender pid; ties keep the later arrival
     first, matching the original cons-list representation. *)
  let sort_data b =
    for i = 1 to b.len - 1 do
      let f = b.from.(i) and m = b.msg.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && b.from.(!j) >= f do
        b.from.(!j + 1) <- b.from.(!j);
        b.msg.(!j + 1) <- b.msg.(!j);
        decr j
      done;
      b.from.(!j + 1) <- f;
      b.msg.(!j + 1) <- m
    done

  let sort_syncs p =
    for i = 1 to p.sync_len - 1 do
      let f = p.sync_from.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && p.sync_from.(!j) >= f do
        p.sync_from.(!j + 1) <- p.sync_from.(!j);
        decr j
      done;
      p.sync_from.(!j + 1) <- f
    done

  let data_list b =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) ((Pid.of_int b.from.(i), b.msg.(i)) :: acc)
    in
    go (b.len - 1) []

  let sync_list p =
    let rec go i acc =
      if i < 0 then acc else go (i - 1) (Pid.of_int p.sync_from.(i) :: acc)
    in
    go (p.sync_len - 1) []

  type scratch = {
    cfg : Engine.config;
    procs : proc array;
    counters : Obs.Counters.t;
  }

  let scratch_of_config (cfg : Engine.config) =
    {
      cfg;
      procs =
        Array.init cfg.n (fun i ->
            let pid = Pid.of_int (i + 1) in
            {
              pid;
              state =
                A.init ~n:cfg.n ~t:cfg.t ~me:pid ~proposal:cfg.proposals.(i);
              status = Running;
              inbox = { from = [||]; msg = [||]; len = 0 };
              sync_from = [||];
              sync_len = 0;
            });
      counters = Obs.Counters.create ();
    }

  let reset s =
    Obs.Counters.reset s.counters;
    Array.iteri
      (fun i p ->
        p.state <-
          A.init ~n:s.cfg.n ~t:s.cfg.t ~me:p.pid ~proposal:s.cfg.proposals.(i);
        p.status <- Running;
        p.inbox.len <- 0;
        p.sync_len <- 0)
      s.procs

  let exec s schedule =
    let cfg = s.cfg in
    (match Schedule.validate ~model:A.model ~n:cfg.n ~t:cfg.t schedule with
    | Ok () -> ()
    | Error msg -> raise (Engine.Model_violation msg));
    reset s;
    let procs = s.procs in
    let proc pid = procs.(Pid.to_int pid - 1) in
    let counters = s.counters in
    let trace_sink = if cfg.record_trace then Some (Obs.Trace_sink.create ()) else None in
    let inst =
      match trace_sink with
      | None -> cfg.instrument
      | Some ts ->
        Obs.Instrument.compose (Obs.Trace_sink.instrument ts) cfg.instrument
    in
    let observing = not (Obs.Instrument.is_null inst) in
    let emit ev = Obs.Instrument.emit inst ev in
    let post_decision_crashes = ref Pid.Set.empty in
    let deliver_data ~round ~from (dest, msg) =
      let bits = A.msg_bits ~value_bits:cfg.value_bits msg in
      Obs.Counters.record_data counters ~bits;
      if observing then
        emit
          (Obs.Event.Data_sent
             {
               round;
               from;
               dest;
               bits;
               payload = lazy (Format.asprintf "%a" A.pp_msg msg);
             });
      let q = proc dest in
      push_data q.inbox ~from:(Pid.to_int from) msg
    in
    let deliver_sync ~round ~from dest =
      Obs.Counters.record_sync counters;
      if observing then emit (Obs.Event.Sync_sent { round; from; dest });
      push_sync (proc dest) ~from:(Pid.to_int from)
    in
    let some_running () =
      Array.exists (fun p -> p.status = Running) procs
    in
    let round = ref 0 in
    while some_running () && !round < cfg.max_rounds do
      incr round;
      let r = !round in
      if observing then emit (Obs.Event.Round_begin { round = r });
      Array.iter
        (fun p ->
          match p.status with
          | Halted _ | Dead _ -> ()
          | Running | Announced _ ->
            let planned_data = A.data_sends p.state ~round:r in
            let planned_sync = A.sync_sends p.state ~round:r in
            (match (A.model, planned_sync) with
            | Model_kind.Classic, _ :: _ ->
              raise
                (Engine.Model_violation
                   (A.name ^ " emits control messages under the classic model"))
            | (Model_kind.Classic | Model_kind.Extended), _ -> ());
            let crash_now =
              match Schedule.find schedule p.pid with
              | Some ev when ev.Crash.round = r -> Some ev.Crash.point
              | Some _ | None -> None
            in
            (match crash_now with
            | None ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iter (deliver_sync ~round:r ~from:p.pid) planned_sync
            | Some Crash.Before_send -> ()
            | Some (Crash.During_data survivors) ->
              List.iter
                (fun (dest, msg) ->
                  if Pid.Set.mem dest survivors then
                    deliver_data ~round:r ~from:p.pid (dest, msg))
                planned_data
            | Some (Crash.After_data prefix) ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iteri
                (fun i dest ->
                  if i < prefix then deliver_sync ~round:r ~from:p.pid dest)
                planned_sync
            | Some Crash.After_send ->
              List.iter (deliver_data ~round:r ~from:p.pid) planned_data;
              List.iter (deliver_sync ~round:r ~from:p.pid) planned_sync);
            (match crash_now with
            | None -> ()
            | Some point ->
              (match p.status with
              | Announced { value; at_round } ->
                post_decision_crashes := Pid.Set.add p.pid !post_decision_crashes;
                p.status <- Halted { value; at_round }
              | Running | Halted _ | Dead _ ->
                p.status <- Dead { at_round = r });
              if observing then
                emit (Obs.Event.Crashed { round = r; pid = p.pid; point })))
        procs;
      Array.iter
        (fun p ->
          match p.status with
          | Halted _ | Dead _ ->
            p.inbox.len <- 0;
            p.sync_len <- 0
          | Announced _ ->
            sort_data p.inbox;
            sort_syncs p;
            let data = data_list p.inbox and syncs = sync_list p in
            p.inbox.len <- 0;
            p.sync_len <- 0;
            let state, _ = A.compute p.state ~round:r ~data ~syncs in
            p.state <- state
          | Running ->
            sort_data p.inbox;
            sort_syncs p;
            let data = data_list p.inbox and syncs = sync_list p in
            p.inbox.len <- 0;
            p.sync_len <- 0;
            let state, decision = A.compute p.state ~round:r ~data ~syncs in
            p.state <- state;
            (match decision with
            | None -> ()
            | Some value ->
              (match A.decision_mode with
              | `Halt -> p.status <- Halted { value; at_round = r }
              | `Announce -> p.status <- Announced { value; at_round = r });
              if observing then
                emit (Obs.Event.Decided { round = r; pid = p.pid; value })))
        procs
    done;
    if observing then begin
      let undecided =
        Array.to_list procs
        |> List.filter_map (fun p ->
               match p.status with
               | Running -> Some p.pid
               | Halted _ | Announced _ | Dead _ -> None)
      in
      if undecided <> [] then
        emit
          (Obs.Event.Round_limit
             { round = !round; max_rounds = cfg.max_rounds; undecided })
    end;
    if observing then emit (Obs.Event.Run_end { rounds = !round });
    {
      Run_result.n = cfg.n;
      t = cfg.t;
      proposals = Array.copy cfg.proposals;
      statuses =
        Array.map
          (fun p ->
            match p.status with
            | Running -> Run_result.Undecided
            | Halted { value; at_round } | Announced { value; at_round } ->
              Run_result.Decided { value; at_round }
            | Dead { at_round } -> Run_result.Crashed { at_round })
          procs;
      rounds_executed = !round;
      data_msgs = counters.Obs.Counters.data_msgs;
      data_bits = counters.Obs.Counters.data_bits;
      sync_msgs = counters.Obs.Counters.sync_msgs;
      sync_bits = counters.Obs.Counters.sync_bits;
      post_decision_crashes = !post_decision_crashes;
      trace =
        (match trace_sink with
        | None -> []
        | Some ts -> List.filter_map Trace.of_obs (Obs.Trace_sink.events ts));
    }

  let run (cfg : Engine.config) = exec (scratch_of_config cfg) cfg.schedule

  let runner cfg =
    let s = scratch_of_config cfg in
    fun schedule -> exec s schedule
end
