(** EXP-MC — the exhaustive model checker's state-space table: full-space
    vs symmetry-reduced sweep cardinalities and the equality of their
    violation verdict sets (including for a deliberately broken variant). *)

val experiment : Experiment.t
