(** EXP-DIFF — cross-engine differential conformance over the full
    canonical n = 4 sweep (abstract engine [run] vs [runner] vs the timed
    LAN realization), plus a masked-transport differential under storm
    seeds.  Fails loudly on any disagreement. *)

val experiment : Experiment.t
