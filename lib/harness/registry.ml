let all =
  [
    Exp_f1.experiment;
    Exp_t1.experiment;
    Exp_t2.experiment;
    Exp_s22.experiment;
    Exp_lb.experiment;
    Exp_biv.experiment;
    Exp_sim.experiment;
    Exp_ffd.experiment;
    Exp_mr99.experiment;
    Exp_cl.experiment;
    Exp_abl.experiment;
    Exp_uni.experiment;
    Exp_lan.experiment;
    Exp_eff.experiment;
    Exp_obs.experiment;
    Exp_chaos.experiment;
    Exp_mc.experiment;
    Exp_diff.experiment;
    Exp_live.experiment;
    Exp_dist.experiment;
    Exp_serve.experiment;
    Exp_recover.experiment;
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.Experiment.id = id) all

let ids = List.map (fun e -> e.Experiment.id) all
