(** EXP-DIFF — the differential conformance oracle over the canonical sweep.

    Every other experiment validates one execution of the Figure 1 protocol
    against the paper's spec; this one validates the executions against
    {e each other}.  For every canonical crash schedule at n = 4 the oracle
    ({!Minimize.Oracle.check_schedule}) runs the abstract engine twice
    (fresh-allocation [run] and reused-scratch [runner], compared on the
    full observable result) and the timed LAN realization (compared on
    decisions, decision rounds and crash-set).  A second table replays the
    chaos storm seeds through the masked transport.  Any disagreement
    anywhere fails the experiment — zero is the only acceptable column. *)

let n = 4
let t = 2
let max_round = 3

let schedule_table () =
  let profile = Adversary.Canonical.rotating_coordinator ~n in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "cross-engine differential check, canonical rwwc sweep (n = %d, \
            t = %d, crashes in rounds 1..%d; disagreements must be 0)"
           n t max_round)
      ~header:
        [
          "max f";
          "classes checked";
          "engine-pair disagreements";
          "timed-lane runs";
          "timed-lane skipped (non-prefix)";
          "timed disagreements";
        ]
      ()
  in
  for max_f = 0 to 2 do
    let classes = ref 0 and timed_runs = ref 0 and skipped = ref 0 in
    let disagreements = ref 0 in
    Seq.iter
      (fun schedule ->
        incr classes;
        match Minimize.Oracle.check_schedule ~n ~t schedule with
        | Minimize.Oracle.Agree lanes ->
          List.iter
            (fun lane ->
              if lane.Minimize.Oracle.name = "timed-lan" then
                if lane.Minimize.Oracle.note = "" then incr timed_runs
                else incr skipped)
            lanes
        | Minimize.Oracle.Disagree { diffs; _ } ->
          incr disagreements;
          failwith
            (Printf.sprintf "EXP-DIFF: engines disagree on %s: %s"
               (Model.Schedule.to_string schedule)
               (String.concat "; " diffs)))
      (Adversary.Canonical.schedules profile ~n ~max_f ~max_round);
    Diag.Table.add_row table
      [
        Diag.Table.fmt_int max_f;
        Diag.Table.fmt_int !classes;
        "0";
        Diag.Table.fmt_int !timed_runs;
        Diag.Table.fmt_int !skipped;
        Diag.Table.fmt_int !disagreements;
      ]
  done;
  table

let masked_table () =
  let table =
    Diag.Table.create
      ~title:
        "masked-transport differential check (n = 6, storm seeds; wrong \
         must be 0)"
      ~header:[ "drop rate"; "retry budget"; "seeds"; "masked"; "detected"; "wrong" ]
      ()
  in
  List.iter
    (fun (drop, budget) ->
      let masked = ref 0 and detected = ref 0 and wrong = ref 0 in
      for seed = 1 to 10 do
        let faults =
          Adversary.Net_faults.network_storm ~drop ~duplicate:(drop /. 2.0)
            ~jitter:0.2 ~jitter_spread:2.5
            ~seed:(Int64.of_int (2000 + seed))
            ()
        in
        match
          Minimize.Oracle.check_masked ~budget ~faults
            ~seed:(Int64.of_int seed) ()
        with
        | Minimize.Oracle.Masked, _ -> incr masked
        | Minimize.Oracle.Detected _, _ -> incr detected
        | Minimize.Oracle.Wrong why, _ ->
          incr wrong;
          failwith
            (Printf.sprintf
               "EXP-DIFF: wrong masked run (drop %.2f budget %d seed %d): %s"
               drop budget seed why)
      done;
      Diag.Table.add_row table
        [
          Printf.sprintf "%.2f" drop;
          Diag.Table.fmt_int budget;
          "10";
          Diag.Table.fmt_int !masked;
          Diag.Table.fmt_int !detected;
          Diag.Table.fmt_int !wrong;
        ])
    [ (0.0, 0); (0.1, 2); (0.25, 3) ];
  table

let run () = [ schedule_table (); masked_table () ]

let experiment =
  {
    Experiment.id = "DIFF";
    title = "differential conformance: four executions, zero disagreements";
    paper_ref = "verification harness (Sections 2.1-2.2 cross-checked)";
    run;
  }
