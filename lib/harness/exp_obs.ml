(** EXP-OBS — the observer layer as a measurement instrument.

    Cross-validates the event stream against the engine's semantic
    accounting: for rwwc under the paper's adversaries, the metrics sink
    must reconstruct the exact Run_result counters from events alone, while
    the online-invariant guard rides along on every run.  The second table
    is the per-round message profile under the greedy killer — the shape
    behind Theorem 2's worst case, now observable without touching the
    engine. *)

open Model
open Sync_sim

let scenarios n =
  [
    ("none", Schedule.empty);
    ( "silent f=3",
      Adversary.Strategies.coordinator_killer ~n ~f:3
        ~style:Adversary.Strategies.Silent );
    ( "greedy f=3",
      Adversary.Strategies.coordinator_killer ~n ~f:3
        ~style:Adversary.Strategies.Greedy );
  ]

let observed_run ~context cfg =
  (* Metrics and fail-fast invariants composed on one run: the sweep is its
     own correctness probe. *)
  Runners.with_metrics
    (Runners.with_online_invariants ~context Runners.Rwwc_runner.run)
    cfg

let run () =
  let n = 8 in
  let t = n - 2 in
  let proposals = Workloads.distinct n in
  let agreement =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Sink-derived metrics vs engine accounting (rwwc, n=%d)" n)
      ~header:
        [
          "adversary";
          "rounds";
          "msgs (engine)";
          "msgs (sink)";
          "bits (engine)";
          "bits (sink)";
          "mean decision round";
          "agree";
        ]
      ()
  in
  let greedy_profile = ref None in
  List.iter
    (fun (name, schedule) ->
      let cfg = Engine.config ~schedule ~n ~t ~proposals () in
      let res, m = observed_run ~context:("OBS " ^ name) cfg in
      let sink = Obs.Metrics.counters m in
      let agree =
        Run_result.total_msgs res = Obs.Counters.total_msgs sink
        && Run_result.total_bits res = Obs.Counters.total_bits sink
        && Obs.Metrics.rounds m = res.Run_result.rounds_executed
      in
      Diag.Table.add_row agreement
        [
          name;
          Diag.Table.fmt_int res.Run_result.rounds_executed;
          Diag.Table.fmt_int (Run_result.total_msgs res);
          Diag.Table.fmt_int (Obs.Counters.total_msgs sink);
          Diag.Table.fmt_int (Run_result.total_bits res);
          Diag.Table.fmt_int (Obs.Counters.total_bits sink);
          (match Obs.Metrics.decision_latency m with
          | None -> "-"
          | Some s -> Diag.Table.fmt_float ~decimals:2 s.Diag.Stats.mean);
          Diag.Table.fmt_bool agree;
        ];
      if name = "greedy f=3" then greedy_profile := Some (Obs.Metrics.per_round_table m))
    (scenarios n);
  match !greedy_profile with
  | Some profile -> [ agreement; profile ]
  | None -> [ agreement ]

let experiment =
  {
    Experiment.id = "OBS";
    title = "observer layer: sink-derived metrics cross-check";
    paper_ref = "Theorem 2 accounting, Section 3.1 properties (online)";
    run;
  }
