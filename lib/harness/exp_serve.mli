(** EXP-SERVE — consensus as a service on the deterministic loopback mesh:
    multiplexed storms complete and stay judge-clean at scale, batching
    collapses write calls by >= 4x without changing a single decision, and
    a mid-storm coordinator kill costs the survivors one expired round per
    in-flight instance while every transcript still matches the abstract
    engine. *)

val experiment : Experiment.t
