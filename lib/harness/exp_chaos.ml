(** EXP-CHAOS — the LAN realization under an unreliable network.

    Sweeps network fault rates × retransmission budgets over seeded runs of
    the Figure 1 algorithm on the fault-masking transport ({!Lan.Masked})
    and checks the two regimes the masking layer promises:

    - {b masked}: every completed run decides exactly like the abstract
      {!Sync_sim.Engine} (same pids, values and rounds), with the online
      invariant checker attached to every decision;
    - {b detected}: every run the budget cannot cover terminates with a
      structured {!Net.Synchrony_violation} — which round, which link,
      observed vs. assumed latency.

    The one outcome that must never appear is {b wrong}: a completed run
    whose decisions differ from the abstract engine, or a decided value
    that differs from the abstract one in an aborted run.  A single wrong
    run fails the experiment (and the chaos smoke job in CI). *)

open Model

let big_d = 10.0
let delta = 1.0
let n = 6

(* Latencies and reorder jitter stay jointly under D, so jitter alone never
   breaks the synchrony assumption — only drops, cuts and spikes do. *)
let latency = Timed_sim.Timed_engine.Uniform { lo = 0.5; hi = big_d /. 2.0 }
let jitter_spread = big_d /. 4.0

type verdict =
  | Masked
  | Detected of Net.Synchrony_violation.t
  | Wrong of string

let abstract_decisions ~n ~proposals =
  let res =
    Runners.Rwwc_runner.run
      (Sync_sim.Engine.config ~n ~t:(n - 2) ~proposals ())
  in
  List.map
    (fun (pid, v, r) -> (Pid.to_int pid, v, r))
    (Sync_sim.Run_result.decisions res)

let run_one ?(n = n) ~budget ~faults ~seed () =
  let module M =
    Lan.Masked.Make
      (Core.Rwwc)
      (struct
        let big_d = big_d
        let delta = delta
        let retry_budget = budget
      end)
  in
  let module R = Timed_sim.Timed_engine.Make (M) in
  let proposals = Workloads.distinct n in
  let abstract = abstract_decisions ~n ~proposals in
  (* Online uniform-consensus guard, bridged from the timed event stream:
     every decision is checked for validity/agreement the moment it lands. *)
  let guard =
    Obs.Online_invariants.create ~check_termination:false ~n ~t:(n - 2)
      ~proposals ()
  in
  let ginst = Obs.Online_invariants.instrument guard in
  let bridge =
    Obs.Instrument.of_fn (function
      | Timed_sim.Timed_engine.Chose { at; pid; value } ->
        Obs.Instrument.emit ginst
          (Obs.Event.Decided { round = M.round_of_time at; pid; value })
      | _ -> ())
  in
  let res =
    R.run
      (Timed_sim.Timed_engine.config ~latency ~faults ~seed ~instrument:bridge
         ~n ~t:(n - 2) ~proposals ())
  in
  let decided =
    List.map
      (fun (pid, v, at) -> (Pid.to_int pid, v, M.round_of_time at))
      (Timed_sim.Timed_engine.decisions res)
  in
  let verdict =
    match res.Timed_sim.Timed_engine.violations with
    | v :: _ ->
      (* Aborted: acceptable only if nothing decided wrongly before the
         abort landed. *)
      if List.for_all (fun d -> List.mem d abstract) decided then Detected v
      else Wrong "decision diverged before the violation was detected"
    | [] ->
      if decided = abstract then Masked
      else Wrong "completed run diverged from the abstract engine"
  in
  (verdict, Net.Fault_plan.faults_injected faults)

let pp_share masked total = Printf.sprintf "%d/%d" masked total

let storm_table () =
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "network-storm sweep over rwwc-masked-lan (n = %d, D = %.0f, \
            delta = %.0f, 20 seeds per cell; wrong must be 0)"
           n big_d delta)
      ~header:
        [
          "drop rate";
          "retry budget";
          "masked";
          "detected";
          "wrong";
          "faults injected";
        ]
      ()
  in
  List.iter
    (fun drop ->
      List.iter
        (fun budget ->
          let masked = ref 0 and detected = ref 0 and wrong = ref 0 in
          let injected = ref 0 in
          for seed = 1 to 20 do
            let faults =
              Adversary.Net_faults.network_storm ~drop ~duplicate:(drop /. 2.0)
                ~jitter:0.2 ~jitter_spread
                ~seed:(Int64.of_int (1000 + seed))
                ()
            in
            let verdict, faults_injected =
              run_one ~budget ~faults ~seed:(Int64.of_int seed) ()
            in
            injected := !injected + faults_injected;
            match verdict with
            | Masked -> incr masked
            | Detected _ -> incr detected
            | Wrong why ->
              incr wrong;
              failwith
                (Printf.sprintf
                   "EXP-CHAOS: silently wrong run (drop %.2f budget %d seed \
                    %d): %s"
                   drop budget seed why)
          done;
          if drop = 0.0 && !detected > 0 then
            failwith "EXP-CHAOS: zero-fault runs must all be masked";
          Diag.Table.add_row table
            [
              Printf.sprintf "%.2f" drop;
              Diag.Table.fmt_int budget;
              pp_share !masked 20;
              pp_share !detected 20;
              Diag.Table.fmt_int !wrong;
              Diag.Table.fmt_int !injected;
            ])
        [ 0; 1; 2; 3 ])
    [ 0.0; 0.05; 0.15; 0.30 ];
  table

let violation_table () =
  let table =
    Diag.Table.create
      ~title:
        "over-budget scenarios: every unmasked run is detected with a \
         structured report"
      ~header:
        [ "scenario"; "retry budget"; "outcome"; "synchrony violation report" ]
      ()
  in
  let report scenario budget faults =
    let verdict, _ = run_one ~budget ~faults ~seed:3L () in
    let outcome, detail =
      match verdict with
      | Masked -> ("masked", "-")
      | Detected v -> ("detected", Net.Synchrony_violation.to_string v)
      | Wrong why -> ("WRONG", why)
    in
    (match verdict with
    | Wrong why -> failwith ("EXP-CHAOS: " ^ scenario ^ ": " ^ why)
    | Masked | Detected _ -> ());
    Diag.Table.add_row table
      [ scenario; Diag.Table.fmt_int budget; outcome; detail ]
  in
  report "cut p1->p3, whole run"
    2
    (Adversary.Net_faults.targeted_link_cut ~src:(Pid.of_int 1)
       ~dst:(Pid.of_int 3) ~seed:7L ());
  report "p4 unreachable" 3
    (Adversary.Net_faults.receiver_isolation ~dst:(Pid.of_int 4) ~seed:7L ());
  report "latency burst 6x, detect-only budget" 0
    (Adversary.Net_faults.latency_burst ~spike:0.6 ~spike_factor:6.0 ~seed:7L
       ());
  table

let run () = [ storm_table (); violation_table () ]

let experiment =
  {
    Experiment.id = "CHAOS";
    title = "fault masking and graceful degradation on an unreliable LAN";
    paper_ref = "Section 2.2 (implementability), hardened";
    run;
  }
