(** EXP-CHAOS — the LAN realization under an unreliable network.

    Sweeps network fault rates × retransmission budgets over seeded runs of
    the Figure 1 algorithm on the fault-masking transport ({!Lan.Masked})
    and checks the two regimes the masking layer promises:

    - {b masked}: every completed run decides exactly like the abstract
      {!Sync_sim.Engine} (same pids, values and rounds), with the online
      invariant checker attached to every decision;
    - {b detected}: every run the budget cannot cover terminates with a
      structured {!Net.Synchrony_violation} — which round, which link,
      observed vs. assumed latency.

    The one outcome that must never appear is {b wrong}: a completed run
    whose decisions differ from the abstract engine, or a decided value
    that differs from the abstract one in an aborted run.  A single wrong
    run fails the experiment (and the chaos smoke job in CI). *)

open Model

let big_d = 10.0
let delta = 1.0
let n = 6

(* Latencies (drawn in the oracle) and reorder jitter stay jointly under D,
   so jitter alone never breaks the synchrony assumption — only drops, cuts
   and spikes do. *)
let jitter_spread = big_d /. 4.0

(* The single-run classification lives in {!Minimize.Oracle} — the
   differential oracle — so the shrinker can re-evaluate it on scripted
   fault plans; the verdict type is re-exported here by equation. *)
type verdict = Minimize.Oracle.masked_verdict =
  | Masked
  | Detected of Net.Synchrony_violation.t
  | Wrong of string

let run_one ?(n = n) ~budget ~faults ~seed () =
  Minimize.Oracle.check_masked ~n ~budget ~faults ~seed ()

let pp_share masked total = Printf.sprintf "%d/%d" masked total

let storm_table () =
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "network-storm sweep over rwwc-masked-lan (n = %d, D = %.0f, \
            delta = %.0f, 20 seeds per cell; wrong must be 0)"
           n big_d delta)
      ~header:
        [
          "drop rate";
          "retry budget";
          "masked";
          "detected";
          "wrong";
          "faults injected";
        ]
      ()
  in
  List.iter
    (fun drop ->
      List.iter
        (fun budget ->
          let masked = ref 0 and detected = ref 0 and wrong = ref 0 in
          let injected = ref 0 in
          for seed = 1 to 20 do
            let faults =
              Adversary.Net_faults.network_storm ~drop ~duplicate:(drop /. 2.0)
                ~jitter:0.2 ~jitter_spread
                ~seed:(Int64.of_int (1000 + seed))
                ()
            in
            let verdict, faults_injected =
              run_one ~budget ~faults ~seed:(Int64.of_int seed) ()
            in
            injected := !injected + faults_injected;
            match verdict with
            | Masked -> incr masked
            | Detected _ -> incr detected
            | Wrong why ->
              incr wrong;
              failwith
                (Printf.sprintf
                   "EXP-CHAOS: silently wrong run (drop %.2f budget %d seed \
                    %d): %s"
                   drop budget seed why)
          done;
          if drop = 0.0 && !detected > 0 then
            failwith "EXP-CHAOS: zero-fault runs must all be masked";
          Diag.Table.add_row table
            [
              Printf.sprintf "%.2f" drop;
              Diag.Table.fmt_int budget;
              pp_share !masked 20;
              pp_share !detected 20;
              Diag.Table.fmt_int !wrong;
              Diag.Table.fmt_int !injected;
            ])
        [ 0; 1; 2; 3 ])
    [ 0.0; 0.05; 0.15; 0.30 ];
  table

let violation_table () =
  let table =
    Diag.Table.create
      ~title:
        "over-budget scenarios: every unmasked run is detected with a \
         structured report"
      ~header:
        [ "scenario"; "retry budget"; "outcome"; "synchrony violation report" ]
      ()
  in
  let report scenario budget faults =
    let verdict, _ = run_one ~budget ~faults ~seed:3L () in
    let outcome, detail =
      match verdict with
      | Masked -> ("masked", "-")
      | Detected v -> ("detected", Net.Synchrony_violation.to_string v)
      | Wrong why -> ("WRONG", why)
    in
    (match verdict with
    | Wrong why -> failwith ("EXP-CHAOS: " ^ scenario ^ ": " ^ why)
    | Masked | Detected _ -> ());
    Diag.Table.add_row table
      [ scenario; Diag.Table.fmt_int budget; outcome; detail ]
  in
  report "cut p1->p3, whole run"
    2
    (Adversary.Net_faults.targeted_link_cut ~src:(Pid.of_int 1)
       ~dst:(Pid.of_int 3) ~seed:7L ());
  report "p4 unreachable" 3
    (Adversary.Net_faults.receiver_isolation ~dst:(Pid.of_int 4) ~seed:7L ());
  report "latency burst 6x, detect-only budget" 0
    (Adversary.Net_faults.latency_burst ~spike:0.6 ~spike_factor:6.0 ~seed:7L
       ());
  table

let run () = [ storm_table (); violation_table () ]

let experiment =
  {
    Experiment.id = "CHAOS";
    title = "fault masking and graceful degradation on an unreliable LAN";
    paper_ref = "Section 2.2 (implementability), hardened";
    run;
  }
