(** EXP-LIVE — the live runtime's crash semantics, checked deterministically.

    Runs the Figure 1 algorithm through the live wire protocol on the
    in-memory loopback transport — the exact encoder/decoder/kill path of
    the socket runtime, minus the clocks and processes — and shows that
    killing a sender after [k] sequential writes realizes precisely the
    extended model's crash semantics: an order-prefix of the data
    destinations, or all data plus a prefix of the control sequence.

    Every row is judged twice: the transcript must satisfy uniform
    consensus within [f + 1] deadline-synchronized rounds (the EXP-CHAOS
    property checkers), and its decisions must equal the abstract
    {!Sync_sim.Engine} on the schedule the kill script realizes.  Each
    configuration also runs twice and must produce observably identical
    transcripts — the loopback engine is the deterministic anchor the
    socket smoke is compared against. *)

open Model

let summarize tr =
  match Live.Transcript.decisions tr with
  | [] -> "none"
  | ds ->
    ds
    |> List.map (fun (p, v, r) ->
           Printf.sprintf "p%d=%d@r%d" (Pid.to_int p) v r)
    |> String.concat " "

(* One judged loopback run: deterministic, property-clean, and in agreement
   with the abstract engine — anything else fails the experiment. *)
let judged ~n ~t script =
  let run () = Live.Loopback.Rwwc.run ~n ~t ~script () in
  let tr = run () in
  if not (Live.Transcript.equal_observable tr (run ())) then
    failwith
      (Printf.sprintf "EXP-LIVE: loopback not deterministic on [%s]"
         (Live.Script.to_string script));
  let schedule =
    Live.Script.to_schedule ~send_plan:(Live.Binding.Rwwc.send_plan ~n) script
  in
  let v = Live.Judge.judge ~schedule tr in
  if not v.Live.Judge.ok then
    failwith
      (Printf.sprintf "EXP-LIVE: judge failed on [%s]"
         (Live.Script.to_string script));
  (tr, v)

let last_decision_round tr =
  List.fold_left (fun acc (_, _, r) -> max acc r) 0
    (Live.Transcript.decisions tr)

let canonical_table () =
  let n = 6 in
  let t = 4 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "canonical f-kill scripts through the live wire (loopback, n = \
            %d, t = %d): survivors decide within f+1 rounds and match the \
            abstract engine"
           n t)
      ~header:
        [ "f"; "script"; "decisions"; "last decision"; "f+1 bound"; "judge" ]
      ()
  in
  for f = 0 to t do
    let script = Live.Script.default ~n ~f in
    let tr, v = judged ~n ~t script in
    let last = last_decision_round tr in
    if last > f + 1 then
      failwith
        (Printf.sprintf "EXP-LIVE: decision at round %d exceeds f+1 = %d" last
           (f + 1));
    Diag.Table.add_row table
      [
        Diag.Table.fmt_int f;
        (if script = [] then "-" else Live.Script.to_string script);
        summarize tr;
        Diag.Table.fmt_int last;
        Diag.Table.fmt_int (f + 1);
        (match v.Live.Judge.differential with
        | Some (Ok _) -> "pass + engine match"
        | Some (Error _) | None -> "pass");
      ]
  done;
  table

let phase_table () =
  let n = 5 in
  let t = 3 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "write-prefix sweep: p1 killed after k sequential writes of round \
            1 (loopback, n = %d; 4 data writes then 4 control writes)"
           n)
      ~header:[ "kill"; "abstract crash point"; "decisions"; "judge" ]
      ()
  in
  let phases =
    [ Live.Script.Before_send ]
    @ List.init (n - 1) (fun k -> Live.Script.During_data (k + 1))
    @ List.init (n - 1) (fun k -> Live.Script.During_ctl (k + 1))
    @ [ Live.Script.After_send ]
  in
  List.iter
    (fun phase ->
      let kill = { Live.Script.pid = Pid.of_int 1; round = 1; phase } in
      let script = [ kill ] in
      let tr, v = judged ~n ~t script in
      let schedule =
        Live.Script.to_schedule
          ~send_plan:(Live.Binding.Rwwc.send_plan ~n)
          script
      in
      let point =
        match Schedule.bindings schedule with
        | [ (pid, ev) ] ->
          Format.asprintf "p%d%a" (Pid.to_int pid) Crash.pp ev
        | _ -> "-"
      in
      Diag.Table.add_row table
        [
          Live.Script.kill_to_string kill;
          point;
          summarize tr;
          (match v.Live.Judge.differential with
          | Some (Ok _) -> "pass + engine match"
          | Some (Error _) | None -> "pass");
        ])
    phases;
  table

let run () = [ canonical_table (); phase_table () ]

let experiment =
  {
    Experiment.id = "LIVE";
    title = "live wire protocol: write-prefix kills realize the crash model";
    paper_ref = "Section 2 (extended rounds), realized as a live runtime";
    run;
  }
