open Sync_sim

module Rwwc_runner = Engine.Make_flat (Core.Rwwc)
module Flood_runner = Engine.Make_flat (Baselines.Flood_set)
module Es_runner = Engine.Make (Baselines.Early_stopping)
module Compiled = Core.Extended_on_classic.Make (Core.Rwwc)
module Compiled_runner = Engine.Make (Compiled)

let f_actual res = Model.Pid.Set.cardinal (Run_result.crashed res)

let with_instrument inst cfg =
  {
    cfg with
    Engine.instrument = Obs.Instrument.compose inst cfg.Engine.instrument;
  }

let with_metrics run cfg =
  let m = Obs.Metrics.create () in
  let res = run (with_instrument (Obs.Metrics.instrument m) cfg) in
  (res, m)

let with_online_invariants ?check_termination ?bound ~context run cfg =
  let guard =
    Obs.Online_invariants.create ?check_termination ?bound ~n:cfg.Engine.n
      ~t:cfg.Engine.t ~proposals:cfg.Engine.proposals ()
  in
  try run (with_instrument (Obs.Online_invariants.instrument guard) cfg)
  with Obs.Online_invariants.Violation msg ->
    failwith (Printf.sprintf "[%s] online invariant violation: %s" context msg)

let checked ~context ~bound res =
  Spec.Properties.assert_ok ~context
    (Spec.Properties.uniform_consensus ~bound res);
  res

let max_round res = Option.value (Run_result.max_decision_round res) ~default:0
