(** EXP-DIST — the distributed checker changes where the work runs, never
    the verdicts.

    Two tables, both over real forked processes and unix-domain sockets:

    - {b Equivalence.}  Each configuration runs the canonical sweep twice —
      in-process (the single-machine [check] path) and through a
      coordinator plus a two-worker fleet ({!Dist.Fleet.run_local}) — and
      the class counts and violation counts must be equal, including for a
      broken ablation (the violations must survive distribution) and under
      a scripted mid-shard worker kill (the lease must be re-granted and
      absorbed without losing a class).

    - {b Resume.}  The acceptance scenario at paper scale (n = 5,
      max_f = 3: 6048 canonical classes): a worker dies on its fourth
      grant, the coordinator is SIGKILL'd mid-sweep, and a fresh
      coordinator restarted on the same checkpoint finishes the sweep
      re-executing {e only} the unfinished shards — the resumed ids and
      the executed ids partition the shard space, and the total equals the
      uninterrupted count.

    Any inequality fails the experiment with an exception; a table row
    only prints if the distributed verdicts matched the local ones. *)

module P = Dist.Protocol

let tmp name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "sync-agreement-exp-dist-%d-%s" (Unix.getpid ()) name)

let cleanup files =
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files

let job ~algo ~n ~max_f ~shards =
  {
    P.algo;
    n;
    max_f;
    max_round = 3;
    shards;
    symmetry = true;
    heartbeat_every = 0.25;
  }

(* The single-machine reference: the same canonical enumeration the workers
   shard, folded in-process through the same verdict. *)
let local_sweep (job : P.job) =
  match Minimize.Algo.find job.P.algo with
  | Error why -> failwith ("EXP-DIST: " ^ why)
  | Ok algo ->
    let n = job.P.n in
    let t = max 1 (n - 2) in
    let profile =
      match algo.Minimize.Algo.model with
      | Model.Model_kind.Extended -> Adversary.Canonical.rotating_coordinator ~n
      | Model.Model_kind.Classic -> Adversary.Canonical.broadcast ~n ~t
    in
    Seq.fold_left
      (fun (classes, violations) s ->
        match Minimize.Algo.violation algo ~n ~t s with
        | Some _ -> (classes + 1, violations + 1)
        | None -> (classes + 1, violations))
      (0, 0)
      (Adversary.Canonical.schedules profile ~n ~max_f:job.P.max_f
         ~max_round:job.P.max_round)

let distributed ?kill_one_after ?checkpoint (job : P.job) ~tag =
  let sock = tmp (tag ^ ".sock") in
  cleanup [ sock ];
  match
    Dist.Fleet.run_local ~lease_timeout:1.0 ?checkpoint ?kill_one_after
      ~workers:2 ~addr:(Unix.ADDR_UNIX sock) job
  with
  | Error why -> failwith (Printf.sprintf "EXP-DIST (%s): %s" tag why)
  | Ok outcome ->
    cleanup [ sock ];
    if outcome.Dist.Fleet.worker_failures > 0 then
      failwith
        (Printf.sprintf "EXP-DIST (%s): %d unscripted worker failure(s)" tag
           outcome.Dist.Fleet.worker_failures);
    outcome

let equivalence_table () =
  let table =
    Diag.Table.create
      ~title:
        "distributed sweep = single-machine sweep (2 workers over unix \
         sockets; chaos = scripted SIGKILL-style worker death mid-shard)"
      ~header:
        [
          "algo";
          "n";
          "max_f";
          "shards";
          "chaos";
          "classes dist";
          "classes local";
          "viol dist";
          "viol local";
          "regrants";
          "agree";
        ]
      ()
  in
  let row ~algo ~n ~max_f ~shards ~kill_one_after ~tag =
    let job = job ~algo ~n ~max_f ~shards in
    let local_classes, local_violations = local_sweep job in
    let o = distributed ?kill_one_after job ~tag in
    let r = o.Dist.Fleet.report in
    (match kill_one_after with
    | Some _ when o.Dist.Fleet.chaos_deaths <> 1 ->
      failwith
        (Printf.sprintf "EXP-DIST (%s): expected 1 chaos death, saw %d" tag
           o.Dist.Fleet.chaos_deaths)
    | Some _ | None -> ());
    let agree =
      r.Dist.Coordinator.classes = local_classes
      && r.Dist.Coordinator.violations_total = local_violations
    in
    if not agree then
      failwith
        (Printf.sprintf
           "EXP-DIST (%s): distributed %d classes / %d violations, local %d \
            / %d"
           tag r.Dist.Coordinator.classes
           r.Dist.Coordinator.violations_total local_classes local_violations);
    Diag.Table.add_row table
      [
        algo;
        Diag.Table.fmt_int n;
        Diag.Table.fmt_int max_f;
        Diag.Table.fmt_int shards;
        (match kill_one_after with
        | None -> "-"
        | Some k -> Printf.sprintf "kill after %d" k);
        Diag.Table.fmt_int r.Dist.Coordinator.classes;
        Diag.Table.fmt_int local_classes;
        Diag.Table.fmt_int r.Dist.Coordinator.violations_total;
        Diag.Table.fmt_int local_violations;
        Diag.Table.fmt_int r.Dist.Coordinator.regrants;
        Diag.Table.fmt_bool agree;
      ]
  in
  row ~algo:"rwwc" ~n:4 ~max_f:2 ~shards:16 ~kill_one_after:None ~tag:"rwwc4";
  row ~algo:"rwwc" ~n:4 ~max_f:2 ~shards:16 ~kill_one_after:(Some 40)
    ~tag:"rwwc4-kill";
  row ~algo:"data-decide" ~n:4 ~max_f:2 ~shards:8 ~kill_one_after:None
    ~tag:"dd4";
  row ~algo:"rwwc" ~n:5 ~max_f:3 ~shards:24 ~kill_one_after:(Some 2000)
    ~tag:"rwwc5-kill";
  table

(* A coordinator in its own process, so it can be SIGKILL'd mid-sweep. *)
let fork_coordinator ~checkpoint ~addr job =
  match Unix.fork () with
  | 0 ->
    let code =
      match
        Dist.Coordinator.serve
          (Dist.Coordinator.config ~lease_timeout:1.0 ~checkpoint ~addr job)
      with
      | Ok _ -> 0
      | Error _ -> 1
    in
    Unix._exit code
  | pid -> pid

let resume_table () =
  let job = job ~algo:"rwwc" ~n:5 ~max_f:3 ~shards:24 in
  let local_classes, _ = local_sweep job in
  let sock = tmp "resume.sock" in
  let ckpt = tmp "resume.ckpt.json" in
  cleanup [ sock; ckpt ];
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "SIGKILL the coordinator mid-sweep, restart from the checkpoint \
            (rwwc, n = 5, max_f = 3, %d shards, %d canonical classes)"
           job.P.shards local_classes)
      ~header:[ "phase"; "event"; "shards finished"; "classes"; "verdict" ]
      ()
  in
  (* Phase 1: one worker that dies holding its 4th lease — exactly three
     shards reach the checkpoint (the ack a worker waits for is only sent
     after the checkpoint hit disk), then the idle coordinator is killed. *)
  let coord = fork_coordinator ~checkpoint:ckpt ~addr:(Unix.ADDR_UNIX sock) job in
  let worker =
    Dist.Fleet.spawn_worker
      ~chaos:{ Dist.Worker.no_chaos with die_on_grant = Some 4 }
      ~addr:(Unix.ADDR_UNIX sock) ()
  in
  (match Unix.waitpid [] worker with
  | _, Unix.WEXITED c when c = Dist.Worker.chaos_exit_code -> ()
  | _ -> failwith "EXP-DIST: phase-1 worker did not die its scripted death");
  Unix.kill coord Sys.sigkill;
  ignore (Unix.waitpid [] coord);
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let finished =
    match Dist.Checkpoint.load ckpt with
    | Error why -> failwith ("EXP-DIST: checkpoint after SIGKILL: " ^ why)
    | Ok c -> List.map (fun r -> r.P.shard) c.Dist.Checkpoint.results
  in
  let partial =
    match Dist.Checkpoint.load ckpt with
    | Error why -> failwith ("EXP-DIST: " ^ why)
    | Ok c ->
      List.fold_left (fun acc r -> acc + r.P.classes) 0 c.Dist.Checkpoint.results
  in
  Diag.Table.add_row table
    [
      "1";
      "worker dies on grant 4; coordinator SIGKILL'd";
      Printf.sprintf "%d of %d" (List.length finished) job.P.shards;
      Diag.Table.fmt_int partial;
      "checkpoint survives";
    ];
  (* Phase 2: a fresh coordinator on the same checkpoint file finishes the
     sweep.  The resumed ids must be exactly the phase-1 checkpoint and no
     finished shard may run again. *)
  let o = distributed ~checkpoint:ckpt job ~tag:"resume" in
  let r = o.Dist.Fleet.report in
  if r.Dist.Coordinator.resumed <> List.sort compare finished then
    failwith "EXP-DIST: resumed shards differ from the phase-1 checkpoint";
  if
    List.exists
      (fun s -> List.mem s r.Dist.Coordinator.resumed)
      r.Dist.Coordinator.executed
  then failwith "EXP-DIST: a finished shard was re-executed after resume";
  if r.Dist.Coordinator.classes <> local_classes then
    failwith
      (Printf.sprintf "EXP-DIST: resumed sweep found %d classes, local %d"
         r.Dist.Coordinator.classes local_classes);
  Diag.Table.add_row table
    [
      "2";
      Printf.sprintf "restart on checkpoint; %d shards resumed, %d executed"
        (List.length r.Dist.Coordinator.resumed)
        (List.length r.Dist.Coordinator.executed);
      Printf.sprintf "%d of %d" job.P.shards job.P.shards;
      Diag.Table.fmt_int r.Dist.Coordinator.classes;
      "no finished shard re-ran; total = uninterrupted";
    ];
  cleanup [ sock; ckpt ];
  table

let run () = [ equivalence_table (); resume_table () ]

let experiment =
  {
    Experiment.id = "DIST";
    title = "distributed checking: sharded sweeps survive kills and resume";
    paper_ref = "verification harness (Section 3.1 sweep, distributed)";
    run;
  }
