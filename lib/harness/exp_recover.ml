(** EXP-RECOVER — crash-recovery for consensus-as-a-service.

    Drives a real socket fleet through a kill x partition x restart grid
    and demands zero wrong verdicts in every cell: a mid-storm SIGKILL
    victim is respawned by the fleet supervisor, replays its durable
    decision WAL, catches up over the mesh, and the reconnecting client
    fills its verdict column back in — while a chaos proxy cuts mesh
    links under the storm.

    The chaos stays inside the crash-model's safe envelope on purpose:
    cuts are shorter than big_d, so a partition surfaces as delay (TCP
    backpressure, then delivery), never as message loss between two live
    nodes — a link that silently dies between correct processes is an
    omission fault the synchronous crash model does not claim to
    survive.  Resets and corruption are exercised at the unit level
    ({!Serve.Chaosproxy} tests) where the assertion is about fault
    mechanics, not agreement.

    The WAL column is read back from the victim's on-disk log after the
    fleet is torn down: the decisions a client saw are the decisions
    that survived the process. *)

let workspace name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sync-agreement-exp-recover-%d-%s" (Unix.getpid ()) name)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

type cell = {
  settled : int;
  undecided : int;
  wrong : int;  (** instances with conflicting decided values *)
  reconnects : int;
  respawns : int;
  wal_entries : int;  (** victim's WAL after teardown; -1 = no WAL *)
}

let run_cell ~tag ?kill ?(chaos = []) ~instances () =
  let dir = workspace tag in
  let respawn = kill <> None in
  let n = 3 in
  let cfg =
    {
      Serve.Fleet.n;
      t = 1;
      transport = `Unix dir;
      workspace = dir;
      instances;
      window = 16;
      big_d = 0.3;
      batch = true;
      backend = Serve.Evloop.Select;
      kill;
      max_rounds = None;
      proposals = (fun i node -> (i * n) + node);
      client_timeout = None;
      respawn;
      respawn_budget = 3;
      respawn_backoff = 0.2;
      wal = true;
      chaos;
      verbose = false;
    }
  in
  let result =
    Serve.Fleet.with_mesh cfg (fun ~on_idle ~kill:_ ->
        Serve.Client.run ~on_idle ~tick:0.05
          {
            Serve.Client.n;
            transport = cfg.Serve.Fleet.transport;
            first = 0;
            instances;
            window = cfg.Serve.Fleet.window;
            proposals = cfg.Serve.Fleet.proposals;
            timeout = Serve.Fleet.default_timeout cfg;
            reconnect = respawn;
          })
  in
  match result with
  | Error e -> failwith (Printf.sprintf "EXP-RECOVER: %s: %s" tag e)
  | Ok (outcome, mesh) ->
    let wrong = ref 0 in
    Array.iter
      (fun per_node ->
        let values =
          Array.to_list per_node
          |> List.filter_map (Option.map fst)
          |> List.sort_uniq compare
        in
        if List.length values > 1 then incr wrong)
      outcome.Serve.Client.decisions;
    let wal_entries =
      match
        Serve.Wal.load ~path:(Serve.Wal.path ~dir ~node:1) ~node:1
      with
      | Ok r -> List.length r.Serve.Wal.entries
      | Error _ -> -1
    in
    {
      settled = instances - List.length outcome.Serve.Client.undecided;
      undecided = List.length outcome.Serve.Client.undecided;
      wrong = !wrong;
      reconnects = outcome.Serve.Client.reconnects;
      respawns =
        List.fold_left (fun a (_, k) -> a + k) 0 mesh.Serve.Fleet.respawned;
      wal_entries;
    }

let require_clean label c =
  if c.wrong > 0 then
    failwith
      (Printf.sprintf "EXP-RECOVER: %s: %d wrong verdict(s)" label c.wrong);
  if c.undecided > 0 then
    failwith
      (Printf.sprintf "EXP-RECOVER: %s: %d undecided instance(s)" label
         c.undecided);
  c

let safe_cuts ~seed =
  (* Three sub-big_d cuts inside the storm's opening seconds: delay-only
     partitions, per the envelope argument above. *)
  Serve.Chaosproxy.generate ~seed ~horizon:2.0 ~cuts:3 ~cut_len:0.08 ()

let grid_table () =
  let instances = 120 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "kill x partition x restart grid (socket fleet, n = 3, t = 1, %d \
            instances, WAL on): every cell must settle everything with \
            zero wrong verdicts"
           instances)
      ~header:
        [
          "kill";
          "chaos";
          "settled";
          "reconnects";
          "respawns";
          "victim WAL";
          "wrong";
          "verdict";
        ]
      ()
  in
  let cells =
    [
      ("none", "none", None, []);
      ( "p1@57f",
        "none",
        Some { Serve.Report.node = 1; after_frames = 57 },
        [] );
      ( "none",
        "3 cuts 1->2",
        None,
        [
          { Serve.Chaosproxy.src = 1; dst = 2; actions = safe_cuts ~seed:11 };
        ] );
      ( "p1@57f",
        "3 cuts 2->3",
        Some { Serve.Report.node = 1; after_frames = 57 },
        [
          { Serve.Chaosproxy.src = 2; dst = 3; actions = safe_cuts ~seed:23 };
        ] );
    ]
  in
  List.iteri
    (fun i (kill_label, chaos_label, kill, chaos) ->
      let label = Printf.sprintf "cell %d (%s/%s)" i kill_label chaos_label in
      let c =
        require_clean label
          (run_cell ~tag:(Printf.sprintf "grid%d" i) ?kill ~chaos ~instances ())
      in
      if kill <> None && c.respawns = 0 then
        failwith (Printf.sprintf "EXP-RECOVER: %s: victim never respawned" label);
      Diag.Table.add_row table
        [
          kill_label;
          chaos_label;
          Diag.Table.fmt_int c.settled;
          Diag.Table.fmt_int c.reconnects;
          Diag.Table.fmt_int c.respawns;
          Diag.Table.fmt_int c.wal_entries;
          Diag.Table.fmt_int c.wrong;
          "pass";
        ])
    cells;
  table

let restart_sweep_table () =
  (* The restart axis alone, swept across kill points: early (mesh barely
     warm), mid-storm, and late (most instances already decided — the WAL
     replay dominates the catch-up). *)
  let instances = 120 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "respawn sweep (socket fleet, n = 3, t = 1, %d instances): kill \
            p1 after k mesh frames, respawn + WAL replay + client reconnect"
           instances)
      ~header:
        [ "kill after"; "settled"; "reconnects"; "respawns"; "victim WAL"; "verdict" ]
      ()
  in
  List.iter
    (fun after_frames ->
      let label = Printf.sprintf "kill@%d" after_frames in
      let c =
        require_clean label
          (run_cell
             ~tag:(Printf.sprintf "sweep%d" after_frames)
             ~kill:{ Serve.Report.node = 1; after_frames }
             ~instances ())
      in
      Diag.Table.add_row table
        [
          Diag.Table.fmt_int after_frames;
          Diag.Table.fmt_int c.settled;
          Diag.Table.fmt_int c.reconnects;
          Diag.Table.fmt_int c.respawns;
          Diag.Table.fmt_int c.wal_entries;
          "pass";
        ])
    [ 1; 57; 157 ];
  table

let run () = [ grid_table (); restart_sweep_table () ]

let experiment =
  {
    Experiment.id = "RECOVER";
    title = "crash-recovery: WAL replay, respawn, reconnect, chaos links";
    paper_ref = "crash-prefix fault model as a live restart protocol";
    run;
  }
