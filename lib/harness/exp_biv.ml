(** EXP-BIV — the proof technique of Theorem 3: valence analysis of the
    configuration graph under the one-crash-per-round adversary. *)

module Biv = Lower_bound.Bivalency.Make (Core.Rwwc)
module Biv_es =
  Lower_bound.Bivalency.Make (Lower_bound.Algo_intf.Of_list (Baselines.Early_stopping))

let add_row table name model report =
  Diag.Table.add_row table
    [
      name;
      Model.Model_kind.to_string model;
      Diag.Table.fmt_int report.Lower_bound.Bivalency.n;
      Diag.Table.fmt_int report.Lower_bound.Bivalency.t;
      Format.asprintf "%a" Lower_bound.Bivalency.pp_valence
        report.Lower_bound.Bivalency.initial_valence;
      Diag.Table.fmt_int report.Lower_bound.Bivalency.max_bivalent_depth;
      Diag.Table.fmt_bool report.Lower_bound.Bivalency.bivalent_with_decision;
      Diag.Table.fmt_int report.Lower_bound.Bivalency.configs_explored;
    ]

let run () =
  let table =
    Diag.Table.create
      ~title:
        "Valence under the one-crash-per-round adversary (binary proposals \
         0,1,..,1).  Synchronization messages do not shrink the worst-case \
         bivalent horizon: that is the paper's 'limit' (Theorem 3)."
      ~header:
        [
          "algorithm";
          "model";
          "n";
          "t";
          "initial valence";
          "max bivalent depth";
          "decision inside a bivalent config";
          "configs explored";
        ]
      ()
  in
  List.iter
    (fun (n, t) ->
      let proposals = Workloads.binary ~n ~zeros:1 in
      add_row table "rwwc (Figure 1)" Model.Model_kind.Extended
        (Biv.analyze ~n ~t ~proposals ());
      add_row table "early-stopping" Model.Model_kind.Classic
        (Biv_es.analyze ~model:Model.Model_kind.Classic ~n ~t ~proposals ()))
    [ (3, 0); (3, 1); (4, 1); (4, 2); (5, 2) ];
  [ table ]

let experiment =
  {
    Experiment.id = "BIV";
    title = "bivalency: how long the adversary keeps the outcome open";
    paper_ref = "Theorem 3 (proof technique, after Aguilera-Toueg)";
    run;
  }
