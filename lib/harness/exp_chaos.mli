(** EXP-CHAOS — fault-rate × retry-budget sweep over the fault-masking LAN
    transport: sub-budget runs must decide exactly like the abstract
    engine, over-budget runs must abort with a structured
    {!Net.Synchrony_violation} — never a silent wrong decision. *)

(** Classification of one timed run against the abstract engine. *)
type verdict =
  | Masked  (** completed and decided exactly like {!Sync_sim.Engine} *)
  | Detected of Net.Synchrony_violation.t
      (** aborted with a structured report; no wrong decision escaped *)
  | Wrong of string  (** silent divergence — must never happen *)

val run_one :
  ?n:int -> budget:int -> faults:Net.Fault_plan.t -> seed:int64 -> unit ->
  verdict * int
(** Run the Figure 1 algorithm once on the retransmitting LAN transport
    ([retry_budget = budget]) under [faults], with the online invariant
    checker attached, and classify the outcome.  [n] defaults to 6;
    [t = n - 2].  Also returns the number of faults the plan injected.
    Used by the [chaos] subcommand of [bin/main.exe] for soak runs. *)

val experiment : Experiment.t
