(** Shared engine instantiations and helpers for the experiments. *)

open Sync_sim

module Rwwc_runner : sig
  val run : Engine.config -> Run_result.t
  val runner : Engine.config -> Model.Schedule.t -> Run_result.t
end

module Flood_runner : sig
  val run : Engine.config -> Run_result.t
  val runner : Engine.config -> Model.Schedule.t -> Run_result.t
end

module Es_runner : sig
  val run : Engine.config -> Run_result.t
  val runner : Engine.config -> Model.Schedule.t -> Run_result.t
end

module Compiled : sig
  include Algorithm_intf.S

  val block_size : n:int -> int
  val to_extended_round : n:int -> int -> int
  val translate_schedule : n:int -> Model.Schedule.t -> Model.Schedule.t
end
(** [Core.Rwwc] compiled to the classic model. *)

module Compiled_runner : sig
  val run : Engine.config -> Run_result.t
end

val f_actual : Run_result.t -> int
(** Crashes that actually happened during the run. *)

val with_instrument :
  Obs.Event.t Obs.Instrument.t -> Engine.config -> Engine.config
(** Compose one more observer in front of whatever the config already
    carries. *)

val with_metrics :
  (Engine.config -> Run_result.t) ->
  Engine.config ->
  Run_result.t * Obs.Metrics.t
(** Run with a fresh {!Obs.Metrics} sink attached and return it alongside
    the result. *)

val with_online_invariants :
  ?check_termination:bool ->
  ?bound:int ->
  context:string ->
  (Engine.config -> Run_result.t) ->
  Engine.config ->
  Run_result.t
(** Run with an {!Obs.Online_invariants} guard attached: the run aborts on
    the first violating event, re-raised as [Failure] tagged with
    [context]. *)

val checked : context:string -> bound:int -> Run_result.t -> Run_result.t
(** Assert uniform consensus with the round bound; experiments never report
    numbers from an incorrect run. *)

val max_round : Run_result.t -> int
(** Latest decision round; 0 when nobody decided. *)
