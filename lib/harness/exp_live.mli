(** EXP-LIVE — the live runtime's write-prefix crash semantics, checked
    deterministically on the loopback transport: canonical f-kill scripts
    decide within f+1 rounds, and every kill position maps to the abstract
    crash point the differential judge confirms against
    {!Sync_sim.Engine}. *)

val experiment : Experiment.t
