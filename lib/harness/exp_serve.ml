(** EXP-SERVE — consensus as a service: multiplexed RWWC storms.

    Runs thousands of concurrent Figure 1 instances through the serve
    layer's deterministic loopback mesh — the exact mux, codec and
    per-destination batching of the socket engine — and reports the three
    claims the serve layer makes: storms complete and stay judge-clean at
    scale, batching collapses write calls without changing any decision,
    and a mid-storm coordinator kill degrades per-instance (survivors ride
    out one expired round each) rather than globally.

    Every storm's per-instance transcripts are verified by {!Live.Judge}
    including the differential comparison against the abstract engine, so
    the throughput numbers can never drift away from correctness.  Wall
    decisions/sec is machine-local; every other column is deterministic. *)

let storm ?(n = 5) ?(t = 2) ?(window = 64) ?(batch = true) ?kill instances =
  Serve.Loopback.Rwwc.run
    {
      Serve.Loopback.Rwwc.n;
      t;
      instances;
      window;
      big_d = 0.25;
      batch;
      kill;
      max_rounds = None;
      proposals = (fun i node -> (i * n) + node);
    }

let require_ok label (r : Serve.Report.t) =
  if not r.Serve.Report.ok then
    failwith
      (Printf.sprintf "EXP-SERVE: %s: %d judged instance(s) failed" label
         (List.length r.Serve.Report.failures));
  r

let scaling_table () =
  let table =
    Diag.Table.create
      ~title:
        "storm scaling (loopback, n = 5, t = 2, window = 64): every \
         instance judged against the abstract engine"
      ~header:
        [
          "instances";
          "completed";
          "fast rounds";
          "expired";
          "slab slots";
          "judged";
          "verdict";
        ]
      ()
  in
  List.iter
    (fun instances ->
      let r = require_ok (Printf.sprintf "scaling %d" instances) (storm instances) in
      Diag.Table.add_row table
        [
          Diag.Table.fmt_int instances;
          Diag.Table.fmt_int r.Serve.Report.completed;
          Diag.Table.fmt_int r.Serve.Report.total.Serve.Stats.fast_rounds;
          Diag.Table.fmt_int r.Serve.Report.total.Serve.Stats.expired_rounds;
          Diag.Table.fmt_int r.Serve.Report.total.Serve.Stats.slab_capacity;
          Diag.Table.fmt_int r.Serve.Report.judged;
          "pass";
        ])
    [ 100; 500; 1000; 2000 ];
  table

let batching_table () =
  let instances = 500 in
  let batched = require_ok "batched" (storm ~batch:true instances) in
  let unbatched = require_ok "unbatched" (storm ~batch:false instances) in
  let b = batched.Serve.Report.total and u = unbatched.Serve.Report.total in
  (* The acceptance bar: coalescing must collapse write calls by >= 4x
     while the storm decides identically. *)
  if b.Serve.Stats.write_calls * 4 > u.Serve.Stats.write_calls then
    failwith
      (Printf.sprintf
         "EXP-SERVE: batching saved too little (%d vs %d write calls)"
         b.Serve.Stats.write_calls u.Serve.Stats.write_calls);
  if batched.Serve.Report.completed <> unbatched.Serve.Report.completed then
    failwith "EXP-SERVE: batching changed the set of completed instances";
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "per-destination batching (loopback, n = 5, %d instances): same \
            decisions, fewer write calls"
           instances)
      ~header:
        [ "mode"; "frames out"; "write calls"; "max coalesced"; "flushes" ]
      ()
  in
  List.iter
    (fun (mode, (s : Serve.Stats.t)) ->
      Diag.Table.add_row table
        [
          mode;
          Diag.Table.fmt_int s.Serve.Stats.frames_out;
          Diag.Table.fmt_int s.Serve.Stats.write_calls;
          Diag.Table.fmt_int s.Serve.Stats.max_batch;
          Diag.Table.fmt_int s.Serve.Stats.flushes;
        ])
    [ ("batched", b); ("--no-batch", u) ];
  table

let kill_table () =
  let instances = 300 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "mid-storm coordinator kill (loopback, n = 5, t = 2, %d \
            instances, kill p1 after k mesh frames): surviving instances \
            stay judge-clean"
           instances)
      ~header:
        [
          "kill after";
          "completed";
          "victim decided";
          "expired rounds";
          "judged";
          "verdict";
        ]
      ()
  in
  List.iter
    (fun after_frames ->
      let r =
        require_ok
          (Printf.sprintf "kill@%d" after_frames)
          (storm ~kill:{ Serve.Report.node = 1; after_frames } instances)
      in
      let victim_decides =
        match List.assoc_opt 1 r.Serve.Report.stats with
        | Some s -> s.Serve.Stats.decides
        | None -> 0
      in
      Diag.Table.add_row table
        [
          Diag.Table.fmt_int after_frames;
          Diag.Table.fmt_int r.Serve.Report.completed;
          Diag.Table.fmt_int victim_decides;
          Diag.Table.fmt_int r.Serve.Report.total.Serve.Stats.expired_rounds;
          Diag.Table.fmt_int r.Serve.Report.judged;
          "pass";
        ])
    [ 1; 57; 157; 400 ];
  table

let run () = [ scaling_table (); batching_table (); kill_table () ]

let experiment =
  {
    Experiment.id = "SERVE";
    title = "consensus as a service: multiplexed storms, batching, kills";
    paper_ref = "Figure 1 algorithm as a long-lived multiplexed service";
    run;
  }
