(** EXP-OBS — cross-validation of the observer layer: metrics sinks must
    reconstruct the engine's Theorem 2 accounting from the event stream,
    with online invariants attached to every run. *)

val experiment : Experiment.t
