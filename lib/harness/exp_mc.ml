(** EXP-MC — scaling the exhaustive model checker.

    Not a table from the paper: the verification harness behind the
    correctness claims.  For each algorithm the exhaustive adversary sweeps
    the full crash-schedule space at [n = 4] and, independently, the
    symmetry-reduced space (one representative per {!Adversary.Canonical}
    equivalence class).  The table reports both cardinalities, the
    reduction factor, and — the soundness check — that the set of violating
    equivalence classes found by the reduced sweep equals the canonical
    image of the violations found by the full sweep.  The broken
    [Rwwc_variants.Data_decide] ablation keeps the comparison honest: its
    violations must survive the quotient, not just the zero of the correct
    algorithms. *)

open Model
open Sync_sim

type sweep = {
  full_size : int;  (** closed-form size of the full space *)
  full_checked : int;  (** schedules enumerated by the full sweep *)
  classes : int;  (** representatives enumerated by the reduced sweep *)
  full_violation_classes : Schedule.t list;
      (** canonical forms of the full sweep's violations, deduplicated *)
  reduced_violations : Schedule.t list;  (** violating representatives *)
}

module Probe (A : Algorithm_intf.S) = struct
  module R = Engine.Make (A)

  let sweep ~profile ~bound ~n ~t ~max_f ~max_round =
    let proposals = Workloads.distinct n in
    let run = R.runner (Engine.config ~n ~t ~proposals ()) in
    let violates schedule =
      let res = run schedule in
      not
        (Spec.Properties.all_ok
           (Spec.Properties.uniform_consensus ~bound:(bound res) res))
    in
    let full_checked = ref 0 and classes = ref 0 in
    let full_violations =
      List.of_seq
        (Seq.filter
           (fun s ->
             incr full_checked;
             violates s)
           (Adversary.Enumerate.schedules ~model:A.model ~n ~max_f ~max_round))
    in
    let reduced_violations =
      List.of_seq
        (Seq.filter
           (fun s ->
             incr classes;
             violates s)
           (Adversary.Canonical.schedules profile ~n ~max_f ~max_round))
    in
    {
      full_size = Adversary.Enumerate.space_size ~model:A.model ~n ~max_f ~max_round;
      full_checked = !full_checked;
      classes = !classes;
      full_violation_classes =
        List.sort_uniq Adversary.Canonical.compare
          (List.map (Adversary.Canonical.canonical profile) full_violations);
      reduced_violations =
        List.sort Adversary.Canonical.compare reduced_violations;
    }
end

module P_rwwc = Probe (Core.Rwwc)
module P_broken = Probe (Core.Rwwc_variants.Data_decide)
module P_flood = Probe (Baselines.Flood_set)
module P_es = Probe (Baselines.Early_stopping)

let f_actual res = Pid.Set.cardinal (Run_result.crashed res)

let run () =
  let n = 4 and t = 2 and max_f = 2 and max_round = 3 in
  let rotating = Adversary.Canonical.rotating_coordinator ~n in
  let broadcast = Adversary.Canonical.broadcast ~n ~t in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Exhaustive sweep, full space vs symmetry classes (n = %d, f <= %d, \
            crashes in rounds 1..%d)"
           n max_f max_round)
      ~header:
        [
          "algorithm";
          "full space";
          "classes";
          "reduction";
          "violating classes (full)";
          "violating classes (reduced)";
          "verdict sets agree";
        ]
      ()
  in
  let row name (s : sweep) =
    assert (s.full_checked = s.full_size);
    Diag.Table.add_row table
      [
        name;
        Diag.Table.fmt_int s.full_size;
        Diag.Table.fmt_int s.classes;
        Printf.sprintf "%.1fx" (float_of_int s.full_size /. float_of_int s.classes);
        Diag.Table.fmt_int (List.length s.full_violation_classes);
        Diag.Table.fmt_int (List.length s.reduced_violations);
        (if
           List.equal Adversary.Canonical.equal s.full_violation_classes
             s.reduced_violations
         then "yes"
         else "NO");
      ]
  in
  row "rwwc"
    (P_rwwc.sweep ~profile:rotating
       ~bound:(fun res -> f_actual res + 1)
       ~n ~t ~max_f ~max_round);
  row "rwwc minus commit (broken)"
    (P_broken.sweep ~profile:rotating
       ~bound:(fun res -> f_actual res + 1)
       ~n ~t ~max_f ~max_round);
  row "flood-set"
    (P_flood.sweep ~profile:broadcast ~bound:(fun _ -> t + 1) ~n ~t ~max_f
       ~max_round);
  row "early-stopping"
    (P_es.sweep ~profile:broadcast
       ~bound:(fun res -> min (t + 1) (f_actual res + 2))
       ~n ~t ~max_f ~max_round);
  [ table ]

let experiment =
  {
    Experiment.id = "MC";
    title = "exhaustive model checking: symmetry reduction is sound";
    paper_ref = "verification harness (Theorems 1 and 3 at n = 4)";
    run;
  }
