(** EXP-DIST — distributed sweeps equal single-machine sweeps, survive
    scripted worker kills, and resume from a checkpoint after a coordinator
    SIGKILL without re-executing finished shards. *)

val experiment : Experiment.t
