(** EXP-RECOVER — crash-recovery on a real socket fleet: a kill x
    partition x restart grid where every cell must settle every instance
    with zero wrong verdicts.  SIGKILL victims are respawned, replay
    their fsync'd decision WAL, catch up over the mesh and are re-dialed
    by the client; chaos-proxy cuts stay shorter than big_d so they are
    delay, never loss, per the crash model's safe envelope. *)

val experiment : Experiment.t
