open Model

type profile = {
  label : string;
  data_dests : victim:Pid.t -> round:int -> Pid.Set.t;
  sync_count : victim:Pid.t -> round:int -> int;
  halts_by : victim:Pid.t -> int option;
  movable : Pid.Set.t;
}

let rotating_coordinator ~n =
  {
    label = "rotating-coordinator";
    data_dests =
      (fun ~victim ~round ->
        let v = Pid.to_int victim in
        if round = v then Pid.Set.of_list (Pid.range ~lo:(v + 1) ~hi:n)
        else Pid.Set.empty);
    sync_count =
      (fun ~victim ~round ->
        let v = Pid.to_int victim in
        if round = v then n - v else 0);
    halts_by = (fun ~victim -> Some (Pid.to_int victim));
    (* Every pid has a distinct role (coordinator of its own round, position
       in the descending commit prefix), so no renaming is sound. *)
    movable = Pid.Set.empty;
  }

let broadcast ~n ~t =
  let everyone = Pid.Set.of_list (Pid.all ~n) in
  {
    label = "broadcast";
    data_dests = (fun ~victim ~round:_ -> Pid.Set.remove victim everyone);
    sync_count = (fun ~victim:_ ~round:_ -> 0);
    halts_by = (fun ~victim:_ -> Some (t + 1));
    movable = everyone;
  }

(* --- point classes -------------------------------------------------------- *)

let canonical_point p ~victim ~round point =
  let dests = p.data_dests ~victim ~round in
  let syncs = p.sync_count ~victim ~round in
  (* What the engine actually delivers for this point: a subset of the
     planned data destinations and a prefix length of the planned syncs. *)
  let delivered, prefix =
    match point with
    | Crash.Before_send -> (Pid.Set.empty, 0)
    | Crash.During_data s -> (Pid.Set.inter s dests, 0)
    | Crash.After_data k -> (dests, min k syncs)
    | Crash.After_send -> (dests, syncs)
  in
  if Pid.Set.is_empty delivered && prefix = 0 then Crash.Before_send
  else if not (Pid.Set.equal delivered dests) then Crash.During_data delivered
  else if prefix = syncs then Crash.After_send
  else Crash.After_data prefix

(* --- schedule normalization (layer 1: point classes + no-op crashes) ------ *)

let normalize p sched =
  List.fold_left
    (fun acc (pid, (ev : Crash.event)) ->
      match p.halts_by ~victim:pid with
      | Some h when ev.round > h ->
        (* The victim has surely decided and halted before this round; the
           engine never applies the crash, so the binding is a no-op. *)
        acc
      | Some _ | None ->
        Schedule.add pid
          (Crash.make ~round:ev.round
             (canonical_point p ~victim:pid ~round:ev.round ev.point))
          acc)
    Schedule.empty (Schedule.bindings sched)

(* --- total order on schedules (for orbit minimization and set compares) --- *)

let point_rank = function
  | Crash.Before_send -> 0
  | Crash.During_data _ -> 1
  | Crash.After_data _ -> 2
  | Crash.After_send -> 3

let compare_point a b =
  match (a, b) with
  | Crash.During_data s1, Crash.During_data s2 -> Pid.Set.compare s1 s2
  | Crash.After_data k1, Crash.After_data k2 -> Int.compare k1 k2
  | _ -> Int.compare (point_rank a) (point_rank b)

let compare_event (a : Crash.event) (b : Crash.event) =
  match Int.compare a.round b.round with
  | 0 -> compare_point a.point b.point
  | c -> c

let compare a b =
  List.compare
    (fun (p1, e1) (p2, e2) ->
      match Pid.compare p1 p2 with 0 -> compare_event e1 e2 | c -> c)
    (Schedule.bindings a) (Schedule.bindings b)

let equal a b = compare a b = 0

(* --- pid permutations (layer 2) ------------------------------------------- *)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        List.map (fun rest -> x :: rest) (permutations (List.filter (fun y -> not (Pid.equal x y)) xs)))
      xs

let apply_perm pi sched =
  Schedule.of_list
    (List.map
       (fun (pid, (ev : Crash.event)) ->
         let point =
           match ev.point with
           | Crash.During_data s -> Crash.During_data (Pid.Set.map pi s)
           | (Crash.Before_send | Crash.After_data _ | Crash.After_send) as pt
             -> pt
         in
         (pi pid, Crash.make ~round:ev.round point))
       (Schedule.bindings sched))

let canonical p sched =
  let base = normalize p sched in
  if Pid.Set.is_empty p.movable then base
  else begin
    let movable = Pid.Set.elements p.movable in
    List.fold_left
      (fun best image ->
        let assoc = List.combine movable image in
        let pi pid =
          match List.assoc_opt pid assoc with Some q -> q | None -> pid
        in
        let candidate = normalize p (apply_perm pi base) in
        if compare candidate best < 0 then candidate else best)
      base
      (permutations movable)
  end

(* --- representative-only enumeration -------------------------------------- *)

let points p ~victim ~round =
  let dests = p.data_dests ~victim ~round in
  let syncs = p.sync_count ~victim ~round in
  let keep pt = Crash.equal_point (canonical_point p ~victim ~round pt) pt in
  let before = Seq.return Crash.Before_send in
  let during =
    (* Proper nonempty subsets of the planned destinations; the empty subset
       is Before_send's class and the full one is After_data 0 / After_send. *)
    Seq.filter_map
      (fun s ->
        let s = Pid.Set.of_list s in
        if Pid.Set.is_empty s || Pid.Set.equal s dests then None
        else Some (Crash.During_data s))
      (Combinatorics.subsets (Pid.Set.elements dests))
  in
  let after_data =
    Seq.filter
      (fun pt -> keep pt)
      (Seq.map (fun k -> Crash.After_data k) (Combinatorics.range 0 (syncs - 1)))
  in
  let after =
    if keep Crash.After_send then Seq.return Crash.After_send else Seq.empty
  in
  Seq.append before (Seq.append during (Seq.append after_data after))

let events p ~max_round ~victim =
  let last =
    match p.halts_by ~victim with
    | Some h -> min h max_round
    | None -> max_round
  in
  Seq.concat_map
    (fun round ->
      Seq.map (fun pt -> Crash.make ~round pt) (points p ~victim ~round))
    (Combinatorics.range 1 last)

let schedules p ~n ~max_f ~max_round =
  let pids = Pid.all ~n in
  let base =
    Seq.concat_map
      (fun f ->
        Seq.concat_map
          (fun victims ->
            Seq.map Schedule.of_list
              (Combinatorics.sequence
                 (List.map
                    (fun v ->
                      Seq.map (fun ev -> (v, ev)) (events p ~max_round ~victim:v))
                    victims)))
          (Combinatorics.choose f pids))
      (Combinatorics.upto max_f)
  in
  if Pid.Set.is_empty p.movable then base
  else Seq.filter (fun s -> equal (canonical p s) s) base

let space_size p ~n ~max_f ~max_round =
  (* Elementary-symmetric-sum DP over the per-victim event counts.  This
     counts the point-reduced space; when [movable] is non-trivial the
     pid-symmetry filter of {!schedules} shrinks it further (count the
     stream to report the exact figure). *)
  let e =
    Array.init n (fun i ->
        Enumerate.count (events p ~max_round ~victim:(Pid.of_int (i + 1))))
  in
  let max_f = min max_f n in
  let es = Array.make (max_f + 1) 0 in
  es.(0) <- 1;
  Array.iter
    (fun ev ->
      for j = max_f downto 1 do
        es.(j) <- es.(j) + (es.(j - 1) * ev)
      done)
    e;
  Array.fold_left ( + ) 0 es
