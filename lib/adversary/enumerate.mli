(** Exhaustive schedule enumeration for model checking small systems.

    For small [n] the space of crash schedules is finite once delivery
    subsets are restricted to actual process sets and prefixes to
    [0 .. n-1]; enumerating it turns property testing into genuine model
    checking — EXP-LB's agreement-violation witnesses are found this way,
    and the unit suites run the consensus algorithms against {e every}
    schedule for [n <= 5]. *)

open Model

val points :
  model:Model_kind.t -> n:int -> victim:Pid.t -> Crash.point Seq.t
(** Every semantically distinct crash point for [victim]: [Before_send],
    [During_data s] for each subset [s] of the other processes,
    [After_data k] for [k] in [0 .. n-1] (extended model only) and
    [After_send]. *)

val events :
  model:Model_kind.t -> n:int -> max_round:int -> victim:Pid.t ->
  Crash.event Seq.t
(** Every (round, point) combination with round in [1 .. max_round]. *)

val schedules :
  model:Model_kind.t -> n:int -> max_f:int -> max_round:int -> Schedule.t Seq.t
(** Every schedule with at most [max_f] victims, lazily.  The failure-free
    schedule comes first. *)

val count : 'a Seq.t -> int
(** Length of a finite sequence (for reporting state-space sizes). *)

val point_count : model:Model_kind.t -> n:int -> int
(** Number of semantically distinct crash points per (victim, round):
    [2 + 2^(n-1)] in the classic model, [2 + 2^(n-1) + n] extended. *)

val space_size : model:Model_kind.t -> n:int -> max_f:int -> max_round:int -> int
(** Closed-form size of {!schedules} — [sum_(f=0)^(max_f) C(n,f) * e^f] with
    [e = max_round * point_count] — so sweeps can report coverage and
    reduction factors without materializing (or even walking) the space. *)

val weight : Schedule.t -> int
(** Well-founded shrinking measure: per crash event,
    [1 + round + point_weight] where [Before_send]/[After_send] weigh 0,
    [During_data s] weighs [|s|] and [After_data k] weighs [k].  Every
    element of {!reductions} is strictly lighter than its input, so greedy
    descent over reductions terminates. *)

val reductions : Schedule.t -> Schedule.t Seq.t
(** Every single-step simplification of a schedule, in a deterministic
    order (per binding in ascending pid order): drop the crash event
    entirely; lower its round by one (if [> 1]); remove one surviving
    destination from a [During_data] set (ascending pid order, toward the
    silent crash); shorten an [After_data] prefix by one (toward 0).
    Empty iff the schedule is failure-free.  The shrinker in
    {!Minimize.Shrink} descends this relation greedily; its fixpoint is
    1-minimal: no single reduction of the result still fails. *)

val shard : shards:int -> shard:int -> 'a Seq.t -> 'a Seq.t
(** [shard ~shards ~shard s] is the lazy residue-class slice of [s] holding
    the elements at indices congruent to [shard] modulo [shards].  The
    [shards] slices partition [s]; each re-walks the underlying generator,
    which must therefore be persistent (ours are).  Residue classes — rather
    than contiguous blocks — interleave cheap and expensive schedules, so a
    domain per shard stays busy even though verdict times are skewed.
    Raises [Invalid_argument] unless [0 <= shard < shards]. *)
