open Model

let points ~model ~n ~victim =
  let others =
    List.filter (fun p -> not (Pid.equal p victim)) (Pid.all ~n)
  in
  let before = Seq.return Crash.Before_send in
  let during =
    Seq.map
      (fun s -> Crash.During_data (Pid.Set.of_list s))
      (Combinatorics.subsets others)
  in
  let after_data =
    match model with
    | Model_kind.Classic -> Seq.empty
    | Model_kind.Extended ->
      Seq.map (fun k -> Crash.After_data k) (Combinatorics.upto (n - 1))
  in
  let after = Seq.return Crash.After_send in
  Seq.append before (Seq.append during (Seq.append after_data after))

let events ~model ~n ~max_round ~victim =
  Seq.concat_map
    (fun round ->
      Seq.map (fun p -> Crash.make ~round p) (points ~model ~n ~victim))
    (Combinatorics.range 1 max_round)

let schedules ~model ~n ~max_f ~max_round =
  let pids = Pid.all ~n in
  Seq.concat_map
    (fun f ->
      Seq.concat_map
        (fun victims ->
          Seq.map Schedule.of_list
            (Combinatorics.sequence
               (List.map
                  (fun v ->
                    Seq.map (fun ev -> (v, ev))
                      (events ~model ~n ~max_round ~victim:v))
                  victims)))
        (Combinatorics.choose f pids))
    (Combinatorics.upto max_f)

let count s = Seq.fold_left (fun acc _ -> acc + 1) 0 s

let point_count ~model ~n =
  let during = 1 lsl (n - 1) in
  match model with
  | Model_kind.Classic -> 2 + during
  | Model_kind.Extended -> 2 + during + n

let space_size ~model ~n ~max_f ~max_round =
  (* Every victim contributes the same number of candidate events, so the
     space factors as sum_f C(n,f) * e^f with e = max_round * points. *)
  let e = max_round * point_count ~model ~n in
  let rec go f acc choose pow =
    if f > max_f then acc
    else go (f + 1) (acc + (choose * pow)) (choose * (n - f) / (f + 1)) (pow * e)
  in
  go 0 0 1 1

let shard ~shards ~shard seq =
  if shards < 1 then invalid_arg "Enumerate.shard: shards must be >= 1";
  if shard < 0 || shard >= shards then
    invalid_arg "Enumerate.shard: shard must be in 0 .. shards-1";
  if shards = 1 then seq
  else
    (* Keep every [shards]-th element starting at index [shard]: residue
       classes interleave cheap and expensive schedules, so shards stay
       balanced even though verdict times are skewed. *)
    let rec skip k seq () =
      match seq () with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (x, rest) ->
        if k = 0 then Seq.Cons (x, skip (shards - 1) rest) else skip (k - 1) rest ()
    in
    skip shard seq
