open Model

let points ~model ~n ~victim =
  let others =
    List.filter (fun p -> not (Pid.equal p victim)) (Pid.all ~n)
  in
  let before = Seq.return Crash.Before_send in
  let during =
    Seq.map
      (fun s -> Crash.During_data (Pid.Set.of_list s))
      (Combinatorics.subsets others)
  in
  let after_data =
    match model with
    | Model_kind.Classic -> Seq.empty
    | Model_kind.Extended ->
      Seq.map (fun k -> Crash.After_data k) (Combinatorics.upto (n - 1))
  in
  let after = Seq.return Crash.After_send in
  Seq.append before (Seq.append during (Seq.append after_data after))

let events ~model ~n ~max_round ~victim =
  Seq.concat_map
    (fun round ->
      Seq.map (fun p -> Crash.make ~round p) (points ~model ~n ~victim))
    (Combinatorics.range 1 max_round)

let schedules ~model ~n ~max_f ~max_round =
  let pids = Pid.all ~n in
  Seq.concat_map
    (fun f ->
      Seq.concat_map
        (fun victims ->
          Seq.map Schedule.of_list
            (Combinatorics.sequence
               (List.map
                  (fun v ->
                    Seq.map (fun ev -> (v, ev))
                      (events ~model ~n ~max_round ~victim:v))
                  victims)))
        (Combinatorics.choose f pids))
    (Combinatorics.upto max_f)

let count s = Seq.fold_left (fun acc _ -> acc + 1) 0 s

let point_count ~model ~n =
  let during = 1 lsl (n - 1) in
  match model with
  | Model_kind.Classic -> 2 + during
  | Model_kind.Extended -> 2 + during + n

let space_size ~model ~n ~max_f ~max_round =
  (* Every victim contributes the same number of candidate events, so the
     space factors as sum_f C(n,f) * e^f with e = max_round * points. *)
  let e = max_round * point_count ~model ~n in
  let rec go f acc choose pow =
    if f > max_f then acc
    else go (f + 1) (acc + (choose * pow)) (choose * (n - f) / (f + 1)) (pow * e)
  in
  go 0 0 1 1

(* ------------------------------------------------------------------ *)
(* Shrinking support.  [reductions] enumerates every single-step        *)
(* simplification of a schedule; [weight] is the well-founded measure   *)
(* each step strictly decreases, so greedy descent terminates and the   *)
(* final failed pass over [reductions] is a 1-minimality certificate.   *)
(* ------------------------------------------------------------------ *)

let point_weight = function
  | Crash.Before_send | Crash.After_send -> 0
  | Crash.During_data s -> Pid.Set.cardinal s
  | Crash.After_data k -> k

let weight schedule =
  List.fold_left
    (fun acc (_, ev) -> acc + 1 + ev.Crash.round + point_weight ev.Crash.point)
    0
    (Schedule.bindings schedule)

let reductions schedule =
  let bindings = Schedule.bindings schedule in
  (* Rebuild with the event of [pid] replaced ([None] = dropped). *)
  let rebuild pid replacement =
    Schedule.of_list
      (List.filter_map
         (fun (p, ev) ->
           if Pid.equal p pid then
             Option.map (fun ev' -> (p, ev')) replacement
           else Some (p, ev))
         bindings)
  in
  Seq.concat_map
    (fun (pid, ev) ->
      let round = ev.Crash.round in
      let drop = Seq.return (rebuild pid None) in
      let lower_round =
        if round > 1 then
          Seq.return
            (rebuild pid (Some (Crash.make ~round:(round - 1) ev.Crash.point)))
        else Seq.empty
      in
      let shrink_point =
        match ev.Crash.point with
        | Crash.Before_send | Crash.After_send -> Seq.empty
        | Crash.During_data s ->
          (* Remove one surviving destination at a time, ascending pid
             order — toward the silent crash [During_data {}]. *)
          Seq.map
            (fun out ->
              rebuild pid
                (Some
                   (Crash.make ~round
                      (Crash.During_data (Pid.Set.remove out s)))))
            (List.to_seq (Pid.Set.elements s))
        | Crash.After_data k ->
          if k > 0 then
            Seq.return
              (rebuild pid (Some (Crash.make ~round (Crash.After_data (k - 1)))))
          else Seq.empty
      in
      Seq.append drop (Seq.append lower_round shrink_point))
    (List.to_seq bindings)

let shard ~shards ~shard seq =
  if shards < 1 then invalid_arg "Enumerate.shard: shards must be >= 1";
  if shard < 0 || shard >= shards then
    invalid_arg "Enumerate.shard: shard must be in 0 .. shards-1";
  if shards = 1 then seq
  else
    (* Keep every [shards]-th element starting at index [shard]: residue
       classes interleave cheap and expensive schedules, so shards stay
       balanced even though verdict times are skewed. *)
    let rec skip k seq () =
      match seq () with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (x, rest) ->
        if k = 0 then Seq.Cons (x, skip (shards - 1) rest) else skip (k - 1) rest ()
    in
    skip shard seq
