(** Symmetry reduction for the exhaustive model checker.

    The schedule space of {!Enumerate.schedules} is heavily redundant: most
    of its [2^(n-1)] [During_data] subsets per victim per round describe
    crashes the engine cannot distinguish, because the victim was never
    going to send to the dropped destinations in that round anyway.  This
    module quotients the space by two equivalences and enumerates one
    representative per class:

    {b Layer 1 — crash-point classes.}  Given a {!profile} that upper-bounds
    what a victim can have planned in each round (the static send topology
    of the algorithm family), two crash points of the same victim in the
    same round are equivalent when they deliver the same subset of the
    planned data destinations and the same prefix length of the planned
    sync destinations.  The engine's transition relation depends on a crash
    point only through that delivered pair, so equivalent points yield
    identical {!Sync_sim.Run_result.t}s (instrument event payloads may
    differ in the recorded point, nothing else).  Additionally, a crash
    scheduled after the round by which the victim has provably decided and
    halted ([halts_by]) is never applied by the engine and is dropped: the
    schedule without the binding — also a member of the enumerated space —
    produces the identical result, including [f_actual].

    {b Layer 2 — pid renaming.}  When the algorithm treats a set of pids
    interchangeably ([movable]) and the verdict predicate is invariant
    under the induced value relabeling (uniform consensus over injective
    proposal vectors is), schedules related by a permutation of [movable]
    pids have equal verdicts and only the orbit minimum is enumerated.
    Rotating-coordinator algorithms pin every pid to a distinct role, so
    their profile declares [movable = {}]; full-broadcast algorithms
    (flood-set, early-stopping) declare every pid movable.

    Soundness: [canonical] maps every enumerated schedule to a schedule
    with an equal verdict that {!schedules} emits, so a sweep over the
    reduced space finds a violation iff one exists in the full space.  The
    tests pin this with the broken [Rwwc_variants.Data_decide] ablation,
    whose violating schedules must canonicalize exactly onto the violating
    representatives. *)

open Model

type profile = {
  label : string;
  data_dests : victim:Pid.t -> round:int -> Pid.Set.t;
      (** superset of the data destinations the victim can have planned *)
  sync_count : victim:Pid.t -> round:int -> int;
      (** upper bound on the length of the victim's ordered sync list *)
  halts_by : victim:Pid.t -> int option;
      (** a round by whose end the victim has surely decided and halted if
          still alive (decision mode [`Halt] only); [None] if unknown *)
  movable : Pid.Set.t;
      (** pids the algorithm treats interchangeably; [{}] disables layer 2 *)
}
(** A conservative static description of an algorithm family's send
    topology.  Looser bounds (bigger [data_dests], larger [sync_count],
    [halts_by = None], empty [movable]) are always sound and merely reduce
    less. *)

val rotating_coordinator : n:int -> profile
(** Figure 1's family (rwwc and its variants): process [v] sends only in
    round [v], data to [v+1 .. n], syncs to at most [n - v] destinations,
    and decides in round [v] if alive.  No movable pids. *)

val broadcast : n:int -> t:int -> profile
(** Full-information classic-model baselines (flood-set, early-stopping):
    every process broadcasts to everyone else each round, sends no syncs,
    decides by round [t + 1], and all pids are interchangeable. *)

val canonical_point :
  profile -> victim:Pid.t -> round:int -> Crash.point -> Crash.point
(** Layer-1 representative of a crash point's equivalence class. *)

val canonical : profile -> Schedule.t -> Schedule.t
(** Full canonical form: drop no-op crashes, canonicalize every point, then
    (layer 2) take the least schedule over all [movable]-pid renamings.
    Idempotent; the result is emitted by {!schedules} whenever the input is
    within the corresponding enumeration bounds. *)

val compare : Schedule.t -> Schedule.t -> int
(** A total order on schedules (bindings, then rounds, then points) used
    for orbit minimization and deterministic violation reporting. *)

val equal : Schedule.t -> Schedule.t -> bool

val points : profile -> victim:Pid.t -> round:int -> Crash.point Seq.t
(** The canonical crash points for one victim and round: [Before_send],
    [During_data s] for nonempty proper subsets [s] of the planned
    destinations, [After_data k] for prefixes that differ from both
    [Before_send] and [After_send], and [After_send] when distinct. *)

val events : profile -> max_round:int -> victim:Pid.t -> Crash.event Seq.t
(** Canonical events with rounds [1 .. min max_round (halts_by victim)]. *)

val schedules : profile -> n:int -> max_f:int -> max_round:int -> Schedule.t Seq.t
(** Representative-only counterpart of {!Enumerate.schedules}: every
    schedule of the full space canonicalizes to exactly one element of this
    stream.  Lazy and persistent, so it shards with {!Enumerate.shard}. *)

val space_size : profile -> n:int -> max_f:int -> max_round:int -> int
(** Size of the layer-1-reduced space (elementary-symmetric DP over the
    per-victim event counts).  An upper bound on the cardinality of
    {!schedules} when [movable] is non-trivial. *)
