let network_storm ?(drop = 0.1) ?(duplicate = 0.05) ?(jitter = 0.2)
    ?(jitter_spread = 1.0) ~seed () =
  Net.Fault_plan.create ~name:"network-storm" ~drop ~duplicate ~jitter
    ~jitter_spread ~seed ()

let targeted_link_cut ?(from_time = 0.0) ?(until = infinity) ~src ~dst ~seed
    () =
  Net.Fault_plan.create ~name:"targeted-link-cut"
    ~cuts:[ Net.Fault_plan.cut ~src ~dst ~from_time ~until () ]
    ~seed ()

let receiver_isolation ?(from_time = 0.0) ?(until = infinity) ~dst ~seed () =
  Net.Fault_plan.create ~name:"receiver-isolation"
    ~cuts:[ Net.Fault_plan.cut ~dst ~from_time ~until () ]
    ~seed ()

let latency_burst ?(spike = 0.05) ?(spike_factor = 3.0) ~seed () =
  Net.Fault_plan.create ~name:"latency-burst" ~spike ~spike_factor ~seed ()
