(** Named network-fault adversaries — {!Net.Fault_plan} constructors.

    The channel-level counterpart of {!Strategies}: each generator is a
    deterministic seeded scenario the chaos harness (EXP-CHAOS) and the
    [chaos] CLI subcommand sweep over.  All plans are replayable from
    their seed. *)

open Model

val network_storm :
  ?drop:float ->
  ?duplicate:float ->
  ?jitter:float ->
  ?jitter_spread:float ->
  seed:int64 ->
  unit ->
  Net.Fault_plan.t
(** Uniform chaos on every link: drops (default 10%), duplicates (5%) and
    reordering jitter (20%, spread 1.0).  The canonical "lossy LAN". *)

val targeted_link_cut :
  ?from_time:float ->
  ?until:float ->
  src:Pid.t ->
  dst:Pid.t ->
  seed:int64 ->
  unit ->
  Net.Fault_plan.t
(** Deterministically sever one directed link for a time window (default:
    the whole run).  No retry budget masks a permanent cut — the scenario
    that {e must} end in a detected {!Net.Synchrony_violation}. *)

val receiver_isolation :
  ?from_time:float ->
  ?until:float ->
  dst:Pid.t ->
  seed:int64 ->
  unit ->
  Net.Fault_plan.t
(** Cut every link into [dst]: the process is unreachable (but alive and
    sending) — a network partition of size one. *)

val latency_burst :
  ?spike:float -> ?spike_factor:float -> seed:int64 -> unit -> Net.Fault_plan.t
(** No losses, but a fraction of messages (default 5%) takes
    [spike_factor ×] (default 3×) their drawn latency — breaking the [D]
    bound without losing a byte. *)
