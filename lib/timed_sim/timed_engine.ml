open Model

type latency =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; cap : float }

type crash_spec = { victim : Pid.t; at : float; batch_prefix : int }

type fd_update = { observer : Pid.t; at : float; suspects : Pid.Set.t }

type trace_event =
  | Sent of { at : float; from : Pid.t; dest : Pid.t; msg : string }
  | Delivered of { at : float; from : Pid.t; dest : Pid.t; msg : string }
  | Dropped of { at : float; from : Pid.t; dest : Pid.t; msg : string }
  | Fired of { at : float; pid : Pid.t; tag : int }
  | Fd_change of { at : float; pid : Pid.t; suspects : Pid.Set.t }
  | Died of { at : float; pid : Pid.t }
  | Chose of { at : float; pid : Pid.t; value : int }
  | Violated of { at : float; pid : Pid.t; violation : Net.Synchrony_violation.t }

type config = {
  n : int;
  t : int;
  proposals : int array;
  latency : latency;
  faults : Net.Fault_plan.t;
  crashes : crash_spec list;
  fd_plan : fd_update list;
  deadline : float;
  seed : int64;
  record_trace : bool;
  instrument : trace_event Obs.Instrument.t;
}

let validate_latency = function
  | Fixed d -> if d <= 0.0 then invalid_arg "Timed_engine: latency <= 0"
  | Uniform { lo; hi } ->
    if lo <= 0.0 || hi < lo then invalid_arg "Timed_engine: bad uniform latency"
  | Exponential { mean; cap } ->
    if mean <= 0.0 || cap < mean then
      invalid_arg "Timed_engine: bad exponential latency"

let config ?(latency = Fixed 1.0) ?(faults = Net.Fault_plan.reliable)
    ?(crashes = []) ?(fd_plan = []) ?(deadline = 1e6) ?(seed = 1L)
    ?(record_trace = false) ?(instrument = Obs.Instrument.null) ~n ~t
    ~proposals () =
  if n < 2 then invalid_arg "Timed_engine.config: n < 2";
  if t < 0 || t >= n then invalid_arg "Timed_engine.config: bad t";
  if Array.length proposals <> n then invalid_arg "Timed_engine.config: arity";
  validate_latency latency;
  if deadline <= 0.0 then invalid_arg "Timed_engine.config: bad deadline";
  List.iter
    (fun (c : crash_spec) ->
      if c.at < 0.0 || c.batch_prefix < 0 then
        invalid_arg "Timed_engine.config: bad crash spec")
    crashes;
  let victims = List.map (fun (c : crash_spec) -> Pid.to_int c.victim) crashes in
  if List.length victims <> List.length (List.sort_uniq Int.compare victims)
  then invalid_arg "Timed_engine.config: duplicate crash victim";
  {
    n;
    t;
    proposals;
    latency;
    faults;
    crashes;
    fd_plan;
    deadline;
    seed;
    record_trace;
    instrument;
  }

type outcome =
  | Decided of { value : int; at : float }
  | Crashed of { at : float }
  | Undecided

type result = {
  outcomes : outcome array;
  msgs_sent : int;
  events_processed : int;
  end_time : float;
  trace : trace_event list;
  violations : Net.Synchrony_violation.t list;
}

let aborted res = res.violations <> []

let decisions res =
  let acc = ref [] in
  Array.iteri
    (fun i o ->
      match o with
      | Decided { value; at } -> acc := (Pid.of_int (i + 1), value, at) :: !acc
      | Crashed _ | Undecided -> ())
    res.outcomes;
  List.rev !acc

let decided_values res =
  List.sort_uniq Int.compare (List.map (fun (_, v, _) -> v) (decisions res))

let crashed res =
  let acc = ref [] in
  Array.iteri
    (fun i o ->
      match o with
      | Crashed _ -> acc := Pid.of_int (i + 1) :: !acc
      | Decided _ | Undecided -> ())
    res.outcomes;
  List.rev !acc

let correct_all_decided res =
  Array.for_all
    (function Decided _ | Crashed _ -> true | Undecided -> false)
    res.outcomes

let max_decision_time res =
  Array.fold_left
    (fun acc o ->
      match o with
      | Decided { at; _ } ->
        Some (match acc with None -> at | Some m -> Float.max m at)
      | Crashed _ | Undecided -> acc)
    None res.outcomes

(* Event ranks: messages arrive "by" a time, FD knowledge holds "by" a time,
   timers act "at" a time — so at equal times, deliveries precede FD updates
   precede timers. *)
let rank_msg = 0
and rank_fd = 1
and rank_timer = 2

module Make (P : Process_intf.S) = struct
  type event =
    | Ev_msg of { dest : Pid.t; from : Pid.t; msg : P.msg }
    | Ev_fd of { dest : Pid.t; suspects : Pid.Set.t }
    | Ev_timer of { dest : Pid.t; tag : int }

  let run cfg =
    let rng = Prng.Rng.create ~seed:cfg.seed in
    let draw_latency () =
      match cfg.latency with
      | Fixed d -> d
      | Uniform { lo; hi } -> lo +. Prng.Rng.float rng (hi -. lo)
      | Exponential { mean; cap } ->
        Float.min cap (Float.max 1e-9 (Prng.Rng.exponential rng ~mean))
    in
    let queue : event Heap.t = Heap.create () in
    let states = Array.make cfg.n None in
    let outcomes = Array.make cfg.n Undecided in
    let crash_of = Array.make cfg.n None in
    List.iter
      (fun (c : crash_spec) -> crash_of.(Pid.to_int c.victim - 1) <- Some c)
      cfg.crashes;
    (* Counters live in the obs accumulator; traces and any further
       observation flow through the composed instrument. *)
    let tally = Obs.Counters.create_timed () in
    let end_time = ref 0.0 in
    let trace_sink =
      if cfg.record_trace then Some (Obs.Trace_sink.create ()) else None
    in
    let inst =
      match trace_sink with
      | None -> cfg.instrument
      | Some ts ->
        Obs.Instrument.compose (Obs.Trace_sink.instrument ts) cfg.instrument
    in
    let observing = not (Obs.Instrument.is_null inst) in
    let emit ev = if observing then Obs.Instrument.emit inst ev in
    let violations = ref [] in
    let aborted = ref false in
    let is_running i = outcomes.(i) = Undecided in
    let crash_time i =
      match crash_of.(i) with Some c -> c.at | None -> infinity
    in
    let batch_limit i now =
      match crash_of.(i) with
      | Some c when now = c.at -> c.batch_prefix
      | Some _ | None -> max_int
    in
    let execute_actions pid now actions =
      let i = Pid.to_int pid - 1 in
      let limit = batch_limit i now in
      let rec go k = function
        | [] -> ()
        | _ :: _ when k >= limit -> ()
        | action :: rest ->
          (match action with
          | Process_intf.Send (dest, msg) ->
            tally.Obs.Counters.msgs_sent <- tally.Obs.Counters.msgs_sent + 1;
            if observing then
              emit
                (Sent
                   {
                     at = now;
                     from = pid;
                     dest;
                     msg = Format.asprintf "%a" P.pp_msg msg;
                   });
            (* The fault plan decides the message's fate: one latency per
               delivered copy, none for a lost message.  The reliable plan
               returns exactly the drawn latency, so un-faulted runs are
               byte-identical to the pre-fault-plan engine. *)
            let latency = draw_latency () in
            (match
               Net.Fault_plan.deliveries cfg.faults ~src:pid ~dst:dest ~at:now
                 ~latency
             with
            | [] ->
              if observing then
                emit
                  (Dropped
                     {
                       at = now;
                       from = pid;
                       dest;
                       msg = Format.asprintf "%a" P.pp_msg msg;
                     })
            | copies ->
              List.iter
                (fun l ->
                  Heap.add queue ~time:(now +. l) ~rank:rank_msg
                    (Ev_msg { dest; from = pid; msg }))
                copies)
          | Process_intf.Set_timer { at; tag } ->
            if at < now then invalid_arg (P.name ^ ": timer set in the past");
            Heap.add queue ~time:at ~rank:rank_timer (Ev_timer { dest = pid; tag })
          | Process_intf.Decide value ->
            outcomes.(i) <- Decided { value; at = now };
            emit (Chose { at = now; pid; value })
          | Process_intf.Abort v ->
            violations := v :: !violations;
            aborted := true;
            emit (Violated { at = now; pid; violation = v }));
          if is_running i && not !aborted then go (k + 1) rest
      in
      go 0 actions
    in
    (* Time 0: initialize everyone (in pid order). *)
    let ctx = { Process_intf.n = cfg.n; t = cfg.t } in
    for i = 0 to cfg.n - 1 do
      let pid = Pid.of_int (i + 1) in
      if crash_time i > 0.0 || batch_limit i 0.0 > 0 then begin
        let state, actions = P.init ctx ~me:pid ~proposal:cfg.proposals.(i) in
        states.(i) <- Some state;
        execute_actions pid 0.0 actions
      end;
      if crash_time i = 0.0 && is_running i then begin
        outcomes.(i) <- Crashed { at = 0.0 };
        emit (Died { at = 0.0; pid })
      end
    done;
    (* FD plan. *)
    List.iter
      (fun u ->
        Heap.add queue ~time:u.at ~rank:rank_fd
          (Ev_fd { dest = u.observer; suspects = u.suspects }))
      cfg.fd_plan;
    (* Main loop; a structured Abort ends the whole run gracefully. *)
    let continue = ref true in
    while !continue && not !aborted do
      match Heap.pop queue with
      | None -> continue := false
      | Some (now, _) when now > cfg.deadline -> continue := false
      | Some (now, ev) ->
        tally.Obs.Counters.events_processed <-
          tally.Obs.Counters.events_processed + 1;
        end_time := now;
        let dest =
          match ev with
          | Ev_msg { dest; _ } | Ev_fd { dest; _ } | Ev_timer { dest; _ } ->
            dest
        in
        let i = Pid.to_int dest - 1 in
        (* Mark overdue crashes lazily. *)
        if is_running i && now > crash_time i then begin
          outcomes.(i) <- Crashed { at = crash_time i };
          emit (Died { at = crash_time i; pid = dest })
        end;
        if is_running i then begin
          match states.(i) with
          | None -> ()
          | Some state ->
            let state, actions =
              match ev with
              | Ev_msg { from; msg; _ } ->
                if observing then
                  emit
                    (Delivered
                       {
                         at = now;
                         from;
                         dest;
                         msg = Format.asprintf "%a" P.pp_msg msg;
                       });
                P.on_message state ~now ~from msg
              | Ev_fd { suspects; _ } ->
                emit (Fd_change { at = now; pid = dest; suspects });
                P.on_suspicion state ~now ~suspects
              | Ev_timer { tag; _ } ->
                emit (Fired { at = now; pid = dest; tag });
                P.on_timer state ~now ~tag
            in
            states.(i) <- Some state;
            execute_actions dest now actions;
            (* If this event ran exactly at the crash instant, the process
               dies now (having executed its batch prefix). *)
            if is_running i && now >= crash_time i then begin
              outcomes.(i) <- Crashed { at = crash_time i };
              emit (Died { at = crash_time i; pid = dest })
            end
        end
    done;
    (* Processes whose crash time passed without any event afterwards. *)
    Array.iteri
      (fun i o ->
        match o with
        | Undecided when crash_time i <= !end_time || crash_time i <= cfg.deadline
          ->
          if crash_time i < infinity then begin
            outcomes.(i) <- Crashed { at = crash_time i };
            emit (Died { at = crash_time i; pid = Pid.of_int (i + 1) })
          end
        | Undecided | Decided _ | Crashed _ -> ())
      outcomes;
    {
      outcomes;
      msgs_sent = tally.Obs.Counters.msgs_sent;
      events_processed = tally.Obs.Counters.events_processed;
      end_time = !end_time;
      trace =
        (match trace_sink with
        | None -> []
        | Some ts -> Obs.Trace_sink.events ts);
      violations = List.rev !violations;
    }
end
