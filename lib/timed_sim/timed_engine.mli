(** Continuous-time discrete-event executor.

    Substrate for the related-work comparison points: the fast failure
    detector consensus (EXP-FFD) and the asynchronous ◇S-based MR99
    (EXP-MR99).  Channels deliver each message after a latency drawn from
    the configured distribution; crashes happen at configured absolute
    times; failure-detector knowledge is injected as a pre-computed plan of
    suspect-set updates (produced by the [fastfd] / [async_cons] device
    generators).

    Determinism: with equal configurations the run is identical — the event
    queue breaks time ties by (messages, FD updates, timers) and then by
    insertion order, and all randomness comes from the seeded [rng].

    Crash semantics: a process handles no event after its crash time; a
    handler running at {e exactly} the crash time has its action batch cut
    to the configured prefix — the timed analogue of the paper's
    partial-send semantics. *)

open Model

type latency =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; cap : float }
      (** capped exponential: models asynchrony while keeping runs finite *)

type crash_spec = {
  victim : Pid.t;
  at : float;
  batch_prefix : int;
      (** how many actions of a batch emitted exactly at [at] still
          execute *)
}

type fd_update = { observer : Pid.t; at : float; suspects : Pid.Set.t }

type trace_event =
  | Sent of { at : float; from : Pid.t; dest : Pid.t; msg : string }
  | Delivered of { at : float; from : Pid.t; dest : Pid.t; msg : string }
  | Dropped of { at : float; from : Pid.t; dest : Pid.t; msg : string }
      (** The fault plan lost the message (drop or link cut); [at] is the
          send instant. *)
  | Fired of { at : float; pid : Pid.t; tag : int }
  | Fd_change of { at : float; pid : Pid.t; suspects : Pid.Set.t }
  | Died of { at : float; pid : Pid.t }
  | Chose of { at : float; pid : Pid.t; value : int }
  | Violated of { at : float; pid : Pid.t; violation : Net.Synchrony_violation.t }
      (** [pid] detected a broken synchrony assumption and aborted the
          run.  The continuous-time engine's event vocabulary; also what
          the configured {!Obs.Instrument.t} consumes. *)

type config = {
  n : int;
  t : int;
  proposals : int array;
  latency : latency;
  faults : Net.Fault_plan.t;
      (** channel transform: decides each sent message's fate (deliver /
          drop / duplicate / delay); {!Net.Fault_plan.reliable} by default *)
  crashes : crash_spec list;
  fd_plan : fd_update list;
  deadline : float;
  seed : int64;
  record_trace : bool;
  instrument : trace_event Obs.Instrument.t;
      (** observer sink fed with every engine event; the null instrument
          (default) costs nothing *)
}

val config :
  ?latency:latency ->
  ?faults:Net.Fault_plan.t ->
  ?crashes:crash_spec list ->
  ?fd_plan:fd_update list ->
  ?deadline:float ->
  ?seed:int64 ->
  ?record_trace:bool ->
  ?instrument:trace_event Obs.Instrument.t ->
  n:int ->
  t:int ->
  proposals:int array ->
  unit ->
  config
(** Defaults: [latency = Fixed 1.0], reliable channels, no crashes, empty
    FD plan, [deadline = 1e6], [seed = 1], no trace, null instrument.
    Validates positivity of the latency parameters, crash times and
    deadline; at most one crash per process.  The fault plan draws from its
    own seeded stream, so injecting a zero-rate plan leaves the run
    byte-identical to the reliable one. *)

type outcome =
  | Decided of { value : int; at : float }
  | Crashed of { at : float }
  | Undecided

type result = {
  outcomes : outcome array;  (** index [i]: process [p_{i+1}] *)
  msgs_sent : int;
  events_processed : int;
  end_time : float;  (** time of the last processed event *)
  trace : trace_event list;  (** chronological when recording was on *)
  violations : Net.Synchrony_violation.t list;
      (** non-empty iff the run was aborted by a process's [Abort] action;
          chronological *)
}

val aborted : result -> bool
(** [violations <> []]: the run ended in graceful degradation, not a
    verdict. *)

val decisions : result -> (Pid.t * int * float) list
val decided_values : result -> int list

(** Processes whose outcome is [Crashed] (crashed without deciding), in
    increasing pid order — the timed counterpart of
    {!Sync_sim.Run_result.crashed}, compared by the differential oracle. *)
val crashed : result -> Pid.t list
val correct_all_decided : result -> bool
val max_decision_time : result -> float option

module Make (P : Process_intf.S) : sig
  val run : config -> result
end
