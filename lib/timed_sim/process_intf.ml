(** The interface a timed (event-driven) algorithm presents to the
    continuous-time engine.

    Unlike the lockstep model, a timed process is a reactive state machine:
    it is woken by message arrivals, timer expiries and failure-detector
    updates, and responds with a batch of actions.  Action batches are
    emitted at one time instant; if the process crashes at exactly that
    instant, the adversary executes an arbitrary {e prefix} of the batch —
    the timed analogue of the paper's ordered-send semantics (this is what
    makes "all data sent before any commit" expressible). *)

open Model

type 'msg action =
  | Send of Pid.t * 'msg
      (** Hand a message to the network; it arrives after the channel's
          latency — or after whatever the configured {!Net.Fault_plan}
          decides (lost, duplicated, late). *)
  | Set_timer of { at : float; tag : int }
      (** Request a wake-up at absolute time [at] (must not be in the
          past). *)
  | Decide of int
      (** Terminate with a decision; subsequent actions of the batch and
          all later events for this process are ignored. *)
  | Abort of Net.Synchrony_violation.t
      (** Graceful degradation: the process detected that a synchrony
          assumption it relies on does not hold.  The engine records the
          structured diagnosis and ends the whole run — no process gets to
          act on state the network could no longer certify. *)

type ctx = { n : int; t : int }

module type S = sig
  type state
  type msg

  val name : string

  val init : ctx -> me:Pid.t -> proposal:int -> state * msg action list
  (** Called at time 0. *)

  val on_message :
    state -> now:float -> from:Pid.t -> msg -> state * msg action list

  val on_timer : state -> now:float -> tag:int -> state * msg action list

  val on_suspicion :
    state -> now:float -> suspects:Pid.Set.t -> state * msg action list
  (** The failure detector replaced this process's suspect set. *)

  val pp_msg : Format.formatter -> msg -> unit
end
