(** Per-channel network fault plans — the message adversary.

    A fault plan decides the fate of every message a timed engine hands to
    the network: delivered once (possibly late), delivered twice, or not at
    all.  It is the unreliable-network counterpart of the crash adversary
    ({!Adversary.Strategies}): crashes break {e processes}, fault plans
    break {e channels}.  Dolev–Gafni's hybrid message adversary motivates
    treating the two as first-class peers.

    Determinism: a plan owns a private seeded stream, and every probability
    is drawn unconditionally in a fixed order per message — equal seeds and
    equal send sequences give equal fault patterns, so every chaos run is
    replayable.  The plan never touches the engine's own rng: injecting a
    zero-rate plan leaves a run byte-identical to the {!reliable} one.

    A plan is stateful across one run (it counts what it injected); build a
    fresh plan per run. *)

open Model

type cut = {
  src : Pid.t option;  (** [None] = any sender *)
  dst : Pid.t option;  (** [None] = any receiver *)
  from_time : float;
  until : float;
}
(** A link cut: messages matching ([src], [dst]) handed to the network
    within [\[from_time, until\]] are lost, deterministically. *)

type stats = {
  mutable messages : int;  (** messages offered to the plan *)
  mutable dropped : int;  (** lost to the random drop rate *)
  mutable cut : int;  (** lost to a link cut *)
  mutable duplicated : int;  (** delivered twice *)
  mutable jittered : int;  (** reordering jitter added *)
  mutable spiked : int;  (** latency multiplied beyond the bound *)
}

type t

val reliable : t
(** The perfect network: every message delivered exactly once at its drawn
    latency.  The engine default; recognizable in O(1). *)

val is_reliable : t -> bool

val cut :
  ?src:Pid.t -> ?dst:Pid.t -> ?from_time:float -> ?until:float -> unit -> cut
(** Defaults: any sender, any receiver, for the whole run. *)

val create :
  ?name:string ->
  ?drop:float ->
  ?duplicate:float ->
  ?jitter:float ->
  ?jitter_spread:float ->
  ?spike:float ->
  ?spike_factor:float ->
  ?cuts:cut list ->
  seed:int64 ->
  unit ->
  t
(** [create ~seed ()] with per-message probabilities, all defaulting to 0:
    [drop] loses the message; [duplicate] delivers a second copy; [jitter]
    adds a uniform extra delay in [\[0, jitter_spread)] (reordering);
    [spike] multiplies the latency by [spike_factor] (> 1), modelling a
    burst that breaks the [D] bound.  [cuts] are checked first and are
    deterministic.  Raises [Invalid_argument] on a probability outside
    [0, 1], a negative spread, or [spike_factor <= 1]. *)

val deliveries :
  t -> src:Pid.t -> dst:Pid.t -> at:float -> latency:float -> float list
(** The latencies at which copies of this message arrive: [[]] = lost,
    one element = normal, two = duplicated.  [latency] is the engine's
    drawn channel latency for the message. *)

(** {2 Recording and replaying fault scripts}

    A chaos failure found with a stochastic plan is a function of the whole
    rng stream; to {e shrink} it, the per-message decisions must become
    first-class data.  [recording] taps a plan and logs what it did to each
    message, in send order; [scripted] replays such a log positionally.
    The shrinker ({!Minimize.Script}) then deletes faults action-by-action
    and re-runs — no rng involved, so every shrink candidate is exactly
    reproducible. *)

type action =
  | Deliver  (** the message arrives once, at its drawn latency *)
  | Lose  (** the message is lost (drop or cut) *)
  | Copies of float list
      (** the message arrives at exactly these latencies (duplication,
          jitter or spike — possibly a single altered copy) *)
(** The observable fate of one message, in the order messages were offered
    to the plan. *)

val recording : t -> t
(** [recording inner] behaves exactly like [inner] and logs one {!action}
    per message.  Raises [Invalid_argument] on a plan that is already
    recording. *)

val recorded : t -> action array option
(** This is [Some actions] (send order) for a {!recording} plan, [None]
    otherwise. *)

val scripted : ?name:string -> action array -> t
(** [scripted actions] replays a recorded log positionally: the [i]-th
    message offered gets fate [actions.(i)]; messages past the end of the
    script are delivered faithfully (so trimming a clean tail is sound).
    Stateful across one run (a cursor) — build a fresh plan per run, as
    with {!create}. *)

val script : t -> action array option
(** The action array of a {!scripted} plan (a copy), [None] otherwise. *)

val name : t -> string

val stats : t -> stats option
(** [None] for {!reliable}. *)

val faults_injected : t -> int
(** Total faults of any kind injected so far; [0] for {!reliable}. *)

val pp_action : Format.formatter -> action -> unit

val pp : Format.formatter -> t -> unit
