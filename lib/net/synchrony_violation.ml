open Model

type kind =
  | Retry_exhausted of { attempts : int }
  | Late_arrival of { observed : float; assumed : float }

type t = {
  round : int;
  src : Pid.t;
  dst : Pid.t;
  at : float;
  kind : kind;
}

let retry_exhausted ~round ~src ~dst ~at ~attempts =
  { round; src; dst; at; kind = Retry_exhausted { attempts } }

let late_arrival ~round ~src ~dst ~at ~observed ~assumed =
  { round; src; dst; at; kind = Late_arrival { observed; assumed } }

let pp_kind ppf = function
  | Retry_exhausted { attempts } ->
    Format.fprintf ppf "no ack after %d transmission(s)" attempts
  | Late_arrival { observed; assumed } ->
    Format.fprintf ppf "message arrived %.3f after round start (assumed <= %.3f)"
      observed assumed

let pp ppf v =
  Format.fprintf ppf "synchrony violation: round %d, link %a->%a, t=%.3f: %a"
    v.round Pid.pp v.src Pid.pp v.dst v.at pp_kind v.kind

let to_string v = Format.asprintf "%a" pp v
