open Model

type cut = {
  src : Pid.t option;
  dst : Pid.t option;
  from_time : float;
  until : float;
}

type profile = {
  drop : float;
  duplicate : float;
  jitter : float;
  jitter_spread : float;
  spike : float;
  spike_factor : float;
  cuts : cut list;
}

type stats = {
  mutable messages : int;
  mutable dropped : int;
  mutable cut : int;
  mutable duplicated : int;
  mutable jittered : int;
  mutable spiked : int;
}

type action = Deliver | Lose | Copies of float list

type t =
  | Reliable
  | Faulty of {
      name : string;
      profile : profile;
      rng : Prng.Rng.t;
      stats : stats;
    }
  | Recording of { inner : t; log : action list ref }
  | Scripted of { name : string; actions : action array; cursor : int ref;
                  stats : stats }

let reliable = Reliable

let is_reliable = function
  | Reliable -> true
  | Faulty _ | Scripted _ -> false
  | Recording _ -> false

let check_prob what p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Fault_plan: %s must be in [0, 1]" what)

let cut ?src ?dst ?(from_time = 0.0) ?(until = infinity) () =
  if from_time < 0.0 || until < from_time then
    invalid_arg "Fault_plan.cut: need 0 <= from_time <= until";
  { src; dst; from_time; until }

let create ?(name = "faulty") ?(drop = 0.0) ?(duplicate = 0.0) ?(jitter = 0.0)
    ?(jitter_spread = 0.0) ?(spike = 0.0) ?(spike_factor = 2.0) ?(cuts = [])
    ~seed () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "jitter" jitter;
  check_prob "spike" spike;
  if jitter_spread < 0.0 then
    invalid_arg "Fault_plan: jitter_spread must be >= 0";
  if spike_factor <= 1.0 then
    invalid_arg "Fault_plan: spike_factor must be > 1";
  Faulty
    {
      name;
      profile =
        { drop; duplicate; jitter; jitter_spread; spike; spike_factor; cuts };
      rng = Prng.Rng.create ~seed;
      stats =
        {
          messages = 0;
          dropped = 0;
          cut = 0;
          duplicated = 0;
          jittered = 0;
          spiked = 0;
        };
    }

let rec name = function
  | Reliable -> "reliable"
  | Faulty { name; _ } -> name
  | Recording { inner; _ } -> "recording:" ^ name inner
  | Scripted { name; _ } -> name

let fresh_stats () =
  { messages = 0; dropped = 0; cut = 0; duplicated = 0; jittered = 0;
    spiked = 0 }

let recording inner =
  match inner with
  | Recording _ -> invalid_arg "Fault_plan.recording: already recording"
  | _ -> Recording { inner; log = ref [] }

let recorded = function
  | Recording { log; _ } -> Some (Array.of_list (List.rev !log))
  | Reliable | Faulty _ | Scripted _ -> None

let scripted ?(name = "scripted") actions =
  Scripted { name; actions; cursor = ref 0; stats = fresh_stats () }

let script = function
  | Scripted { actions; _ } -> Some (Array.copy actions)
  | Reliable | Faulty _ | Recording _ -> None

let in_cut c ~src ~dst ~at =
  (match c.src with None -> true | Some p -> Pid.equal p src)
  && (match c.dst with None -> true | Some p -> Pid.equal p dst)
  && at >= c.from_time && at <= c.until

(* Every Bernoulli draw happens unconditionally and in a fixed order, so the
   stream of rng consumption — hence the whole run — depends only on the
   sequence of sends, never on which faults fired. *)
let rec deliveries t ~src ~dst ~at ~latency =
  match t with
  | Reliable -> [ latency ]
  | Recording { inner; log } ->
    let out = deliveries inner ~src ~dst ~at ~latency in
    let action =
      match out with
      | [] -> Lose
      | [ l ] when l = latency -> Deliver
      | ls -> Copies ls
    in
    log := action :: !log;
    out
  | Scripted { actions; cursor; stats; _ } ->
    stats.messages <- stats.messages + 1;
    let i = !cursor in
    cursor := i + 1;
    (* Past the end of the script the channel heals: deliver faithfully.
       Trimmed scripts therefore replay exactly like the original with a
       clean tail. *)
    if i >= Array.length actions then [ latency ]
    else begin
      match actions.(i) with
      | Deliver -> [ latency ]
      | Lose ->
        stats.dropped <- stats.dropped + 1;
        []
      | Copies ls ->
        if List.length ls > 1 then stats.duplicated <- stats.duplicated + 1;
        if List.exists (fun l -> l <> latency) ls then
          stats.jittered <- stats.jittered + 1;
        ls
    end
  | Faulty { profile = p; rng; stats; _ } ->
    stats.messages <- stats.messages + 1;
    let draw () = Prng.Rng.float rng 1.0 in
    let one_copy () =
      let spiked = draw () < p.spike in
      let jittered = draw () < p.jitter in
      let extra =
        if jittered then Prng.Rng.float rng (Float.max p.jitter_spread 1e-9)
        else 0.0
      in
      let l = if spiked then latency *. p.spike_factor else latency in
      if spiked then stats.spiked <- stats.spiked + 1;
      if jittered && p.jitter_spread > 0.0 then
        stats.jittered <- stats.jittered + 1;
      l +. extra
    in
    let dropped = draw () < p.drop in
    let duplicated = draw () < p.duplicate in
    let first = one_copy () in
    let second = if duplicated then Some (one_copy ()) else None in
    if List.exists (fun c -> in_cut c ~src ~dst ~at) p.cuts then begin
      stats.cut <- stats.cut + 1;
      []
    end
    else if dropped then begin
      stats.dropped <- stats.dropped + 1;
      []
    end
    else
      match second with
      | None -> [ first ]
      | Some s ->
        stats.duplicated <- stats.duplicated + 1;
        [ first; s ]

let rec stats = function
  | Reliable -> None
  | Faulty { stats; _ } | Scripted { stats; _ } -> Some stats
  | Recording { inner; _ } -> stats inner

let count_faults s =
  s.dropped + s.cut + s.duplicated + s.jittered + s.spiked

let rec faults_injected = function
  | Reliable -> 0
  | Faulty { stats; _ } | Scripted { stats; _ } -> count_faults stats
  | Recording { inner; _ } -> faults_injected inner

let pp_action ppf = function
  | Deliver -> Format.pp_print_string ppf "deliver"
  | Lose -> Format.pp_print_string ppf "lose"
  | Copies ls ->
    Format.fprintf ppf "copies[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
         (fun ppf l -> Format.fprintf ppf "%g" l))
      ls

let rec pp ppf = function
  | Reliable -> Format.pp_print_string ppf "reliable"
  | Faulty { name; profile = p; stats; _ } ->
    Format.fprintf ppf
      "%s(drop=%.2f dup=%.2f jitter=%.2f spike=%.2f cuts=%d; seen %d msgs, \
       %d dropped, %d cut, %d duplicated, %d spiked)"
      name p.drop p.duplicate p.jitter p.spike (List.length p.cuts)
      stats.messages stats.dropped stats.cut stats.duplicated stats.spiked
  | Recording { inner; log } ->
    Format.fprintf ppf "recording(%d actions over %a)" (List.length !log) pp
      inner
  | Scripted { name; actions; cursor; _ } ->
    Format.fprintf ppf "%s(%d scripted actions, %d consumed)" name
      (Array.length actions) !cursor
