(** Structured diagnosis of a broken synchrony assumption.

    The LAN realization of the extended model (Section 2.2) assumes every
    round-[r] message is on the wire for at most [D].  Under an unreliable
    network that assumption can fail; rather than silently producing a wrong
    decision, the fault-masking transport aborts the run with one of these
    reports: which round, which link, and what was observed against what was
    assumed.  Detection is {e conservative}: a report means the masking
    budget could not certify the round, never that a wrong decision
    happened. *)

open Model

type kind =
  | Retry_exhausted of { attempts : int }
      (** The sender exhausted its retry budget without an acknowledgement:
          either every copy of the message was lost, or every ack was —
          both exceed the masking budget of the link. *)
  | Late_arrival of { observed : float; assumed : float }
      (** A fresh (non-duplicate) message landed after its round's
          computation phase: observed one-way latency exceeded the window
          the realization assumed. *)

type t = {
  round : int;  (** the abstract round whose synchrony broke *)
  src : Pid.t;  (** sending end of the offending link *)
  dst : Pid.t;  (** receiving end of the offending link *)
  at : float;  (** wall-clock detection time *)
  kind : kind;
}

val retry_exhausted :
  round:int -> src:Pid.t -> dst:Pid.t -> at:float -> attempts:int -> t

val late_arrival :
  round:int ->
  src:Pid.t ->
  dst:Pid.t ->
  at:float ->
  observed:float ->
  assumed:float ->
  t

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
