(** Deterministic data parallelism over OCaml 5 domains.

    The experiment sweeps and exhaustive model checks are embarrassingly
    parallel: every run is a pure function of its (seeded) inputs.  Workers
    pull indices from a shared atomic counter (work stealing), so parallel
    execution stays observationally identical to sequential execution even
    when per-element costs are heavily skewed — the tests assert exactly
    that, for results, witnesses and exceptions alike.

    Keep closures pure: tasks run concurrently on separate domains, and
    shared mutable state without synchronization is a data race.

    Cancellation: the optional [stop] flag is shared with the caller (and
    may be set from any domain, including from inside a task).  Once it is
    observed, workers stop pulling new elements and the call raises
    {!Cancelled} instead of returning a partial result. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

exception Cancelled
(** Raised by a call whose [stop] flag was set before it completed. *)

val map : ?domains:int -> ?stop:bool Atomic.t -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, preserving order.
    [domains <= 1] (or an array shorter than 2) degrades to sequential
    application.  If any task raises, the raise short-circuits the call:
    workers stop pulling new indices past the smallest raising one, so
    elements beyond it may never be evaluated at all.  Every index below
    the winning raiser is still fully evaluated, which makes the re-raised
    exception deterministically the one of the smallest raising input
    index, exactly as in the sequential degradation. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?domains:int -> ?stop:bool Atomic.t -> ('a -> unit) -> 'a array -> unit

val count_if :
  ?domains:int -> ?stop:bool Atomic.t -> ('a -> bool) -> 'a array -> int
(** Parallel count of elements satisfying the predicate.  Every element is
    evaluated (a count cannot short-circuit on hits — only a raising
    element cancels the remaining work, as in {!map}); use [stop] to
    abandon the call from outside. *)

val find_first :
  ?domains:int -> ?stop:bool Atomic.t -> ('a -> 'b option) -> 'a array -> 'b option
(** [find_first f xs] is [f x] for the first (in input order) [x] with
    [f x <> None] — deterministic regardless of the domain count.  The
    search short-circuits: once a hit at index [i] is known, no element
    beyond [i] is newly dispatched (in-flight elements finish, and every
    index below the winning one is always evaluated, which is what makes
    the witness the input-order first).  An exception raised at an index
    smaller than the first hit propagates; elements past the first hit may
    never be evaluated at all. *)

val shards : ?domains:int -> (shards:int -> shard:int -> 'a) -> 'a list
(** [shards ~domains f] runs [f ~shards:domains ~shard:k] for each
    [k in 0 .. domains-1], one per domain (the caller's domain runs shard
    0), and returns the results in shard order.  This is the streaming
    entry point: each worker folds its own lazy slice (see
    {!Adversary.Enumerate.shard}) so no caller materializes the input.
    With [domains = 1] the single shard runs inline.  If shards raise, the
    exception of the smallest shard index is re-raised after all joins. *)
