let default_domains () = max 1 (Domain.recommended_domain_count ())

exception Cancelled

type 'b slot = Pending | Done of 'b | Raised of exn

let cancelled = function None -> false | Some flag -> Atomic.get flag

(* Work-stealing map: workers pull indices from a shared atomic counter, so
   a domain stuck on a slow element never strands the cheap ones behind it
   (schedule verdict times are heavily skewed — greedy schedules run f+1
   rounds, silent ones decide in round 1).  The calling domain doubles as
   worker 0.

   A raising element poisons the call: [best] tracks the smallest raising
   index, and workers stop pulling once the counter passes it, so one bad
   element at the front cancels the rest of a large array instead of
   draining it.  Every index below the final [best] is still fully
   evaluated, which keeps the re-raised exception the input-order first —
   the same determinism argument as [find_first]'s witness. *)
let map ?domains ?stop f xs =
  let n = Array.length xs in
  let domains = Option.value domains ~default:(default_domains ()) in
  if domains <= 1 || n < 2 then
    Array.map
      (fun x -> if cancelled stop then raise Cancelled else f x)
      xs
  else begin
    let results = Array.make n Pending in
    let best = Atomic.make max_int in
    let record_raise i e =
      results.(i) <- Raised e;
      let rec lower () =
        let b = Atomic.get best in
        if i < b && not (Atomic.compare_and_set best b i) then lower ()
      in
      lower ()
    in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        if not (cancelled stop) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n && i <= Atomic.get best then begin
            (match f xs.(i) with
            | v -> results.(i) <- Done v
            | exception e -> record_raise i e);
            loop ()
          end
        end
      in
      loop ()
    in
    let handles =
      List.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join handles;
    if cancelled stop then raise Cancelled;
    match Atomic.get best with
    | b when b = max_int ->
      Array.map
        (function
          | Done v -> v
          | Raised _ | Pending -> assert false (* best would have been set *))
        results
    | b -> (
      match results.(b) with
      | Raised e -> raise e
      | Done _ | Pending -> assert false)
  end

let map_list ?domains f xs = Array.to_list (map ?domains f (Array.of_list xs))

let iter ?domains ?stop f xs = ignore (map ?domains ?stop f xs)

let count_if ?domains ?stop p xs =
  Array.fold_left
    (fun acc b -> if b then acc + 1 else acc)
    0
    (map ?domains ?stop p xs)

let find_first ?domains ?stop f xs =
  let n = Array.length xs in
  let domains = Option.value domains ~default:(default_domains ()) in
  if domains <= 1 || n < 2 then begin
    let rec go i =
      if i >= n then None
      else if cancelled stop then raise Cancelled
      else match f xs.(i) with Some v -> Some v | None -> go (i + 1)
    in
    go 0
  end
  else begin
    (* [best] is the smallest index so far whose element produced a hit or
       raised.  An index is dispatched at most once and every dispatched
       index below the final [best] is fully evaluated, so the reported
       witness is the input-order first — with genuine early exit: workers
       stop pulling once the counter passes [best]. *)
    let best = Atomic.make max_int in
    let outcomes = Array.make n None in
    let record i o =
      outcomes.(i) <- Some o;
      let rec lower () =
        let b = Atomic.get best in
        if i < b && not (Atomic.compare_and_set best b i) then lower ()
      in
      lower ()
    in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        if not (cancelled stop) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n && i <= Atomic.get best then begin
            (match try Ok (f xs.(i)) with e -> Error e with
            | Ok None -> ()
            | Ok (Some v) -> record i (Ok v)
            | Error e -> record i (Error e));
            loop ()
          end
        end
      in
      loop ()
    in
    let handles =
      List.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join handles;
    if cancelled stop then raise Cancelled;
    match Atomic.get best with
    | b when b = max_int -> None
    | b -> (
      match outcomes.(b) with
      | Some (Ok v) -> Some v
      | Some (Error e) -> raise e
      | None -> assert false)
  end

let shards ?domains f =
  let domains = max 1 (Option.value domains ~default:(default_domains ())) in
  if domains = 1 then [ f ~shards:1 ~shard:0 ]
  else begin
    let slots = Array.make domains Pending in
    let handles =
      List.init (domains - 1) (fun k ->
          Domain.spawn (fun () ->
              slots.(k + 1) <-
                (try Done (f ~shards:domains ~shard:(k + 1)) with e -> Raised e)))
    in
    slots.(0) <- (try Done (f ~shards:domains ~shard:0) with e -> Raised e);
    List.iter Domain.join handles;
    Array.to_list
      (Array.map
         (function Done v -> v | Raised e -> raise e | Pending -> assert false)
         slots)
  end
