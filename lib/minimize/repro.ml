open Model
module J = Obs.Json

type case =
  | Consensus of { algo : string; schedule : Schedule.t; property : string }
  | Cross_engine of { schedule : Schedule.t }
  | Chaos of {
      budget : int;
      engine_seed : int64;
      actions : Net.Fault_plan.action array;
    }

type t = {
  n : int;
  t : int;
  case : case;
  steps : int;
  candidates : int;
  one_minimal : bool;
}

let version = 1

(* --- Encoding ------------------------------------------------------------- *)

let point_to_json = function
  | Crash.Before_send -> J.Obj [ ("kind", J.String "before_send") ]
  | Crash.During_data s ->
    J.Obj
      [
        ("kind", J.String "during_data");
        ( "delivered",
          J.List
            (List.map (fun p -> J.Int (Pid.to_int p)) (Pid.Set.elements s)) );
      ]
  | Crash.After_data k ->
    J.Obj [ ("kind", J.String "after_data"); ("prefix", J.Int k) ]
  | Crash.After_send -> J.Obj [ ("kind", J.String "after_send") ]

let schedule_to_json schedule =
  J.List
    (List.map
       (fun (pid, ev) ->
         J.Obj
           [
             ("pid", J.Int (Pid.to_int pid));
             ("round", J.Int ev.Crash.round);
             ("point", point_to_json ev.Crash.point);
           ])
       (Schedule.bindings schedule))

let action_to_json = function
  | Net.Fault_plan.Deliver -> J.String "deliver"
  | Net.Fault_plan.Lose -> J.String "lose"
  | Net.Fault_plan.Copies ls ->
    J.Obj [ ("copies", J.List (List.map (fun l -> J.Float l) ls)) ]

let case_to_json = function
  | Consensus { algo; schedule; property } ->
    J.Obj
      [
        ("kind", J.String "consensus");
        ("algo", J.String algo);
        ("schedule", schedule_to_json schedule);
        ("property", J.String property);
      ]
  | Cross_engine { schedule } ->
    J.Obj
      [
        ("kind", J.String "cross_engine");
        ("schedule", schedule_to_json schedule);
      ]
  | Chaos { budget; engine_seed; actions } ->
    J.Obj
      [
        ("kind", J.String "chaos");
        ("budget", J.Int budget);
        ("engine_seed", J.Int (Int64.to_int engine_seed));
        ("actions", J.List (List.map action_to_json (Array.to_list actions)));
      ]

let to_json r =
  J.Obj
    [
      ("version", J.Int version);
      ("n", J.Int r.n);
      ("t", J.Int r.t);
      ("case", case_to_json r.case);
      ("shrink_steps", J.Int r.steps);
      ("shrink_candidates", J.Int r.candidates);
      ("one_minimal", J.Bool r.one_minimal);
    ]

(* --- Decoding ------------------------------------------------------------- *)

let ( let* ) = Result.bind

let field what key json =
  match J.member key json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" what key)

let as_int what = function
  | J.Int i -> Ok i
  | _ -> Error (what ^ ": expected an integer")

let as_float what = function
  | J.Float f -> Ok f
  | J.Int i -> Ok (float_of_int i)
  | _ -> Error (what ^ ": expected a number")

let as_string what = function
  | J.String s -> Ok s
  | _ -> Error (what ^ ": expected a string")

let as_list what = function
  | J.List xs -> Ok xs
  | _ -> Error (what ^ ": expected a list")

let as_bool what = function
  | J.Bool b -> Ok b
  | _ -> Error (what ^ ": expected a boolean")

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let point_of_json json =
  let* kind = field "point" "kind" json in
  let* kind = as_string "point.kind" kind in
  match kind with
  | "before_send" -> Ok Crash.Before_send
  | "after_send" -> Ok Crash.After_send
  | "after_data" ->
    let* k = field "point" "prefix" json in
    let* k = as_int "point.prefix" k in
    Ok (Crash.After_data k)
  | "during_data" -> (
    let* xs = field "point" "delivered" json in
    let* xs = as_list "point.delivered" xs in
    let* pids = map_result (as_int "point.delivered") xs in
    match Pid.set_of_ints pids with
    | s -> Ok (Crash.During_data s)
    | exception Invalid_argument why -> Error ("point.delivered: " ^ why))
  | k -> Error (Printf.sprintf "point.kind: unknown kind %S" k)

let schedule_of_json json =
  let* entries = as_list "schedule" json in
  let* bindings =
    map_result
      (fun entry ->
        let* pid = field "crash" "pid" entry in
        let* pid = as_int "crash.pid" pid in
        let* round = field "crash" "round" entry in
        let* round = as_int "crash.round" round in
        let* point = field "crash" "point" entry in
        let* point = point_of_json point in
        match (Pid.of_int pid, Crash.make ~round point) with
        | pid, ev -> Ok (pid, ev)
        | exception Invalid_argument why -> Error ("crash: " ^ why))
      entries
  in
  match Schedule.of_list bindings with
  | s -> Ok s
  | exception Invalid_argument why -> Error ("schedule: " ^ why)

let action_of_json = function
  | J.String "deliver" -> Ok Net.Fault_plan.Deliver
  | J.String "lose" -> Ok Net.Fault_plan.Lose
  | json -> (
    match J.member "copies" json with
    | Some copies ->
      let* ls = as_list "action.copies" copies in
      let* ls = map_result (as_float "action.copies") ls in
      Ok (Net.Fault_plan.Copies ls)
    | None -> Error "action: expected \"deliver\", \"lose\" or {copies}")

let case_of_json json =
  let* kind = field "case" "kind" json in
  let* kind = as_string "case.kind" kind in
  match kind with
  | "consensus" ->
    let* algo = field "case" "algo" json in
    let* algo = as_string "case.algo" algo in
    let* schedule = field "case" "schedule" json in
    let* schedule = schedule_of_json schedule in
    let* property = field "case" "property" json in
    let* property = as_string "case.property" property in
    Ok (Consensus { algo; schedule; property })
  | "cross_engine" ->
    let* schedule = field "case" "schedule" json in
    let* schedule = schedule_of_json schedule in
    Ok (Cross_engine { schedule })
  | "chaos" ->
    let* budget = field "case" "budget" json in
    let* budget = as_int "case.budget" budget in
    let* seed = field "case" "engine_seed" json in
    let* seed = as_int "case.engine_seed" seed in
    let* actions = field "case" "actions" json in
    let* actions = as_list "case.actions" actions in
    let* actions = map_result action_of_json actions in
    Ok
      (Chaos
         {
           budget;
           engine_seed = Int64.of_int seed;
           actions = Array.of_list actions;
         })
  | k -> Error (Printf.sprintf "case.kind: unknown kind %S" k)

let of_json json =
  let* v = field "repro" "version" json in
  let* v = as_int "version" v in
  if v <> version then
    Error (Printf.sprintf "unsupported repro version %d (expected %d)" v version)
  else
    let* n = field "repro" "n" json in
    let* n = as_int "n" n in
    let* t = field "repro" "t" json in
    let* t = as_int "t" t in
    let* case = field "repro" "case" json in
    let* case = case_of_json case in
    let* steps = field "repro" "shrink_steps" json in
    let* steps = as_int "shrink_steps" steps in
    let* candidates = field "repro" "shrink_candidates" json in
    let* candidates = as_int "shrink_candidates" candidates in
    let* one_minimal = field "repro" "one_minimal" json in
    let* one_minimal = as_bool "one_minimal" one_minimal in
    Ok { n; t; case; steps; candidates; one_minimal }

let of_string s =
  let* json = J.of_string s in
  of_json json

(* --- Files ---------------------------------------------------------------- *)

let save ~file r = J.save_atomic ~file (to_json r)

type load_error = { file : string; offset : int option; reason : string }

let load_error_to_string e =
  match e.offset with
  | Some off -> Printf.sprintf "%s: byte %d: %s" e.file off e.reason
  | None -> Printf.sprintf "%s: %s" e.file e.reason

let pp_load_error ppf e = Format.pp_print_string ppf (load_error_to_string e)

let load file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error why -> Error { file; offset = None; reason = why }
  | contents -> (
    match J.of_string_located contents with
    | Error (off, reason) ->
      Error { file; offset = Some off; reason = "JSON parse error: " ^ reason }
    | Ok json -> (
      match of_json json with
      | Ok r -> Ok r
      | Error reason -> Error { file; offset = None; reason }
      (* Belt and braces: however mangled the artifact, loading must come
         back as a structured error, never an exception. *)
      | exception e ->
        Error
          {
            file;
            offset = None;
            reason = "malformed artifact: " ^ Printexc.to_string e;
          }))

(* --- Replay --------------------------------------------------------------- *)

let replay r =
  match r.case with
  | Consensus { algo; schedule; property } -> (
    let* a = Algo.find algo in
    let res = a.Algo.run ~n:r.n ~t:r.t schedule in
    let checks = Algo.checks a ~t:r.t res in
    match
      List.find_opt (fun c -> c.Spec.Properties.name = property) checks
    with
    | None ->
      Error
        (Printf.sprintf "no check named %S among the %s verdicts" property
           algo)
    | Some c ->
      if c.Spec.Properties.ok then
        Error
          (Printf.sprintf
             "did not reproduce: %s passes %S on the recorded schedule" algo
             property)
      else Ok [ Printf.sprintf "%s: %s" c.Spec.Properties.name c.Spec.Properties.detail ])
  | Cross_engine { schedule } -> (
    match Oracle.check_schedule ~n:r.n ~t:r.t schedule with
    | Oracle.Disagree { diffs; _ } -> Ok diffs
    | Oracle.Agree _ ->
      Error "did not reproduce: all engines agree on the recorded schedule")
  | Chaos { budget; engine_seed; actions } -> (
    let faults = Net.Fault_plan.scripted ~name:"repro" actions in
    match
      Oracle.check_masked ~n:r.n ~budget ~faults ~seed:engine_seed ()
    with
    | Oracle.Wrong why, _ -> Ok [ why ]
    | (Oracle.Masked | Oracle.Detected _), _ ->
      Error
        "did not reproduce: the scripted run is masked or cleanly detected")

(* --- Reporting ------------------------------------------------------------ *)

let pp_case ppf = function
  | Consensus { algo; schedule; property } ->
    Format.fprintf ppf "@[<v>algorithm: %s@,violated property: %s@,schedule: %a@]"
      algo property Schedule.pp schedule
  | Cross_engine { schedule } ->
    Format.fprintf ppf "@[<v>cross-engine disagreement@,schedule: %a@]"
      Schedule.pp schedule
  | Chaos { budget; engine_seed; actions } ->
    Format.fprintf ppf
      "@[<v>chaos (retry budget %d, engine seed %Ld)@,script: %a@]" budget
      engine_seed
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Net.Fault_plan.pp_action)
      (Array.to_list actions)

let pp ppf r =
  Format.fprintf ppf
    "@[<v>n = %d, t = %d@,%a@,shrink: %d steps over %d candidates%s@]" r.n r.t
    pp_case r.case r.steps r.candidates
    (if r.one_minimal then ", 1-minimal" else "")
