(** Generic greedy counterexample shrinking.

    Delta debugging specialized to a reduction relation: given a failing
    input and a function enumerating its single-step simplifications, the
    shrinker descends greedily — first reduction that still fails wins —
    until no reduction fails.  Termination is the caller's obligation:
    every element of [reductions x] must be strictly smaller than [x] in
    some well-founded measure ({!Adversary.Enumerate.weight} for crash
    schedules, {!Script.weight} for fault scripts).

    The result is deterministic (both [reductions] order and [still_fails]
    must be deterministic — true of every checker in this repository) and
    {e 1-minimal}: the last descent pass checked every single-step
    reduction of [minimal] and all of them passed, which is exactly the
    certificate the final verdict needs. *)

type 'a outcome = {
  original : 'a;
  minimal : 'a;  (** local minimum: no single reduction of it still fails *)
  steps : int;  (** accepted reductions (length of the descent path) *)
  candidates : int;  (** property evaluations on reduction candidates *)
}

val run :
  reductions:('a -> 'a Seq.t) ->
  still_fails:('a -> bool) ->
  'a ->
  'a outcome
(** Raises [Invalid_argument] if the input itself does not fail — a
    shrinker fed a passing input is a harness bug, not a shrink. *)
