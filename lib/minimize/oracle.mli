(** The differential conformance oracle.

    Four independent executions of the Figure 1 protocol coexist in this
    repository: the abstract round engine ({!Sync_sim.Engine.run}), its
    reused-scratch twin ([runner]), the continuous-time LAN realization
    ({!Lan.Realization} on {!Timed_sim.Timed_engine}), and the
    fault-masking transport ({!Lan.Masked}).  Each was validated against a
    spec in isolation; this module checks them against {e each other}, per
    schedule — any disagreement in decisions, decision rounds or crash-set
    is a bug in one of the four, reported loudly with the per-lane
    verdicts.  EXP-DIFF runs it over the full canonical n=4 sweep; the
    [fuzz] subcommand and CI smoke feed it random schedules and fault
    plans, shrinking on failure. *)

open Model

type lane = {
  name : string;  (** [engine-run], [engine-runner] or [timed-lan] *)
  decisions : (int * int * int) list;  (** (pid, value, round), pid order *)
  crashed : int list;  (** crashed without deciding, pid order *)
  note : string;  (** non-empty when the lane was skipped, with the reason *)
}

type verdict =
  | Agree of lane list
  | Disagree of { lanes : lane list; diffs : string list }

val lanes : verdict -> lane list

val check_schedule : n:int -> t:int -> Schedule.t -> verdict
(** Run one crash schedule through the abstract engine (both entry
    points, compared via {!Sync_sim.Run_result.equal_observable}) and the
    timed LAN realization (D = 100, δ = 2, latencies uniform in (0, D],
    fixed seed — latency draws cannot change the verdict, which is the
    realization's own theorem).  The timed lane is skipped — noted, not
    failed — on schedules whose [During_data] subsets are not prefixes of
    the wire order, which no LAN realization can express
    ({!Lan.Realization.translate_rwwc_schedule}). *)

val agrees : n:int -> t:int -> Schedule.t -> bool

type masked_verdict =
  | Masked  (** decided exactly like the abstract engine *)
  | Detected of Net.Synchrony_violation.t
      (** aborted with a structured violation, nothing decided wrongly *)
  | Wrong of string  (** the one outcome that must never appear *)

val check_masked :
  ?n:int ->
  budget:int ->
  faults:Net.Fault_plan.t ->
  seed:int64 ->
  unit ->
  masked_verdict * int
(** One run of the Figure 1 algorithm over the retransmitting
    {!Lan.Masked} transport (D = 10, δ = 1, [n] defaults to 6) under the
    given fault plan, differentially compared against the abstract engine
    — with an online uniform-consensus guard attached to every decision
    event.  Returns the verdict and the number of faults the plan
    injected.  This is the chaos harness's [run_one], hoisted here so the
    shrinker can re-evaluate it on {!Net.Fault_plan.scripted}
    candidates. *)
