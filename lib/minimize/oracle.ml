open Model

(* --- Cross-engine differential check on crash schedules ------------------- *)

type lane = {
  name : string;
  decisions : (int * int * int) list;
  crashed : int list;
  note : string;
}

type verdict =
  | Agree of lane list
  | Disagree of { lanes : lane list; diffs : string list }

let lanes = function Agree lanes | Disagree { lanes; _ } -> lanes

(* The timed lane runs the Section 2.2 LAN realization with the EXP-LAN
   parameters: D = 100, delta = 2, latencies uniform in (0, D], fixed
   seed.  Latency draws cannot change the verdict — the realization proves
   exactly that — so one seed suffices. *)
let big_d = 100.0
let delta = 2.0

module Lan_rwwc =
  Lan.Realization.Make
    (Core.Rwwc)
    (struct
      let big_d = big_d
      let delta = delta
    end)

module Lan_runner = Timed_sim.Timed_engine.Make (Lan_rwwc)
module R = Sync_sim.Engine.Make_flat (Core.Rwwc)

(* The previous engine generation, kept as an independent lane: the flat
   engine must stay byte-identical to it on every schedule the oracle sees. *)
module R_ref = Sync_sim.Engine_reference.Make (Core.Rwwc)

let lane_of_result name res =
  {
    name;
    decisions =
      List.map
        (fun (pid, v, r) -> (Pid.to_int pid, v, r))
        (Sync_sim.Run_result.decisions res);
    crashed =
      List.map Pid.to_int
        (Pid.Set.elements (Sync_sim.Run_result.crashed res));
    note = "";
  }

let pp_triples ts =
  String.concat ","
    (List.map (fun (p, v, r) -> Printf.sprintf "p%d=%d@r%d" p v r) ts)

let pp_pids ps = String.concat "," (List.map (Printf.sprintf "p%d") ps)

let compare_lanes reference lane =
  let diffs = ref [] in
  if lane.decisions <> reference.decisions then
    diffs :=
      Printf.sprintf "%s decisions [%s] differ from %s [%s]" lane.name
        (pp_triples lane.decisions) reference.name
        (pp_triples reference.decisions)
      :: !diffs;
  if lane.crashed <> reference.crashed then
    diffs :=
      Printf.sprintf "%s crash-set {%s} differs from %s {%s}" lane.name
        (pp_pids lane.crashed) reference.name (pp_pids reference.crashed)
      :: !diffs;
  List.rev !diffs

let check_schedule ~n ~t schedule =
  let proposals = Sync_sim.Engine.distinct_proposals n in
  let cfg = Sync_sim.Engine.config ~schedule ~n ~t ~proposals () in
  let res_run = R.run cfg in
  let res_runner = R.runner cfg schedule in
  let reference = lane_of_result "engine-run" res_run in
  let runner_lane = lane_of_result "engine-runner" res_runner in
  let runner_diffs =
    if Sync_sim.Run_result.equal_observable res_run res_runner then []
    else
      compare_lanes reference runner_lane
      @ [ "engine-runner observable result differs from engine-run \
           (statuses, rounds or wire counters)" ]
  in
  let res_ref = R_ref.run cfg in
  let ref_lane = lane_of_result "engine-reference" res_ref in
  let ref_diffs =
    if Sync_sim.Run_result.equal_observable res_run res_ref then []
    else
      compare_lanes reference ref_lane
      @ [ "flat engine observable result differs from the reference engine \
           (statuses, rounds or wire counters)" ]
  in
  let timed_lane, timed_diffs =
    match
      Lan.Realization.translate_rwwc_schedule ~n ~big_d ~delta schedule
    with
    | exception Invalid_argument why ->
      ( {
          name = "timed-lan";
          decisions = [];
          crashed = [];
          note = "skipped: " ^ why;
        },
        [] )
    | crashes ->
      let timed =
        Lan_runner.run
          (Timed_sim.Timed_engine.config
             ~latency:(Timed_sim.Timed_engine.Uniform { lo = 1.0; hi = big_d })
             ~crashes ~seed:5L ~n ~t ~proposals ())
      in
      let lane =
        {
          name = "timed-lan";
          decisions =
            List.map
              (fun (pid, v, at) ->
                (Pid.to_int pid, v, Lan_rwwc.round_of_time at))
              (Timed_sim.Timed_engine.decisions timed);
          crashed =
            List.map Pid.to_int (Timed_sim.Timed_engine.crashed timed);
          note = "";
        }
      in
      (lane, compare_lanes reference lane)
  in
  let all_lanes = [ reference; runner_lane; ref_lane; timed_lane ] in
  match runner_diffs @ ref_diffs @ timed_diffs with
  | [] -> Agree all_lanes
  | diffs -> Disagree { lanes = all_lanes; diffs }

let agrees ~n ~t schedule =
  match check_schedule ~n ~t schedule with
  | Agree _ -> true
  | Disagree _ -> false

(* --- Masked-transport differential check under network faults ------------ *)

type masked_verdict =
  | Masked
  | Detected of Net.Synchrony_violation.t
  | Wrong of string

let masked_big_d = 10.0
let masked_delta = 1.0

(* Latencies and reorder jitter stay jointly under D, so jitter alone never
   breaks the synchrony assumption — only drops, cuts and spikes do. *)
let masked_latency =
  Timed_sim.Timed_engine.Uniform { lo = 0.5; hi = masked_big_d /. 2.0 }

let abstract_decisions ~n ~proposals =
  let res = R.run (Sync_sim.Engine.config ~n ~t:(n - 2) ~proposals ()) in
  List.map
    (fun (pid, v, r) -> (Pid.to_int pid, v, r))
    (Sync_sim.Run_result.decisions res)

let check_masked ?(n = 6) ~budget ~faults ~seed () =
  let module M =
    Lan.Masked.Make
      (Core.Rwwc)
      (struct
        let big_d = masked_big_d
        let delta = masked_delta
        let retry_budget = budget
      end)
  in
  let module T = Timed_sim.Timed_engine.Make (M) in
  let proposals = Sync_sim.Engine.distinct_proposals n in
  let abstract = abstract_decisions ~n ~proposals in
  (* Online uniform-consensus guard, bridged from the timed event stream:
     every decision is checked for validity/agreement the moment it lands. *)
  let guard =
    Obs.Online_invariants.create ~check_termination:false ~n ~t:(n - 2)
      ~proposals ()
  in
  let ginst = Obs.Online_invariants.instrument guard in
  let bridge =
    Obs.Instrument.of_fn (function
      | Timed_sim.Timed_engine.Chose { at; pid; value } ->
        Obs.Instrument.emit ginst
          (Obs.Event.Decided { round = M.round_of_time at; pid; value })
      | _ -> ())
  in
  let res =
    T.run
      (Timed_sim.Timed_engine.config ~latency:masked_latency ~faults ~seed
         ~instrument:bridge ~n ~t:(n - 2) ~proposals ())
  in
  let decided =
    List.map
      (fun (pid, v, at) -> (Pid.to_int pid, v, M.round_of_time at))
      (Timed_sim.Timed_engine.decisions res)
  in
  let verdict =
    match res.Timed_sim.Timed_engine.violations with
    | v :: _ ->
      (* Aborted: acceptable only if nothing decided wrongly before the
         abort landed. *)
      if List.for_all (fun d -> List.mem d abstract) decided then Detected v
      else Wrong "decision diverged before the violation was detected"
    | [] ->
      if decided = abstract then Masked
      else Wrong "completed run diverged from the abstract engine"
  in
  (verdict, Net.Fault_plan.faults_injected faults)
