(** The algorithm registry behind shrinking and replay.

    A repro artifact names its algorithm as a string; this module maps the
    name back to a runnable engine instantiation plus the per-run round
    bound its specification promises.  The deliberately broken
    {!Core.Rwwc_variants} ablations are first-class citizens — they are
    what the shrinker most often shrinks. *)

open Model
open Sync_sim

type t = {
  name : string;
  model : Model_kind.t;
  broken : bool;  (** an ablation expected to violate some property *)
  run : n:int -> t:int -> Schedule.t -> Run_result.t;
      (** one run on the canonical distinct-proposals workload *)
  bound : t:int -> Run_result.t -> int;
      (** the round bound the algorithm promises for this run
          ([f_actual + 1] for the rwwc family, [t + 1] for flood,
          [min (t+1) (f_actual+2)] for early stopping) *)
}

val all : t list
(** [rwwc], its three broken ablations ([data-decide], [ascending-commit],
    [piggyback-commit]), [flood] and [early-stopping]. *)

val names : string list

val find : string -> (t, string) result

val checks : t -> t:int -> Run_result.t -> Spec.Properties.check list
(** Uniform consensus with the algorithm's own round bound. *)

val violation : t -> n:int -> t:int -> Schedule.t -> Spec.Properties.check option
(** Run the schedule; the first failing check, if any. *)

val first_violation :
  t -> n:int -> t:int -> max_f:int -> max_round:int ->
  (Schedule.t * Spec.Properties.check) option
(** The first schedule (in {!Adversary.Enumerate.schedules} order) on which
    some uniform-consensus check fails — the shrinker's canonical entry
    point for broken variants. *)
