open Net.Fault_plan

let action_weight = function
  | Deliver -> 0
  | Lose -> 1
  | Copies ls -> 1 + List.length ls

let weight actions =
  Array.fold_left (fun acc a -> acc + action_weight a) 0 actions

let reductions actions =
  let len = Array.length actions in
  let replace i a' =
    let copy = Array.copy actions in
    copy.(i) <- a';
    copy
  in
  Seq.concat_map
    (fun i ->
      match actions.(i) with
      | Deliver -> Seq.empty
      | Lose -> Seq.return (replace i Deliver)
      | Copies [ _ ] -> Seq.return (replace i Deliver)
      | Copies (hd :: _ :: _) -> Seq.return (replace i (Copies [ hd ]))
      | Copies [] ->
        (* [] copies is a loss in disguise; normalize it the same way. *)
        Seq.return (replace i Deliver))
    (Seq.init len Fun.id)

let trim actions =
  let len = ref (Array.length actions) in
  while !len > 0 && actions.(!len - 1) = Deliver do
    decr len
  done;
  Array.sub actions 0 !len
