(** Single-step reductions over recorded fault scripts.

    The chaos counterpart of {!Adversary.Enumerate.reductions}: a failing
    stochastic run is first re-expressed as a {!Net.Fault_plan.scripted}
    action array (via {!Net.Fault_plan.recording}), then shrunk
    action-by-action toward the all-[Deliver] script.  Positional replay
    makes this sound without any rng: each candidate script is a complete
    description of the network's behaviour, re-evaluated from scratch. *)

val weight : Net.Fault_plan.action array -> int
(** Well-founded measure: [Deliver] weighs 0, [Lose] 1, [Copies ls]
    [1 + length ls].  Every element of {!reductions} is strictly
    lighter. *)

val reductions :
  Net.Fault_plan.action array -> Net.Fault_plan.action array Seq.t
(** For each position in ascending order: heal a [Lose] into [Deliver];
    drop a duplicated [Copies] to its first copy; turn a single altered
    copy into a faithful [Deliver].  Empty iff the script is
    all-[Deliver]. *)

val trim : Net.Fault_plan.action array -> Net.Fault_plan.action array
(** Drop trailing [Deliver]s — behaviour-preserving, since a scripted plan
    delivers faithfully past the end of its script.  Cosmetic
    normalization for reports and artifacts, not a reduction step. *)
