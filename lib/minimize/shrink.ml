type 'a outcome = {
  original : 'a;
  minimal : 'a;
  steps : int;
  candidates : int;
}

let run ~reductions ~still_fails x0 =
  if not (still_fails x0) then
    invalid_arg "Minimize.Shrink.run: the input does not fail the property";
  let candidates = ref 0 in
  let try_reduction x =
    incr candidates;
    still_fails x
  in
  (* Greedy first-improvement descent: take the first reduction that still
     fails and restart from it.  [reductions] strictly decreases a
     well-founded measure, so the descent terminates; the final pass that
     finds no failing reduction doubles as the 1-minimality certificate. *)
  let rec descend x steps =
    match Seq.find try_reduction (reductions x) with
    | Some x' -> descend x' (steps + 1)
    | None -> (x, steps)
  in
  let minimal, steps = descend x0 0 in
  { original = x0; minimal; steps; candidates = !candidates }
