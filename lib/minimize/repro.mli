(** Replayable counterexample artifacts.

    A shrunk counterexample is only useful if it survives the session that
    found it: this module serializes one — schedule or fault script, plus
    the system parameters and the shrink certificate — as a single JSON
    document ({!Obs.Json}, no external dependency), and replays a loaded
    artifact from scratch, re-deriving the violation rather than trusting
    the file.  [bin shrink --repro FILE] writes, reloads and replays in
    one breath; the CI fuzz smoke uploads the artifact of any failure it
    finds. *)

open Model

type case =
  | Consensus of { algo : string; schedule : Schedule.t; property : string }
      (** [algo] (an {!Algo.t} name) violates the named uniform-consensus
          check on [schedule] *)
  | Cross_engine of { schedule : Schedule.t }
      (** the engines of {!Oracle.check_schedule} disagree on [schedule] *)
  | Chaos of {
      budget : int;
      engine_seed : int64;
      actions : Net.Fault_plan.action array;
    }
      (** the masked transport under the scripted fault plan decides
          wrongly ({!Oracle.check_masked} returns [Wrong]) *)

type t = {
  n : int;
  t : int;
  case : case;
  steps : int;  (** accepted shrink reductions *)
  candidates : int;  (** property evaluations spent shrinking *)
  one_minimal : bool;
      (** every single-step reduction of the artifact passes (the
          shrinker's fixpoint certificate) *)
}

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val schedule_to_json : Schedule.t -> Obs.Json.t
val schedule_of_json : Obs.Json.t -> (Schedule.t, string) result
(** The schedule wire encoding, exposed for other artifact formats that
    embed schedules (distributed-sweep shard results and checkpoints). *)

val save : file:string -> t -> unit
(** Durable and atomic ({!Obs.Json.save_atomic}): tmp write, fsync,
    rename. *)

type load_error = {
  file : string;
  offset : int option;  (** byte offset, for JSON syntax errors *)
  reason : string;
}
(** Why an artifact failed to load: unreadable file, truncated or
    syntactically corrupt JSON (with the offending byte offset), or a
    well-formed document that doesn't decode to a repro (bad version,
    missing field, out-of-range pid…). *)

val load_error_to_string : load_error -> string
val pp_load_error : Format.formatter -> load_error -> unit

val load : string -> (t, load_error) result
(** Never raises, whatever the file holds — truncated saves, byte-flipped
    JSON, deeply nested garbage and schema-valid-but-meaningless documents
    all come back as a structured [Error]. *)

val replay : t -> (string list, string) result
(** Re-run the artifact's case from scratch.  [Ok details] means the
    violation reproduced ([details] are the failing check details /
    disagreement diffs — always non-empty); [Error why] means it did not,
    or the artifact references an unknown algorithm or property. *)

val pp : Format.formatter -> t -> unit
