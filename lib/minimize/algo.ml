open Model
open Sync_sim

type t = {
  name : string;
  model : Model_kind.t;
  broken : bool;
  run : n:int -> t:int -> Schedule.t -> Run_result.t;
  bound : t:int -> Run_result.t -> int;
}

let f_actual res = Pid.Set.cardinal (Run_result.all_crashes res)

let make (module A : Algorithm_intf.S) ~name ~broken ~bound =
  let module R = Engine.Make (A) in
  {
    name;
    model = A.model;
    broken;
    run =
      (fun ~n ~t schedule ->
        R.run
          (Engine.config ~schedule ~n ~t
             ~proposals:(Engine.distinct_proposals n) ()));
    bound;
  }

(* Natively flat algorithms skip the list adapter entirely — the registry
   entries behave identically either way (pinned by the differential suite),
   this is purely the faster engine path. *)
let make_flat (module A : Algorithm_intf.FLAT) ~name ~broken ~bound =
  let module R = Engine.Make_flat (A) in
  {
    name;
    model = A.model;
    broken;
    run =
      (fun ~n ~t schedule ->
        R.run
          (Engine.config ~schedule ~n ~t
             ~proposals:(Engine.distinct_proposals n) ()));
    bound;
  }

let rwwc_bound ~t:_ res = f_actual res + 1

let all =
  [
    make_flat (module Core.Rwwc) ~name:"rwwc" ~broken:false ~bound:rwwc_bound;
    make
      (module Core.Rwwc_variants.Data_decide)
      ~name:"data-decide" ~broken:true ~bound:rwwc_bound;
    make
      (module Core.Rwwc_variants.Ascending_commit)
      ~name:"ascending-commit" ~broken:true ~bound:rwwc_bound;
    make
      (module Core.Rwwc_variants.Piggyback_commit)
      ~name:"piggyback-commit" ~broken:true ~bound:rwwc_bound;
    make_flat (module Baselines.Flood_set) ~name:"flood" ~broken:false
      ~bound:(fun ~t _ -> t + 1);
    make (module Baselines.Early_stopping) ~name:"early-stopping" ~broken:false
      ~bound:(fun ~t res -> min (t + 1) (f_actual res + 2));
  ]

let names = List.map (fun a -> a.name) all

let find name =
  match List.find_opt (fun a -> a.name = name) all with
  | Some a -> Ok a
  | None ->
    Error
      (Printf.sprintf "unknown algorithm %S (expected one of: %s)" name
         (String.concat ", " names))

let checks algo ~t res =
  Spec.Properties.uniform_consensus ~bound:(algo.bound ~t res) res

let violation algo ~n ~t schedule =
  let res = algo.run ~n ~t schedule in
  List.find_opt
    (fun c -> not c.Spec.Properties.ok)
    (checks algo ~t res)

let first_violation algo ~n ~t ~max_f ~max_round =
  Seq.find_map
    (fun schedule ->
      Option.map
        (fun check -> (schedule, check))
        (violation algo ~n ~t schedule))
    (Adversary.Enumerate.schedules ~model:algo.model ~n ~max_f ~max_round)
