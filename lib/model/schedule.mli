(** Crash schedules: the adversary's full plan for a run.

    A schedule maps each faulty process to the single crash event it suffers
    (crashes are permanent, so one event per process).  [f], the paper's
    "actual number of crashes in the run", is the schedule's cardinality. *)

type t
(** An immutable crash schedule. *)

val empty : t
(** The failure-free schedule ([f = 0]). *)

val of_list : (Pid.t * Crash.event) list -> t
(** Build a schedule.  Raises [Invalid_argument] if a process appears
    twice. *)

val add : Pid.t -> Crash.event -> t -> t
(** Add one crash.  Raises [Invalid_argument] if the process already has
    one. *)

val find : t -> Pid.t -> Crash.event option
(** The crash event of a process, if it is faulty. *)

val iter : (Pid.t -> Crash.event -> unit) -> t -> unit
(** Apply to every crash, in increasing pid order.  Allocation-free — the
    engine uses it to flatten the crash plan into its scratch arrays. *)

val f : t -> int
(** Number of faulty processes. *)

val faulty : t -> Pid.Set.t
(** The set of processes that crash at some point in the run. *)

val bindings : t -> (Pid.t * Crash.event) list
(** All crashes, in increasing pid order. *)

val max_crash_round : t -> int
(** Largest round in which a crash occurs; [0] for the empty schedule. *)

val crashes_per_round : t -> (int * int) list
(** [(round, count)] pairs in increasing round order — used to check the
    "at most one crash per round" restriction of the Theorem 3 adversary. *)

val at_most_one_crash_per_round : t -> bool

val validate :
  model:Model_kind.t -> n:int -> t:int -> t -> (unit, string) result
(** Check that the schedule is executable in the given system: every faulty
    pid is within [1..n], [f <= t], and each crash point is allowed by the
    model kind. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
