type t = Crash.event Pid.Map.t

let empty = Pid.Map.empty

let add pid event sched =
  if Pid.Map.mem pid sched then
    invalid_arg
      (Printf.sprintf "Schedule.add: %s already crashes" (Pid.to_string pid));
  Pid.Map.add pid event sched

let of_list l = List.fold_left (fun acc (pid, ev) -> add pid ev acc) empty l

let find sched pid = Pid.Map.find_opt pid sched
let iter f sched = Pid.Map.iter f sched

let f sched = Pid.Map.cardinal sched

let faulty sched =
  Pid.Map.fold (fun pid _ acc -> Pid.Set.add pid acc) sched Pid.Set.empty

let bindings = Pid.Map.bindings

let max_crash_round sched =
  Pid.Map.fold (fun _ (ev : Crash.event) acc -> max ev.round acc) sched 0

let crashes_per_round sched =
  let module Im = Map.Make (Int) in
  let counts =
    Pid.Map.fold
      (fun _ (ev : Crash.event) acc ->
        Im.update ev.round
          (function None -> Some 1 | Some c -> Some (c + 1))
          acc)
      sched Im.empty
  in
  Im.bindings counts

let at_most_one_crash_per_round sched =
  List.for_all (fun (_, c) -> c <= 1) (crashes_per_round sched)

let validate ~model ~n ~t sched =
  let ( let* ) = Result.bind in
  let* () =
    if f sched <= t then Ok ()
    else Error (Printf.sprintf "schedule has %d crashes but t = %d" (f sched) t)
  in
  Pid.Map.fold
    (fun pid ev acc ->
      let* () = acc in
      let* () =
        if Pid.to_int pid <= n then Ok ()
        else Error (Printf.sprintf "%s outside 1..%d" (Pid.to_string pid) n)
      in
      Crash.valid_for model ev)
    sched (Ok ())

let pp ppf sched =
  if Pid.Map.is_empty sched then Format.pp_print_string ppf "no-crash"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
      (fun ppf (pid, ev) -> Format.fprintf ppf "%a%a" Pid.pp pid Crash.pp ev)
      ppf (bindings sched)

let to_string sched = Format.asprintf "%a" pp sched
