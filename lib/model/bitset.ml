(* Growable bitset over small non-negative ints, stored as an [int array]
   word bitmap.  One word carries [Sys.int_size] bits (63 on 64-bit), so a
   set over values [0 .. n-1] costs [ceil (n / 63)] words — the flat
   representation the engine uses for receive-sets and FloodSet uses for
   value-sets, where the cons-list/AVL representations it replaces cost a
   heap block per element. *)

let bits_per_word = Sys.int_size

type t = { mutable words : int array }

let create ~capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((capacity + bits_per_word - 1) / bits_per_word) 0 }

let word_count t = Array.length t.words

let grow t nwords =
  let words = Array.make (max nwords (2 * word_count t)) 0 in
  Array.blit t.words 0 words 0 (word_count t);
  t.words <- words

let add t i =
  if i < 0 then invalid_arg "Bitset.add: negative element";
  let w = i / bits_per_word in
  if w >= word_count t then grow t (w + 1);
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let mem t i =
  if i < 0 then false
  else
    let w = i / bits_per_word in
    w < word_count t && t.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

let clear t = Array.fill t.words 0 (word_count t) 0

let is_empty t =
  let rec go k = k >= word_count t || (t.words.(k) = 0 && go (k + 1)) in
  go 0

(* Kernighan loop: one iteration per set bit — our sets are sparse (at most
   one bit per process or proposal value). *)
let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t =
  let c = ref 0 in
  for k = 0 to word_count t - 1 do
    c := !c + popcount t.words.(k)
  done;
  !c

(* dst := dst ∪ src, growing dst as needed; src is untouched. *)
let union_into ~src ~dst =
  let sw = word_count src in
  if sw > word_count dst then grow dst sw;
  for k = 0 to sw - 1 do
    dst.words.(k) <- dst.words.(k) lor src.words.(k)
  done

let copy t = { words = Array.copy t.words }

let iter f t =
  for k = 0 to word_count t - 1 do
    let w = ref t.words.(k) in
    while !w <> 0 do
      let bit = !w land (- !w) in
      f ((k * bits_per_word) + popcount (bit - 1));
      w := !w land (!w - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f !acc i) t;
  !acc

let elements t = List.rev (fold (fun acc i -> i :: acc) t [])

let min_elt_opt t =
  let rec go k =
    if k >= word_count t then None
    else if t.words.(k) = 0 then go (k + 1)
    else
      let bit = t.words.(k) land -t.words.(k) in
      Some ((k * bits_per_word) + popcount (bit - 1))
  in
  go 0

let of_list is =
  let t = create ~capacity:0 in
  List.iter (add t) is;
  t

(* Equality ignores trailing zero words: capacity is an implementation
   detail, membership is the value. *)
let equal a b =
  let wa = word_count a and wb = word_count b in
  let rec go k =
    if k >= wa && k >= wb then true
    else
      let xa = if k < wa then a.words.(k) else 0
      and xb = if k < wb then b.words.(k) else 0 in
      xa = xb && go (k + 1)
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements t)))
