(** Growable bitset over small non-negative ints.

    A flat [int array] word bitmap: [Sys.int_size] bits per word, auto-grown
    on {!add}.  This is the value-set representation behind the flat engine
    core — membership is one AND, union is a word sweep, and a set allocates
    nothing once at capacity, where the [Set.Make]/cons-list representations
    it replaces cost a heap block (and a rebalance) per element. *)

type t

val bits_per_word : int
(** Bits carried per word: [Sys.int_size] (63 on 64-bit platforms). *)

val create : capacity:int -> t
(** Empty set able to hold [0 .. capacity - 1] without growing.  Raises
    [Invalid_argument] on negative capacity. *)

val add : t -> int -> unit
(** Grows as needed.  Raises [Invalid_argument] on a negative element. *)

val mem : t -> int -> bool
(** [false] for negatives and for elements beyond the allocated words. *)

val clear : t -> unit
(** Remove every element, keeping the allocated words. *)

val is_empty : t -> bool

val cardinal : t -> int
(** Population count over the words. *)

val union_into : src:t -> dst:t -> unit
(** [dst := dst ∪ src] in place, growing [dst] as needed; [src] is
    untouched. *)

val copy : t -> t
(** Independent snapshot — the message payload of a flat FloodSet. *)

val iter : (int -> unit) -> t -> unit
(** Elements in increasing order. *)

val fold : ('a -> int -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Sorted, distinct. *)

val min_elt_opt : t -> int option

val of_list : int list -> t

val equal : t -> t -> bool
(** Membership equality; allocated capacity is ignored. *)

val pp : Format.formatter -> t -> unit
