open Model

type msg = Data of int

type state = { me : int; n : int; est : int }

let name = "rwwc"
let model = Model_kind.Extended
let decision_mode = `Halt

let msg_bits ~value_bits (Data _) = value_bits

let pp_msg ppf (Data v) = Format.fprintf ppf "%d" v

let init ~n ~t:_ ~me ~proposal = { me = Pid.to_int me; n; est = proposal }

(* Line 4: the coordinator sends its estimate to every higher-id process. *)
let data_sends state ~round =
  if round = state.me then
    List.map
      (fun dest -> (dest, Data state.est))
      (Pid.range ~lo:(state.me + 1) ~hi:state.n)
  else []

(* Line 5: commit messages from p_n down to p_{r+1}. *)
let sync_sends state ~round =
  if round = state.me then Pid.range_desc ~hi:state.n ~lo:(state.me + 1)
  else []

let compute state ~round ~data ~syncs =
  if round = state.me then
    (* Line 6: the coordinator survived its send phase and decides. *)
    (state, Some state.est)
  else begin
    (* Line 9: i < r cannot happen — p_i either decided or crashed when it
       coordinated round i. *)
    assert (state.me > round);
    let coord = Pid.of_int round in
    let est =
      match List.assoc_opt coord data with
      | Some (Data v) -> v (* line 7 *)
      | None -> state.est
    in
    let committed = List.exists (Pid.equal coord) syncs in
    ({ state with est }, if committed then Some est (* line 8 *) else None)
  end

let estimate state = state.est

let fingerprint state = Printf.sprintf "rwwc:%d:%d" state.me state.est

(* --- Zero-copy flat-engine path ------------------------------------------- *)

(* Same algorithm, emitted directly into the engine's arena buffers.  The
   state stays immutable — the bivalency explorer and the stepper branch
   runs from shared states, so [receive] returns a fresh record only when
   the estimate actually changes (the steady state allocates nothing). *)

(* Process [me] speaks only in round [me]; any other round with an empty
   inbox leaves the state untouched and cannot decide (both branches of
   [receive] below need a message or a sync to act). *)
let quiescence = Sync_sim.Algorithm_intf.Coordinator_rounds

let send state ~round e =
  if round = state.me then begin
    let m = Data state.est in
    for d = state.me + 1 to state.n do
      Sync_sim.Emitter.data e (Pid.of_int d) m
    done;
    for d = state.n downto state.me + 1 do
      Sync_sim.Emitter.sync e (Pid.of_int d)
    done
  end

let receive state ~round view =
  if round = state.me then begin
    Sync_sim.Round_view.decide view state.est;
    state
  end
  else begin
    assert (state.me > round);
    let est =
      let count = Sync_sim.Round_view.data_count view in
      let rec find k =
        if k >= count then state.est
        else if Pid.to_int (Sync_sim.Round_view.data_sender view k) = round then
          let (Data v) = Sync_sim.Round_view.data_payload view k in
          v
        else find (k + 1)
      in
      find 0
    in
    if Sync_sim.Round_view.has_sync view (Pid.of_int round) then
      Sync_sim.Round_view.decide view est;
    if est = state.est then state else { state with est }
  end
