(** The paper's uniform consensus algorithm (Figure 1).

    Rotating coordinator over the extended synchronous model.  In round [r]
    the coordinator [p_r] sends its estimate as a data message to
    [p_{r+1} .. p_n], then a commit (synchronization) message in the order
    [p_n, p_{n-1}, .., p_{r+1}], then decides.  A non-coordinator adopts the
    coordinator's estimate if the data message arrives and decides if the
    commit message arrives too.

    Guarantees (Theorems 1 and 2): uniform consensus, decision by round
    [f + 1]; one round when [p_1] survives round 1; bit complexity between
    [(n-1)(|v|+1)] and [(f+1)(n-1-f/2)|v| + (f+1)(n-f)]. *)

type msg = Data of int

include Sync_sim.Algorithm_intf.FLAT with type msg := msg
(** [model] is [Extended].  Implements the zero-copy flat-engine API
    natively; the state is immutable (the lower-bound explorers branch runs
    from shared states), with [receive] returning the same state whenever
    the estimate is unchanged. *)

val estimate : state -> int
(** Current estimate (for tests and the bivalency explorer). *)

val fingerprint : state -> string
(** Canonical short encoding of the state, used by the lower-bound
    machinery to memoize configurations. *)
