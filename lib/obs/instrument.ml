type 'e t = Null | Sink of ('e -> unit)

let null = Null
let of_fn f = Sink f
let is_null = function Null -> true | Sink _ -> false
let emit t e = match t with Null -> () | Sink f -> f e

let compose a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Sink f, Sink g ->
    Sink
      (fun e ->
        f e;
        g e)

let compose_all ts = List.fold_left compose Null ts

let filter p = function
  | Null -> Null
  | Sink f -> Sink (fun e -> if p e then f e)

module type S = sig
  type event

  val on_event : event -> unit
end

let of_module (type e) (module M : S with type event = e) = Sink M.on_event
