(** The workhorse sink: counters, per-round histograms and decision-latency
    statistics, exportable as {!Diag.Table.t} and JSON.

    Attach one [Metrics.t] per run ({!instrument}), or reuse it across runs
    of a sweep to aggregate (counters and histograms keep accumulating;
    [runs] counts the [Run_end] events seen). *)

type round_stats = {
  round : int;
  data_msgs : int;
  data_bits : int;
  sync_msgs : int;
  crashes : int;
  decisions : int;
}
(** One per-round histogram bucket (rounds are 1-based). *)

type t

val create : unit -> t

val instrument : t -> Event.t Instrument.t

val counters : t -> Counters.t
(** Wire accounting derived from the event stream; equals the engine's
    semantic counters for a single observed run. *)

val rounds : t -> int
(** Rounds executed: max over observed [Run_end] events (0 before any). *)

val runs : t -> int
(** Number of [Run_end] events observed. *)

val decided : t -> int
(** Number of [Decided] events. *)

val crashes : t -> int
(** Number of [Crashed] events. *)

val decision_rounds : t -> int list
(** The round of every decision, in decision order. *)

val decision_latency : t -> Diag.Stats.summary option
(** Summary over {!decision_rounds}; [None] when nobody decided. *)

val per_round : t -> round_stats list
(** Histogram buckets for rounds [1 .. rounds], in order.  Rounds beyond the
    last event-bearing round are zero-filled up to {!rounds}. *)

val summary_table : t -> Diag.Table.t
(** A metric/value table of the headline numbers. *)

val per_round_table : t -> Diag.Table.t
(** The per-round histogram as a table. *)

val to_json : t -> Json.t
(** Everything above as one JSON object. *)
