type t = {
  mutable data_msgs : int;
  mutable data_bits : int;
  mutable sync_msgs : int;
  mutable sync_bits : int;
}

let create () = { data_msgs = 0; data_bits = 0; sync_msgs = 0; sync_bits = 0 }

let reset c =
  c.data_msgs <- 0;
  c.data_bits <- 0;
  c.sync_msgs <- 0;
  c.sync_bits <- 0

let record_data c ~bits =
  c.data_msgs <- c.data_msgs + 1;
  c.data_bits <- c.data_bits + bits

let record_sync c =
  c.sync_msgs <- c.sync_msgs + 1;
  c.sync_bits <- c.sync_bits + 1

let total_msgs c = c.data_msgs + c.sync_msgs
let total_bits c = c.data_bits + c.sync_bits

let instrument c =
  Instrument.of_fn (function
    | Event.Data_sent { bits; _ } -> record_data c ~bits
    | Event.Sync_sent _ -> record_sync c
    | Event.Round_begin _ | Event.Crashed _ | Event.Decided _
    | Event.Round_limit _ | Event.Run_end _ ->
      ())

type timed = { mutable msgs_sent : int; mutable events_processed : int }

let create_timed () = { msgs_sent = 0; events_processed = 0 }
