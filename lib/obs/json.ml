type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest of the two printf precisions that parses back to the same
       bits — repro artifacts are re-read by [of_string] and must replay
       with exactly the value that failed. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_to_string f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing.  A recursive-descent reader over the input string, sized   *)
(* for the artifacts this repo itself emits (repro files, metrics      *)
(* snapshots) — full RFC 8259 value grammar, [Parse_error] surfaced as *)
(* [Error] with a byte offset.                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

(* Containers deeper than this are rejected instead of letting the
   recursive-descent reader hit [Stack_overflow] on adversarial input
   ("[[[[…"); real artifacts nest a handful of levels. *)
let max_depth = 512

let of_string_located s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> error (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let lexeme = String.sub s !pos 4 in
    if
      not
        (String.for_all
           (function
             | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
           lexeme)
    then error (Printf.sprintf "invalid \\u escape \\u%s" lexeme);
    let v = int_of_string ("0x" ^ lexeme) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf cp =
    (* Encode a Unicode scalar value as UTF-8. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then error "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let cp = hex4 () in
          let cp =
            if cp >= 0xd800 && cp <= 0xdbff then begin
              (* High surrogate: consume the low half. *)
              if
                !pos + 2 <= n
                && s.[!pos] = '\\'
                && s.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo < 0xdc00 || lo > 0xdfff then
                  error "invalid low surrogate";
                0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00))
              end
              else error "unpaired high surrogate"
            end
            else if cp >= 0xdc00 && cp <= 0xdfff then
              error "unpaired low surrogate"
            else cp
          in
          add_utf8 buf cp
        | _ -> error (Printf.sprintf "invalid escape '\\%c'" e));
        go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then error "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let lexeme = String.sub s start (!pos - start) in
    let as_float () =
      let f = float_of_string lexeme in
      (* 1e999 etc.: [float_of_string] silently overflows to infinity, and
         a non-finite value would not survive a round trip (the emitter
         writes [null]) — reject it at the gate. *)
      if Float.is_finite f then Float f
      else error "non-finite number literal"
    in
    if !is_float then as_float ()
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> as_float ()
  in
  let rec parse_value depth =
    if depth > max_depth then
      error (Printf.sprintf "nesting deeper than %d" max_depth);
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> error "expected ',' or ']'"
        in
        elems []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields (kv :: acc)
          | Some '}' -> advance (); Obj (List.rev (kv :: acc))
          | _ -> error "expected ',' or '}'"
        in
        fields []
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (at, msg)
  | exception Failure msg -> Error (!pos, msg)

let of_string s =
  match of_string_located s with
  | Ok v -> Ok v
  | Error (at, msg) -> Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* Field access helpers for decoding artifacts. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* Durable atomic file writes — shared by every artifact saver. *)

let save_atomic ~file v =
  let tmp = file ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let doc = to_string v ^ "\n" in
      let len = String.length doc in
      let rec write_all off =
        if off < len then
          match Unix.write_substring fd doc off (len - off) with
          | n -> write_all (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      in
      write_all 0;
      (* The fsync before the rename is what makes the rename atomic on a
         crash: without it the new name can point at not-yet-written
         blocks.  [load]ers treat any truncated leftover as corrupt. *)
      Unix.fsync fd);
  Sys.rename tmp file;
  (* Best-effort directory sync so the rename itself is durable. *)
  match Unix.openfile (Filename.dirname file) [ Unix.O_RDONLY ] 0 with
  | dirfd ->
    (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
    (try Unix.close dirfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()
