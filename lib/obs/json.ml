type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_to_string f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)
