(** Online (per-event) uniform-consensus checking.

    Streams the engine's events through the Section 3.1 safety properties
    and fails fast — the run aborts on the {e first} violating event, with
    the violating round in hand, instead of a post-hoc verdict over the
    finished run.  Attaching this sink turns every simulation, bench and
    sweep into a correctness probe at near-zero cost.

    Checked online:
    - {b validity} — every decided value was proposed;
    - {b uniform agreement} — all decisions (crashed-later deciders
      included) carry one value;
    - {b single decision} — no process decides twice, none decides after
      crashing;
    - {b crash budget} — at most [t] processes crash;
    - {b round bound} — no decision after round [bound], when given;
    - {b termination} (at [Run_end], optional) — every process decided or
      crashed. *)

exception Violation of string
(** Raised by the sink on the first violating event. *)

type t

val create :
  ?check_termination:bool ->
  ?bound:int ->
  n:int ->
  t:int ->
  proposals:int array ->
  unit ->
  t
(** [check_termination] defaults to [true]; disable it for runs whose round
    limit is deliberately too tight to finish. *)

val instrument : t -> Event.t Instrument.t

val events_seen : t -> int
(** How many events this checker has consumed (for overhead reporting). *)
