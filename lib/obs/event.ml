open Model

type t =
  | Round_begin of { round : int }
  | Data_sent of {
      round : int;
      from : Pid.t;
      dest : Pid.t;
      bits : int;
      payload : string Lazy.t;
    }
  | Sync_sent of { round : int; from : Pid.t; dest : Pid.t }
  | Crashed of { round : int; pid : Pid.t; point : Crash.point }
  | Decided of { round : int; pid : Pid.t; value : int }
  | Round_limit of { round : int; max_rounds : int; undecided : Pid.t list }
  | Run_end of { rounds : int }

let round = function
  | Round_begin { round }
  | Data_sent { round; _ }
  | Sync_sent { round; _ }
  | Crashed { round; _ }
  | Decided { round; _ }
  | Round_limit { round; _ } ->
    round
  | Run_end { rounds } -> rounds

let pp ppf = function
  | Round_begin { round } -> Format.fprintf ppf "round %d begins" round
  | Data_sent { from; dest; bits; payload; _ } ->
    Format.fprintf ppf "%a -> %a : DATA(%s) [%d bits]" Pid.pp from Pid.pp dest
      (Lazy.force payload) bits
  | Sync_sent { from; dest; _ } ->
    Format.fprintf ppf "%a -> %a : COMMIT" Pid.pp from Pid.pp dest
  | Crashed { pid; point; _ } ->
    Format.fprintf ppf "%a crashes (%a)" Pid.pp pid Crash.pp_point point
  | Decided { pid; value; _ } ->
    Format.fprintf ppf "%a decides %d" Pid.pp pid value
  | Round_limit { round; max_rounds; undecided } ->
    Format.fprintf ppf
      "round limit: run truncated at round %d (max_rounds %d) with %a undecided"
      round max_rounds
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Pid.pp)
      undecided
  | Run_end { rounds } -> Format.fprintf ppf "run ends after %d rounds" rounds
