(** Minimal JSON emitter for structured metric export.

    The repository deliberately carries no JSON dependency; this covers the
    small subset the observer layer needs (objects, arrays, scalars) with
    RFC 8259 string escaping.  Output is compact (no insignificant
    whitespace) and deterministic: object fields render in the order
    given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats render as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse one RFC 8259 value (with optional surrounding whitespace).
    Numbers without a fraction or exponent that fit in [int] decode as
    [Int], everything else as [Float]; [\uXXXX] escapes (including
    surrogate pairs) decode to UTF-8.  [to_string] output round-trips:
    [of_string (to_string v) = Ok v] for values without non-finite floats
    (those emit as [null]).  Errors carry a byte offset.

    Hardened against adversarial input: containers nesting deeper than 512
    levels and number literals that overflow to infinity are rejected as
    parse errors — never [Stack_overflow], never a non-finite [Float]. *)

val of_string_located : string -> (t, int * string) result
(** [of_string] with the error split into (byte offset, reason), for
    callers that report structured locations (e.g. repro-artifact
    loaders). *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key], if any;
    [None] on non-objects.  Decoder convenience for artifact readers. *)

val save_atomic : file:string -> t -> unit
(** Durable atomic save — the shared write path of every on-disk JSON
    artifact (repro files, distributed-sweep checkpoints): the document
    plus a trailing newline is written to [file ^ ".tmp"], {e fsynced},
    renamed over [file], and the containing directory is fsynced too
    (best-effort).  A crash at any point leaves either the old complete
    file or the new complete file — never a truncated hybrid — and a
    rename that survives a power cut keeps its contents. *)
