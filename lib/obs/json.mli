(** Minimal JSON emitter for structured metric export.

    The repository deliberately carries no JSON dependency; this covers the
    small subset the observer layer needs (objects, arrays, scalars) with
    RFC 8259 string escaping.  Output is compact (no insignificant
    whitespace) and deterministic: object fields render in the order
    given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats render as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val pp : Format.formatter -> t -> unit
