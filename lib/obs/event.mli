(** The synchronous engine's observable event vocabulary.

    One run emits a single chronological stream: [Round_begin r] opens round
    [r]; [Data_sent] / [Sync_sent] record messages actually put on the wire
    (a planned send suppressed by a crash emits nothing); [Crashed] and
    [Decided] record per-process state transitions; a single [Run_end]
    closes the stream.  Sinks ({!Instrument}) consume this stream online.

    [Data_sent.payload] is lazy: rendering a message is only paid by sinks
    that force it (e.g. the trace sink), never by counting sinks. *)

open Model

type t =
  | Round_begin of { round : int }
  | Data_sent of {
      round : int;
      from : Pid.t;
      dest : Pid.t;
      bits : int;  (** wire cost per Theorem 2's accounting *)
      payload : string Lazy.t;  (** rendered message; forced on demand *)
    }
  | Sync_sent of { round : int; from : Pid.t; dest : Pid.t }
      (** A control (synchronization) message: always one bit. *)
  | Crashed of { round : int; pid : Pid.t; point : Crash.point }
  | Decided of { round : int; pid : Pid.t; value : int }
  | Round_limit of { round : int; max_rounds : int; undecided : Pid.t list }
      (** The run hit its [max_rounds] horizon with processes still
          undecided: a structured truncation diagnosis ([round] reached,
          who is left), emitted just before [Run_end] instead of a silent
          cut. *)
  | Run_end of { rounds : int }
      (** Last event of every observed run; [rounds] is the number of rounds
          executed. *)

val round : t -> int
(** The round an event belongs to ([rounds] for [Run_end]). *)

val pp : Format.formatter -> t -> unit
