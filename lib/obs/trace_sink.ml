type 'e t = { mutable rev_events : 'e list; mutable length : int }

let create () = { rev_events = []; length = 0 }

let instrument t =
  Instrument.of_fn (fun e ->
      t.rev_events <- e :: t.rev_events;
      t.length <- t.length + 1)

let events t = List.rev t.rev_events
let length t = t.length

let clear t =
  t.rev_events <- [];
  t.length <- 0
