type round_stats = {
  round : int;
  data_msgs : int;
  data_bits : int;
  sync_msgs : int;
  crashes : int;
  decisions : int;
}

(* Growable per-round buckets, stored round-major (index = round - 1). *)
type bucket = {
  mutable b_data_msgs : int;
  mutable b_data_bits : int;
  mutable b_sync_msgs : int;
  mutable b_crashes : int;
  mutable b_decisions : int;
}

type t = {
  wire : Counters.t;
  mutable buckets : bucket array;
  mutable max_round : int;  (* highest round with an event so far *)
  mutable rounds : int;  (* max Run_end rounds seen *)
  mutable runs : int;
  mutable decided : int;
  mutable crashed : int;
  mutable rev_decision_rounds : int list;
}

let fresh_bucket () =
  {
    b_data_msgs = 0;
    b_data_bits = 0;
    b_sync_msgs = 0;
    b_crashes = 0;
    b_decisions = 0;
  }

let create () =
  {
    wire = Counters.create ();
    buckets = Array.init 8 (fun _ -> fresh_bucket ());
    max_round = 0;
    rounds = 0;
    runs = 0;
    decided = 0;
    crashed = 0;
    rev_decision_rounds = [];
  }

let bucket t round =
  if round > Array.length t.buckets then begin
    let grown =
      Array.init
        (max (2 * Array.length t.buckets) round)
        (fun i ->
          if i < Array.length t.buckets then t.buckets.(i)
          else fresh_bucket ())
    in
    t.buckets <- grown
  end;
  if round > t.max_round then t.max_round <- round;
  t.buckets.(round - 1)

let instrument t =
  Instrument.of_fn (function
    | Event.Round_begin { round } -> ignore (bucket t round)
    | Event.Data_sent { round; bits; _ } ->
      Counters.record_data t.wire ~bits;
      let b = bucket t round in
      b.b_data_msgs <- b.b_data_msgs + 1;
      b.b_data_bits <- b.b_data_bits + bits
    | Event.Sync_sent { round; _ } ->
      Counters.record_sync t.wire;
      let b = bucket t round in
      b.b_sync_msgs <- b.b_sync_msgs + 1
    | Event.Crashed { round; _ } ->
      t.crashed <- t.crashed + 1;
      let b = bucket t round in
      b.b_crashes <- b.b_crashes + 1
    | Event.Decided { round; _ } ->
      t.decided <- t.decided + 1;
      t.rev_decision_rounds <- round :: t.rev_decision_rounds;
      let b = bucket t round in
      b.b_decisions <- b.b_decisions + 1
    | Event.Round_limit _ -> ()
    | Event.Run_end { rounds } ->
      t.runs <- t.runs + 1;
      if rounds > t.rounds then t.rounds <- rounds)

let counters t = t.wire
let rounds t = max t.rounds t.max_round
let runs t = t.runs
let decided t = t.decided
let crashes t = t.crashed
let decision_rounds t = List.rev t.rev_decision_rounds

let decision_latency t =
  match decision_rounds t with
  | [] -> None
  | rs -> Some (Diag.Stats.summarize_ints rs)

let per_round t =
  List.init (rounds t) (fun i ->
      let b =
        if i < Array.length t.buckets then t.buckets.(i) else fresh_bucket ()
      in
      {
        round = i + 1;
        data_msgs = b.b_data_msgs;
        data_bits = b.b_data_bits;
        sync_msgs = b.b_sync_msgs;
        crashes = b.b_crashes;
        decisions = b.b_decisions;
      })

let summary_table t =
  let tbl =
    Diag.Table.create ~title:"Run metrics" ~header:[ "metric"; "value" ] ()
  in
  let add k v = Diag.Table.add_row tbl [ k; v ] in
  add "rounds" (Diag.Table.fmt_int (rounds t));
  if t.runs > 1 then add "runs" (Diag.Table.fmt_int t.runs);
  add "data msgs" (Diag.Table.fmt_int t.wire.Counters.data_msgs);
  add "data bits" (Diag.Table.fmt_int t.wire.Counters.data_bits);
  add "sync msgs" (Diag.Table.fmt_int t.wire.Counters.sync_msgs);
  add "sync bits" (Diag.Table.fmt_int t.wire.Counters.sync_bits);
  add "total msgs" (Diag.Table.fmt_int (Counters.total_msgs t.wire));
  add "total bits" (Diag.Table.fmt_int (Counters.total_bits t.wire));
  add "decisions" (Diag.Table.fmt_int t.decided);
  add "crashes" (Diag.Table.fmt_int t.crashed);
  (match decision_latency t with
  | None -> ()
  | Some s ->
    add "decision round (mean)" (Diag.Table.fmt_float ~decimals:2 s.Diag.Stats.mean);
    add "decision round (max)" (Diag.Table.fmt_float ~decimals:0 s.Diag.Stats.max));
  tbl

let per_round_table t =
  let tbl =
    Diag.Table.create ~title:"Per-round profile"
      ~header:
        [ "round"; "data msgs"; "data bits"; "sync msgs"; "crashes"; "decisions" ]
      ()
  in
  List.iter
    (fun r ->
      Diag.Table.add_row tbl
        [
          Diag.Table.fmt_int r.round;
          Diag.Table.fmt_int r.data_msgs;
          Diag.Table.fmt_int r.data_bits;
          Diag.Table.fmt_int r.sync_msgs;
          Diag.Table.fmt_int r.crashes;
          Diag.Table.fmt_int r.decisions;
        ])
    (per_round t);
  tbl

let to_json t =
  let latency =
    match decision_latency t with
    | None -> Json.Null
    | Some s ->
      Json.Obj
        [
          ("count", Json.Int s.Diag.Stats.count);
          ("mean", Json.Float s.Diag.Stats.mean);
          ("min", Json.Float s.Diag.Stats.min);
          ("max", Json.Float s.Diag.Stats.max);
          ("p50", Json.Float s.Diag.Stats.p50);
          ("p90", Json.Float s.Diag.Stats.p90);
          ("p99", Json.Float s.Diag.Stats.p99);
        ]
  in
  Json.Obj
    [
      ("rounds", Json.Int (rounds t));
      ("runs", Json.Int t.runs);
      ("data_msgs", Json.Int t.wire.Counters.data_msgs);
      ("data_bits", Json.Int t.wire.Counters.data_bits);
      ("sync_msgs", Json.Int t.wire.Counters.sync_msgs);
      ("sync_bits", Json.Int t.wire.Counters.sync_bits);
      ("total_msgs", Json.Int (Counters.total_msgs t.wire));
      ("total_bits", Json.Int (Counters.total_bits t.wire));
      ("decisions", Json.Int t.decided);
      ("crashes", Json.Int t.crashed);
      ("decision_latency", latency);
      ( "per_round",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("round", Json.Int r.round);
                   ("data_msgs", Json.Int r.data_msgs);
                   ("data_bits", Json.Int r.data_bits);
                   ("sync_msgs", Json.Int r.sync_msgs);
                   ("crashes", Json.Int r.crashes);
                   ("decisions", Json.Int r.decisions);
                 ])
             (per_round t)) );
    ]
