(** Composable event sinks — the engine-facing half of the observer layer.

    An instrument is an opaque consumer of a (polymorphic) event stream.
    Engines emit through exactly one instrument; observers are combined
    {e outside} the engine with {!compose} / {!filter}, so adding a new
    observable never means editing an engine core.

    The {!null} instrument is recognizable in O(1) ({!is_null}); engines use
    that to skip event construction entirely, making the un-observed hot
    path allocation-free.

    Sink contract: events of one run arrive chronologically, from a single
    domain, with a final [Run_end]-style terminator where the vocabulary has
    one.  A sink must not assume it is the only observer (compose is fan-out
    in composition order) and should only raise to abort the run on a
    detected violation (see {!Online_invariants}). *)

type 'e t
(** A sink of events of type ['e]. *)

val null : 'e t
(** Discards everything; the engine's default.  Composing with [null] is the
    identity. *)

val of_fn : ('e -> unit) -> 'e t
(** [of_fn f] feeds every event to [f]. *)

val is_null : 'e t -> bool
(** [true] iff the instrument is (equivalent to) {!null} — built from [null]
    itself or from compositions/filters of it. *)

val emit : 'e t -> 'e -> unit
(** Feed one event.  Constant-time no-op on {!null}. *)

val compose : 'e t -> 'e t -> 'e t
(** [compose a b] feeds every event to [a] first, then [b].  [null] is a
    unit: the composition collapses, preserving {!is_null}. *)

val compose_all : 'e t list -> 'e t
(** Left-to-right {!compose} of a whole list. *)

val filter : ('e -> bool) -> 'e t -> 'e t
(** [filter p s] feeds [s] only the events satisfying [p].  Filtering
    {!null} is still {!null}. *)

(** The module flavour of a sink, for observers that are naturally stateful
    modules. *)
module type S = sig
  type event

  val on_event : event -> unit
end

val of_module : (module S with type event = 'e) -> 'e t
