(** Wire-cost accumulators shared by the engines and the metrics sink.

    The four counters are the run's {e semantic} bit accounting (Theorem 2):
    they are part of every {!Sync_sim.Run_result.t} whether or not any
    observer is attached, so engines update a [t] directly (plain field
    mutation, no allocation) and the {!Metrics} sink derives the identical
    numbers from the event stream — the tests assert both agree. *)

type t = {
  mutable data_msgs : int;
  mutable data_bits : int;
  mutable sync_msgs : int;
  mutable sync_bits : int;
}

val create : unit -> t
(** All zeros. *)

val reset : t -> unit
(** Zero all four counters in place — lets the engine's reusable runner
    keep one accumulator across runs instead of allocating per run. *)

val record_data : t -> bits:int -> unit
(** One data message of [bits] bits on the wire. *)

val record_sync : t -> unit
(** One control message; always one bit (Theorem 2). *)

val total_msgs : t -> int

val total_bits : t -> int

val instrument : t -> Event.t Instrument.t
(** A sink that accumulates the same four counters from an event stream
    ([Data_sent] / [Sync_sent]; everything else is ignored). *)

(** Accumulator for the continuous-time engine. *)
type timed = { mutable msgs_sent : int; mutable events_processed : int }

val create_timed : unit -> timed
