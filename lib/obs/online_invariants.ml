open Model

exception Violation of string

type pid_state = Alive | Has_decided of int | Has_crashed

type t = {
  n : int;
  budget : int;
  proposals : int array;
  bound : int option;
  check_termination : bool;
  states : pid_state array;  (* index = pid - 1; crash after deciding keeps
                                [Has_decided] (uniform agreement still holds
                                the decision against the process) *)
  mutable first_decision : (Pid.t * int) option;
  mutable crashed_count : int;
  mutable events_seen : int;
}

let create ?(check_termination = true) ?bound ~n ~t ~proposals () =
  if Array.length proposals <> n then
    invalid_arg "Online_invariants.create: proposals length must be n";
  {
    n;
    budget = t;
    proposals;
    bound;
    check_termination;
    states = Array.make n Alive;
    first_decision = None;
    crashed_count = 0;
    events_seen = 0;
  }

let violation fmt = Format.kasprintf (fun msg -> raise (Violation msg)) fmt

let on_decided t ~round ~pid ~value =
  let i = Pid.to_int pid - 1 in
  (match t.states.(i) with
  | Alive -> ()
  | Has_decided v ->
    violation "%a decides twice (%d at round %d after %d)" Pid.pp pid value
      round v
  | Has_crashed ->
    violation "%a decides %d at round %d after crashing" Pid.pp pid value round);
  if not (Array.exists (Int.equal value) t.proposals) then
    violation "validity: %a decided %d at round %d, a value nobody proposed"
      Pid.pp pid value round;
  (match t.first_decision with
  | None -> t.first_decision <- Some (pid, value)
  | Some (first_pid, first_value) ->
    if value <> first_value then
      violation
        "uniform agreement: %a decided %d at round %d but %a had decided %d"
        Pid.pp pid value round Pid.pp first_pid first_value);
  (match t.bound with
  | Some bound when round > bound ->
    violation "round bound: %a decided at round %d > bound %d" Pid.pp pid
      round bound
  | Some _ | None -> ());
  t.states.(i) <- Has_decided value

let on_crashed t ~round ~pid =
  let i = Pid.to_int pid - 1 in
  (match t.states.(i) with
  | Has_crashed -> violation "%a crashes twice (round %d)" Pid.pp pid round
  | Alive | Has_decided _ -> ());
  t.crashed_count <- t.crashed_count + 1;
  if t.crashed_count > t.budget then
    violation "crash budget: %d crashes exceed t=%d (round %d)"
      t.crashed_count t.budget round;
  (match t.states.(i) with
  | Has_decided v -> t.states.(i) <- Has_decided v (* decision stands *)
  | Alive | Has_crashed -> t.states.(i) <- Has_crashed)

let on_run_end t ~rounds =
  if t.check_termination then
    Array.iteri
      (fun i st ->
        match st with
        | Alive ->
          violation "termination: %a undecided after %d rounds" Pid.pp
            (Pid.of_int (i + 1)) rounds
        | Has_decided _ | Has_crashed -> ())
      t.states

let instrument t =
  Instrument.of_fn (fun ev ->
      t.events_seen <- t.events_seen + 1;
      match ev with
      | Event.Decided { round; pid; value } -> on_decided t ~round ~pid ~value
      | Event.Crashed { round; pid; _ } -> on_crashed t ~round ~pid
      | Event.Run_end { rounds } -> on_run_end t ~rounds
      | Event.Round_begin _ | Event.Data_sent _ | Event.Sync_sent _
      | Event.Round_limit _ -> ())

let events_seen t = t.events_seen
