(** A sink that records the event stream verbatim.

    Polymorphic in the event vocabulary, so it serves both the round-based
    and the continuous-time engines.  This is how [record_trace] is
    implemented: the engines compose a trace sink with the user's
    instrument and read the chronological list back at the end of the
    run. *)

type 'e t

val create : unit -> 'e t

val instrument : 'e t -> 'e Instrument.t

val events : 'e t -> 'e list
(** Everything recorded so far, in arrival (chronological) order. *)

val length : 'e t -> int

val clear : 'e t -> unit
