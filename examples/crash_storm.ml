(* Crash storm: hammer the Figure 1 algorithm with thousands of random
   crash schedules and summarize how early stopping behaves — decision
   rounds track f, not t.

   Every run carries an Obs.Online_invariants sink, so safety is checked
   event-by-event as the run unfolds; the post-hoc Spec.Properties pass
   re-checks the same run from its Run_result, and the table reports both.

     dune exec examples/crash_storm.exe *)

open Model
open Sync_sim

module Runner = Engine.Make (Core.Rwwc)

let () =
  let n = 12 and t = 10 in
  let reps = 2000 in
  let rng = Prng.Rng.of_int 2006 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "rwwc under %d random schedules per f (n = %d, t = %d)" reps n t)
      ~header:
        [ "f"; "bound f+1"; "mean rounds"; "p90"; "max"; "online"; "post-hoc" ]
      ()
  in
  for f = 0 to 6 do
    let rounds = ref [] and online = ref 0 and post_hoc = ref 0 in
    for _ = 1 to reps do
      let schedule =
        Adversary.Strategies.random ~rng ~model:Model_kind.Extended ~n ~f
          ~max_round:(t + 1)
      in
      let proposals = Harness.Workloads.distinct n in
      let guard = Obs.Online_invariants.create ~n ~t ~proposals () in
      match
        Runner.run
          (Engine.config
             ~instrument:(Obs.Online_invariants.instrument guard)
             ~schedule ~n ~t ~proposals ())
      with
      | exception Obs.Online_invariants.Violation _ -> incr online
      | res -> (
          let f_actual = Pid.Set.cardinal (Run_result.crashed res) in
          let checks =
            Spec.Properties.uniform_consensus ~bound:(f_actual + 1) res
          in
          if not (Spec.Properties.all_ok checks) then incr post_hoc;
          match Run_result.max_decision_round res with
          | Some r -> rounds := r :: !rounds
          | None -> ())
    done;
    let s = Diag.Stats.summarize_ints !rounds in
    Diag.Table.add_row table
      [
        Diag.Table.fmt_int f;
        Diag.Table.fmt_int (f + 1);
        Diag.Table.fmt_float s.Diag.Stats.mean;
        Diag.Table.fmt_float ~decimals:0 s.Diag.Stats.p90;
        Diag.Table.fmt_float ~decimals:0 s.Diag.Stats.max;
        Diag.Table.fmt_int !online;
        Diag.Table.fmt_int !post_hoc;
      ]
  done;
  print_string (Diag.Table.render table);
  print_endline
    "\nEven with t = 10, runs with few crashes decide in 1-2 rounds: the\n\
     algorithm pays for failures that happen, not failures that could."
