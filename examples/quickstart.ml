(* Quickstart: run the paper's Figure 1 algorithm once, watch it decide.

   A system of 6 processes proposes distinct values; the first coordinator
   crashes while sending its estimate, so its value survives only through
   adoption — exactly the scenario the commit message exists for.

   Observability is composed, not built in: a trace sink and a metrics sink
   are plugged into the engine's instrument from the outside.

     dune exec examples/quickstart.exe *)

open Model
open Sync_sim

module Runner = Engine.Make (Core.Rwwc)

let () =
  let n = 6 and t = 4 in
  (* p1 dies mid-broadcast: only p2 and p5 receive its estimate, and no
     commit follows. *)
  let schedule =
    Schedule.of_list
      [
        ( Pid.of_int 1,
          Crash.make ~round:1 (Crash.During_data (Pid.set_of_ints [ 2; 5 ])) );
      ]
  in
  let trace = Obs.Trace_sink.create () in
  let metrics = Obs.Metrics.create () in
  let cfg =
    Engine.config
      ~instrument:
        (Obs.Instrument.compose
           (Obs.Trace_sink.instrument trace)
           (Obs.Metrics.instrument metrics))
      ~schedule ~n ~t
      ~proposals:[| 100; 2; 3; 4; 5; 6 |] ()
  in
  let result = Runner.run cfg in
  Format.printf "--- trace (from the trace sink) ---@.%a@.@." Trace.pp
    (List.filter_map Trace.of_obs (Obs.Trace_sink.events trace));
  Format.printf "--- outcome ---@.%a@." Run_result.pp result;
  print_string (Diag.Table.render (Obs.Metrics.summary_table metrics));
  (* The library never asks you to trust it: check the consensus properties
     explicitly. *)
  let f = Pid.Set.cardinal (Run_result.crashed result) in
  let checks = Spec.Properties.uniform_consensus ~bound:(f + 1) result in
  List.iter (fun c -> Format.printf "%a@." Spec.Properties.pp_check c) checks;
  Format.printf
    "@.p1 crashed, yet its value 100 wins: p2 adopted it and imposed it as \
     the round-2 coordinator, within f+1 = %d rounds.@."
    (f + 1)
