examples/model_showdown.mli:
