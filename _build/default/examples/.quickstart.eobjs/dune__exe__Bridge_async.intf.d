examples/bridge_async.mli:
