examples/quickstart.ml: Core Crash Engine Format List Model Pid Run_result Schedule Spec Sync_sim Trace
