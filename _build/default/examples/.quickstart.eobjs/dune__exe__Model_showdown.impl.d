examples/model_showdown.ml: Adversary Baselines Core Diag Engine Fastfd Harness List Model Option Pid Printf Run_result Sync_sim Timed_sim Timing
