examples/crash_storm.ml: Adversary Core Diag Engine Harness Model Model_kind Pid Printf Prng Run_result Spec Sync_sim
