examples/quickstart.mli:
