examples/snapshot_demo.ml: Array List Printf Snapshot
