examples/crash_storm.mli:
