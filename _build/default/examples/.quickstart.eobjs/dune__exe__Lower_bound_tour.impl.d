examples/lower_bound_tour.ml: Core Format Harness List Lower_bound Model Printf Schedule String Sync_sim
