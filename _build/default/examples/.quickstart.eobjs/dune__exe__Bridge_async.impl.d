examples/bridge_async.ml: Adversary Async_cons Core Format List Model Pid Prng Sync_sim Timed_sim
