(* A guided tour of the f+1 lower bound (Theorems 3-5), in three acts.

   Act 1 — tightness: the adversary really can push the Figure 1 algorithm
   to round f+1.
   Act 2 — impossibility: any attempt to always decide by round f is
   destroyed by an exhaustively-found counterexample schedule.
   Act 3 — the proof's engine: bivalent configurations, and how long the
   adversary can keep the outcome undetermined.

     dune exec examples/lower_bound_tour.exe *)

open Model

module Ex = Lower_bound.Explorer.Make (Core.Rwwc)
module Biv = Lower_bound.Bivalency.Make (Core.Rwwc)

let () =
  let n = 5 in
  let proposals = Harness.Workloads.distinct n in

  print_endline "=== Act 1: the bound is reached ===";
  for f = 0 to n - 2 do
    let cert = Ex.tightness ~n ~f ~proposals in
    Printf.printf
      "  f = %d silent coordinator crashes: last decision at round %d (f+1 = %d)\n"
      f cert.Lower_bound.Explorer.max_decision_round (f + 1)
  done;

  print_endline "\n=== Act 2: the bound cannot be beaten ===";
  Printf.printf
    "  0 rounds: no communication, so with distinct proposals every process\n\
    \  can only output its own value — impossible (%b).\n"
    (Ex.zero_round_impossible ~n ~proposals);
  for decide_by = 1 to n - 2 do
    match Ex.truncation_violation ~n ~decide_by ~proposals with
    | Some w ->
      Printf.printf
        "  decide-by-%d: uniform agreement dies on schedule [%s]\n\
        \    decided values: %s   (found after %d schedules)\n"
        decide_by
        (Schedule.to_string w.Lower_bound.Explorer.schedule)
        (String.concat ", "
           (List.map string_of_int
              (Sync_sim.Run_result.decided_values w.Lower_bound.Explorer.result)))
        w.Lower_bound.Explorer.schedules_searched
    | None -> Printf.printf "  decide-by-%d: no witness (unexpected!)\n" decide_by
  done;

  print_endline "\n=== Act 3: why — bivalence ===";
  List.iter
    (fun (n, t) ->
      let r =
        Biv.analyze ~n ~t ~proposals:(Harness.Workloads.binary ~n ~zeros:1) ()
      in
      Format.printf
        "  n=%d t=%d: initial %a; the adversary keeps the outcome open \
         through round %d (%d configurations)@."
        n t Lower_bound.Bivalency.pp_valence
        r.Lower_bound.Bivalency.initial_valence
        r.Lower_bound.Bivalency.max_bivalent_depth
        r.Lower_bound.Bivalency.configs_explored)
    [ (3, 1); (4, 2); (5, 3) ];
  print_endline
    "\nAs long as a configuration is bivalent nobody can have decided — and\n\
     the adversary sustains bivalence one round per crash it can still\n\
     spend.  That is the 'limit' half of the paper's title."
