(* The Section 4 bridge, live: MR99 (asynchronous consensus with a diamond-S
   failure detector) next to the Figure 1 algorithm, on the same scenario.

     dune exec examples/bridge_async.exe *)

open Model

module Mr99_runner = Timed_sim.Timed_engine.Make (Async_cons.Mr99)
module Rwwc_runner = Sync_sim.Engine.Make (Core.Rwwc)

let () =
  let n = 5 and t = 2 in
  let proposals = [| 7; 20; 30; 40; 50 |] in
  (* Same failure story in both worlds: the first coordinator dies before
     sending anything. *)
  let crashes =
    [ { Timed_sim.Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 0 } ]
  in
  let crash_times =
    List.map (fun (c : Timed_sim.Timed_engine.crash_spec) -> (c.victim, c.at)) crashes
  in
  let rng = Prng.Rng.of_int 99 in
  let mr =
    Mr99_runner.run
      (Timed_sim.Timed_engine.config ~record_trace:true
         ~latency:(Timed_sim.Timed_engine.Exponential { mean = 1.0; cap = 8.0 })
         ~crashes
         ~fd_plan:
           (Async_cons.Fd_s.plan ~rng ~n ~crashes:crash_times
              ~trusted:(Pid.of_int 2) ~gst:30.0 ~detect_lag:2.0 ~noise_events:1)
         ~deadline:100000.0 ~n ~t ~proposals ())
  in
  Format.printf "--- MR99 (asynchronous, diamond-S) ---@.";
  List.iter
    (fun (pid, v, at) ->
      Format.printf "%a decides %d at time %.1f@." Pid.pp pid v at)
    (Timed_sim.Timed_engine.decisions mr);
  Format.printf "messages: %d@.@." mr.Timed_sim.Timed_engine.msgs_sent;
  let sync =
    Rwwc_runner.run
      (Sync_sim.Engine.config
         ~schedule:
           (Adversary.Strategies.coordinator_killer ~n ~f:1
              ~style:Adversary.Strategies.Silent)
         ~n ~t ~proposals ())
  in
  Format.printf "--- rwwc (extended synchronous) ---@.";
  List.iter
    (fun (pid, v, r) -> Format.printf "%a decides %d at round %d@." Pid.pp pid v r)
    (Sync_sim.Run_result.decisions sync);
  Format.printf "messages: %d@.@." (Sync_sim.Run_result.total_msgs sync);
  Format.printf
    "Same skeleton, two settings: MR99's second all-to-all step (wait for \
     n-t aux values) is what the extended model's pipelined one-bit commit \
     replaces.@."
