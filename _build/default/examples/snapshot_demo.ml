(* Synchronization messages in fault-free computing: a Chandy-Lamport
   snapshot of a running token economy.  The marker — like Figure 1's
   commit — carries no data; its position in each FIFO channel is the
   information.

     dune exec examples/snapshot_demo.exe *)

let () =
  let cfg =
    Snapshot.Chandy_lamport.config ~n:6 ~initial_tokens:10 ~total_steps:600
      ~initiate_at:200 ~seed:20 ()
  in
  let r = Snapshot.Chandy_lamport.run cfg in
  print_endline "--- recorded snapshot ---";
  Array.iteri
    (fun i b -> Printf.printf "p%d balance: %d\n" (i + 1) b)
    r.Snapshot.Chandy_lamport.snapshot.Snapshot.Chandy_lamport.locals;
  List.iter
    (fun ((i, j), c) -> Printf.printf "in transit p%d -> p%d: %d token(s)\n" i j c)
    r.Snapshot.Chandy_lamport.snapshot.Snapshot.Chandy_lamport.channels;
  Printf.printf "\nrecorded total: %d (expected %d)\n"
    r.Snapshot.Chandy_lamport.recorded_total
    r.Snapshot.Chandy_lamport.expected_total;
  Printf.printf "conservation: %b, consistent cut: %b\n"
    r.Snapshot.Chandy_lamport.conservation_ok
    r.Snapshot.Chandy_lamport.consistent_cut;
  Printf.printf "transfers completed: %d, markers sent: %d\n"
    r.Snapshot.Chandy_lamport.transfers_completed
    r.Snapshot.Chandy_lamport.markers_sent;
  print_endline
    "\nThe computation never paused, yet the recorded cut is a state the\n\
     system could have been in: that is what a synchronization message buys."
