(* Model showdown: the same consensus job in four models, timed with the
   Section 2.2 cost model.

   - classic synchronous FloodSet        (t+1 rounds of D)
   - classic synchronous early stopping  (min(t+1, f+2) rounds of D)
   - extended synchronous rwwc           (f+1 rounds of D + delta)
   - fast-FD paced (timed simulation)    (measured; published bound D + f d)

     dune exec examples/model_showdown.exe *)

open Model
open Sync_sim

module Rwwc_runner = Engine.Make (Core.Rwwc)
module Flood_runner = Engine.Make (Baselines.Flood_set)
module Es_runner = Engine.Make (Baselines.Early_stopping)

let big_d = 100.0
let small_d = 1.0
let delta = 1.0

module Paced = Fastfd.Paced.Make (struct
  let d = small_d
  let big_d = big_d
end)

module Paced_runner = Timed_sim.Timed_engine.Make (Paced)

let paced_time ~n ~f =
  let crashes =
    List.init f (fun i ->
        {
          Timed_sim.Timed_engine.victim = Pid.of_int (i + 1);
          at = Paced.slot_time (i + 1);
          batch_prefix = 0;
        })
  in
  let crash_times =
    List.map
      (fun (c : Timed_sim.Timed_engine.crash_spec) -> (c.victim, c.at))
      crashes
  in
  let res =
    Paced_runner.run
      (Timed_sim.Timed_engine.config
         ~latency:(Timed_sim.Timed_engine.Fixed big_d)
         ~crashes
         ~fd_plan:(Fastfd.Device.plan ~n ~d:small_d ~crashes:crash_times ())
         ~n ~t:(n - 1) ~proposals:(Harness.Workloads.distinct n) ())
  in
  Option.get (Timed_sim.Timed_engine.max_decision_time res)

let () =
  let n = 10 and t = 8 in
  let cm = Timing.Cost_model.make ~d_round:big_d ~delta ~d_detect:small_d () in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Decision wall-clock by model (n = %d, t = %d, D = %.0f, delta = %.0f, d = %.0f)"
           n t big_d delta small_d)
      ~header:
        [ "f"; "floodset"; "early-stopping"; "rwwc extended"; "fast-FD paced"; "published D+fd" ]
      ()
  in
  for f = 0 to 5 do
    let schedule =
      Adversary.Strategies.coordinator_killer ~n ~f
        ~style:Adversary.Strategies.Silent
    in
    let proposals = Harness.Workloads.distinct n in
    let flood =
      Flood_runner.run (Engine.config ~schedule ~n ~t ~proposals ())
    and es = Es_runner.run (Engine.config ~schedule ~n ~t ~proposals ())
    and ext = Rwwc_runner.run (Engine.config ~schedule ~n ~t ~proposals ()) in
    let rounds res = Option.value (Run_result.max_decision_round res) ~default:0 in
    Diag.Table.add_row table
      [
        Diag.Table.fmt_int f;
        Diag.Table.fmt_float (Timing.Cost_model.classic_time cm ~rounds:(rounds flood));
        Diag.Table.fmt_float (Timing.Cost_model.classic_time cm ~rounds:(rounds es));
        Diag.Table.fmt_float (Timing.Cost_model.extended_time cm ~rounds:(rounds ext));
        Diag.Table.fmt_float (paced_time ~n ~f);
        Diag.Table.fmt_float (Fastfd.Device.published_decision_bound ~big_d ~d:small_d ~f);
      ]
  done;
  print_string (Diag.Table.render table);
  print_endline
    "\nFloodSet always pays t+1 rounds; early stopping pays f+2; the extended\n\
     model pays f+1 rounds of D+delta — ahead of both for every realistic f."
