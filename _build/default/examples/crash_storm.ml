(* Crash storm: hammer the Figure 1 algorithm with thousands of random
   crash schedules and summarize how early stopping behaves — decision
   rounds track f, not t.

     dune exec examples/crash_storm.exe *)

open Model
open Sync_sim

module Runner = Engine.Make (Core.Rwwc)

let () =
  let n = 12 and t = 10 in
  let reps = 2000 in
  let rng = Prng.Rng.of_int 2006 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "rwwc under %d random schedules per f (n = %d, t = %d)" reps n t)
      ~header:
        [ "f"; "bound f+1"; "mean rounds"; "p90"; "max"; "violations" ]
      ()
  in
  for f = 0 to 6 do
    let rounds = ref [] and violations = ref 0 in
    for _ = 1 to reps do
      let schedule =
        Adversary.Strategies.random ~rng ~model:Model_kind.Extended ~n ~f
          ~max_round:(t + 1)
      in
      let res =
        Runner.run
          (Engine.config ~schedule ~n ~t
             ~proposals:(Harness.Workloads.distinct n) ())
      in
      let f_actual = Pid.Set.cardinal (Run_result.crashed res) in
      let checks =
        Spec.Properties.uniform_consensus ~bound:(f_actual + 1) res
      in
      if not (Spec.Properties.all_ok checks) then incr violations;
      match Run_result.max_decision_round res with
      | Some r -> rounds := r :: !rounds
      | None -> ()
    done;
    let s = Diag.Stats.summarize_ints !rounds in
    Diag.Table.add_row table
      [
        Diag.Table.fmt_int f;
        Diag.Table.fmt_int (f + 1);
        Diag.Table.fmt_float s.Diag.Stats.mean;
        Diag.Table.fmt_float ~decimals:0 s.Diag.Stats.p90;
        Diag.Table.fmt_float ~decimals:0 s.Diag.Stats.max;
        Diag.Table.fmt_int !violations;
      ]
  done;
  print_string (Diag.Table.render table);
  print_endline
    "\nEven with t = 10, runs with few crashes decide in 1-2 rounds: the\n\
     algorithm pays for failures that happen, not failures that could."
