(** The fast failure detector device of Aguilera, Le Lann & Toueg (DISC'02),
    as a behavioural specification compiled into a suspicion plan for the
    timed engine.

    Spec (Section 1, related work): each process reads a local variable
    [suspect(p)] that is
    - {e safe}: it only ever contains crashed processes, and
    - {e live}: a process crashing at time [τ] is in every live process's
      suspect set by [τ + d],
    with [d << D].  The generator below produces the per-observer timeline
    of suspect-set updates implied by a crash schedule; the engine delivers
    them as [on_suspicion] events. *)

open Model

val plan :
  ?rng:Prng.Rng.t ->
  n:int ->
  d:float ->
  crashes:(Pid.t * float) list ->
  unit ->
  Timed_sim.Timed_engine.fd_update list
(** Suspicion timeline: observer [p] learns of the crash of [q] at
    [τ_q + delay] where [delay = d] (the latest the spec allows) or, when
    [rng] is given, uniform in [(0, d]] per (observer, victim) pair.
    Observers that crash themselves still receive updates until their own
    crash (the engine drops the rest).  Updates are cumulative. *)

val published_decision_bound : big_d:float -> d:float -> f:int -> float
(** The decision-time bound the DISC'02 paper reports for its consensus
    algorithm: [D + f·d].  Used as the analytic comparison column in
    EXP-FFD. *)

val safe : crashes:(Pid.t * float) list -> Timed_sim.Timed_engine.fd_update list -> bool
(** Check the safety property of a plan: every suspected process really has
    crashed, no later than the update's time. *)

val live :
  n:int ->
  d:float ->
  crashes:(Pid.t * float) list ->
  horizon:float ->
  Timed_sim.Timed_engine.fd_update list ->
  bool
(** Check liveness: for every crash at [τ <= horizon - d] and every observer
    alive at [τ + d], some update at time [<= τ + d] contains the victim. *)
