open Model
open Timed_sim

module Make (Params : sig
  val d : float
  val big_d : float
end) =
struct
  type msg =
    | Est of { slot : int; value : int }
    | Commit of { slot : int; value : int }

  type state = {
    me : int;
    n : int;
    est : int;
    est_slot : int;  (* slot of the coordinator the estimate came from *)
    suspects : Pid.Set.t;
  }

  let name = "fastfd-paced"

  let () =
    if Params.d <= 0.0 || Params.big_d <= 0.0 then
      invalid_arg "Paced: d and D must be positive"

  let slot_time i = float_of_int (i - 1) *. (Params.d +. Params.big_d)

  let worst_case_decision_time ~f = slot_time (f + 1) +. Params.big_d

  let pp_msg ppf = function
    | Est { slot; value } -> Format.fprintf ppf "est(%d,%d)" slot value
    | Commit { slot; value } -> Format.fprintf ppf "commit(%d,%d)" slot value

  (* The coordinator's batch: estimates to everyone (any order), then — only
     after all of them — ordered commits from p_n downwards, then its own
     decision.  The engine's batch-prefix crash semantics make "all data
     before any commit" and "commit prefix" hold exactly as in Figure 1. *)
  let coordinator_batch state =
    let others =
      List.filter (fun p -> Pid.to_int p <> state.me) (Pid.all ~n:state.n)
    in
    let ests =
      List.map
        (fun p ->
          Process_intf.Send (p, Est { slot = state.me; value = state.est }))
        others
    and commits =
      List.map
        (fun p ->
          Process_intf.Send (p, Commit { slot = state.me; value = state.est }))
        (List.rev others)
    in
    ests @ commits @ [ Process_intf.Decide state.est ]

  let init (ctx : Process_intf.ctx) ~me ~proposal =
    let state =
      {
        me = Pid.to_int me;
        n = ctx.n;
        est = proposal;
        est_slot = 0;
        suspects = Pid.Set.empty;
      }
    in
    if state.me = 1 then (state, coordinator_batch state)
    else
      ( state,
        [ Process_intf.Set_timer { at = slot_time state.me; tag = 0 } ] )

  let on_message state ~now:_ ~from:_ msg =
    match msg with
    | Est { slot; value } ->
      if slot > state.est_slot then
        ({ state with est = value; est_slot = slot }, [])
      else (state, [])
    | Commit { value; _ } -> (state, [ Process_intf.Decide value ])

  let on_timer state ~now:_ ~tag:_ =
    let smaller = Pid.range ~lo:1 ~hi:(state.me - 1) in
    if List.for_all (fun p -> Pid.Set.mem p state.suspects) smaller then
      (state, coordinator_batch state)
    else
      (* Some smaller process is alive past its slot: it completed its
         broadcast, so a COMMIT for its value is on its way to us. *)
      (state, [])

  let on_suspicion state ~now:_ ~suspects = ({ state with suspects }, [])
end
