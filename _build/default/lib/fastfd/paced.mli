(** Rotating-coordinator uniform consensus paced by a fast failure
    detector (the timed-model comparison point of EXP-FFD).

    Reconstruction note (see DESIGN.md §5): the DISC'02 algorithm's
    internals are not in the reproduced paper, which only uses its decision
    bound [D + f·d].  This implementation is a correct algorithm in {e our}
    timed model (message delay [<= D], fast FD with bound [d], ordered
    action batches): coordinator [p_i] owns the time slot
    [T_i = (i-1)(d + D)]; at [T_i], if it is undecided and suspects all
    smaller processes, it broadcasts its estimate to everyone and then — in
    a second, ordered step, exactly like Figure 1's commit — a COMMIT
    carrying the value; it then decides.  Everyone else decides on the
    first COMMIT received.

    Correctness sketch: slot spacing [d + D > D] means a completed estimate
    broadcast is adopted by every live process before the next slot opens,
    so once any COMMIT exists its value is locked; the fast FD guarantees
    that an undecided coordinator sees all smaller processes suspected at
    its slot (any unsuspected smaller process must have completed its slot,
    which contradicts being undecided past [T_j + D]).

    Decision time: at most [T_{f+1} + D = D + f(D + d)] — and exactly [D]
    when [p_1] is correct, matching the published bound's [f = 0] case.
    Our conservative network (in-flight messages can take the full [D]
    after a crash) is what turns the published per-failure cost [d] into
    [d + D]; EXP-FFD tabulates both. *)

module Make (Params : sig
  val d : float
  (** fast failure detector bound *)

  val big_d : float
  (** message delay bound D *)
end) : sig
  include Timed_sim.Process_intf.S

  val slot_time : int -> float
  (** [slot_time i] is [T_i = (i-1)(d + D)]. *)

  val worst_case_decision_time : f:int -> float
  (** [T_{f+1} + D = D + f(D + d)]. *)
end
