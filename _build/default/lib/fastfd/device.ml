open Model

let crash_time crashes pid =
  match List.assoc_opt pid crashes with Some t -> t | None -> infinity

let plan ?rng ~n ~d ~crashes () =
  if d <= 0.0 then invalid_arg "Device.plan: d <= 0";
  List.iter
    (fun (_, t) -> if t < 0.0 then invalid_arg "Device.plan: negative crash time")
    crashes;
  let updates = ref [] in
  List.iter
    (fun observer ->
      let own_crash = crash_time crashes observer in
      (* Detection delay per victim, then cumulative suspect sets in
         detection order. *)
      let detections =
        List.filter_map
          (fun (victim, tau) ->
            if Pid.equal victim observer then None
            else
              let delay =
                match rng with
                | None -> d
                | Some rng -> Float.max 1e-9 (Prng.Rng.float rng d)
              in
              Some (tau +. delay, victim))
          crashes
        |> List.sort compare
      in
      let suspects = ref Pid.Set.empty in
      List.iter
        (fun (at, victim) ->
          suspects := Pid.Set.add victim !suspects;
          if at <= own_crash then
            updates :=
              { Timed_sim.Timed_engine.observer; at; suspects = !suspects }
              :: !updates)
        detections)
    (Pid.all ~n);
  List.sort
    (fun (a : Timed_sim.Timed_engine.fd_update) (b : Timed_sim.Timed_engine.fd_update) ->
      compare a.at b.at)
    !updates

let published_decision_bound ~big_d ~d ~f = big_d +. (float_of_int f *. d)

let safe ~crashes plan =
  List.for_all
    (fun (u : Timed_sim.Timed_engine.fd_update) ->
      Pid.Set.for_all (fun q -> crash_time crashes q <= u.at) u.suspects)
    plan

let live ~n ~d ~crashes ~horizon plan =
  List.for_all
    (fun (victim, tau) ->
      tau +. d > horizon
      || List.for_all
           (fun observer ->
             Pid.equal observer victim
             || crash_time crashes observer < tau +. d
             || List.exists
                  (fun (u : Timed_sim.Timed_engine.fd_update) ->
                    Pid.equal u.observer observer
                    && u.at <= tau +. d
                    && Pid.Set.mem victim u.suspects)
                  plan)
           (Pid.all ~n))
    crashes
