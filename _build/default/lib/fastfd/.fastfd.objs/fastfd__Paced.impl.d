lib/fastfd/paced.ml: Format List Model Pid Process_intf Timed_sim
