lib/fastfd/paced.mli: Timed_sim
