lib/fastfd/device.ml: Float List Model Pid Prng Timed_sim
