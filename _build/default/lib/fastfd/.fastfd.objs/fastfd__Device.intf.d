lib/fastfd/device.mli: Model Pid Prng Timed_sim
