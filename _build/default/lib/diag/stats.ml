type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q outside [0,1]";
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let mean = function
  | [] -> invalid_arg "Stats.mean: empty sample"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let m = mean xs in
    let var =
      if n < 2 then 0.0
      else
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (n - 1)
    in
    {
      count = n;
      mean = m;
      stddev = sqrt var;
      min = a.(0);
      max = a.(n - 1);
      p50 = percentile a 0.5;
      p90 = percentile a 0.9;
      p99 = percentile a 0.99;
    }

let summarize_ints xs = summarize (List.map float_of_int xs)

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match xs with
  | [] -> [||]
  | _ ->
    let lo = List.fold_left Float.min infinity xs in
    let hi = List.fold_left Float.max neg_infinity xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    let bucket x =
      let b = int_of_float ((x -. lo) /. width) in
      if b >= bins then bins - 1 else if b < 0 then 0 else b
    in
    List.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
    Array.mapi
      (fun i c ->
        let blo = lo +. (float_of_int i *. width) in
        (blo, blo +. width, c))
      counts

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
