(** ASCII tables for experiment reports.

    Every experiment in the reproduction emits one or more tables; this
    module renders them uniformly for the terminal, EXPERIMENTS.md and the
    bench harness. *)

type align = Left | Right
(** Column alignment. *)

type t
(** A table under construction: a title, a header row and data rows. *)

val create : ?title:string -> header:string list -> unit -> t
(** [create ~title ~header ()] starts a table whose rows must all have
    [List.length header] cells. *)

val add_row : t -> string list -> unit
(** Append a row.  Raises [Invalid_argument] if the arity does not match the
    header. *)

val add_rows : t -> string list list -> unit
(** Append several rows. *)

val title : t -> string option
(** The table's title, if any. *)

val row_count : t -> int
(** Number of data rows added so far. *)

val cell : t -> row:int -> col:int -> string
(** [cell t ~row ~col] reads back a data cell (0-indexed); for tests. *)

val render : ?align:align list -> t -> string
(** Render with box-drawing rules.  [align] gives per-column alignment and
    defaults to left for the first column and right for the rest (the common
    shape of our tables: a key column then measurements). *)

val render_markdown : t -> string
(** Render as a GitHub-flavoured markdown table (used for EXPERIMENTS.md). *)

val render_csv : t -> string
(** Render as RFC-4180-ish CSV: cells containing commas, quotes or newlines
    are quoted, quotes doubled. *)

(** Cell formatting helpers used across experiments. *)

val fmt_int : int -> string
val fmt_float : ?decimals:int -> float -> string
val fmt_ratio : float -> float -> string
(** [fmt_ratio a b] renders [a /. b] as e.g. ["1.50x"]; ["inf"] when [b] is
    zero. *)

val fmt_bool : bool -> string
(** ["yes"] / ["no"]. *)
