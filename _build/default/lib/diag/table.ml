type align = Left | Right

type t = {
  title : string option;
  header : string list;
  arity : int;
  mutable rev_rows : string list list;
}

let create ?title ~header () =
  { title; header; arity = List.length header; rev_rows = [] }

let add_row t row =
  if List.length row <> t.arity then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" t.arity
         (List.length row));
  t.rev_rows <- row :: t.rev_rows

let add_rows t rows = List.iter (add_row t) rows

let title t = t.title

let rows t = List.rev t.rev_rows

let row_count t = List.length t.rev_rows

let cell t ~row ~col = List.nth (List.nth (rows t) row) col

let default_align arity = Left :: List.init (max 0 (arity - 1)) (fun _ -> Right)

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let widths t =
  let w = Array.of_list (List.map String.length t.header) in
  List.iter
    (List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)))
    (rows t);
  w

let render ?align t =
  let align =
    match align with
    | Some a when List.length a = t.arity -> a
    | Some _ -> invalid_arg "Table.render: align arity mismatch"
    | None -> default_align t.arity
  in
  let w = widths t in
  let buf = Buffer.create 256 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) ch);
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (List.nth align i) w.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some s ->
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  | None -> ());
  line '-';
  row t.header;
  line '=';
  List.iter row (rows t);
  line '-';
  Buffer.contents buf

let render_markdown t =
  let buf = Buffer.create 256 in
  (match t.title with
  | Some s -> Buffer.add_string buf (Printf.sprintf "**%s**\n\n" s)
  | None -> ());
  let row cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " cells);
    Buffer.add_string buf " |\n"
  in
  row t.header;
  row (List.map (fun _ -> "---") t.header);
  List.iter row (rows t);
  Buffer.contents buf

let csv_cell c =
  let needs_quoting =
    String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c
  in
  if needs_quoting then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let render_csv t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row t.header;
  List.iter row (rows t);
  Buffer.contents buf

let fmt_int = string_of_int

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_ratio a b =
  if b = 0.0 then "inf" else Printf.sprintf "%.2fx" (a /. b)

let fmt_bool b = if b then "yes" else "no"
