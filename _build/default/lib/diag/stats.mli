(** Summary statistics for experiment measurements. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** Descriptive summary of a sample. *)

val summarize : float list -> summary
(** [summarize xs] computes the summary of a non-empty sample.  Raises
    [Invalid_argument] on the empty list. *)

val summarize_ints : int list -> summary
(** [summarize_ints xs] is [summarize] over [float_of_int]. *)

val mean : float list -> float
(** Arithmetic mean of a non-empty sample. *)

val percentile : float array -> float -> float
(** [percentile sorted q] is the [q]-quantile ([0 <= q <= 1]) of an array
    already sorted in increasing order, with linear interpolation between
    adjacent ranks. *)

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] partitions the sample range into [bins] equal-width
    buckets and returns [(lo, hi, count)] per bucket.  The last bucket is
    right-closed. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render a summary on one line. *)
