lib/diag/stats.ml: Array Float Format List
