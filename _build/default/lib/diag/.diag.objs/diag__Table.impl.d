lib/diag/table.ml: Array Buffer List Printf String
