lib/diag/stats.mli: Format
