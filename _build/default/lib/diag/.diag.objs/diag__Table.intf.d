lib/diag/table.mli:
