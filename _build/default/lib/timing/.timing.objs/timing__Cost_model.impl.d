lib/timing/cost_model.ml: Float Option
