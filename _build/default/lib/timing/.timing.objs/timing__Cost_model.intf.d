lib/timing/cost_model.mli:
