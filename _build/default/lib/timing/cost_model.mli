(** The wall-clock cost model of Section 2.2.

    A classic round costs [d_round] (the paper's D: message transfer +
    processing bound).  An extended round costs [d_round + delta]: the
    pipelined second sending step adds [delta << D] because no waiting
    separates the two steps.  The fast-failure-detector comparison point
    [Aguilera, Le Lann & Toueg 02] decides in [D + f·d_detect]. *)

type t = {
  d_round : float;  (** D: duration of a classic round *)
  delta : float;  (** δ: extra cost of the pipelined control step *)
  d_detect : float;  (** d: fast failure detector latency bound *)
}

val make : ?delta:float -> ?d_detect:float -> d_round:float -> unit -> t
(** Defaults: [delta = d_round /. 100.], [d_detect = d_round /. 100.].
    All components must be positive; [delta] and [d_detect] must not exceed
    [d_round] (the model's premise is [δ << D], [d << D]). *)

val classic_time : t -> rounds:int -> float
(** [rounds × D]. *)

val extended_time : t -> rounds:int -> float
(** [rounds × (D + δ)]. *)

val fast_fd_time : t -> f:int -> float
(** The published decision bound [D + f·d] of the fast-FD algorithm. *)

val extended_beats_classic : t -> f:int -> bool
(** Section 2.2's comparison: does an (f+1)-round extended algorithm finish
    before an (f+2)-round classic one, i.e. [(f+1)(D+δ) < (f+2)D]? *)

val crossover_f : t -> int
(** Smallest [f] for which the extended algorithm {e stops} being faster,
    i.e. the least [f] with [f + 1 >= D/δ].  The paper's point is that this
    is far beyond realistic [f]. *)
