type t = { d_round : float; delta : float; d_detect : float }

let make ?delta ?d_detect ~d_round () =
  if d_round <= 0.0 then invalid_arg "Cost_model.make: D must be positive";
  let delta = Option.value delta ~default:(d_round /. 100.0) in
  let d_detect = Option.value d_detect ~default:(d_round /. 100.0) in
  if delta <= 0.0 || delta > d_round then
    invalid_arg "Cost_model.make: need 0 < delta <= D";
  if d_detect <= 0.0 || d_detect > d_round then
    invalid_arg "Cost_model.make: need 0 < d <= D";
  { d_round; delta; d_detect }

let classic_time t ~rounds = float_of_int rounds *. t.d_round

let extended_time t ~rounds = float_of_int rounds *. (t.d_round +. t.delta)

let fast_fd_time t ~f = t.d_round +. (float_of_int f *. t.d_detect)

let extended_beats_classic t ~f =
  extended_time t ~rounds:(f + 1) < classic_time t ~rounds:(f + 2)

let crossover_f t =
  (* least f with (f+1)(D+δ) >= (f+2)D, i.e. f+1 >= D/δ *)
  let ratio = t.d_round /. t.delta in
  max 0 (int_of_float (Float.ceil (ratio -. 1.0)))
