(** Trace-level invariants of the Figure 1 algorithm.

    Where {!Properties} checks the consensus contract on outcomes, this
    module checks the {e mechanism} on recorded traces — the statements the
    paper's proof leans on:

    - footnote 6's {e value locking}: once some coordinator's data step
      completes (its estimate reached every higher-id process), no other
      value ever travels or gets decided again;
    - line 4/5 discipline: in each round only the coordinator sends, its
      data messages all precede its commits, and the commit destinations
      form a prefix of the order [p_n, .., p_{r+1}];
    - line 8 discipline: a non-coordinator decides in round [r] only after
      receiving both the data and the commit message from [p_r] in that
      round.

    All functions require the run to have been recorded with
    [record_trace:true] and raise [Invalid_argument] on an empty trace. *)

open Sync_sim

val coordinator_only_sender : Run_result.t -> Properties.check
(** Every message of round [r] was sent by [p_r]. *)

val data_before_commit : Run_result.t -> Properties.check
(** Within each round, no data message is sent after a commit. *)

val commit_prefix_shape : Run_result.t -> Properties.check
(** Round-[r] commits go to a prefix of [p_n, p_{n-1}, .., p_{r+1}], in
    that order. *)

val value_locking : Run_result.t -> Properties.check
(** After the first round whose coordinator's data step completed, every
    later data payload and every decision carries that round's value. *)

val decision_needs_commit : Run_result.t -> Properties.check
(** Every non-coordinator decision at round [r] is covered by a round-[r]
    commit from [p_r] to the decider (and the coordinator's own decisions
    happen in its own round). *)

val all : Run_result.t -> Properties.check list
