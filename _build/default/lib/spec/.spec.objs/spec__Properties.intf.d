lib/spec/properties.mli: Format Run_result Sync_sim
