lib/spec/figure1_invariants.mli: Properties Run_result Sync_sim
