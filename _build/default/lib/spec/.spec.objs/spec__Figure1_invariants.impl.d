lib/spec/figure1_invariants.ml: Format List Model Pid Printf Properties Run_result Sync_sim Trace
