lib/spec/properties.ml: Array Format Int List Model Printf Run_result String Sync_sim
