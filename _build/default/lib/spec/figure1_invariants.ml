open Model
open Sync_sim

let passed name = { Properties.name; ok = true; detail = "" }
let failed name detail = { Properties.name; ok = false; detail }

let require_trace res =
  if res.Run_result.trace = [] then
    invalid_arg "Figure1_invariants: run was not recorded (record_trace)"

(* Events of the trace annotated with their round. *)
let rounds res =
  require_trace res;
  let acc = ref [] and current = ref [] and round = ref 0 in
  let flush () = if !round > 0 then acc := (!round, List.rev !current) :: !acc in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Round_begin r ->
        flush ();
        round := r;
        current := []
      | Trace.Data_sent _ | Trace.Sync_sent _ | Trace.Crashed _
      | Trace.Decided _ ->
        current := ev :: !current)
    res.Run_result.trace;
  flush ();
  List.rev !acc

let coordinator_only_sender res =
  let offenders =
    List.concat_map
      (fun (r, events) ->
        List.filter_map
          (function
            | Trace.Data_sent { from; _ } | Trace.Sync_sent { from; _ } ->
              if Pid.to_int from <> r then Some (r, from) else None
            | Trace.Round_begin _ | Trace.Crashed _ | Trace.Decided _ -> None)
          events)
      (rounds res)
  in
  match offenders with
  | [] -> passed "coordinator-only-sender"
  | (r, from) :: _ ->
    failed "coordinator-only-sender"
      (Format.asprintf "%a sent in round %d (coordinator is p%d)" Pid.pp from r r)

let data_before_commit res =
  let bad =
    List.exists
      (fun (_, events) ->
        let seen_commit = ref false in
        List.exists
          (function
            | Trace.Sync_sent _ ->
              seen_commit := true;
              false
            | Trace.Data_sent _ -> !seen_commit
            | Trace.Round_begin _ | Trace.Crashed _ | Trace.Decided _ -> false)
          events)
      (rounds res)
  in
  if bad then failed "data-before-commit" "a data message followed a commit"
  else passed "data-before-commit"

let commit_prefix_shape res =
  let n = res.Run_result.n in
  let check_round (r, events) =
    let commits =
      List.filter_map
        (function
          | Trace.Sync_sent { dest; _ } -> Some dest
          | Trace.Round_begin _ | Trace.Data_sent _ | Trace.Crashed _
          | Trace.Decided _ ->
            None)
        events
    in
    let expected = Pid.range_desc ~hi:n ~lo:(r + 1) in
    let rec is_prefix xs ys =
      match (xs, ys) with
      | [], _ -> true
      | x :: xs', y :: ys' -> Pid.equal x y && is_prefix xs' ys'
      | _ :: _, [] -> false
    in
    if is_prefix commits expected then None else Some r
  in
  match List.filter_map check_round (rounds res) with
  | [] -> passed "commit-prefix-shape"
  | r :: _ ->
    failed "commit-prefix-shape"
      (Printf.sprintf "round %d commits are not a prefix of p_n..p_%d" r (r + 1))

let value_locking res =
  let n = res.Run_result.n in
  (* First round whose coordinator delivered data to every higher process. *)
  let locked =
    List.find_map
      (fun (r, events) ->
        let data_dests, payloads =
          List.fold_left
            (fun (dests, payloads) ev ->
              match ev with
              | Trace.Data_sent { dest; payload; _ } ->
                (Pid.Set.add dest dests, payload :: payloads)
              | Trace.Round_begin _ | Trace.Sync_sent _ | Trace.Crashed _
              | Trace.Decided _ ->
                (dests, payloads))
            (Pid.Set.empty, []) events
        in
        let wanted = Pid.Set.of_list (Pid.range ~lo:(r + 1) ~hi:n) in
        if Pid.Set.subset wanted data_dests then
          match payloads with p :: _ -> Some (r, p) | [] -> None
        else None)
      (rounds res)
  in
  match locked with
  | None -> passed "value-locking"
  | Some (r0, v) ->
    let offenders =
      List.concat_map
        (fun (r, events) ->
          if r <= r0 then []
          else
            List.filter_map
              (function
                | Trace.Data_sent { payload; _ } when payload <> v ->
                  Some (Printf.sprintf "round %d carries %s" r payload)
                | _ -> None)
              events)
        (rounds res)
      @ List.filter_map
          (fun (pid, value, round) ->
            if string_of_int value <> v then
              Some
                (Format.asprintf "%a decided %d at round %d" Pid.pp pid value
                   round)
            else None)
          (Trace.decisions res.Run_result.trace)
    in
    (match offenders with
    | [] -> passed "value-locking"
    | o :: _ ->
      failed "value-locking"
        (Printf.sprintf "value %s locked at round %d but %s" v r0 o))

let decision_needs_commit res =
  let offenders =
    List.concat_map
      (fun (r, events) ->
        let committed_to =
          List.filter_map
            (function
              | Trace.Sync_sent { dest; _ } -> Some dest
              | Trace.Round_begin _ | Trace.Data_sent _ | Trace.Crashed _
              | Trace.Decided _ ->
                None)
            events
        in
        List.filter_map
          (function
            | Trace.Decided { pid; _ } ->
              if Pid.to_int pid = r then None (* the coordinator, line 6 *)
              else if List.exists (Pid.equal pid) committed_to then None
              else Some (r, pid)
            | Trace.Round_begin _ | Trace.Data_sent _ | Trace.Sync_sent _
            | Trace.Crashed _ ->
              None)
          events)
      (rounds res)
  in
  match offenders with
  | [] -> passed "decision-needs-commit"
  | (r, pid) :: _ ->
    failed "decision-needs-commit"
      (Format.asprintf "%a decided at round %d without a commit" Pid.pp pid r)

let all res =
  [
    coordinator_only_sender res;
    data_before_commit res;
    commit_prefix_shape res;
    value_locking res;
    decision_needs_commit res;
  ]
