open Sync_sim

type check = { name : string; ok : bool; detail : string }

let passed name = { name; ok = true; detail = "" }
let failed name detail = { name; ok = false; detail }

let validity res =
  let proposed = Array.to_list res.Run_result.proposals in
  match
    List.filter (fun (_, v, _) -> not (List.mem v proposed))
      (Run_result.decisions res)
  with
  | [] -> passed "validity"
  | (pid, v, r) :: _ ->
    failed "validity"
      (Format.asprintf "%a decided %d at round %d, a value nobody proposed"
         Model.Pid.pp pid v r)

let uniform_agreement res =
  match Run_result.decided_values res with
  | [] | [ _ ] -> passed "uniform-agreement"
  | vs ->
    failed "uniform-agreement"
      (Printf.sprintf "distinct decided values: %s"
         (String.concat ", " (List.map string_of_int vs)))

let agreement res =
  let correct = Run_result.correct res in
  let decisions =
    List.filter
      (fun (pid, _, _) -> Model.Pid.Set.mem pid correct)
      (Run_result.decisions res)
  in
  match List.sort_uniq Int.compare (List.map (fun (_, v, _) -> v) decisions) with
  | [] | [ _ ] -> passed "agreement"
  | vs ->
    failed "agreement"
      (Printf.sprintf "correct processes decided: %s"
         (String.concat ", " (List.map string_of_int vs)))

let termination res =
  if Run_result.all_correct_decided res then passed "termination"
  else
    let undecided =
      List.filter
        (fun pid ->
          match Run_result.status res pid with
          | Run_result.Undecided -> true
          | Run_result.Decided _ | Run_result.Crashed _ -> false)
        (Model.Pid.all ~n:res.Run_result.n)
    in
    failed "termination"
      (Printf.sprintf "undecided after %d rounds: %s"
         res.Run_result.rounds_executed
         (String.concat ", " (List.map Model.Pid.to_string undecided)))

let round_bound ~bound res =
  match Run_result.max_decision_round res with
  | Some r when r > bound ->
    failed "round-bound"
      (Printf.sprintf "a process decided at round %d > bound %d" r bound)
  | Some _ | None -> passed "round-bound"

let uniform_consensus ?bound res =
  let base = [ validity res; uniform_agreement res; termination res ] in
  match bound with
  | None -> base
  | Some bound -> base @ [ round_bound ~bound res ]

let all_ok checks = List.for_all (fun c -> c.ok) checks

let failures checks = List.filter (fun c -> not c.ok) checks

let pp_check ppf c =
  if c.ok then Format.fprintf ppf "%s: ok" c.name
  else Format.fprintf ppf "%s: FAILED (%s)" c.name c.detail

let assert_ok ~context checks =
  match failures checks with
  | [] -> ()
  | fs ->
    let msgs = List.map (fun c -> Format.asprintf "%a" pp_check c) fs in
    failwith
      (Printf.sprintf "[%s] property violation: %s" context
         (String.concat "; " msgs))
