(** Checkers for the consensus properties of Section 3.1.

    Every experiment and test funnels its runs through these predicates, so
    "the algorithm is correct" always means "these checks passed on these
    runs", never "by construction". *)

open Sync_sim

type check = { name : string; ok : bool; detail : string }
(** One verdict; [detail] carries the counterexample description when
    [not ok]. *)

val validity : Run_result.t -> check
(** Every decided value was proposed by some process. *)

val uniform_agreement : Run_result.t -> check
(** No two processes decide differently — crashed-after-deciding processes
    included (the paper's Uniform Agreement). *)

val agreement : Run_result.t -> check
(** No two {e correct} processes decide differently (the weaker, non-uniform
    property; informational). *)

val termination : Run_result.t -> check
(** Every correct process decided within the executed rounds. *)

val round_bound : bound:int -> Run_result.t -> check
(** No process decides after round [bound] (e.g. [bound = f + 1] for the
    Figure 1 algorithm, [min (t+1) (f+2)] for the classic early-stopping
    baseline). *)

val uniform_consensus : ?bound:int -> Run_result.t -> check list
(** Validity, uniform agreement, termination, and the round bound when
    given. *)

val all_ok : check list -> bool

val failures : check list -> check list

val pp_check : Format.formatter -> check -> unit

val assert_ok : context:string -> check list -> unit
(** Raise [Failure] with a readable report when some check fails; for use in
    experiments where a property violation means the reproduction itself is
    broken. *)
