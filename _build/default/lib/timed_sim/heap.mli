(** Binary min-heap keyed by [(time, rank, seq)].

    The event queue of the timed simulator.  Ties on [time] break first on
    the caller-supplied [rank] (the engine ranks messages before failure
    detector updates before timers, so "arrives by time T" beats "acts at
    time T") and then on insertion order — the simulation is deterministic
    given its inputs. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> rank:int -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element. *)

val peek_time : 'a t -> float option

val size : 'a t -> int

val is_empty : 'a t -> bool
