lib/timed_sim/heap.ml: Array
