lib/timed_sim/timed_engine.ml: Array Float Format Heap Int List Model Pid Prng Process_intf
