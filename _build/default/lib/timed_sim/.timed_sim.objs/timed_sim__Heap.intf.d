lib/timed_sim/heap.mli:
