lib/timed_sim/timed_engine.mli: Model Pid Process_intf
