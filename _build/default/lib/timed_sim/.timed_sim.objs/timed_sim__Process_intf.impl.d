lib/timed_sim/process_intf.ml: Format Model Pid
