type 'a entry = { time : float; rank : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;  (* data.(0) unused sentinel slot *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let less a b =
  a.time < b.time
  || (a.time = b.time && (a.rank < b.rank || (a.rank = b.rank && a.seq < b.seq)))

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 1 then begin
    let parent = i / 2 in
    if less h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = 2 * i and r = (2 * i) + 1 in
  let smallest = ref i in
  if l <= h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
  if r <= h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h entry =
  let cap = Array.length h.data in
  if h.size + 1 >= cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap entry in
    Array.blit h.data 0 data 0 (min cap (h.size + 1));
    h.data <- data
  end

let add h ~time ~rank payload =
  let entry = { time; rank; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.size <- h.size + 1;
  h.data.(h.size) <- entry;
  sift_up h h.size

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(1) in
    h.data.(1) <- h.data.(h.size);
    h.size <- h.size - 1;
    if h.size > 0 then sift_down h 1;
    Some (top.time, top.payload)
  end

let peek_time h = if h.size = 0 then None else Some h.data.(1).time

let size h = h.size

let is_empty h = h.size = 0
