(** Deterministic data parallelism over OCaml 5 domains.

    The experiment sweeps and exhaustive model checks are embarrassingly
    parallel: every run is a pure function of its (seeded) inputs.  This
    pool chunks an input array across domains and reassembles results in
    input order, so parallel execution is observationally identical to
    sequential execution — the tests assert exactly that.

    Keep closures pure: tasks run concurrently on separate domains, and
    shared mutable state without synchronization is a data race. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] applies [f] to every element, preserving order.
    [domains <= 1] (or an array shorter than 2) degrades to [Array.map].
    If any task raises, the first exception (in input order) is re-raised
    after all domains have joined. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val iter : ?domains:int -> ('a -> unit) -> 'a array -> unit

val count_if : ?domains:int -> ('a -> bool) -> 'a array -> int
(** Parallel count of elements satisfying the predicate. *)

val find_first : ?domains:int -> ('a -> 'b option) -> 'a array -> 'b option
(** [find_first f xs] is [f x] for the first (in input order) [x] with
    [f x <> None].  All elements may be evaluated (no early exit across
    chunk boundaries is guaranteed), but the returned witness is always the
    input-order first — exhaustive-search callers get deterministic
    witnesses regardless of the domain count. *)
