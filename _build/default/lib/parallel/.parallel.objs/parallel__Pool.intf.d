lib/parallel/pool.mli:
