let default_domains () = max 1 (Domain.recommended_domain_count ())

type 'b slot = Pending | Done of 'b | Raised of exn

let map ?domains f xs =
  let n = Array.length xs in
  let domains = Option.value domains ~default:(default_domains ()) in
  if domains <= 1 || n < 2 then Array.map f xs
  else begin
    let domains = min domains n in
    let results = Array.make n Pending in
    (* Static chunking: domain k owns indices [k*chunk, ...).  Experiment
       workloads are uniform enough that work stealing is not worth its
       complexity here. *)
    let chunk = (n + domains - 1) / domains in
    let worker k () =
      let lo = k * chunk in
      let hi = min n (lo + chunk) - 1 in
      for i = lo to hi do
        results.(i) <- (try Done (f xs.(i)) with e -> Raised e)
      done
    in
    let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
    List.iter Domain.join handles;
    Array.map
      (function
        | Done v -> v
        | Raised e -> raise e
        | Pending -> assert false (* every index belongs to some chunk *))
      results
  end

let map_list ?domains f xs = Array.to_list (map ?domains f (Array.of_list xs))

let iter ?domains f xs = ignore (map ?domains f xs)

let count_if ?domains p xs =
  Array.fold_left
    (fun acc b -> if b then acc + 1 else acc)
    0 (map ?domains p xs)

let find_first ?domains f xs =
  Array.fold_left
    (fun acc r -> match acc with Some _ -> acc | None -> r)
    None (map ?domains f xs)
