(** Embedding of the classic model into the extended model (Section 2.2).

    Trivial direction of the equivalence: a classic algorithm runs unchanged
    in the extended model by never using the control step.  The functor only
    re-labels the model so the engine accepts extended-model schedules
    (whose [After_data] points degenerate to [After_send] for a process that
    sends no control messages). *)

module Make (A : Sync_sim.Algorithm_intf.S) :
  Sync_sim.Algorithm_intf.S with type msg = A.msg
