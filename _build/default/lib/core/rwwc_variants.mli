(** Deliberately broken variants of the Figure 1 algorithm — ablations.

    Each variant removes one ingredient of the design; the ablation
    experiment (EXP-ABL) finds, by exhaustive schedule search, exactly which
    consensus property dies with it.  Together they show that nothing in
    Figure 1 is decorative:

    - {!Ascending_commit} sends the commit messages in the order
      [p_{r+1} .. p_n] instead of the paper's [p_n .. p_{r+1}].  Uniform
      agreement survives (the value is still locked by a completed data
      step), but early stopping and even termination break: a crashed
      coordinator's commit prefix can now reach exactly the processes that
      are scheduled to coordinate next, which then halt as deciders and
      never relay — the paper's descending order guarantees instead that
      whenever anybody decides early, every process beyond the faulty
      prefix has decided too (the Lemma 3 case-1 argument).

    - {!Data_decide} drops the commit step entirely and decides on receipt
      of the coordinator's data message.  Uniform agreement dies: a partial
      data broadcast makes one process decide a value the next coordinator
      never saw.

    - {!Piggyback_commit} keeps a commit but sends it {e inside} the data
      step (one combined message), i.e. with arbitrary-subset instead of
      prefix crash semantics.  Uniform agreement dies: the subset can skip
      the very processes that would have relayed the locked value. *)

module Ascending_commit : sig
  include Sync_sim.Algorithm_intf.S

  val estimate : state -> int
  val fingerprint : state -> string
end

module Data_decide : sig
  include Sync_sim.Algorithm_intf.S

  val estimate : state -> int
  val fingerprint : state -> string
end

module Piggyback_commit : sig
  include Sync_sim.Algorithm_intf.S

  val estimate : state -> int
  val fingerprint : state -> string
end
