open Model

type msg = Data of int

type state = { me : int; n : int; est : int }

let name = "rwwc"
let model = Model_kind.Extended
let decision_mode = `Halt

let msg_bits ~value_bits (Data _) = value_bits

let pp_msg ppf (Data v) = Format.fprintf ppf "%d" v

let init ~n ~t:_ ~me ~proposal = { me = Pid.to_int me; n; est = proposal }

(* Line 4: the coordinator sends its estimate to every higher-id process. *)
let data_sends state ~round =
  if round = state.me then
    List.map
      (fun dest -> (dest, Data state.est))
      (Pid.range ~lo:(state.me + 1) ~hi:state.n)
  else []

(* Line 5: commit messages from p_n down to p_{r+1}. *)
let sync_sends state ~round =
  if round = state.me then Pid.range_desc ~hi:state.n ~lo:(state.me + 1)
  else []

let compute state ~round ~data ~syncs =
  if round = state.me then
    (* Line 6: the coordinator survived its send phase and decides. *)
    (state, Some state.est)
  else begin
    (* Line 9: i < r cannot happen — p_i either decided or crashed when it
       coordinated round i. *)
    assert (state.me > round);
    let coord = Pid.of_int round in
    let est =
      match List.assoc_opt coord data with
      | Some (Data v) -> v (* line 7 *)
      | None -> state.est
    in
    let committed = List.exists (Pid.equal coord) syncs in
    ({ state with est }, if committed then Some est (* line 8 *) else None)
  end

let estimate state = state.est

let fingerprint state = Printf.sprintf "rwwc:%d:%d" state.me state.est
