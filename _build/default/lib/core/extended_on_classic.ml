open Model

module Make (A : Sync_sim.Algorithm_intf.S) = struct
  type msg = Data of A.msg | Ctl

  type state = {
    a : A.state;
    n : int;
    buf_data : (Pid.t * A.msg) list;  (* reverse arrival order *)
    buf_syncs : Pid.t list;
  }

  let name = A.name ^ "-on-classic"
  let model = Model_kind.Classic
  let decision_mode = A.decision_mode

  let msg_bits ~value_bits = function
    | Data m -> A.msg_bits ~value_bits m
    | Ctl -> 1

  let pp_msg ppf = function
    | Data m -> A.pp_msg ppf m
    | Ctl -> Format.pp_print_string ppf "ctl"

  let init ~n ~t ~me ~proposal =
    { a = A.init ~n ~t ~me ~proposal; n; buf_data = []; buf_syncs = [] }

  let block_size ~n = n

  let to_extended_round ~n round = ((round - 1) / n) + 1

  (* Position of [round] within its block: 1 = data sub-round,
     [s] in 2..n = control sub-round serving destination s-1. *)
  let slot ~n round = ((round - 1) mod n) + 1

  let data_sends state ~round =
    let rho = to_extended_round ~n:state.n round in
    match slot ~n:state.n round with
    | 1 ->
      List.map (fun (dest, m) -> (dest, Data m)) (A.data_sends state.a ~round:rho)
    | s ->
      (* The underlying state is untouched between the block's sub-rounds
         (compute runs in the last one), so re-asking for the control
         sequence is deterministic and cheap. *)
      let dests = A.sync_sends state.a ~round:rho in
      (match List.nth_opt dests (s - 2) with
      | Some dest -> [ (dest, Ctl) ]
      | None -> [])

  let sync_sends _state ~round:_ = []

  let compute state ~round ~data ~syncs =
    assert (syncs = []);
    let buf_data = ref state.buf_data and buf_syncs = ref state.buf_syncs in
    List.iter
      (fun (from, m) ->
        match m with
        | Data payload -> buf_data := (from, payload) :: !buf_data
        | Ctl -> buf_syncs := from :: !buf_syncs)
      data;
    if slot ~n:state.n round < state.n then
      ({ state with buf_data = !buf_data; buf_syncs = !buf_syncs }, None)
    else begin
      let rho = to_extended_round ~n:state.n round in
      let block_data =
        List.sort (fun (a, _) (b, _) -> Pid.compare a b) !buf_data
      and block_syncs = List.sort Pid.compare !buf_syncs in
      let a, decision =
        A.compute state.a ~round:rho ~data:block_data ~syncs:block_syncs
      in
      ({ state with a; buf_data = []; buf_syncs = [] }, decision)
    end

  let translate_schedule ~n sched =
    let translate (ev : Crash.event) =
      let base = (ev.round - 1) * n in
      match ev.point with
      | Crash.Before_send -> Crash.make ~round:(base + 1) Crash.Before_send
      | Crash.During_data survivors ->
        Crash.make ~round:(base + 1) (Crash.During_data survivors)
      | Crash.After_data prefix ->
        (* Data sub-round and the first [prefix] control sub-rounds complete;
           the process dies at the start of control sub-round prefix+1 (or at
           the very end of the block when every control slot was served). *)
        if prefix >= n - 1 then Crash.make ~round:(base + n) Crash.After_send
        else Crash.make ~round:(base + prefix + 2) Crash.Before_send
      | Crash.After_send -> Crash.make ~round:(base + n) Crash.After_send
    in
    Schedule.of_list
      (List.map (fun (pid, ev) -> (pid, translate ev)) (Schedule.bindings sched))
end
