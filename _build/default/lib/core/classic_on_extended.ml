module Make (A : Sync_sim.Algorithm_intf.S) = struct
  include A

  let name = A.name ^ "-on-extended"
  let model = Model.Model_kind.Extended
end
