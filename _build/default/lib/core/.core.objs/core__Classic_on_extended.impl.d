lib/core/classic_on_extended.ml: Model Sync_sim
