lib/core/rwwc.ml: Format List Model Model_kind Pid Printf
