lib/core/classic_on_extended.mli: Sync_sim
