lib/core/rwwc_variants.ml: Format List Model Model_kind Pid Printf
