lib/core/extended_on_classic.mli: Model Sync_sim
