lib/core/rwwc.mli: Sync_sim
