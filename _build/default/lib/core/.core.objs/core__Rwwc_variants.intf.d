lib/core/rwwc_variants.mli: Sync_sim
