lib/core/extended_on_classic.ml: Crash Format List Model Model_kind Pid Schedule Sync_sim
