open Model

(* Shared skeleton: rotating coordinator with estimate adoption. *)

type base_state = { me : int; n : int; t : int; est : int }

let base_init ~n ~t ~me ~proposal = { me = Pid.to_int me; n; t; est = proposal }

let higher state = Pid.range ~lo:(state.me + 1) ~hi:state.n

module Ascending_commit = struct
  type msg = Data of int

  type state = base_state

  let name = "rwwc-ascending-commit"
  let model = Model_kind.Extended
  let decision_mode = `Halt
  let msg_bits ~value_bits (Data _) = value_bits
  let pp_msg ppf (Data v) = Format.fprintf ppf "%d" v
  let init = base_init

  (* Figure 1's loop runs r = 1 .. t+1 only; a process whose coordination
     round lies beyond it never coordinates (the paper's line 2). *)
  let in_loop state ~round = round <= state.t + 1

  let data_sends state ~round =
    if round = state.me && in_loop state ~round then
      List.map (fun p -> (p, Data state.est)) (higher state)
    else []

  (* The ablation: p_{r+1} first instead of p_n first. *)
  let sync_sends state ~round =
    if round = state.me && in_loop state ~round then higher state else []

  let compute state ~round ~data ~syncs =
    if not (in_loop state ~round) then (state, None)
    else if round = state.me then (state, Some state.est)
    else begin
      let coord = Pid.of_int round in
      let est =
        match List.assoc_opt coord data with
        | Some (Data v) -> v
        | None -> state.est
      in
      let committed = List.exists (Pid.equal coord) syncs in
      ({ state with est }, if committed then Some est else None)
    end

  let estimate state = state.est
  let fingerprint state = Printf.sprintf "asc:%d:%d" state.me state.est
end

module Data_decide = struct
  type msg = Data of int

  type state = base_state

  let name = "rwwc-no-commit"
  let model = Model_kind.Extended
  let decision_mode = `Halt
  let msg_bits ~value_bits (Data _) = value_bits
  let pp_msg ppf (Data v) = Format.fprintf ppf "%d" v
  let init = base_init

  let data_sends state ~round =
    if round = state.me then List.map (fun p -> (p, Data state.est)) (higher state)
    else []

  let sync_sends _state ~round:_ = []

  (* The ablation: the data message alone triggers the decision. *)
  let compute state ~round ~data ~syncs:_ =
    if round = state.me then (state, Some state.est)
    else begin
      match List.assoc_opt (Pid.of_int round) data with
      | Some (Data v) -> ({ state with est = v }, Some v)
      | None -> (state, None)
    end

  let estimate state = state.est
  let fingerprint state = Printf.sprintf "nocommit:%d:%d" state.me state.est
end

module Piggyback_commit = struct
  type msg = Data of int | Commit of int

  type state = base_state

  let name = "rwwc-piggyback-commit"
  let model = Model_kind.Extended
  let decision_mode = `Halt

  let msg_bits ~value_bits = function Data _ -> value_bits | Commit _ -> 1

  let pp_msg ppf = function
    | Data v -> Format.fprintf ppf "%d" v
    | Commit v -> Format.fprintf ppf "commit(%d)" v

  let init = base_init

  (* The ablation: both waves travel in the data step — the sends still
     happen data-first, commit-last, but a crash now delivers an arbitrary
     {e subset} of them instead of the extended model's prefix of an
     ordered second step. *)
  let data_sends state ~round =
    if round = state.me then
      List.map (fun p -> (p, Data state.est)) (higher state)
      @ List.map
          (fun p -> (p, Commit state.est))
          (Pid.range_desc ~hi:state.n ~lo:(state.me + 1))
    else []

  let sync_sends _state ~round:_ = []

  let compute state ~round ~data ~syncs:_ =
    if round = state.me then (state, Some state.est)
    else begin
      let coord = Pid.of_int round in
      let from_coord =
        List.filter_map
          (fun (p, m) -> if Pid.equal p coord then Some m else None)
          data
      in
      let est =
        List.fold_left
          (fun est m -> match m with Data v -> v | Commit _ -> est)
          state.est from_coord
      in
      let committed =
        List.find_map
          (function Commit v -> Some v | Data _ -> None)
          from_coord
      in
      match committed with
      | Some v -> ({ state with est = v }, Some v)
      | None -> ({ state with est }, None)
    end

  let estimate state = state.est
  let fingerprint state = Printf.sprintf "piggy:%d:%d" state.me state.est
end
