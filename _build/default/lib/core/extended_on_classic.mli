(** Simulation of the extended model on top of the classic model
    (Section 2.2, "computability power").

    Each extended round is expanded into a block of [n] classic sub-rounds:
    sub-round 1 carries the data messages, and sub-round [s+1]
    ([1 <= s <= n-1]) carries the control message to the [s]-th destination
    of the ordered control sequence.  Because a classic-model crash during a
    sub-round can only truncate that sub-round's sends, the destinations
    that receive the control message always form a prefix of the sequence —
    exactly the extended model's guarantee.  The algorithm's computation
    phase runs in the last sub-round of the block.

    The price is the round blow-up factor [n], measured by EXP-SIM. *)

module Make (A : Sync_sim.Algorithm_intf.S) : sig
  include Sync_sim.Algorithm_intf.S
  (** The compiled algorithm; [model] is [Classic]. *)

  val block_size : n:int -> int
  (** Number of classic sub-rounds per extended round ([= n]). *)

  val to_extended_round : n:int -> int -> int
  (** Map a classic round of the compiled run back to the extended round it
      simulates. *)

  val translate_schedule : n:int -> Model.Schedule.t -> Model.Schedule.t
  (** Translate an extended-model crash schedule into the equivalent
      classic-model schedule over sub-rounds, preserving exactly which
      messages of each simulated round get delivered. *)
end
