open Model

type msg = Est of { est : int; early : bool }

type state = { me : int; n : int; t : int; est : int; early : bool }

let name = "early-stopping"
let model = Model_kind.Classic
let decision_mode = `Halt

let msg_bits ~value_bits (Est _) = value_bits + 1

let pp_msg ppf (Est { est; early }) =
  Format.fprintf ppf "%d%s" est (if early then "!" else "")

let init ~n ~t ~me ~proposal =
  { me = Pid.to_int me; n; t; est = proposal; early = false }

let data_sends state ~round:_ =
  let payload = Est { est = state.est; early = state.early } in
  List.filter_map
    (fun dest ->
      if Pid.to_int dest = state.me then None else Some (dest, payload))
    (Pid.all ~n:state.n)

let sync_sends _state ~round:_ = []

let compute state ~round ~data ~syncs =
  assert (syncs = []);
  if state.early then
    (* The flag was raised in an earlier round; this round's full broadcast
       of (est, early=true) completed (otherwise we would have crashed), so
       every live process now holds est and will raise its own flag. *)
    (state, Some state.est)
  else begin
    let est =
      List.fold_left (fun acc (_, Est { est; _ }) -> min acc est) state.est data
    in
    let flagged = List.exists (fun (_, Est { early; _ }) -> early) data in
    let perceived_crashed = state.n - (List.length data + 1) in
    let early = flagged || perceived_crashed < round in
    let state = { state with est; early } in
    if round >= state.t + 1 then (state, Some est) else (state, None)
  end

let estimate state = state.est
let early state = state.early

let fingerprint state =
  Printf.sprintf "es:%d:%d:%b" state.me state.est state.early
