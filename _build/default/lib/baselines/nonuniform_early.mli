(** Early-deciding {e non-uniform} consensus for the classic synchronous
    model, deciding in [min(f + 1, t + 1)] rounds.

    This baseline makes the paper's central trade visible.  In the classic
    model, plain consensus (agreement among {e correct} processes only) is
    solvable in f+1 rounds — this algorithm does it — but {e uniform}
    consensus needs f+2 [Charron-Bost & Schiper 04].  The extended model's
    contribution is exactly to buy uniformity at the f+1 price.  Run
    against the exhaustive adversary, this algorithm:
    - satisfies validity, termination, non-uniform agreement, and the
      [min(f+1, t+1)] bound, but
    - admits schedules where a process decides and then crashes while the
      survivors decide differently — a uniform-agreement violation the
      EXP-UNI experiment exhibits as a witness.

    Mechanism: broadcast the minimum estimate every round; decide at the
    end of round [r] as soon as fewer than [r] processes are perceived
    crashed (some past round looked clean, so my estimate agrees with
    every {e alive} process's estimate — the dead ones are exactly whom
    non-uniform agreement lets us ignore), or at round [t + 1]. *)

type msg = Est of int

include Sync_sim.Algorithm_intf.S with type msg := msg
(** [model] is [Classic]. *)

val estimate : state -> int
