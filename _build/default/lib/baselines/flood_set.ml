open Model
module Int_set = Set.Make (Int)

type msg = Values of int list

type state = { me : int; n : int; t : int; values : Int_set.t }

let name = "flood-set"
let model = Model_kind.Classic
let decision_mode = `Halt

let msg_bits ~value_bits (Values vs) = value_bits * List.length vs

let pp_msg ppf (Values vs) =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int vs))

let init ~n ~t ~me ~proposal =
  { me = Pid.to_int me; n; t; values = Int_set.singleton proposal }

let data_sends state ~round:_ =
  let payload = Values (Int_set.elements state.values) in
  List.filter_map
    (fun dest ->
      if Pid.to_int dest = state.me then None else Some (dest, payload))
    (Pid.all ~n:state.n)

let sync_sends _state ~round:_ = []

let compute state ~round ~data ~syncs =
  assert (syncs = []);
  let values =
    List.fold_left
      (fun acc (_, Values vs) -> List.fold_left (Fun.flip Int_set.add) acc vs)
      state.values data
  in
  let state = { state with values } in
  if round >= state.t + 1 then (state, Some (Int_set.min_elt values))
  else (state, None)

let known state = Int_set.elements state.values
