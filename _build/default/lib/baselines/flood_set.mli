(** FloodSet: the textbook t+1-round uniform consensus for the classic
    synchronous model (Lynch 96; the "flooding strategy" the paper contrasts
    with in Section 3.2, footnote 5).

    Every process broadcasts the set of proposal values it knows in every
    round; after [t + 1] rounds all correct (indeed, all surviving) processes
    hold the same set because at least one of the rounds was crash-free, and
    everybody decides its minimum.  Always takes [t + 1] rounds, regardless
    of [f] — the non-early-stopping baseline. *)

type msg = Values of int list  (** sorted, distinct *)

include Sync_sim.Algorithm_intf.S with type msg := msg
(** [model] is [Classic]. *)

val known : state -> int list
(** Values currently known, sorted (for tests). *)
