open Model

type msg = Est of int

type state = { me : int; n : int; t : int; est : int; announced : bool }

let name = "nonuniform-early"
let model = Model_kind.Classic

(* Early deciding, not early stopping: a decided process keeps relaying its
   estimate — halting immediately would let a decided process take a value
   to its grave and leave correct survivors on a different one. *)
let decision_mode = `Announce

let msg_bits ~value_bits (Est _) = value_bits

let pp_msg ppf (Est v) = Format.fprintf ppf "%d" v

let init ~n ~t ~me ~proposal =
  { me = Pid.to_int me; n; t; est = proposal; announced = false }

let data_sends state ~round =
  if round > state.t + 1 then []
  else
    List.filter_map
      (fun dest ->
        if Pid.to_int dest = state.me then None
        else Some (dest, Est state.est))
      (Pid.all ~n:state.n)

let sync_sends _state ~round:_ = []

let compute state ~round ~data ~syncs =
  assert (syncs = []);
  let est =
    List.fold_left (fun acc (_, Est v) -> min acc v) state.est data
  in
  let perceived_crashed = state.n - (List.length data + 1) in
  let state = { state with est } in
  if (not state.announced) && (perceived_crashed < round || round >= state.t + 1)
  then ({ state with announced = true }, Some est)
  else (state, None)

let estimate state = state.est
