(** Early-deciding uniform consensus for the classic synchronous model,
    deciding in [min(f + 2, t + 1)] rounds.

    This is the baseline against which the paper's Section 2.2 cost analysis
    compares the extended model: the classic model's lower bound is
    [min(t + 1, f + 2)] rounds [Charron-Bost & Schiper 04, Keidar & Rajsbaum
    03], and this algorithm (the standard "early stopping" protocol, cf.
    Raynal's guided tour [16]) matches it.

    Mechanism: every process broadcasts its minimum estimate each round,
    tagged with an [early] flag.  A process raises the flag at the end of
    round [r] when it perceives fewer than [r] crashed processes (so some
    past round looked failure-free to it and its estimate is the global
    minimum of the surviving values), or when it receives a flagged message.
    A flagged process broadcasts once more in the next round and then
    decides — the extra full broadcast before deciding is what locks the
    value and makes agreement uniform.  At round [t + 1] everybody decides
    unconditionally. *)

type msg = Est of { est : int; early : bool }

include Sync_sim.Algorithm_intf.S with type msg := msg
(** [model] is [Classic]. *)

val estimate : state -> int
val early : state -> bool

val fingerprint : state -> string
(** Canonical state encoding for the lower-bound machinery. *)
