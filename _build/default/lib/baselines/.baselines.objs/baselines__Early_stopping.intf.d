lib/baselines/early_stopping.mli: Sync_sim
