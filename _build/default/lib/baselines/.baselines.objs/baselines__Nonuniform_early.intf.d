lib/baselines/nonuniform_early.mli: Sync_sim
