lib/baselines/early_stopping.ml: Format List Model Model_kind Pid Printf
