lib/baselines/flood_set.mli: Sync_sim
