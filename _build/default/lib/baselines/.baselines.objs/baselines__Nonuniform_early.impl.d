lib/baselines/nonuniform_early.ml: Format List Model Model_kind Pid
