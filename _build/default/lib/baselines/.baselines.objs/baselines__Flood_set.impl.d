lib/baselines/flood_set.ml: Format Fun Int List Model Model_kind Pid Set String
