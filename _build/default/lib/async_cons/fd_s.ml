open Model

let plan ~rng ~n ~crashes ~trusted ~gst ~detect_lag ~noise_events =
  if List.mem_assoc trusted crashes then
    invalid_arg "Fd_s.plan: the trusted process must be correct";
  if gst < 0.0 || detect_lag <= 0.0 then invalid_arg "Fd_s.plan: bad times";
  let updates = ref [] in
  let push observer at suspects =
    updates := { Timed_sim.Timed_engine.observer; at; suspects } :: !updates
  in
  List.iter
    (fun observer ->
      (* Pre-GST noise: arbitrary (possibly wrong) suspect sets. *)
      for _ = 1 to noise_events do
        let at = Prng.Rng.float rng gst in
        let suspects =
          Pid.set_of_ints
            (List.filter_map
               (fun p ->
                 if p <> Pid.to_int observer && Prng.Rng.bool rng then Some p
                 else None)
               (List.init n (fun i -> i + 1)))
        in
        push observer at suspects
      done;
      (* From GST on: exactly the crashed processes, never the trusted one.
         (Stronger than ◇S requires — simpler and sufficient.) *)
      let crashed_by tau =
        List.fold_left
          (fun acc (victim, ct) ->
            if ct <= tau && not (Pid.equal victim trusted) then
              Pid.Set.add victim acc
            else acc)
          Pid.Set.empty crashes
      in
      push observer gst (Pid.Set.remove observer (crashed_by (gst -. detect_lag)));
      List.iter
        (fun (victim, ct) ->
          if not (Pid.equal victim observer) then begin
            let at = Float.max gst (ct +. detect_lag) in
            push observer at (Pid.Set.remove observer (crashed_by ct))
          end)
        crashes)
    (Pid.all ~n);
  List.sort
    (fun (a : Timed_sim.Timed_engine.fd_update) (b : Timed_sim.Timed_engine.fd_update) ->
      compare (a.at, Pid.to_int a.observer) (b.at, Pid.to_int b.observer))
    !updates

let eventually_accurate ~trusted ~gst plan =
  List.for_all
    (fun (u : Timed_sim.Timed_engine.fd_update) ->
      u.at < gst || not (Pid.Set.mem trusted u.suspects))
    plan

let complete ~n ~crashes ~gst ~detect_lag plan =
  List.for_all
    (fun (victim, ct) ->
      List.for_all
        (fun observer ->
          Pid.equal observer victim
          || List.mem_assoc observer crashes
          ||
          let threshold = Float.max gst (ct +. detect_lag) in
          (* The last update at or before [threshold] must suspect the
             victim. *)
          let last =
            List.fold_left
              (fun acc (u : Timed_sim.Timed_engine.fd_update) ->
                if Pid.equal u.observer observer && u.at <= threshold then
                  Some u
                else acc)
              None plan
          in
          match last with
          | Some u -> Pid.Set.mem victim u.suspects
          | None -> false)
        (Pid.all ~n))
    crashes
