lib/async_cons/fd_s.mli: Model Pid Prng Timed_sim
