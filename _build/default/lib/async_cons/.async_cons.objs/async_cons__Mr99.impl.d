lib/async_cons/mr99.ml: Format Fun Hashtbl List Model Pid Process_intf Timed_sim
