lib/async_cons/mr99.mli: Timed_sim
