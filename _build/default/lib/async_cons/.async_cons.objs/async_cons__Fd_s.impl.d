lib/async_cons/fd_s.ml: Float List Model Pid Prng Timed_sim
