(** A failure detector of class ◇S (eventually strong) for the asynchronous
    simulator.

    ◇S is defined by (Chandra & Toueg):
    - {e strong completeness}: every crashed process is eventually suspected
      by every correct process;
    - {e eventual weak accuracy}: there is a time after which some correct
      process is never suspected by any correct process.

    The generator compiles these properties into a suspicion plan: before a
    global stabilization time [gst] it injects arbitrary false suspicions
    (the rng's choice, possibly of the trusted process); from [gst] on,
    suspect sets equal exactly the crashed-so-far processes minus the
    designated trusted (correct) process, with new crashes detected within
    [detect_lag]. *)

open Model

val plan :
  rng:Prng.Rng.t ->
  n:int ->
  crashes:(Pid.t * float) list ->
  trusted:Pid.t ->
  gst:float ->
  detect_lag:float ->
  noise_events:int ->
  Timed_sim.Timed_engine.fd_update list
(** [trusted] must not appear in [crashes].  [noise_events] false-suspicion
    updates per observer are scattered uniformly before [gst]. *)

val eventually_accurate :
  trusted:Pid.t -> gst:float -> Timed_sim.Timed_engine.fd_update list -> bool
(** No update at time [>= gst] suspects the trusted process. *)

val complete :
  n:int ->
  crashes:(Pid.t * float) list ->
  gst:float ->
  detect_lag:float ->
  Timed_sim.Timed_engine.fd_update list ->
  bool
(** Every crash is suspected by every other process from
    [max gst (crash + detect_lag)] on (as witnessed by the last update at or
    before that time). *)
