open Model
open Timed_sim

type msg =
  | Est of { round : int; value : int }
  | Aux of { round : int; value : int option }
  | Decide of int

type phase = Wait_est | Wait_aux

type state = {
  me : int;
  n : int;
  t : int;
  est : int;
  round : int;
  phase : phase;
  suspects : Pid.Set.t;
  est_pool : (int, int) Hashtbl.t;  (* round -> coordinator's value *)
  aux_pool : (int, (int, int option) Hashtbl.t) Hashtbl.t;
      (* round -> sender -> aux *)
}

let name = "mr99"

let pp_msg ppf = function
  | Est { round; value } -> Format.fprintf ppf "est(r%d,%d)" round value
  | Aux { round; value } ->
    Format.fprintf ppf "aux(r%d,%s)" round
      (match value with Some v -> string_of_int v | None -> "_")
  | Decide v -> Format.fprintf ppf "decide(%d)" v

let coordinator state round = ((round - 1) mod state.n) + 1

let others state =
  List.filter (fun p -> Pid.to_int p <> state.me) (Pid.all ~n:state.n)

let broadcast state msg = List.map (fun p -> Process_intf.Send (p, msg)) (others state)

let aux_table state round =
  match Hashtbl.find_opt state.aux_pool round with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.replace state.aux_pool round tbl;
    tbl

(* Enter phase 2 of the current round with local knowledge [aux]. *)
let enter_aux state aux =
  let tbl = aux_table state state.round in
  Hashtbl.replace tbl state.me aux;
  ( { state with phase = Wait_aux },
    broadcast state (Aux { round = state.round; value = aux }) )

(* Run every transition currently enabled; asynchronous algorithms make
   progress on whichever event completed a wait condition. *)
let rec progress state =
  match state.phase with
  | Wait_est ->
    let c = coordinator state state.round in
    if c = state.me then
      (* The coordinator's own estimate is its aux; its EST broadcast
         happened when the round started. *)
      continue (enter_aux state (Some state.est))
    else begin
      match Hashtbl.find_opt state.est_pool state.round with
      | Some v -> continue (enter_aux state (Some v))
      | None ->
        if Pid.Set.mem (Pid.of_int c) state.suspects then
          continue (enter_aux state None)
        else (state, [])
    end
  | Wait_aux ->
    let tbl = aux_table state state.round in
    if Hashtbl.length tbl < state.n - state.t then (state, [])
    else begin
      let auxes = Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] in
      let values = List.filter_map Fun.id auxes in
      match values with
      | v :: _ when List.length values = List.length auxes ->
        (* n - t copies of v and no ⊥: v is locked everywhere; decide. *)
        (state, broadcast state (Decide v) @ [ Process_intf.Decide v ])
      | v :: _ -> next_round { state with est = v }
      | [] -> next_round state
    end

and continue (state, actions) =
  let state, more = progress state in
  (state, actions @ more)

and next_round state =
  let state = { state with round = state.round + 1; phase = Wait_est } in
  let c = coordinator state state.round in
  let announce =
    if c = state.me then
      broadcast state (Est { round = state.round; value = state.est })
    else []
  in
  continue (state, announce)

let init (ctx : Process_intf.ctx) ~me ~proposal =
  if 2 * ctx.t >= ctx.n then
    invalid_arg "Mr99: requires t < n/2 (quorum intersection)";
  let state =
    {
      me = Pid.to_int me;
      n = ctx.n;
      t = ctx.t;
      est = proposal;
      round = 1;
      phase = Wait_est;
      suspects = Pid.Set.empty;
      est_pool = Hashtbl.create 16;
      aux_pool = Hashtbl.create 16;
    }
  in
  let announce =
    if coordinator state 1 = state.me then
      broadcast state (Est { round = 1; value = state.est })
    else []
  in
  continue (state, announce)

let on_message state ~now:_ ~from msg =
  match msg with
  | Est { round; value } ->
    (* First write wins: the coordinator sends one EST per round, but a
       Byzantine-free crash model still allows duplicates through relays in
       principle — keep the first. *)
    if not (Hashtbl.mem state.est_pool round) then
      Hashtbl.replace state.est_pool round value;
    progress state
  | Aux { round; value } ->
    let tbl = aux_table state round in
    if not (Hashtbl.mem tbl (Pid.to_int from)) then
      Hashtbl.replace tbl (Pid.to_int from) value;
    progress state
  | Decide v ->
    (* Reliable-broadcast relay before halting, so a deciding process that
       crashes mid-broadcast cannot leave the others blocked. *)
    (state, broadcast state (Decide v) @ [ Process_intf.Decide v ])

let on_timer state ~now:_ ~tag:_ = (state, [])

let on_suspicion state ~now:_ ~suspects = progress { state with suspects }

let round_of state = state.round
