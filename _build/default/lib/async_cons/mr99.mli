(** MR99 — the quorum-based ◇S consensus of Mostéfaoui & Raynal (DISC'99),
    the asynchronous end of the paper's Section 4 bridge.

    Rotating coordinator; each asynchronous round has two communication
    steps:
    + the coordinator broadcasts its estimate; every process waits until it
      receives it ([aux := v]) or suspects the coordinator ([aux := ⊥]);
    + everybody broadcasts [aux] and waits for [n - t] of them; a process
      that sees [n - t] copies of a value [v] (no ⊥ among them) decides [v]
      after reliably broadcasting DECIDE; a process that sees at least one
      [v] adopts it as its estimate; otherwise it keeps its estimate.

    Requires [t < n/2] (quorum intersection).  The paper's observation: the
    second step plays exactly the role of Figure 1's commit message — in
    the extended synchronous model, one pipelined one-bit message from the
    coordinator replaces an all-to-all round of [aux] exchanges. *)

type msg =
  | Est of { round : int; value : int }
  | Aux of { round : int; value : int option }
  | Decide of int

include Timed_sim.Process_intf.S with type msg := msg

val round_of : state -> int
(** Current asynchronous round (for structural comparisons in EXP-MR99). *)
