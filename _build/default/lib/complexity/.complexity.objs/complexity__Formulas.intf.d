lib/complexity/formulas.mli:
