lib/complexity/formulas.ml:
