(** Closed-form complexity results of the paper, used as the "paper" column
    next to measured values in every experiment table. *)

val rwwc_round_bound : f:int -> int
(** Theorem 1: the Figure 1 algorithm decides by round [f + 1]. *)

val classic_round_lower_bound : t:int -> f:int -> int
(** The classic synchronous model's uniform consensus lower bound
    [min(t + 1, f + 2)] (Charron-Bost & Schiper, Keidar & Rajsbaum). *)

val extended_round_lower_bound : f:int -> int
(** Theorem 4: [f + 1] rounds are necessary in the extended model. *)

val best_case_bits : n:int -> value_bits:int -> int
(** Theorem 2, best case (no crash): [(n-1)(|v| + 1)]. *)

val worst_case_data_msgs : n:int -> f:int -> int
(** Theorem 2's worst-case count of data messages,
    [(f+1)(n - 1 - f/2)] — an integer because [(f+1)·f] is even; computed
    exactly as [(f+1)(n-1) - f(f+1)/2]. *)

val worst_case_data_bits : n:int -> f:int -> value_bits:int -> int
(** [worst_case_data_msgs * |v|]. *)

val worst_case_commit_msgs_paper : n:int -> f:int -> int
(** The paper's commit-message upper bound [(f+1)(n-f)].  It overcounts
    slightly: in the schedule it narrates, the commit reaching [p_{f+1}]
    would make [p_{f+1}] decide in round 1 and skip its own coordination
    round.  See {!worst_case_commit_msgs_exact}. *)

val worst_case_commit_msgs_exact : n:int -> f:int -> int
(** Exact commit count of the true worst-case run (commits stop at
    [p_{f+2}], keeping [p_{f+1}] active): [(f+1)(n-f-1)]. *)

val worst_case_bits_paper : n:int -> f:int -> value_bits:int -> int
(** Theorem 2's worst-case bit bound
    [(f+1)(n-1-f/2)|v| + (f+1)(n-f)]. *)

val worst_case_total_msgs_paper : n:int -> f:int -> int
(** Theorem 2's total message bound [(f+1)(2n - 1 - 3f/2)], kept in exact
    arithmetic as data + commit bounds. *)
