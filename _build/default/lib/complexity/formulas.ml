let check_nf ~n ~f =
  if n < 2 then invalid_arg "Formulas: n < 2";
  if f < 0 || f >= n then invalid_arg "Formulas: need 0 <= f < n"

let rwwc_round_bound ~f = f + 1

let classic_round_lower_bound ~t ~f = min (t + 1) (f + 2)

let extended_round_lower_bound ~f = f + 1

let best_case_bits ~n ~value_bits = (n - 1) * (value_bits + 1)

let worst_case_data_msgs ~n ~f =
  check_nf ~n ~f;
  (* (f+1)(n-1) - (1 + 2 + ... + f) *)
  ((f + 1) * (n - 1)) - (f * (f + 1) / 2)

let worst_case_data_bits ~n ~f ~value_bits = worst_case_data_msgs ~n ~f * value_bits

let worst_case_commit_msgs_paper ~n ~f =
  check_nf ~n ~f;
  (f + 1) * (n - f)

let worst_case_commit_msgs_exact ~n ~f =
  check_nf ~n ~f;
  (f + 1) * (n - f - 1)

let worst_case_bits_paper ~n ~f ~value_bits =
  worst_case_data_bits ~n ~f ~value_bits + worst_case_commit_msgs_paper ~n ~f

let worst_case_total_msgs_paper ~n ~f =
  worst_case_data_msgs ~n ~f + worst_case_commit_msgs_paper ~n ~f
