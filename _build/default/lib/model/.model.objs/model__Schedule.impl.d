lib/model/schedule.ml: Crash Format Int List Map Pid Printf Result
