lib/model/crash.ml: Format Int Model_kind Pid
