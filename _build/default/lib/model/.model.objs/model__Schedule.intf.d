lib/model/schedule.mli: Crash Format Model_kind Pid
