lib/model/pid.ml: Format Int List Map Printf Set String
