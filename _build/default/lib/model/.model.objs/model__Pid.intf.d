lib/model/pid.mli: Format Map Set
