lib/model/model_kind.mli: Format
