lib/model/crash.mli: Format Model_kind Pid
