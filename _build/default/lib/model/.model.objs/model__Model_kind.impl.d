lib/model/model_kind.ml: Format
