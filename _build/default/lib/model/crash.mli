(** Crash events: when within a round a process dies, and what its last
    partial send delivered.

    The paper's failure semantics (Section 2.1):
    - a crash during the {e data} step delivers an arbitrary subset of the
      planned data messages;
    - a crash during the {e control} step delivers the control message to an
      arbitrary prefix of the ordered destination sequence (and implies the
      data step completed);
    - crashes can also strike before any send or after all sends of the
      round. *)

type point =
  | Before_send
      (** The process crashes at the start of the round: nothing it planned
          to send this round is delivered. *)
  | During_data of Pid.Set.t
      (** The process crashes during the data step.  The payload is the set
          of destinations that actually receive their data message (the
          adversary's choice; intersected with the planned destinations).
          No control message is sent. *)
  | After_data of int
      (** Extended model only: the data step completed, and the control
          message reaches the first [k] destinations of the ordered control
          sequence ([k = 0] means none).  [During_data s] with [s] = all
          destinations is {e not} equivalent: [After_data 0] guarantees all
          data was delivered. *)
  | After_send
      (** Every planned message of the round (data and control) was
          delivered, but the process dies before its computation phase — in
          particular before it can decide this round. *)

type event = { round : int; point : point }
(** A crash in round [round] (1-based) at the given point. *)

val make : round:int -> point -> event
(** Validates [round >= 1] and, for [After_data k], [k >= 0]. *)

val valid_for : Model_kind.t -> event -> (unit, string) result
(** [After_data _] is only meaningful in the extended model. *)

val pp_point : Format.formatter -> point -> unit
val pp : Format.formatter -> event -> unit
val equal_point : point -> point -> bool
val equal : event -> event -> bool
