(** The two round-based synchronous models of the paper (Section 2).

    [Classic] is the traditional model: a round is send / receive / compute,
    and a sender crashing mid-send delivers to an arbitrary subset of its
    destinations.

    [Extended] adds a second, control ("synchronization") sending step
    executed immediately after the data step with no intervening computation.
    Its destinations are an ordered sequence, and a sender crashing mid-step
    delivers to an arbitrary {e prefix} of that sequence. *)

type t = Classic | Extended

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
