type t = int

let of_int i =
  if i < 1 then invalid_arg (Printf.sprintf "Pid.of_int: %d < 1" i);
  i

let to_int i = i
let equal = Int.equal
let compare = Int.compare
let pp ppf i = Format.fprintf ppf "p%d" i
let to_string i = "p" ^ string_of_int i

let range ~lo ~hi =
  if lo < 1 then invalid_arg "Pid.range: lo < 1";
  List.init (max 0 (hi - lo + 1)) (fun k -> lo + k)

let range_desc ~hi ~lo =
  if lo < 1 then invalid_arg "Pid.range_desc: lo < 1";
  List.init (max 0 (hi - lo + 1)) (fun k -> hi - k)

let all ~n = range ~lo:1 ~hi:n

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_ints is = Set.of_list (List.map of_int is)

let pp_set ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map to_string (Set.elements s)))
