(** Process identifiers.

    The paper numbers processes [p_1 .. p_n]; identifiers are therefore
    1-based.  The rotating-coordinator algorithm relies on this total order
    (the coordinator of round [r] is [p_r]). *)

type t = private int
(** A process identifier, [>= 1]. *)

val of_int : int -> t
(** [of_int i] validates [i >= 1].  Raises [Invalid_argument] otherwise. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints ["p3"] style. *)

val to_string : t -> string

val all : n:int -> t list
(** [all ~n] is [[p1; ...; pn]] in increasing order. *)

val range : lo:int -> hi:int -> t list
(** [range ~lo ~hi] is [[p_lo; ...; p_hi]] (empty when [lo > hi]). *)

val range_desc : hi:int -> lo:int -> t list
(** [range_desc ~hi ~lo] is [[p_hi; p_hi-1; ...; p_lo]] — the order in which
    the Figure 1 coordinator sends its commit messages. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_ints : int list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
