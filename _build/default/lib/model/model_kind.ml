type t = Classic | Extended

let equal a b =
  match (a, b) with
  | Classic, Classic | Extended, Extended -> true
  | Classic, Extended | Extended, Classic -> false

let to_string = function Classic -> "classic" | Extended -> "extended"
let pp ppf t = Format.pp_print_string ppf (to_string t)
