type point =
  | Before_send
  | During_data of Pid.Set.t
  | After_data of int
  | After_send

type event = { round : int; point : point }

let make ~round point =
  if round < 1 then invalid_arg "Crash.make: round < 1";
  (match point with
  | After_data k when k < 0 -> invalid_arg "Crash.make: negative prefix"
  | Before_send | During_data _ | After_data _ | After_send -> ());
  { round; point }

let valid_for kind event =
  match (kind, event.point) with
  | Model_kind.Classic, After_data _ ->
    Error "After_data crash point requires the extended model"
  | (Model_kind.Classic | Model_kind.Extended), _ -> Ok ()

let pp_point ppf = function
  | Before_send -> Format.pp_print_string ppf "before-send"
  | During_data s -> Format.fprintf ppf "during-data%a" Pid.pp_set s
  | After_data k -> Format.fprintf ppf "after-data(prefix=%d)" k
  | After_send -> Format.pp_print_string ppf "after-send"

let pp ppf e = Format.fprintf ppf "@@r%d %a" e.round pp_point e.point

let equal_point a b =
  match (a, b) with
  | Before_send, Before_send | After_send, After_send -> true
  | During_data s1, During_data s2 -> Pid.Set.equal s1 s2
  | After_data k1, After_data k2 -> Int.equal k1 k2
  | (Before_send | During_data _ | After_data _ | After_send), _ -> false

let equal a b = Int.equal a.round b.round && equal_point a.point b.point
