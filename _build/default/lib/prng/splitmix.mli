(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable generator (Steele, Lea & Flood, OOPSLA 2014)
    with a 64-bit state advanced by the golden-ratio increment.  It is the
    seeding primitive for the rest of the [prng] library: every experiment in
    the reproduction derives its randomness from a single [int64] seed, so
    runs are replayable bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator that will replay [g]'s future
    stream. *)

val next : t -> int64
(** [next g] advances [g] and returns 64 uniformly distributed bits. *)

val split : t -> t
(** [split g] advances [g] once and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output.  Used to give each
    simulated process or experiment repetition its own stream without
    cross-contamination. *)
