type t = Splitmix.t

let create ~seed = Splitmix.create ~seed
let of_int s = create ~seed:(Int64.of_int s)
let split = Splitmix.split
let copy = Splitmix.copy
let bits64 = Splitmix.next

let bool g = Int64.logand (bits64 g) 1L = 1L

(* 62 uniform non-negative bits as an OCaml int (always fits on 64-bit
   platforms). *)
let nonneg g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the largest multiple of [bound] below 2^62. *)
  let limit = (max_int / 2 / bound) * bound in
  let rec draw () =
    let v = nonneg g in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in g lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int g (hi - lo + 1)

let float g x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  (* 53 uniform bits scaled into [0, 1). *)
  v /. 9007199254740992.0 *. x

let choose g = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let choose_array g a =
  if Array.length a = 0 then invalid_arg "Rng.choose_array: empty array";
  a.(int g (Array.length a))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n Fun.id in
  shuffle_in_place g a;
  a

let subset g ?(p = 0.5) xs = List.filter (fun _ -> float g 1.0 < p) xs

let sample_without_replacement g k xs =
  let n = List.length xs in
  if k >= n then xs
  else begin
    (* Choose k distinct indices via a partial shuffle, then filter in
       order. *)
    let idx = permutation g n in
    let keep = Hashtbl.create k in
    for i = 0 to k - 1 do
      Hashtbl.replace keep idx.(i) ()
    done;
    List.filteri (fun i _ -> Hashtbl.mem keep i) xs
  end

let geometric g ~p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Rng.geometric: p not in (0,1]";
  if p = 1.0 then 0
  else
    let rec loop n = if float g 1.0 < p then n else loop (n + 1) in
    loop 0

let exponential g ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float g 1.0 in
  -.mean *. log u
