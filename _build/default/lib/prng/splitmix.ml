type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy g = { state = g.state }

(* The output function is the 64-bit variant of the MurmurHash3 finalizer
   (mix13 in the SplitMix64 reference implementation). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

(* A distinct finalizer (mix64variant13's companion) decorrelates the child
   stream from the parent's. *)
let mix_gamma z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  let z = Int64.(logxor z (shift_right_logical z 33)) in
  (* gammas must be odd *)
  Int64.logor z 1L

let split g =
  let seed = next g in
  let gamma_seed = Int64.add g.state golden_gamma in
  (* Fold the (odd) derived gamma into the child's seed so that children of
     successive splits start far apart in state space. *)
  { state = Int64.add seed (mix_gamma gamma_seed) }
