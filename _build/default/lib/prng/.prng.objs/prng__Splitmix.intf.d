lib/prng/splitmix.mli:
