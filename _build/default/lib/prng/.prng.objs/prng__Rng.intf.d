lib/prng/rng.mli:
