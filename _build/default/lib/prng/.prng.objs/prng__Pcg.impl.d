lib/prng/pcg.ml: Int32 Int64
