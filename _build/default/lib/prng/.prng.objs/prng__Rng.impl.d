lib/prng/rng.ml: Array Fun Hashtbl Int64 List Splitmix
