lib/prng/pcg.mli:
