(** PCG32 pseudo-random number generator (O'Neill, 2014).

    A second, structurally unrelated generator used to cross-check the
    statistical tests on {!Splitmix} and available to experiments that want a
    different stream family.  Produces 32 random bits per step from a 64-bit
    LCG state passed through a permutation output function. *)

type t
(** Mutable generator state. *)

val create : ?stream:int64 -> seed:int64 -> unit -> t
(** [create ?stream ~seed ()] returns a fresh generator.  Generators with
    different [stream] values (the LCG increment selector) produce
    independent sequences even under the same [seed].  Default stream is
    [0xda3e39cb94b95bdbL]. *)

val next : t -> int32
(** [next g] advances [g] and returns 32 uniformly distributed bits. *)

val next64 : t -> int64
(** [next64 g] concatenates two successive 32-bit outputs. *)
