(** Deterministic random streams for simulations and experiments.

    High-level sampling interface built on {!Splitmix}.  Every consumer of
    randomness in the reproduction (adversaries, workload generators,
    asynchronous schedulers) takes an explicit [Rng.t]; there is no hidden
    global state, so any run is replayable from its seed. *)

type t
(** A mutable random stream. *)

val create : seed:int64 -> t
(** [create ~seed] makes a stream; equal seeds give equal streams. *)

val of_int : int -> t
(** [of_int s] is [create ~seed:(Int64.of_int s)]. *)

val split : t -> t
(** [split g] derives an independent child stream, advancing [g] once.
    Splitting lets each process / repetition own a private stream whose
    output does not depend on how much randomness the others consumed. *)

val copy : t -> t
(** [copy g] replays [g]'s future output. *)

val bits64 : t -> int64
(** 64 uniform bits. *)

val bool : t -> bool
(** A uniform boolean. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive;
    raises [Invalid_argument] otherwise.  Uses rejection sampling, so the
    result is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive).  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  Raises [Invalid_argument] on []. *)

val choose_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform permutation of [0 .. n-1]. *)

val subset : t -> ?p:float -> 'a list -> 'a list
(** [subset g ~p xs] keeps each element independently with probability [p]
    (default [0.5]), preserving order.  This is the sampler behind the
    "arbitrary subset of destinations" crash semantics of the data step. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement g k xs] picks [min k (length xs)] distinct
    elements, preserving the original order. *)

val geometric : t -> p:float -> int
(** [geometric g ~p] is the number of failures before the first success of a
    Bernoulli([p]) sequence; [p] must be in (0, 1]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean.  Used for
    message latencies in the asynchronous simulator. *)
