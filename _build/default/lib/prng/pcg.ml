type t = { mutable state : int64; inc : int64 }

let multiplier = 6364136223846793005L

let default_stream = 0xda3e39cb94b95bdbL

let step g = g.state <- Int64.(add (mul g.state multiplier) g.inc)

let create ?(stream = default_stream) ~seed () =
  (* The increment must be odd; the standard PCG seeding runs one step with
     the state at 0, adds the seed, and steps again. *)
  let g = { state = 0L; inc = Int64.(logor (shift_left stream 1) 1L) } in
  step g;
  g.state <- Int64.add g.state seed;
  step g;
  g

(* XSH-RR output function: xorshift-high then random rotate. *)
let output state =
  let xorshifted =
    Int64.to_int32
      Int64.(shift_right_logical (logxor (shift_right_logical state 18) state) 27)
  in
  let rot = Int64.(to_int (shift_right_logical state 59)) in
  let left = Int32.shift_left xorshifted (-rot land 31) in
  let right = Int32.shift_right_logical xorshifted rot in
  Int32.logor right left

let next g =
  let old = g.state in
  step g;
  output old

let next64 g =
  let hi = Int64.of_int32 (next g) in
  let lo = Int64.of_int32 (next g) in
  Int64.(logor (shift_left hi 32) (logand lo 0xFFFFFFFFL))
