(** The interface a round-based algorithm presents to the engine.

    An algorithm is a deterministic per-process state machine.  In each round
    the engine asks it, in this order, for (1) its data messages, (2) its
    ordered control-message destinations, and then — if the process is still
    alive — feeds it everything it received and lets it compute, possibly
    deciding.  The two send steps happen "without a break": both are
    computed from the state as it stood at the start of the round, never
    from anything received during the round. *)

open Model

module type S = sig
  type state
  (** Per-process local state. *)

  type msg
  (** Data-message payloads.  Control (synchronization) messages carry no
      payload; the engine represents them implicitly. *)

  val name : string
  (** Human-readable algorithm name for reports. *)

  val model : Model_kind.t
  (** The model the algorithm is written for.  The engine refuses to run an
      [Extended] algorithm that emits control messages under the classic
      model. *)

  val decision_mode : [ `Halt | `Announce ]
  (** What a decision means operationally.

      [`Halt] — the paper's [return(v)]: the process terminates on deciding
      and sends nothing afterwards (every algorithm in the paper).

      [`Announce] — {e early deciding} without {e early stopping}: the
      process records its decision but keeps executing rounds (relaying
      information) until the run winds down.  This is the mode of the
      classic-model non-uniform f+1 baseline, where a decided process must
      keep relaying or correct processes could disagree; a crash after the
      announcement is tracked separately
      ({!Run_result.post_decision_crashes}) because the decision still
      counts for (uniform) agreement. *)

  val msg_bits : value_bits:int -> msg -> int
  (** Size of a data message in bits, given the declared size [value_bits]
      of a proposal value (the paper's |v|).  Control messages always count
      for one bit (Theorem 2). *)

  val pp_msg : Format.formatter -> msg -> unit

  val init : n:int -> t:int -> me:Pid.t -> proposal:int -> state
  (** Initial state of process [me] proposing [proposal] in a system of [n]
      processes of which at most [t] may crash. *)

  val data_sends : state -> round:int -> (Pid.t * msg) list
  (** Data messages to emit this round, in sending order. *)

  val sync_sends : state -> round:int -> Pid.t list
  (** Ordered destinations of the control message for this round; must be
      [[]] when {!model} is [Classic].  If the process crashes during this
      step, an arbitrary {e prefix} of the list is served. *)

  val compute :
    state ->
    round:int ->
    data:(Pid.t * msg) list ->
    syncs:Pid.t list ->
    state * int option
  (** Computation phase: [data] are the received data messages and [syncs]
      the senders of received control messages, both in increasing sender
      order.  Returns the new state and an optional decision.  A decision
      terminates the process (it sends nothing in later rounds). *)
end
