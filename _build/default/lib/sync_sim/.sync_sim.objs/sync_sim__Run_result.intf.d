lib/sync_sim/run_result.mli: Format Model Pid Trace
