lib/sync_sim/trace.ml: Crash Format List Model Pid
