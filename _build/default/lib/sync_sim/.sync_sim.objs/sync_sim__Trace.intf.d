lib/sync_sim/trace.mli: Crash Format Model Pid
