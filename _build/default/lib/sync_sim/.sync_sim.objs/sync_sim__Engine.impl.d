lib/sync_sim/engine.ml: Algorithm_intf Array Crash Format List Model Model_kind Option Pid Run_result Schedule Trace
