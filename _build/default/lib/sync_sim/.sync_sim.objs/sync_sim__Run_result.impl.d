lib/sync_sim/run_result.ml: Array Format Int List Model Pid Trace
