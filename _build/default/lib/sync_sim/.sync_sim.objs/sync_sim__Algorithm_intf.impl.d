lib/sync_sim/algorithm_intf.ml: Format Model Model_kind Pid
