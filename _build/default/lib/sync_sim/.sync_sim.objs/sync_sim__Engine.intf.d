lib/sync_sim/engine.mli: Algorithm_intf Model Run_result Schedule
