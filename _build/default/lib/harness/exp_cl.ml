(** EXP-CL — related-work exemplar: Chandy–Lamport snapshots, where a
    synchronization message (the marker) buys a consistent global state on
    FIFO channels. *)

let run () =
  let table =
    Diag.Table.create
      ~title:"Chandy-Lamport snapshots over the token-transfer workload"
      ~header:
        [
          "n";
          "seed";
          "recorded total";
          "expected";
          "conservation";
          "consistent cut";
          "in-flight tokens captured";
          "markers";
        ]
      ()
  in
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let r =
            Snapshot.Chandy_lamport.run (Snapshot.Chandy_lamport.config ~n ~seed ())
          in
          let in_flight =
            List.fold_left
              (fun acc (_, c) -> acc + c)
              0 r.Snapshot.Chandy_lamport.snapshot.Snapshot.Chandy_lamport.channels
          in
          Diag.Table.add_row table
            [
              Diag.Table.fmt_int n;
              Diag.Table.fmt_int seed;
              Diag.Table.fmt_int r.Snapshot.Chandy_lamport.recorded_total;
              Diag.Table.fmt_int r.Snapshot.Chandy_lamport.expected_total;
              Diag.Table.fmt_bool r.Snapshot.Chandy_lamport.conservation_ok;
              Diag.Table.fmt_bool r.Snapshot.Chandy_lamport.consistent_cut;
              Diag.Table.fmt_int in_flight;
              Diag.Table.fmt_int r.Snapshot.Chandy_lamport.markers_sent;
            ])
        [ 1; 7; 42 ])
    [ 3; 5; 8 ];
  [ table ]

let experiment =
  {
    Experiment.id = "CL";
    title = "synchronization messages in fault-free computing";
    paper_ref = "Section 1 (related work), ref [6]";
    run;
  }
