(** Proposal-vector generators for the experiments. *)

val distinct : int -> int array
(** [p_i] proposes [i] — every decision is traceable to its proposer. *)

val binary : n:int -> zeros:int -> int array
(** The first [zeros] processes propose 0, the rest 1 — the workload of the
    valence analysis. *)

val constant : n:int -> value:int -> int array

val random : rng:Prng.Rng.t -> n:int -> range:int -> int array
