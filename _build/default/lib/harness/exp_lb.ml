(** EXP-LB — Theorems 3–5: the f+1 lower bound, verified by search.

    For every f: (a) tightness — the silent killer forces the algorithm to
    exactly f+1 rounds; (b) impossibility — the "decide by round f"
    truncation admits a uniform-agreement violation, found by exhausting
    the adversary's schedule space. *)

open Model

module Ex = Lower_bound.Explorer.Make (Core.Rwwc)

let run () =
  let n = 5 in
  let tightness =
    Diag.Table.create
      ~title:(Printf.sprintf "Tightness: silent killer forces round f+1 (n = %d)" n)
      ~header:[ "f"; "last decision round"; "= f+1" ] ()
  in
  for f = 0 to n - 2 do
    let cert = Ex.tightness ~n ~f ~proposals:(Workloads.distinct n) in
    Diag.Table.add_row tightness
      [
        Diag.Table.fmt_int f;
        Diag.Table.fmt_int cert.Lower_bound.Explorer.max_decision_round;
        Diag.Table.fmt_bool (cert.Lower_bound.Explorer.max_decision_round = f + 1);
      ]
  done;
  let witnesses =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Impossibility: a decide-by-f truncation violates uniform \
            agreement (n = %d, exhaustive search)"
           n)
      ~header:
        [ "decide by"; "witness schedule"; "decided values"; "schedules searched" ]
      ()
  in
  (* f = 0: no communication at all — trivial, stated directly. *)
  Diag.Table.add_row witnesses
    [
      "0";
      "(none needed: 0 rounds = no communication)";
      (if Ex.zero_round_impossible ~n ~proposals:(Workloads.distinct n) then
         "each its own proposal"
       else "-");
      "0";
    ];
  for decide_by = 1 to n - 2 do
    match
      Ex.truncation_violation ~n ~decide_by ~proposals:(Workloads.distinct n)
    with
    | None ->
      Diag.Table.add_row witnesses
        [ Diag.Table.fmt_int decide_by; "NOT FOUND"; "-"; "-" ]
    | Some w ->
      Diag.Table.add_row witnesses
        [
          Diag.Table.fmt_int decide_by;
          Schedule.to_string w.Lower_bound.Explorer.schedule;
          String.concat ","
            (List.map string_of_int
               (Sync_sim.Run_result.decided_values w.Lower_bound.Explorer.result));
          Diag.Table.fmt_int w.Lower_bound.Explorer.schedules_searched;
        ]
  done;
  [ tightness; witnesses ]

let experiment =
  {
    Experiment.id = "LB";
    title = "the f+1 lower bound (tightness + impossibility witnesses)";
    paper_ref = "Theorems 3, 4, 5";
    run;
  }
