(** EXP-T2 — Theorem 2: bit and message complexity, best and worst case,
    measured against the closed forms. *)

open Sync_sim

let best_case () =
  let table =
    Diag.Table.create ~title:"Theorem 2 best case: no crash"
      ~header:[ "n"; "|v|"; "measured bits"; "paper (n-1)(|v|+1)"; "match" ]
      ()
  in
  List.iter
    (fun n ->
      List.iter
        (fun value_bits ->
          let res =
            Runners.Rwwc_runner.run
              (Engine.config ~value_bits ~n ~t:(n - 2)
                 ~proposals:(Workloads.distinct n) ())
          in
          let res = Runners.checked ~context:"T2 best" ~bound:1 res in
          let paper = Complexity.Formulas.best_case_bits ~n ~value_bits in
          Diag.Table.add_row table
            [
              Diag.Table.fmt_int n;
              Diag.Table.fmt_int value_bits;
              Diag.Table.fmt_int (Run_result.total_bits res);
              Diag.Table.fmt_int paper;
              Diag.Table.fmt_bool (Run_result.total_bits res = paper);
            ])
        [ 2; 8; 32; 64 ])
    [ 4; 8; 16; 32 ];
  table

let worst_case () =
  let value_bits = 32 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Theorem 2 worst case: greedy coordinator killer (|v| = %d)"
           value_bits)
      ~header:
        [
          "n";
          "f";
          "data msgs";
          "paper (f+1)(n-1-f/2)";
          "commit msgs";
          "exact (f+1)(n-f-1)";
          "paper bound (f+1)(n-f)";
          "total bits";
          "paper bit bound";
          "within";
        ]
      ()
  in
  List.iter
    (fun n ->
      List.iter
        (fun f ->
          if f <= n - 2 then begin
            let res =
              Runners.Rwwc_runner.run
                (Engine.config ~value_bits
                   ~schedule:
                     (Adversary.Strategies.coordinator_killer ~n ~f
                        ~style:Adversary.Strategies.Greedy)
                   ~n ~t:(n - 2) ~proposals:(Workloads.distinct n) ())
            in
            let res =
              Runners.checked
                ~context:(Printf.sprintf "T2 worst n=%d f=%d" n f)
                ~bound:(f + 1) res
            in
            let bit_bound =
              Complexity.Formulas.worst_case_bits_paper ~n ~f ~value_bits
            in
            Diag.Table.add_row table
              [
                Diag.Table.fmt_int n;
                Diag.Table.fmt_int f;
                Diag.Table.fmt_int res.Run_result.data_msgs;
                Diag.Table.fmt_int (Complexity.Formulas.worst_case_data_msgs ~n ~f);
                Diag.Table.fmt_int res.Run_result.sync_msgs;
                Diag.Table.fmt_int
                  (Complexity.Formulas.worst_case_commit_msgs_exact ~n ~f);
                Diag.Table.fmt_int
                  (Complexity.Formulas.worst_case_commit_msgs_paper ~n ~f);
                Diag.Table.fmt_int (Run_result.total_bits res);
                Diag.Table.fmt_int bit_bound;
                Diag.Table.fmt_bool (Run_result.total_bits res <= bit_bound);
              ]
          end)
        [ 0; 1; 2; 4; 8 ])
    [ 4; 8; 16; 32 ];
  table

let run () = [ best_case (); worst_case () ]

let experiment =
  {
    Experiment.id = "T2";
    title = "bit and message complexity";
    paper_ref = "Theorem 2";
    run;
  }
