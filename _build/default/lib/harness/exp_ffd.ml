(** EXP-FFD — the related-work comparison with the fast failure detector
    model (Aguilera, Le Lann & Toueg, DISC'02).

    Columns: the extended model's wall clock ((f+1)(D+δ), measured rounds),
    the classic early-stopping wall clock ((f+2)D, measured rounds), the
    DISC'02 published bound D + f·d (analytic — their algorithm is the
    closed comparator), and the measured decision time of our [Fastfd.Paced]
    reconstruction (which pays d + D per failure in our conservative
    network; see DESIGN.md §5).  The paper's headline checks out in every
    row pair: with f = 0 both the extended algorithm and the fast-FD one
    decide within a single round's delay. *)

open Model

let big_d = 100.0

module Paced = Fastfd.Paced.Make (struct
  let d = 1.0
  let big_d = big_d
end)

module Paced_runner = Timed_sim.Timed_engine.Make (Paced)

let measured_paced ~n ~f =
  (* Silent coordinator crashes at their slot opening. *)
  let crashes =
    List.init f (fun i ->
        {
          Timed_sim.Timed_engine.victim = Pid.of_int (i + 1);
          at = Paced.slot_time (i + 1);
          batch_prefix = 0;
        })
  in
  let crash_times =
    List.map
      (fun (c : Timed_sim.Timed_engine.crash_spec) -> (c.victim, c.at))
      crashes
  in
  let res =
    Paced_runner.run
      (Timed_sim.Timed_engine.config
         ~latency:(Timed_sim.Timed_engine.Fixed big_d)
         ~crashes
         ~fd_plan:(Fastfd.Device.plan ~n ~d:1.0 ~crashes:crash_times ())
         ~n ~t:(n - 1) ~proposals:(Workloads.distinct n) ())
  in
  (match Timed_sim.Timed_engine.decided_values res with
  | [ _ ] -> ()
  | vs ->
    failwith
      (Printf.sprintf "FFD paced agreement broken: %d values" (List.length vs)));
  if not (Timed_sim.Timed_engine.correct_all_decided res) then
    failwith "FFD paced termination broken";
  Option.get (Timed_sim.Timed_engine.max_decision_time res)

let run () =
  let n = 8 in
  let t = n - 2 in
  let d = 1.0 in
  let delta = 1.0 in
  let cm = Timing.Cost_model.make ~d_round:big_d ~delta ~d_detect:d () in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Decision time vs f (n = %d, D = %.0f, delta = %.0f, d = %.0f)" n
           big_d delta d)
      ~header:
        [
          "f";
          "extended (f+1)(D+delta)";
          "classic ES (f+2)D";
          "fast-FD published D+f*d";
          "fast-FD paced measured";
          "extended vs classic";
        ]
      ()
  in
  List.iter
    (fun f ->
      (* measured rounds from the synchronous engines *)
      let schedule =
        Adversary.Strategies.coordinator_killer ~n ~f
          ~style:Adversary.Strategies.Silent
      in
      let ext =
        Runners.checked ~context:"FFD ext" ~bound:(f + 1)
          (Runners.Rwwc_runner.run
             (Sync_sim.Engine.config ~schedule ~n ~t
                ~proposals:(Workloads.distinct n) ()))
      in
      let classic =
        Runners.checked ~context:"FFD classic"
          ~bound:(min (t + 1) (f + 2))
          (Runners.Es_runner.run
             (Sync_sim.Engine.config ~schedule ~n ~t
                ~proposals:(Workloads.distinct n) ()))
      in
      let ext_time =
        Timing.Cost_model.extended_time cm ~rounds:(Runners.max_round ext)
      and classic_time =
        Timing.Cost_model.classic_time cm ~rounds:(Runners.max_round classic)
      in
      Diag.Table.add_row table
        [
          Diag.Table.fmt_int f;
          Diag.Table.fmt_float ext_time;
          Diag.Table.fmt_float classic_time;
          Diag.Table.fmt_float (Fastfd.Device.published_decision_bound ~big_d ~d ~f);
          Diag.Table.fmt_float (measured_paced ~n ~f);
          Diag.Table.fmt_ratio classic_time ext_time;
        ])
    [ 0; 1; 2; 3; 4; 5; 6 ];
  [ table ]

let experiment =
  {
    Experiment.id = "FFD";
    title = "extended model vs fast failure detectors";
    paper_ref = "Section 1 (related work), ref [1]";
    run;
  }
