(** An experiment regenerates one of the paper's evaluation artefacts
    (a theorem's bound, an analysis table, a comparison point) as one or
    more tables with a "paper" column next to the measured one. *)

type t = {
  id : string;  (** e.g. "T1" — the DESIGN.md experiment index key *)
  title : string;
  paper_ref : string;  (** which theorem / section / figure it reproduces *)
  run : unit -> Diag.Table.t list;
}

let pp_header ppf e =
  Format.fprintf ppf "== EXP-%s: %s ==@.   reproduces: %s@." e.id e.title
    e.paper_ref

let print ?(markdown = false) e =
  Format.printf "%a@." pp_header e;
  List.iter
    (fun table ->
      print_string
        (if markdown then Diag.Table.render_markdown table
         else Diag.Table.render table);
      print_newline ())
    (e.run ())
