(** EXP-UNI — what uniformity costs, and what the extended model buys.

    The paper's motivating delta in one table: in the classic model,
    non-uniform consensus is solvable in f+1 rounds but uniform consensus
    needs f+2; the extended model's synchronization messages buy uniform
    agreement at the f+1 price.  All three algorithms face the same
    exhaustive adversary. *)

open Model
open Sync_sim

type verdict = {
  worst_decision_minus_f : int;
  uniform_violations : int;
  first_witness : string option;
  searched : int;
}

module Probe (A : Algorithm_intf.S) = struct
  module R = Engine.Make (A)

  let assess ~n ~t ~max_f ~max_round =
    let proposals = Workloads.distinct n in
    let worst = ref min_int
    and violations = ref 0
    and witness = ref None
    and searched = ref 0 in
    Seq.iter
      (fun schedule ->
        incr searched;
        let res = R.run (Engine.config ~schedule ~n ~t ~proposals ()) in
        let f = Pid.Set.cardinal (Run_result.all_crashes res) in
        (* Every candidate must stay a consensus algorithm in the
           non-uniform sense; anything else would disqualify the row. *)
        Spec.Properties.assert_ok
          ~context:(A.name ^ " on " ^ Schedule.to_string schedule)
          [
            Spec.Properties.validity res;
            Spec.Properties.agreement res;
            Spec.Properties.termination res;
          ];
        (match Run_result.max_decision_round res with
        | Some r -> worst := max !worst (r - f)
        | None -> ());
        if not (Spec.Properties.all_ok [ Spec.Properties.uniform_agreement res ])
        then begin
          incr violations;
          if !witness = None then witness := Some (Schedule.to_string schedule)
        end)
      (Adversary.Enumerate.schedules ~model:A.model ~n ~max_f ~max_round);
    {
      worst_decision_minus_f = !worst;
      uniform_violations = !violations;
      first_witness = !witness;
      searched = !searched;
    }
end

module P_rwwc = Probe (Core.Rwwc)
module P_es = Probe (Baselines.Early_stopping)
module P_nu = Probe (Baselines.Nonuniform_early)

let run () =
  let n = 4 and t = 2 and max_f = 2 and max_round = 3 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Uniformity vs speed under the exhaustive adversary (n = %d, \
            t = %d, f <= %d)"
           n t max_f)
      ~header:
        [
          "algorithm";
          "model";
          "worst decision round";
          "uniform agreement";
          "first uniformity witness";
          "schedules";
        ]
      ()
  in
  let row name model_name verdict ~bound_label =
    Diag.Table.add_row table
      [
        name;
        model_name;
        (Printf.sprintf "f+%d (%s)" verdict.worst_decision_minus_f bound_label);
        (if verdict.uniform_violations = 0 then "holds"
         else Printf.sprintf "VIOLATED (%d runs)" verdict.uniform_violations);
        Option.value verdict.first_witness ~default:"-";
        Diag.Table.fmt_int verdict.searched;
      ]
  in
  row "rwwc (Figure 1)" "extended"
    (P_rwwc.assess ~n ~t ~max_f ~max_round)
    ~bound_label:"paper: f+1";
  row "early-stopping" "classic"
    (P_es.assess ~n ~t ~max_f ~max_round)
    ~bound_label:"lower bound: f+2";
  row "nonuniform-early" "classic"
    (P_nu.assess ~n ~t ~max_f ~max_round)
    ~bound_label:"f+1, but not uniform";
  [ table ]

let experiment =
  {
    Experiment.id = "UNI";
    title = "uniformity for free: f+1 uniform consensus";
    paper_ref = "Introduction (lower-bound table), refs [7, 13]";
    run;
  }
