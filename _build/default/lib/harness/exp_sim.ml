(** EXP-SIM — Section 2.2's computability equivalence: the Figure 1
    algorithm compiled onto the classic model still solves uniform
    consensus, at an n-fold round cost. *)

open Model
open Sync_sim

let scenarios ~n =
  [
    ("no crash", Schedule.empty);
    ( "p1 silent",
      Adversary.Strategies.coordinator_killer ~n ~f:1
        ~style:Adversary.Strategies.Silent );
    ( "greedy f=2",
      Adversary.Strategies.coordinator_killer ~n ~f:2
        ~style:Adversary.Strategies.Greedy );
    ( "commit prefix 1",
      Schedule.of_list
        [ (Pid.of_int 1, Crash.make ~round:1 (Crash.After_data 1)) ] );
  ]

let run () =
  let table =
    Diag.Table.create
      ~title:
        "Extended-on-classic compilation: same decisions, n sub-rounds per \
         simulated round"
      ~header:
        [
          "n";
          "scenario";
          "native rounds";
          "compiled rounds";
          "blow-up";
          "same decisions";
        ]
      ()
  in
  List.iter
    (fun n ->
      let t = n - 2 in
      let proposals = Workloads.distinct n in
      List.iter
        (fun (label, ext_schedule) ->
          let native =
            Runners.Rwwc_runner.run
              (Engine.config ~schedule:ext_schedule ~n ~t ~proposals ())
          in
          let f = Runners.f_actual native in
          let native =
            Runners.checked ~context:("SIM native " ^ label) ~bound:(f + 1)
              native
          in
          let compiled =
            Runners.Compiled_runner.run
              (Engine.config
                 ~schedule:(Runners.Compiled.translate_schedule ~n ext_schedule)
                 ~max_rounds:(n * (t + 2)) ~n ~t ~proposals ())
          in
          Spec.Properties.assert_ok ~context:("SIM compiled " ^ label)
            (Spec.Properties.uniform_consensus compiled);
          let native_decisions = Run_result.decisions native
          and compiled_decisions =
            List.map
              (fun (pid, v, r) ->
                (pid, v, Runners.Compiled.to_extended_round ~n r))
              (Run_result.decisions compiled)
          in
          let native_rounds = Runners.max_round native in
          let compiled_rounds = Runners.max_round compiled in
          Diag.Table.add_row table
            [
              Diag.Table.fmt_int n;
              label;
              Diag.Table.fmt_int native_rounds;
              Diag.Table.fmt_int compiled_rounds;
              Diag.Table.fmt_ratio
                (float_of_int compiled_rounds)
                (float_of_int native_rounds);
              Diag.Table.fmt_bool (native_decisions = compiled_decisions);
            ])
        (scenarios ~n))
    [ 4; 8; 16 ];
  [ table ]

let experiment =
  {
    Experiment.id = "SIM";
    title = "simulating the extended model on the classic one";
    paper_ref = "Section 2.2 (computability power)";
    run;
  }
