lib/harness/exp_t1.ml: Adversary Array Complexity Diag Engine Experiment Fun List Model Model_kind Parallel Printf Prng Runners Sync_sim Workloads
