lib/harness/exp_s22.ml: Adversary Diag Engine Experiment List Printf Runners Sync_sim Timing Workloads
