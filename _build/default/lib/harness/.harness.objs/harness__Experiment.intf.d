lib/harness/experiment.mli: Diag Format
