lib/harness/registry.ml: Exp_abl Exp_biv Exp_cl Exp_eff Exp_f1 Exp_ffd Exp_lan Exp_lb Exp_mr99 Exp_s22 Exp_sim Exp_t1 Exp_t2 Exp_uni Experiment List String
