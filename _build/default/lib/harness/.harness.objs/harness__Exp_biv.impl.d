lib/harness/exp_biv.ml: Baselines Core Diag Experiment Format List Lower_bound Model Workloads
