lib/harness/runners.ml: Baselines Core Engine Model Option Run_result Spec Sync_sim
