lib/harness/exp_eff.mli: Experiment
