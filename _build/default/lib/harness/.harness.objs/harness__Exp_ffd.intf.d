lib/harness/exp_ffd.mli: Experiment
