lib/harness/exp_cl.mli: Experiment
