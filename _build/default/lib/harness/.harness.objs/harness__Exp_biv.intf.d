lib/harness/exp_biv.mli: Experiment
