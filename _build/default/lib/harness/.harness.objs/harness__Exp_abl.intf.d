lib/harness/exp_abl.mli: Experiment
