lib/harness/exp_sim.ml: Adversary Crash Diag Engine Experiment List Model Pid Run_result Runners Schedule Spec Sync_sim Workloads
