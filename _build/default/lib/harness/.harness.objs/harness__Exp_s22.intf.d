lib/harness/exp_s22.mli: Experiment
