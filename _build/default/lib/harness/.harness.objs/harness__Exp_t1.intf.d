lib/harness/exp_t1.mli: Experiment
