lib/harness/exp_eff.ml: Adversary Baselines Diag Engine Experiment List Printf Run_result Runners Spec Sync_sim Workloads
