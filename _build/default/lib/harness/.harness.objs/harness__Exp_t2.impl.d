lib/harness/exp_t2.ml: Adversary Complexity Diag Engine Experiment List Printf Run_result Runners Sync_sim Workloads
