lib/harness/exp_sim.mli: Experiment
