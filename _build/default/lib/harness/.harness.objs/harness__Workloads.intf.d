lib/harness/workloads.mli: Prng
