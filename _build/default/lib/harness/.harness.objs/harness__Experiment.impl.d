lib/harness/experiment.ml: Diag Format List
