lib/harness/exp_lan.ml: Adversary Core Diag Experiment Lan List Option Printf Runners String Sync_sim Timed_sim Workloads
