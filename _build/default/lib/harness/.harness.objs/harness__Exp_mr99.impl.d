lib/harness/exp_mr99.ml: Adversary Async_cons Diag Experiment Int64 List Model Pid Printf Prng Runners String Sync_sim Timed_sim Workloads
