lib/harness/exp_f1.mli: Experiment
