lib/harness/exp_uni.mli: Experiment
