lib/harness/runners.mli: Algorithm_intf Engine Model Run_result Sync_sim
