lib/harness/exp_cl.ml: Diag Experiment List Snapshot
