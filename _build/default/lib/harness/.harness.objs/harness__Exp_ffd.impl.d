lib/harness/exp_ffd.ml: Adversary Diag Experiment Fastfd List Model Option Pid Printf Runners Sync_sim Timed_sim Timing Workloads
