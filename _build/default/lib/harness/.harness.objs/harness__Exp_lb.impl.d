lib/harness/exp_lb.ml: Core Diag Experiment List Lower_bound Model Printf Schedule String Sync_sim Workloads
