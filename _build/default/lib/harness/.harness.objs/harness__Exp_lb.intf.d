lib/harness/exp_lb.mli: Experiment
