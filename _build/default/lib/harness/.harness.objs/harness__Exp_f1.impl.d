lib/harness/exp_f1.ml: Adversary Crash Diag Engine Experiment Format List Model Pid Printf Run_result Runners Schedule String Sync_sim Trace Workloads
