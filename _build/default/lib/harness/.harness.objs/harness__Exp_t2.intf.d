lib/harness/exp_t2.mli: Experiment
