lib/harness/workloads.ml: Array Prng
