lib/harness/exp_lan.mli: Experiment
