lib/harness/exp_abl.ml: Adversary Algorithm_intf Core Diag Engine Experiment Model Model_kind Pid Printf Run_result Schedule Seq Spec Sync_sim Workloads
