lib/harness/exp_mr99.mli: Experiment
