lib/harness/exp_uni.ml: Adversary Algorithm_intf Baselines Core Diag Engine Experiment Model Option Pid Printf Run_result Schedule Seq Spec Sync_sim Workloads
