(** EXP-T1 — Theorem 1 / Lemma 3: decisions complete by round f+1; one
    round when p1 survives.  Sweeps n and f under the worst-case silent
    killer and a pool of random schedules. *)

open Model
open Sync_sim

(* One repetition per derived seed; run under the domain pool — results are
   order-preserved, so the sweep is deterministic at any domain count. *)
let random_max_round ~base_seed ~n ~t ~f ~reps =
  let one rep =
    let rng = Prng.Rng.of_int (base_seed + rep) in
    let schedule =
      Adversary.Strategies.random ~rng ~model:Model_kind.Extended ~n ~f
        ~max_round:(t + 1)
    in
    let res =
      Runners.Rwwc_runner.run
        (Engine.config ~schedule ~n ~t ~proposals:(Workloads.distinct n) ())
    in
    let fa = Runners.f_actual res in
    let res =
      Runners.checked ~context:(Printf.sprintf "T1 random n=%d f=%d" n f)
        ~bound:(fa + 1) res
    in
    Runners.max_round res
  in
  Array.fold_left max 0 (Parallel.Pool.map one (Array.init reps Fun.id))

let run () =
  let base_seed = 20060601 in
  let reps = 200 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Decision rounds vs f (silent-killer worst case + %d random \
            schedules per cell)"
           reps)
      ~header:
        [ "n"; "f"; "paper bound f+1"; "silent killer"; "random worst"; "holds" ]
      ()
  in
  List.iter
    (fun n ->
      let t = n - 2 in
      List.iter
        (fun f ->
          if f <= t then begin
            let silent =
              Runners.Rwwc_runner.run
                (Engine.config
                   ~schedule:
                     (Adversary.Strategies.coordinator_killer ~n ~f
                        ~style:Adversary.Strategies.Silent)
                   ~n ~t ~proposals:(Workloads.distinct n) ())
            in
            let silent =
              Runners.checked ~context:(Printf.sprintf "T1 silent n=%d f=%d" n f)
                ~bound:(f + 1) silent
            in
            let silent_round = Runners.max_round silent in
            let random_round =
              random_max_round ~base_seed:(base_seed + (1000 * n) + f) ~n ~t ~f
                ~reps
            in
            Diag.Table.add_row table
              [
                Diag.Table.fmt_int n;
                Diag.Table.fmt_int f;
                Diag.Table.fmt_int (Complexity.Formulas.rwwc_round_bound ~f);
                Diag.Table.fmt_int silent_round;
                Diag.Table.fmt_int random_round;
                Diag.Table.fmt_bool
                  (silent_round = f + 1 && random_round <= f + 1);
              ]
          end)
        [ 0; 1; 2; 3; 6; 14; 30 ])
    [ 4; 8; 16; 32 ];
  [ table ]

let experiment =
  {
    Experiment.id = "T1";
    title = "decision by round f+1 (early stopping)";
    paper_ref = "Theorem 1, Lemma 3";
    run;
  }
