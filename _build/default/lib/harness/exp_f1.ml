(** EXP-F1 — Figure 1 in motion: round-by-round traces of the algorithm
    under the crash patterns discussed in Section 3.2. *)

open Model
open Sync_sim

let scenarios ~n =
  [
    ("no crash", Schedule.empty);
    ( "p1 silent",
      Adversary.Strategies.coordinator_killer ~n ~f:1
        ~style:Adversary.Strategies.Silent );
    ( "p1..p3 silent",
      Adversary.Strategies.coordinator_killer ~n ~f:3
        ~style:Adversary.Strategies.Silent );
    ( "p1 partial data to p2",
      Schedule.of_list
        [
          ( Pid.of_int 1,
            Crash.make ~round:1 (Crash.During_data (Pid.set_of_ints [ 2 ])) );
        ] );
    ( "p1 commits reach p8 only",
      Schedule.of_list
        [ (Pid.of_int 1, Crash.make ~round:1 (Crash.After_data 1)) ] );
  ]

let run () =
  let n = 8 in
  let summary =
    Diag.Table.create ~title:(Printf.sprintf "Figure 1 scenarios (n = %d)" n)
      ~header:
        [ "scenario"; "f"; "decided value"; "first decision"; "last decision"; "rounds"; "msgs" ]
      ()
  in
  let traces = ref [] in
  List.iter
    (fun (label, schedule) ->
      let res =
        Runners.Rwwc_runner.run
          (Engine.config ~record_trace:true ~schedule ~n ~t:(n - 2)
             ~proposals:(Workloads.distinct n) ())
      in
      let f = Runners.f_actual res in
      let res = Runners.checked ~context:("F1 " ^ label) ~bound:(f + 1) res in
      let decisions = Run_result.decisions res in
      let rounds = List.map (fun (_, _, r) -> r) decisions in
      Diag.Table.add_row summary
        [
          label;
          Diag.Table.fmt_int f;
          String.concat "," (List.map string_of_int (Run_result.decided_values res));
          Diag.Table.fmt_int (List.fold_left min max_int rounds);
          Diag.Table.fmt_int (List.fold_left max 0 rounds);
          Diag.Table.fmt_int res.Run_result.rounds_executed;
          Diag.Table.fmt_int (Run_result.total_msgs res);
        ];
      (* Event-level view for the first two scenarios only (the table stays
         readable). *)
      if List.length !traces < 2 then begin
        let t =
          Diag.Table.create ~title:(Printf.sprintf "trace: %s" label)
            ~header:[ "event" ] ()
        in
        List.iter
          (fun ev ->
            Diag.Table.add_row t [ Format.asprintf "%a" Trace.pp_event ev ])
          res.Run_result.trace;
        traces := t :: !traces
      end)
    (scenarios ~n);
  summary :: List.rev !traces

let experiment =
  {
    Experiment.id = "F1";
    title = "the Figure 1 algorithm, round by round";
    paper_ref = "Figure 1, Section 3.2";
    run;
  }
