(** EXP-BIV — see the implementation header for what this experiment
    reproduces and how. *)

val experiment : Experiment.t
(** Registered in {!Registry.all}; run via [bin/main.exe experiments]. *)
