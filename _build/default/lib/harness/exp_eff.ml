(** EXP-EFF — the introduction's efficiency claim, in messages and bits.

    The paper motivates the coordinator paradigm against the flooding
    strategy used by "all the consensus algorithms for synchronous systems
    that we are aware of" (Section 3.2, footnote 5).  This table puts the
    four algorithms side by side on identical failure scenarios: Figure 1
    touches the wire n-1 + n-1 times in the failure-free case where
    flooding moves n(n-1) set-valued messages per round for t+1 rounds. *)

open Sync_sim

let run () =
  let value_bits = 32 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Messages / bits / rounds per algorithm (silent killer, |v| = %d, \
            t = n-2)"
           value_bits)
      ~header:
        [ "n"; "f"; "algorithm"; "model"; "msgs"; "bits"; "rounds"; "uniform" ]
      ()
  in
  List.iter
    (fun n ->
      let t = n - 2 in
      List.iter
        (fun f ->
          let schedule =
            Adversary.Strategies.coordinator_killer ~n ~f
              ~style:Adversary.Strategies.Silent
          in
          let cfg = Engine.config ~value_bits ~schedule ~n ~t
              ~proposals:(Workloads.distinct n) () in
          let row name model res ~uniform ~bound =
            let res = Runners.checked ~context:("EFF " ^ name) ~bound res in
            Diag.Table.add_row table
              [
                Diag.Table.fmt_int n;
                Diag.Table.fmt_int f;
                name;
                model;
                Diag.Table.fmt_int (Run_result.total_msgs res);
                Diag.Table.fmt_int (Run_result.total_bits res);
                Diag.Table.fmt_int (Runners.max_round res);
                uniform;
              ]
          in
          row "rwwc (Figure 1)" "extended" (Runners.Rwwc_runner.run cfg)
            ~uniform:"yes" ~bound:(f + 1);
          row "early-stopping" "classic" (Runners.Es_runner.run cfg)
            ~uniform:"yes"
            ~bound:(min (t + 1) (f + 2));
          row "flood-set" "classic" (Runners.Flood_runner.run cfg)
            ~uniform:"yes" ~bound:(t + 1);
          (* The non-uniform baseline is checked for its own contract only. *)
          let module Nu = Engine.Make (Baselines.Nonuniform_early) in
          let nu = Nu.run cfg in
          Spec.Properties.assert_ok ~context:"EFF nonuniform"
            [
              Spec.Properties.validity nu;
              Spec.Properties.agreement nu;
              Spec.Properties.termination nu;
            ];
          Diag.Table.add_row table
            [
              Diag.Table.fmt_int n;
              Diag.Table.fmt_int f;
              "nonuniform-early";
              "classic";
              Diag.Table.fmt_int (Run_result.total_msgs nu);
              Diag.Table.fmt_int (Run_result.total_bits nu);
              Diag.Table.fmt_int (Runners.max_round nu);
              "no";
            ])
        [ 0; 2 ])
    [ 8; 16; 32 ];
  [ table ]

let experiment =
  {
    Experiment.id = "EFF";
    title = "coordinator vs flooding: wire cost of a decision";
    paper_ref = "Introduction; Section 3.2 footnote 5; Theorem 2";
    run;
  }
