(** EXP-MR99 — the Section 4 bridge: MR99 (asynchronous, ◇S) next to the
    Figure 1 algorithm (extended synchronous).  The structural claim: the
    commit message does in one pipelined one-bit send what MR99's second
    all-to-all communication step does with n(n-1) aux messages. *)

open Model

module R = Timed_sim.Timed_engine.Make (Async_cons.Mr99)

let run_mr99 ~n ~t ~crashes ~seed ~proposals =
  let rng = Prng.Rng.of_int seed in
  let crash_times =
    List.map
      (fun (c : Timed_sim.Timed_engine.crash_spec) -> (c.victim, c.at))
      crashes
  in
  let faulty = List.map fst crash_times in
  let trusted =
    List.find (fun p -> not (List.exists (Pid.equal p) faulty)) (Pid.all ~n)
  in
  let res =
    R.run
      (Timed_sim.Timed_engine.config
         ~latency:(Timed_sim.Timed_engine.Exponential { mean = 1.0; cap = 8.0 })
         ~crashes
         ~fd_plan:
           (Async_cons.Fd_s.plan ~rng ~n ~crashes:crash_times ~trusted
              ~gst:50.0 ~detect_lag:2.0 ~noise_events:2)
         ~deadline:100000.0
         ~seed:(Int64.of_int (seed + 1))
         ~n ~t ~proposals ())
  in
  (match Timed_sim.Timed_engine.decided_values res with
  | [ _ ] -> ()
  | vs ->
    failwith
      (Printf.sprintf "MR99 agreement broken (%d values)" (List.length vs)));
  if not (Timed_sim.Timed_engine.correct_all_decided res) then
    failwith "MR99 termination broken";
  res

let run () =
  let n = 5 in
  let t = 2 in
  let proposals = Workloads.distinct n in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf "MR99 (async, diamond-S, n = %d, t = %d) vs rwwc (extended)" n t)
      ~header:
        [
          "scenario";
          "mr99 decided";
          "mr99 msgs";
          "rwwc decided";
          "rwwc msgs";
          "msg ratio";
        ]
      ()
  in
  let scenarios =
    [
      ("no crash", []);
      ( "p1 silent",
        [ { Timed_sim.Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 0 } ] );
      ( "p1,p2 silent",
        [
          { Timed_sim.Timed_engine.victim = Pid.of_int 1; at = 0.0; batch_prefix = 0 };
          { Timed_sim.Timed_engine.victim = Pid.of_int 2; at = 0.0; batch_prefix = 0 };
        ] );
    ]
  in
  List.iter
    (fun (label, crashes) ->
      let mr = run_mr99 ~n ~t ~crashes ~seed:13 ~proposals in
      let f = List.length crashes in
      let sync_schedule =
        Adversary.Strategies.coordinator_killer ~n ~f
          ~style:Adversary.Strategies.Silent
      in
      let rwwc =
        Runners.checked ~context:("MR99 cmp " ^ label) ~bound:(f + 1)
          (Runners.Rwwc_runner.run
             (Sync_sim.Engine.config ~schedule:sync_schedule ~n ~t ~proposals ()))
      in
      Diag.Table.add_row table
        [
          label;
          String.concat ","
            (List.map string_of_int (Timed_sim.Timed_engine.decided_values mr));
          Diag.Table.fmt_int mr.Timed_sim.Timed_engine.msgs_sent;
          String.concat ","
            (List.map string_of_int (Sync_sim.Run_result.decided_values rwwc));
          Diag.Table.fmt_int (Sync_sim.Run_result.total_msgs rwwc);
          Diag.Table.fmt_ratio
            (float_of_int mr.Timed_sim.Timed_engine.msgs_sent)
            (float_of_int (Sync_sim.Run_result.total_msgs rwwc));
        ])
    scenarios;
  let structure =
    Diag.Table.create
      ~title:"Structural correspondence (Section 4)"
      ~header:[ "role"; "mr99 (async + diamond-S)"; "rwwc (extended sync)" ] ()
  in
  Diag.Table.add_rows structure
    [
      [ "step 1"; "coordinator broadcasts EST"; "coordinator sends DATA (line 4)" ];
      [
        "step 2";
        "all-to-all AUX exchange, wait n-t";
        "coordinator's ordered one-bit COMMIT (line 5)";
      ];
      [
        "value locked when";
        "n-t processes report aux = v";
        "line 4 completed (everyone holds v)";
      ];
      [ "lock witness"; "majority quorum intersection"; "commit prefix order" ];
      [ "cost of step 2"; "n(n-1) messages of |v|+1 bits"; "<= n-1 one-bit messages" ];
    ];
  [ table; structure ]

let experiment =
  {
    Experiment.id = "MR99";
    title = "bridge to asynchronous consensus (MR99)";
    paper_ref = "Section 4, ref [15]";
    run;
  }
