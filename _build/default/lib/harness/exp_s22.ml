(** EXP-S22 — Section 2.2's cost analysis: an (f+1)-round extended-model run
    (rounds of cost D+δ) against an (f+2)-round classic run (rounds of cost
    D), with measured round counts, for several D/δ ratios.  The paper's
    claim: the extended model wins whenever f+1 < D/δ — i.e. always, for
    realistic f. *)

open Sync_sim

let measured_rounds ~n ~t ~f =
  (* Both algorithms face the silent coordinator killer. *)
  let schedule =
    Adversary.Strategies.coordinator_killer ~n ~f
      ~style:Adversary.Strategies.Silent
  in
  let ext =
    Runners.Rwwc_runner.run
      (Engine.config ~schedule ~n ~t ~proposals:(Workloads.distinct n) ())
  in
  let ext =
    Runners.checked ~context:(Printf.sprintf "S22 ext f=%d" f) ~bound:(f + 1) ext
  in
  let classic =
    Runners.Es_runner.run
      (Engine.config ~schedule ~n ~t ~proposals:(Workloads.distinct n) ())
  in
  let classic =
    Runners.checked
      ~context:(Printf.sprintf "S22 classic f=%d" f)
      ~bound:(min (t + 1) (f + 2))
      classic
  in
  (Runners.max_round ext, Runners.max_round classic)

let run () =
  let n = 16 in
  let t = n - 2 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Wall-clock: rwwc (extended, measured rounds x (D+delta)) vs \
            early-stopping (classic, measured rounds x D), n = %d"
           n)
      ~header:
        [
          "D/delta";
          "f";
          "ext rounds";
          "classic rounds";
          "ext time";
          "classic time";
          "speedup";
          "extended wins";
          "analytic crossover f";
        ]
      ()
  in
  List.iter
    (fun ratio ->
      let d_round = 100.0 in
      let cm =
        Timing.Cost_model.make ~d_round ~delta:(d_round /. float_of_int ratio) ()
      in
      List.iter
        (fun f ->
          let ext_rounds, classic_rounds = measured_rounds ~n ~t ~f in
          let ext_time = Timing.Cost_model.extended_time cm ~rounds:ext_rounds
          and classic_time =
            Timing.Cost_model.classic_time cm ~rounds:classic_rounds
          in
          Diag.Table.add_row table
            [
              Diag.Table.fmt_int ratio;
              Diag.Table.fmt_int f;
              Diag.Table.fmt_int ext_rounds;
              Diag.Table.fmt_int classic_rounds;
              Diag.Table.fmt_float ext_time;
              Diag.Table.fmt_float classic_time;
              Diag.Table.fmt_ratio classic_time ext_time;
              Diag.Table.fmt_bool (ext_time < classic_time);
              Diag.Table.fmt_int (Timing.Cost_model.crossover_f cm);
            ])
        [ 0; 1; 2; 4; 8; 13 ])
    [ 5; 10; 50; 100 ];
  (* The analytic crossover, shown directly: smallest f where the extended
     model stops winning, per ratio. *)
  let crossover =
    Diag.Table.create
      ~title:"Analytic crossover (f+1 = D/delta): beyond realistic f"
      ~header:[ "D/delta"; "crossover f"; "(f+1)(D+d) at crossover"; "(f+2)D" ]
      ()
  in
  List.iter
    (fun ratio ->
      let d_round = 100.0 in
      let cm =
        Timing.Cost_model.make ~d_round ~delta:(d_round /. float_of_int ratio) ()
      in
      let f = Timing.Cost_model.crossover_f cm in
      Diag.Table.add_row crossover
        [
          Diag.Table.fmt_int ratio;
          Diag.Table.fmt_int f;
          Diag.Table.fmt_float (Timing.Cost_model.extended_time cm ~rounds:(f + 1));
          Diag.Table.fmt_float (Timing.Cost_model.classic_time cm ~rounds:(f + 2));
        ])
    [ 5; 10; 50; 100; 1000 ];
  [ table; crossover ]

let experiment =
  {
    Experiment.id = "S22";
    title = "cost of a round: (f+1)(D+delta) vs (f+2)D";
    paper_ref = "Section 2.2";
    run;
  }
