let distinct n = Array.init n (fun i -> i + 1)

let binary ~n ~zeros =
  if zeros < 0 || zeros > n then invalid_arg "Workloads.binary";
  Array.init n (fun i -> if i < zeros then 0 else 1)

let constant ~n ~value = Array.make n value

let random ~rng ~n ~range = Array.init n (fun _ -> Prng.Rng.int rng range)
