open Sync_sim

module Rwwc_runner = Engine.Make (Core.Rwwc)
module Flood_runner = Engine.Make (Baselines.Flood_set)
module Es_runner = Engine.Make (Baselines.Early_stopping)
module Compiled = Core.Extended_on_classic.Make (Core.Rwwc)
module Compiled_runner = Engine.Make (Compiled)

let f_actual res = Model.Pid.Set.cardinal (Run_result.crashed res)

let checked ~context ~bound res =
  Spec.Properties.assert_ok ~context
    (Spec.Properties.uniform_consensus ~bound res);
  res

let max_round res = Option.value (Run_result.max_decision_round res) ~default:0
