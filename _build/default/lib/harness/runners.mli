(** Shared engine instantiations and helpers for the experiments. *)

open Sync_sim

module Rwwc_runner : sig
  val run : Engine.config -> Run_result.t
end

module Flood_runner : sig
  val run : Engine.config -> Run_result.t
end

module Es_runner : sig
  val run : Engine.config -> Run_result.t
end

module Compiled : sig
  include Algorithm_intf.S

  val block_size : n:int -> int
  val to_extended_round : n:int -> int -> int
  val translate_schedule : n:int -> Model.Schedule.t -> Model.Schedule.t
end
(** [Core.Rwwc] compiled to the classic model. *)

module Compiled_runner : sig
  val run : Engine.config -> Run_result.t
end

val f_actual : Run_result.t -> int
(** Crashes that actually happened during the run. *)

val checked : context:string -> bound:int -> Run_result.t -> Run_result.t
(** Assert uniform consensus with the round bound; experiments never report
    numbers from an incorrect run. *)

val max_round : Run_result.t -> int
(** Latest decision round; 0 when nobody decided. *)
