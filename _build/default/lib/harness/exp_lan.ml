(** EXP-LAN — Section 2.2's implementability claim, built and measured.

    The paper asserts the extended model is realizable on a reliable LAN
    with rounds of [D + δ].  We run the Figure 1 algorithm through the
    [Lan.Realization] layer (real timers, per-message latencies up to D,
    crash-truncated send batches) and check two things: the realization's
    decisions match the abstract round engine exactly, and its measured
    wall clock is [f+1] rounds of [D + δ] on the nose. *)


let big_d = 100.0
let delta = 2.0

module Lan_rwwc =
  Lan.Realization.Make
    (Core.Rwwc)
    (struct
      let big_d = big_d
      let delta = delta
    end)

module Runner = Timed_sim.Timed_engine.Make (Lan_rwwc)

let run () =
  let n = 8 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Figure 1 over the LAN realization (n = %d, D = %.0f, delta = %.0f, \
            latencies uniform in (0, D])"
           n big_d delta)
      ~header:
        [
          "f";
          "decided value";
          "abstract rounds";
          "lan rounds";
          "measured wall clock";
          "(f+1)(D+delta)";
          "agree";
        ]
      ()
  in
  for f = 0 to n - 2 do
    let schedule =
      Adversary.Strategies.coordinator_killer ~n ~f
        ~style:Adversary.Strategies.Silent
    in
    let abstract =
      Runners.checked ~context:"LAN abstract" ~bound:(f + 1)
        (Runners.Rwwc_runner.run
           (Sync_sim.Engine.config ~schedule ~n ~t:(n - 2)
              ~proposals:(Workloads.distinct n) ()))
    in
    let lan =
      Runner.run
        (Timed_sim.Timed_engine.config
           ~latency:(Timed_sim.Timed_engine.Uniform { lo = 1.0; hi = big_d })
           ~crashes:
             (Lan.Realization.translate_rwwc_schedule ~n ~big_d ~delta schedule)
           ~seed:5L ~n ~t:(n - 2) ~proposals:(Workloads.distinct n) ())
    in
    let lan_decisions =
      List.map
        (fun (pid, v, at) -> (pid, v, Lan_rwwc.round_of_time at))
        (Timed_sim.Timed_engine.decisions lan)
    in
    let wall = Option.get (Timed_sim.Timed_engine.max_decision_time lan) in
    let lan_rounds =
      List.fold_left (fun acc (_, _, r) -> max acc r) 0 lan_decisions
    in
    Diag.Table.add_row table
      [
        Diag.Table.fmt_int f;
        String.concat ","
          (List.map string_of_int (Timed_sim.Timed_engine.decided_values lan));
        Diag.Table.fmt_int (Runners.max_round abstract);
        Diag.Table.fmt_int lan_rounds;
        Diag.Table.fmt_float wall;
        Diag.Table.fmt_float (float_of_int (f + 1) *. (big_d +. delta));
        Diag.Table.fmt_bool
          (lan_decisions = Sync_sim.Run_result.decisions abstract);
      ]
  done;
  [ table ]

let experiment =
  {
    Experiment.id = "LAN";
    title = "the extended model, realized on a timed LAN";
    paper_ref = "Section 2.2 (cost of a round)";
    run;
  }
