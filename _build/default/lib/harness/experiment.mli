(** The experiment abstraction: each value regenerates one of the paper's
    evaluation artefacts as tables with a "paper" column next to the
    measured one. *)

type t = {
  id : string;  (** the DESIGN.md experiment index key, e.g. "T1" *)
  title : string;
  paper_ref : string;  (** which theorem / section / figure it reproduces *)
  run : unit -> Diag.Table.t list;
}

val pp_header : Format.formatter -> t -> unit

val print : ?markdown:bool -> t -> unit
(** Run the experiment and print its tables to stdout. *)
