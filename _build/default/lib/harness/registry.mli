(** The experiment registry: every table/figure reproduction, by id. *)

val all : Experiment.t list
(** In the order of DESIGN.md's experiment index. *)

val find : string -> Experiment.t option
(** Case-insensitive lookup by id ("T1", "lb", ...). *)

val ids : string list
