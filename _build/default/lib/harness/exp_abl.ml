(** EXP-ABL — ablation of Figure 1's design choices.

    Not a table from the paper: a study of why the paper's choices are
    load-bearing.  Each variant deletes one ingredient (the descending
    commit order; the commit itself; the prefix semantics of the second
    step) and the exhaustive adversary reports which consensus property
    dies first.  The paper's algorithm survives the same search space
    untouched. *)

open Model
open Sync_sim

module Probe (A : Algorithm_intf.S) = struct
  module R = Engine.Make (A)

  (* First property violation over every extended schedule of the space,
     with the early-stopping bound f_actual + 1 enforced. *)
  let first_violation ~n ~t ~max_f ~max_round =
    let proposals = Workloads.distinct n in
    let searched = ref 0 in
    let witness =
      Seq.find_map
        (fun schedule ->
          incr searched;
          let res = R.run (Engine.config ~schedule ~n ~t ~proposals ()) in
          let f = Pid.Set.cardinal (Run_result.crashed res) in
          match
            Spec.Properties.failures
              (Spec.Properties.uniform_consensus ~bound:(f + 1) res)
          with
          | [] -> None
          | c :: _ -> Some (c.Spec.Properties.name, Schedule.to_string schedule))
        (Adversary.Enumerate.schedules ~model:Model_kind.Extended ~n ~max_f
           ~max_round)
    in
    (witness, !searched)
end

module P_rwwc = Probe (Core.Rwwc)
module P_asc = Probe (Core.Rwwc_variants.Ascending_commit)
module P_nocommit = Probe (Core.Rwwc_variants.Data_decide)
module P_piggy = Probe (Core.Rwwc_variants.Piggyback_commit)

let run () =
  let n = 4 and t = 2 and max_f = 2 and max_round = 3 in
  let table =
    Diag.Table.create
      ~title:
        (Printf.sprintf
           "Ablations under the exhaustive adversary (n = %d, f <= %d, \
            crashes in rounds 1..%d)"
           n max_f max_round)
      ~header:
        [
          "variant";
          "removed ingredient";
          "first property violated";
          "witness schedule";
          "schedules searched";
        ]
      ()
  in
  let row name ingredient (witness, searched) =
    let violated, schedule =
      match witness with
      | None -> ("none — correct", "-")
      | Some (prop, sched) -> (prop, sched)
    in
    Diag.Table.add_row table
      [ name; ingredient; violated; schedule; Diag.Table.fmt_int searched ]
  in
  row "rwwc (paper)" "-" (P_rwwc.first_violation ~n ~t ~max_f ~max_round);
  row "ascending commits" "descending commit order"
    (P_asc.first_violation ~n ~t ~max_f ~max_round);
  row "no commit" "the commit message"
    (P_nocommit.first_violation ~n ~t ~max_f ~max_round);
  row "piggybacked commit" "prefix semantics of the 2nd step"
    (P_piggy.first_violation ~n ~t ~max_f ~max_round);
  [ table ]

let experiment =
  {
    Experiment.id = "ABL";
    title = "ablating Figure 1: every ingredient is load-bearing";
    paper_ref = "Sections 2.1 and 3.2 (design rationale)";
    run;
  }
