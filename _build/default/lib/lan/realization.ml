open Model
open Timed_sim

module Make
    (A : Sync_sim.Algorithm_intf.S)
    (Params : sig
      val big_d : float
      val delta : float
    end) =
struct
  type msg = Data of A.msg | Ctl

  type state = {
    a : A.state;
    me : Pid.t;
    max_round : int;  (* abstract engine default horizon: t + 2 *)
    buf_data : (Pid.t * A.msg) list;  (* reverse arrival order *)
    buf_syncs : Pid.t list;
  }

  let name = A.name ^ "-on-lan"

  let () =
    if Params.big_d <= 0.0 || Params.delta <= 0.0 then
      invalid_arg "Lan.Realization: D and delta must be positive";
    if Params.delta > Params.big_d then
      invalid_arg "Lan.Realization: the model premise is delta << D"

  let period = Params.big_d +. Params.delta

  let round_start r = float_of_int (r - 1) *. period

  (* The computation phase of round [r] sits inside the delta window: after
     every round-[r] message has arrived (by T_r + D) and before the next
     send instant (T_{r+1} = T_r + D + delta). *)
  let compute_time r = round_start r +. Params.big_d +. (Params.delta /. 2.0)

  let round_of_time time =
    int_of_float (Float.round ((time +. (Params.delta /. 2.0)) /. period))

  let send_tag r = 2 * r

  let compute_tag r = (2 * r) + 1

  let pp_msg ppf = function
    | Data m -> A.pp_msg ppf m
    | Ctl -> Format.pp_print_string ppf "ctl"

  (* One uninterruptible batch: data messages first, then the ordered
     control messages — so a crash prefix can only truncate the control
     sequence to a prefix, and never lets a control message overtake data. *)
  let send_batch state ~round =
    List.map
      (fun (dest, m) -> Process_intf.Send (dest, Data m))
      (A.data_sends state.a ~round)
    @ List.map
        (fun dest -> Process_intf.Send (dest, Ctl))
        (A.sync_sends state.a ~round)

  let open_round state ~round =
    send_batch state ~round
    @ [ Process_intf.Set_timer { at = compute_time round; tag = compute_tag round } ]

  let init (ctx : Process_intf.ctx) ~me ~proposal =
    let state =
      {
        a = A.init ~n:ctx.n ~t:ctx.t ~me ~proposal;
        me;
        max_round = ctx.t + 2;
        buf_data = [];
        buf_syncs = [];
      }
    in
    (state, open_round state ~round:1)

  let on_message state ~now:_ ~from msg =
    match msg with
    | Data m -> ({ state with buf_data = (from, m) :: state.buf_data }, [])
    | Ctl -> ({ state with buf_syncs = from :: state.buf_syncs }, [])

  let on_timer state ~now:_ ~tag =
    if tag mod 2 = 1 then begin
      (* computation phase of round r *)
      let r = (tag - 1) / 2 in
      let data =
        List.sort (fun (a, _) (b, _) -> Pid.compare a b) state.buf_data
      and syncs = List.sort Pid.compare state.buf_syncs in
      let a, decision = A.compute state.a ~round:r ~data ~syncs in
      let state = { state with a; buf_data = []; buf_syncs = [] } in
      match decision with
      | Some v -> (state, [ Process_intf.Decide v ])
      | None ->
        if r + 1 > state.max_round then (state, [])
        else
          ( state,
            [
              Process_intf.Set_timer
                { at = round_start (r + 1); tag = send_tag (r + 1) };
            ] )
    end
    else begin
      let r = tag / 2 in
      (state, open_round state ~round:r)
    end

  let on_suspicion state ~now:_ ~suspects:_ = (state, [])
end

let translate_rwwc_schedule ~n ~big_d ~delta schedule =
  let period = big_d +. delta in
  let start r = float_of_int (r - 1) *. period in
  List.map
    (fun (pid, (ev : Crash.event)) ->
      let r = ev.round in
      (* Only the coordinator of round r sends anything in Figure 1. *)
      let is_coordinator = Pid.to_int pid = r in
      let data_count = if is_coordinator then n - r else 0 in
      let sync_order = Pid.range_desc ~hi:n ~lo:(r + 1) in
      let data_order = Pid.range ~lo:(r + 1) ~hi:n in
      let prefix_of_subset survivors =
        (* A subset is realizable on the wire only if it is a prefix of the
           coordinator's send order p_{r+1} .. p_n. *)
        let rec count k = function
          | [] -> k
          | dest :: rest ->
            if Pid.Set.mem dest survivors then count (k + 1) rest else k
        in
        let k = count 0 data_order in
        if k <> Pid.Set.cardinal (Pid.Set.inter survivors (Pid.Set.of_list data_order))
        then
          invalid_arg
            "translate_rwwc_schedule: During_data subset is not a send-order \
             prefix";
        k
      in
      let at, batch_prefix =
        match ev.point with
        | Crash.Before_send -> (start r, 0)
        | Crash.During_data survivors ->
          if is_coordinator then (start r, prefix_of_subset survivors)
          else (start r, 0)
        | Crash.After_data k ->
          if is_coordinator then
            (start r, data_count + min k (List.length sync_order))
          else (start r, 0)
        | Crash.After_send ->
          (* Just after the batch, well before the computation phase at
             T_r + D + delta/2. *)
          (start r +. (delta /. 4.0), 0)
      in
      { Timed_engine.victim = pid; at; batch_prefix })
    (Schedule.bindings schedule)
