(** A LAN realization of the extended round model (Section 2.2).

    The paper argues the extended model is implementable on a reliable LAN
    with rounds of duration [D + δ]: [D] bounds message transfer plus
    processing, and [δ] is the cost of pipelining the ordered control
    messages right behind the data messages, with no waiting in between.
    This module {e builds} that implementation on the continuous-time
    engine, so the claim stops being an assumption:

    - wall-clock rounds open at [T_r = (r-1)(D + δ)];
    - at [T_r] a process first runs the round-[r-1] computation phase on
      everything that arrived during the previous window, then — in one
      uninterruptible action batch — emits its round-[r] data messages
      followed by its ordered control messages;
    - channel latencies are at most [D], so every round-[r] message arrives
      before [T_{r+1}] (the engine's tie-break delivers messages before
      timers at equal instants);
    - a crash at exactly [T_r] cuts the batch to a prefix: the control
      messages, sent last and in order, are truncated to a prefix of the
      ordered destination list — the extended model's semantics, for free,
      out of the way real network stacks serialize sends.

    Validation (test/test_lan.ml, EXP-LAN): the realization produces the
    same decisions, round for round, as the abstract {!Sync_sim.Engine} on
    translated schedules, and its measured decision times are exactly
    [rounds × (D + δ)]. *)

open Model

module Make
    (A : Sync_sim.Algorithm_intf.S)
    (Params : sig
      val big_d : float
      (** D: bound on message transfer + processing *)

      val delta : float
      (** δ: pipelining allowance for the control step *)
    end) : sig
  include Timed_sim.Process_intf.S

  val period : float
  (** [D + δ], the realized round duration. *)

  val round_start : int -> float
  (** [round_start r = (r-1) (D + δ)]. *)

  val round_of_time : float -> int
  (** Map a decision timestamp back to the abstract round that produced it
      (decisions for round [r] fire at [T_{r+1}]). *)
end

val translate_rwwc_schedule :
  n:int ->
  big_d:float ->
  delta:float ->
  Schedule.t ->
  Timed_sim.Timed_engine.crash_spec list
(** Translate an extended-model schedule for the {!Core.Rwwc} algorithm
    into timed crash specs against the realization: a crash in round [r]
    becomes a crash at [T_r] whose batch prefix reproduces the crash point
    ([Before_send] → nothing, [After_data k] → all [n - r] data messages
    plus [k] controls, [After_send] → the whole batch but no computation at
    [T_{r+1}] — realized as a crash just after [T_r]).  [During_data s] is
    only expressible when [s] is a prefix of the coordinator's send order
    [p_{r+1} .. p_n]; anything else raises [Invalid_argument] (a real wire
    imposes {e some} order — arbitrary subsets exist in the abstract model
    to stay implementation-agnostic). *)
