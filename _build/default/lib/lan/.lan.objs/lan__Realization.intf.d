lib/lan/realization.mli: Model Schedule Sync_sim Timed_sim
