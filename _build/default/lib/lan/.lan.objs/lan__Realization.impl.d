lib/lan/realization.ml: Crash Float Format List Model Pid Process_intf Schedule Sync_sim Timed_engine Timed_sim
