open Model

module Make (A : Algo_intf.S) = struct
  type proc = {
    state : A.state;
    status : Sync_sim.Run_result.status;  (* Undecided = still running *)
  }

  type config = { procs : proc array; t : int; next_round : int; crashes : int }

  let initial ~n ~t ~proposals =
    if Array.length proposals <> n then invalid_arg "Stepper.initial: arity";
    {
      procs =
        Array.init n (fun i ->
            {
              state =
                A.init ~n ~t ~me:(Pid.of_int (i + 1)) ~proposal:proposals.(i);
              status = Sync_sim.Run_result.Undecided;
            });
      t;
      next_round = 1;
      crashes = 0;
    }

  let next_round c = c.next_round

  let crashes_used c = c.crashes

  let resilience c = c.t

  let size c = Array.length c.procs

  let is_running p = p.status = Sync_sim.Run_result.Undecided

  let running c =
    Array.to_list c.procs
    |> List.mapi (fun i p -> (i, p))
    |> List.filter_map (fun (i, p) ->
           if is_running p then Some (Pid.of_int (i + 1)) else None)

  let statuses c = Array.map (fun p -> p.status) c.procs

  let decided_values c =
    Array.to_list c.procs
    |> List.filter_map (fun p ->
           match p.status with
           | Sync_sim.Run_result.Decided { value; _ } -> Some value
           | Sync_sim.Run_result.Crashed _ | Sync_sim.Run_result.Undecided ->
             None)
    |> List.sort_uniq Int.compare

  let step c ~crash =
    let n = Array.length c.procs in
    let r = c.next_round in
    (match crash with
    | None -> ()
    | Some (pid, _) ->
      if c.crashes >= c.t then invalid_arg "Stepper.step: crash budget spent";
      if not (is_running c.procs.(Pid.to_int pid - 1)) then
        invalid_arg "Stepper.step: victim not running");
    let inbox_data = Array.make n [] and inbox_syncs = Array.make n [] in
    let deliver_data from (dest, msg) =
      let i = Pid.to_int dest - 1 in
      inbox_data.(i) <- (from, msg) :: inbox_data.(i)
    and deliver_sync from dest =
      let i = Pid.to_int dest - 1 in
      inbox_syncs.(i) <- from :: inbox_syncs.(i)
    in
    Array.iteri
      (fun i p ->
        if is_running p then begin
          let pid = Pid.of_int (i + 1) in
          let planned_data = A.data_sends p.state ~round:r
          and planned_sync = A.sync_sends p.state ~round:r in
          match crash with
          | Some (victim, point) when Pid.equal victim pid -> begin
            match point with
            | Crash.Before_send -> ()
            | Crash.During_data survivors ->
              List.iter
                (fun (dest, msg) ->
                  if Pid.Set.mem dest survivors then
                    deliver_data pid (dest, msg))
                planned_data
            | Crash.After_data prefix ->
              List.iter (deliver_data pid) planned_data;
              List.iteri
                (fun k dest -> if k < prefix then deliver_sync pid dest)
                planned_sync
            | Crash.After_send ->
              List.iter (deliver_data pid) planned_data;
              List.iter (deliver_sync pid) planned_sync
          end
          | Some _ | None ->
            List.iter (deliver_data pid) planned_data;
            List.iter (deliver_sync pid) planned_sync
        end)
      c.procs;
    let procs =
      Array.mapi
        (fun i p ->
          let pid = Pid.of_int (i + 1) in
          if not (is_running p) then p
          else
            match crash with
            | Some (victim, _) when Pid.equal victim pid ->
              { p with status = Sync_sim.Run_result.Crashed { at_round = r } }
            | Some _ | None ->
              let data =
                List.sort (fun (a, _) (b, _) -> Pid.compare a b) inbox_data.(i)
              and syncs = List.sort Pid.compare inbox_syncs.(i) in
              let state, decision = A.compute p.state ~round:r ~data ~syncs in
              let status =
                match decision with
                | None -> Sync_sim.Run_result.Undecided
                | Some value ->
                  Sync_sim.Run_result.Decided { value; at_round = r }
              in
              { state; status })
        c.procs
    in
    {
      procs;
      t = c.t;
      next_round = r + 1;
      crashes = (c.crashes + match crash with Some _ -> 1 | None -> 0);
    }

  let fingerprint c =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int c.next_round);
    Buffer.add_char buf '|';
    Array.iter
      (fun p ->
        (match p.status with
        | Sync_sim.Run_result.Undecided ->
          Buffer.add_string buf ("R:" ^ A.fingerprint p.state)
        | Sync_sim.Run_result.Decided { value; _ } ->
          Buffer.add_string buf ("D:" ^ string_of_int value)
        | Sync_sim.Run_result.Crashed _ -> Buffer.add_string buf "X");
        Buffer.add_char buf ';')
      c.procs;
    Buffer.add_string buf (string_of_int c.crashes);
    Buffer.contents buf
end
