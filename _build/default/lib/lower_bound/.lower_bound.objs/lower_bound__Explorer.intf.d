lib/lower_bound/explorer.mli: Algo_intf Model Schedule Sync_sim
