lib/lower_bound/truncated.mli: Algo_intf
