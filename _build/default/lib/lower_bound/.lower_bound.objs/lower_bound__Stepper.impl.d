lib/lower_bound/stepper.ml: Algo_intf Array Buffer Crash Int List Model Pid Sync_sim
