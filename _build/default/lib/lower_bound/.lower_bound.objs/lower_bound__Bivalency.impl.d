lib/lower_bound/bivalency.ml: Adversary Algo_intf Array Format Hashtbl Int List Model Model_kind Printf Seq Stepper String
