lib/lower_bound/explorer.ml: Adversary Algo_intf Array Int List Model Model_kind Option Printf Schedule Seq Spec Sync_sim Truncated
