lib/lower_bound/bivalency.mli: Algo_intf Format Model Stepper
