lib/lower_bound/truncated.ml: Algo_intf Printf
