lib/lower_bound/stepper.mli: Algo_intf Crash Model Pid Sync_sim
