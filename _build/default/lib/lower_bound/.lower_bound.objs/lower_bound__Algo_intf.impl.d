lib/lower_bound/algo_intf.ml: Sync_sim
