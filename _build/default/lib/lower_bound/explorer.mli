(** Machine-checked evidence for the f+1 lower bound (Theorems 3–5).

    Two observable consequences of the lower bound are verified by search:

    - {e Tightness} (the bound is reached): for every [f <= t] the silent
      coordinator-killer forces the algorithm to round exactly [f + 1].
    - {e Impossibility of doing better}: forcing the algorithm to decide by
      round [R = f] (via {!Truncated}) yields uniform-agreement violations
      on some schedule with at most [f] crashes — found by exhaustive
      enumeration, so the witness is a certificate, not a sample. *)

open Model

type witness = {
  schedule : Schedule.t;
  result : Sync_sim.Run_result.t;
  schedules_searched : int;
}

type tightness = {
  f : int;
  max_decision_round : int;  (** must equal [f + 1] *)
  schedule : Schedule.t;
}

module Make (A : Algo_intf.S) : sig
  val tightness : n:int -> f:int -> proposals:int array -> tightness
  (** Run [A] against the silent killer with [f] victims and report the
      latest decision round.  Raises [Failure] if the run violates uniform
      consensus (that would mean the algorithm, not the bound, is broken). *)

  val truncation_violation :
    n:int -> decide_by:int -> proposals:int array -> witness option
  (** Search every extended-model schedule with at most [decide_by] crashes
      in rounds [1 .. decide_by] for one on which the [decide_by]-truncation
      of [A] violates uniform agreement (or validity).  [Some w] is the
      certificate that deciding by round [f = decide_by] is impossible for
      this algorithm family; [None] means the whole space was searched
      without a violation. *)

  val zero_round_impossible : n:int -> proposals:int array -> bool
  (** The degenerate [f = 0] case of the bound: deciding with no
      communication at all (everyone returns its own proposal) violates
      agreement whenever two proposals differ. *)
end
