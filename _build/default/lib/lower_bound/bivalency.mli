(** Valence analysis of configurations — the computational rendition of the
    Theorem 3 proof technique (Aguilera–Toueg bivalency, adapted to the
    extended model).

    A configuration is {e v-valent} if [v] is the only value decidable in
    its extensions, and {e bivalent} if at least two values remain
    reachable.  The lower-bound argument shows the adversary (crashing at
    most one process per round) can keep the configuration bivalent for [t]
    rounds, so no algorithm can always decide in [t] rounds.  This module
    computes exact reachable-decision sets by exhaustive exploration with
    memoization, for small systems. *)

type valence = Univalent of int | Bivalent of int list

type report = {
  n : int;
  t : int;
  proposals : int array;
  initial_valence : valence;
  max_bivalent_depth : int;
      (** Deepest round end at which some reachable configuration (under the
          one-crash-per-round adversary) is still bivalent; [0] when the
          initial configuration is already univalent. *)
  bivalent_with_decision : bool;
      (** Whether any reachable bivalent configuration contains a decided
          process — must be [false] for a uniform consensus algorithm, since
          a decision in a bivalent configuration dooms agreement in some
          extension. *)
  configs_explored : int;
}

val pp_valence : Format.formatter -> valence -> unit

module Make (A : Algo_intf.S) : sig
  val reachable_values :
    ?model:Model.Model_kind.t -> Stepper.Make(A).config -> int list
  (** Every value decided in some extension of the configuration under the
      one-crash-per-round adversary of the given model (default
      [Extended]; crash budget from the configuration). *)

  val analyze :
    ?model:Model.Model_kind.t ->
    n:int ->
    t:int ->
    proposals:int array ->
    unit ->
    report
  (** Explore the full configuration graph from the initial configuration. *)
end
