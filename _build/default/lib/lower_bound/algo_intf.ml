(** Extra capabilities the lower-bound machinery needs from an algorithm
    beyond {!Sync_sim.Algorithm_intf.S}. *)

module type S = sig
  include Sync_sim.Algorithm_intf.S

  val estimate : state -> int
  (** The value the process would decide if forced to decide now — used by
      {!Truncated} to build hypothetical "decide by round R" algorithms. *)

  val fingerprint : state -> string
  (** Canonical encoding of the state, injective on reachable states — used
      to memoize configurations during valence exploration. *)
end
