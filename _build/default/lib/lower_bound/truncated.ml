module Make
    (A : Algo_intf.S) (R : sig
      val decide_by : int
    end) =
struct
  include A

  let () = if R.decide_by < 1 then invalid_arg "Truncated: decide_by < 1"

  let name = Printf.sprintf "%s-truncated@%d" A.name R.decide_by

  let compute state ~round ~data ~syncs =
    let state, decision = A.compute state ~round ~data ~syncs in
    match decision with
    | Some _ -> (state, decision)
    | None when round >= R.decide_by -> (state, Some (A.estimate state))
    | None -> (state, None)
end
