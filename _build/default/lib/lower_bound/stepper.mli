(** Single-round stepping of a synchronous computation under explicit
    adversary choices.

    Where {!Sync_sim.Engine} runs a complete schedule, the stepper advances
    one round at a time with the crash decision supplied per round — the
    shape the valence (bivalency) argument of Theorem 3 needs, where the
    adversary crashes at most one process per round and we quantify over its
    next choice.  Tests cross-validate the stepper against the engine on
    complete schedules. *)

open Model

module Make (A : Algo_intf.S) : sig
  type config
  (** An immutable global configuration: every process's local state and
      status, plus the upcoming round number. *)

  val initial : n:int -> t:int -> proposals:int array -> config

  val next_round : config -> int
  (** The round the next {!step} will execute (1 for a fresh config). *)

  val crashes_used : config -> int

  val resilience : config -> int
  (** The crash budget [t] the configuration was created with. *)

  val size : config -> int
  (** The number of processes [n]. *)

  val running : config -> Pid.t list
  (** Processes that are alive and undecided. *)

  val statuses : config -> Sync_sim.Run_result.status array

  val decided_values : config -> int list
  (** De-duplicated values decided so far. *)

  val step : config -> crash:(Pid.t * Crash.point) option -> config
  (** Execute one round in the extended model.  [crash = Some (p, point)]
      crashes the (running) process [p] at [point] during this round; [None]
      runs the round failure-free.  Raises [Invalid_argument] if [p] is not
      running or the crash budget [t] is exhausted. *)

  val fingerprint : config -> string
  (** Injective encoding of (round, statuses, states); memoization key. *)
end
