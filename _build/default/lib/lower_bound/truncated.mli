(** Hypothetical "decide by round R" truncations of an algorithm.

    Theorem 4 says no extended-model algorithm can always decide within [f]
    rounds.  To exhibit the impossibility concretely, we take a correct
    algorithm and force any still-undecided process to decide its current
    estimate at the end of round [R]; the explorer then finds crash
    schedules (with at most [R] crashes) on which this truncation violates
    uniform agreement — the machine-checked counterpart of the paper's
    indistinguishability argument. *)

module Make (A : Algo_intf.S) (R : sig
  val decide_by : int
  (** Round at which undecided processes are forced to decide ([>= 1]). *)
end) : Algo_intf.S
