open Model

type valence = Univalent of int | Bivalent of int list

type report = {
  n : int;
  t : int;
  proposals : int array;
  initial_valence : valence;
  max_bivalent_depth : int;
  bivalent_with_decision : bool;
  configs_explored : int;
}

let pp_valence ppf = function
  | Univalent v -> Format.fprintf ppf "univalent(%d)" v
  | Bivalent vs ->
    Format.fprintf ppf "bivalent{%s}"
      (String.concat "," (List.map string_of_int vs))

module Make (A : Algo_intf.S) = struct
  module S = Stepper.Make (A)

  (* The Theorem 3 adversary: per round, either no crash or one crash of a
     running process at any crash point of the given model. *)
  let choices ~model config =
    let none = Seq.return None in
    if S.crashes_used config >= S.resilience config then none
    else
      Seq.append none
        (Seq.concat_map
           (fun pid ->
             Seq.map
               (fun point -> Some (pid, point))
               (Adversary.Enumerate.points ~model ~n:(S.size config)
                  ~victim:pid))
           (List.to_seq (S.running config)))

  let horizon config = S.resilience config + 2

  module String_tbl = Hashtbl

  let make_reachable ~model =
    let memo : (string, int list) String_tbl.t = String_tbl.create 1024 in
    let rec go config =
      let key = S.fingerprint config in
      match String_tbl.find_opt memo key with
      | Some vs -> vs
      | None ->
        let vs =
          if S.running config = [] then S.decided_values config
          else if S.next_round config > horizon config then
            failwith
              (Printf.sprintf
                 "Bivalency: algorithm %s still undecided after round %d"
                 A.name
                 (horizon config))
          else
            Seq.fold_left
              (fun acc crash ->
                List.fold_left
                  (fun acc v -> if List.mem v acc then acc else v :: acc)
                  acc
                  (go (S.step config ~crash)))
              [] (choices ~model config)
            |> List.sort Int.compare
        in
        String_tbl.replace memo key vs;
        vs
    in
    (memo, go)

  let reachable_values ?(model = Model_kind.Extended) config =
    let _, go = make_reachable ~model in
    go config

  let analyze ?(model = Model_kind.Extended) ~n ~t ~proposals () =
    let memo, go = make_reachable ~model in
    let initial = S.initial ~n ~t ~proposals in
    let valence_of config =
      match go config with
      | [ v ] -> Univalent v
      | [] -> Bivalent [] (* unreachable for terminating algorithms *)
      | vs -> Bivalent vs
    in
    let initial_valence = valence_of initial in
    (* Breadth-first sweep over configuration layers, deduplicated per
       layer, tracking the deepest layer containing a bivalent config. *)
    let max_bivalent_depth = ref 0 and bivalent_with_decision = ref false in
    let layer = ref [ initial ] in
    let seen = String_tbl.create 1024 in
    let depth = ref 0 in
    while !layer <> [] do
      incr depth;
      let next = ref [] in
      List.iter
        (fun config ->
          if S.running config <> [] && S.next_round config <= horizon config
          then
            Seq.iter
              (fun crash ->
                let c' = S.step config ~crash in
                let key = S.fingerprint c' in
                if not (String_tbl.mem seen key) then begin
                  String_tbl.replace seen key ();
                  next := c' :: !next;
                  match go c' with
                  | [] | [ _ ] -> ()
                  | _ :: _ :: _ ->
                    max_bivalent_depth := max !max_bivalent_depth !depth;
                    if S.decided_values c' <> [] then
                      bivalent_with_decision := true
                end)
              (choices ~model config))
        !layer;
      layer := !next
    done;
    {
      n;
      t;
      proposals = Array.copy proposals;
      initial_valence;
      max_bivalent_depth =
        (match initial_valence with
        | Univalent _ -> 0
        | Bivalent _ -> !max_bivalent_depth);
      bivalent_with_decision = !bivalent_with_decision;
      configs_explored = String_tbl.length memo;
    }
end
