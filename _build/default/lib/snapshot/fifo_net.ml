open Model

type 'msg t = { n : int; channels : 'msg Queue.t array array }
(* channels.(i).(j) is the queue of the directed channel p_{i+1} -> p_{j+1} *)

let create ~n =
  if n < 2 then invalid_arg "Fifo_net.create: n < 2";
  { n; channels = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ())) }

let n net = net.n

let check_pair net ~from ~dest =
  let i = Pid.to_int from and j = Pid.to_int dest in
  if i = j then invalid_arg "Fifo_net: self channel";
  if i > net.n || j > net.n then invalid_arg "Fifo_net: pid out of range";
  (i - 1, j - 1)

let send net ~from ~dest msg =
  let i, j = check_pair net ~from ~dest in
  Queue.add msg net.channels.(i).(j)

let deliver net ~from ~dest =
  let i, j = check_pair net ~from ~dest in
  Queue.take_opt net.channels.(i).(j)

let nonempty net =
  let acc = ref [] in
  for i = net.n - 1 downto 0 do
    for j = net.n - 1 downto 0 do
      if not (Queue.is_empty net.channels.(i).(j)) then acc := (i, j) :: !acc
    done
  done;
  !acc

let deliver_random rng net =
  match nonempty net with
  | [] -> None
  | channels ->
    let i, j = Prng.Rng.choose rng channels in
    let msg = Queue.take net.channels.(i).(j) in
    Some (Pid.of_int (i + 1), Pid.of_int (j + 1), msg)

let channel_length net ~from ~dest =
  let i, j = check_pair net ~from ~dest in
  Queue.length net.channels.(i).(j)

let in_flight net =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc q -> acc + Queue.length q) acc row)
    0 net.channels
