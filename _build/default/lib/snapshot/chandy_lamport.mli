(** Chandy–Lamport distributed snapshot over a token-transfer application.

    Related-work exemplar (Section 1): the marker is a synchronization
    message that carries no data but cleanly separates, on each FIFO
    channel, the messages sent before a process recorded its state from
    those sent after — letting a consistent global state be assembled
    without freezing the computation.  The same role is played by the
    commit message in Figure 1 (it separates "the coordinator's estimate is
    everywhere" from "it may not be").

    The application: [n] processes each start with [initial_tokens] tokens
    and keep spontaneously wiring single tokens to pseudo-random peers while
    the snapshot runs.  The invariant a correct snapshot must capture:
    recorded local balances plus recorded in-channel tokens equal the total
    money supply (conservation), and the recorded cut is consistent (no
    message received before the receiver's record point was sent after the
    sender's). *)

type config = {
  n : int;
  initial_tokens : int;
  total_steps : int;  (** scheduler steps to run *)
  initiate_at : int;  (** step at which p_1 spontaneously records *)
  seed : int;
}

val config :
  ?initial_tokens:int ->
  ?total_steps:int ->
  ?initiate_at:int ->
  ?seed:int ->
  n:int ->
  unit ->
  config
(** Defaults: 10 tokens, 400 steps, initiation at step 100, seed 7. *)

type snapshot = {
  locals : int array;  (** recorded balance of each process *)
  channels : ((int * int) * int) list;
      (** ((from, to), tokens recorded in transit), only non-empty entries *)
}

type result = {
  snapshot : snapshot;
  recorded_total : int;  (** locals + in-channel tokens *)
  expected_total : int;  (** n * initial_tokens *)
  conservation_ok : bool;
  consistent_cut : bool;
      (** no post-record message was consumed pre-record (checked online
          with send-side flags; Chandy–Lamport guarantees it on FIFO
          channels) *)
  transfers_completed : int;
  final_balance_total : int;  (** sanity: money is conserved at the end too *)
  markers_sent : int;
}

val run : config -> result
