open Model

type config = {
  n : int;
  initial_tokens : int;
  total_steps : int;
  initiate_at : int;
  seed : int;
}

let config ?(initial_tokens = 10) ?(total_steps = 400) ?(initiate_at = 100)
    ?(seed = 7) ~n () =
  if n < 2 then invalid_arg "Chandy_lamport.config: n < 2";
  if initial_tokens < 1 then invalid_arg "Chandy_lamport.config: tokens < 1";
  if initiate_at < 0 || initiate_at >= total_steps then
    invalid_arg "Chandy_lamport.config: initiation outside the run";
  { n; initial_tokens; total_steps; initiate_at; seed }

type snapshot = { locals : int array; channels : ((int * int) * int) list }

type result = {
  snapshot : snapshot;
  recorded_total : int;
  expected_total : int;
  conservation_ok : bool;
  consistent_cut : bool;
  transfers_completed : int;
  final_balance_total : int;
  markers_sent : int;
}

type msg =
  | Transfer of { tokens : int; post_record : bool }
      (** [post_record]: the sender had already recorded its state when it
          sent this — ground truth used only by the cut checker, invisible
          to the algorithm. *)
  | Marker

type proc = {
  mutable balance : int;
  mutable recorded : int option;  (* balance at record time *)
  (* for each incoming channel (by source index): Some acc while recording
     that channel, None when closed (marker received or never opened) *)
  mutable recording : int option array;
  mutable marker_pending : bool array;  (* channels still awaiting a marker *)
}

let run cfg =
  let rng = Prng.Rng.of_int cfg.seed in
  let net : msg Fifo_net.t = Fifo_net.create ~n:cfg.n in
  let procs =
    Array.init cfg.n (fun _ ->
        {
          balance = cfg.initial_tokens;
          recorded = None;
          recording = Array.make cfg.n None;
          marker_pending = Array.make cfg.n false;
        })
  in
  let transfers = ref 0 and markers = ref 0 in
  let consistent = ref true in
  let send_markers i =
    for j = 0 to cfg.n - 1 do
      if j <> i then begin
        incr markers;
        Fifo_net.send net ~from:(Pid.of_int (i + 1)) ~dest:(Pid.of_int (j + 1))
          Marker
      end
    done
  in
  let record i =
    let p = procs.(i) in
    if p.recorded = None then begin
      p.recorded <- Some p.balance;
      (* open recording on every incoming channel; each closes when its
         marker arrives *)
      for j = 0 to cfg.n - 1 do
        if j <> i then begin
          p.recording.(j) <- Some 0;
          p.marker_pending.(j) <- true
        end
      done;
      send_markers i
    end
  in
  let spontaneous_transfer step i =
    let p = procs.(i) in
    if p.balance > 0 then begin
      let j = (i + 1 + ((step + i) mod (cfg.n - 1))) mod cfg.n in
      let j = if j = i then (j + 1) mod cfg.n else j in
      p.balance <- p.balance - 1;
      Fifo_net.send net ~from:(Pid.of_int (i + 1)) ~dest:(Pid.of_int (j + 1))
        (Transfer { tokens = 1; post_record = p.recorded <> None })
    end
  in
  let handle_delivery (from, dest, msg) =
    let i = Pid.to_int dest - 1 and src = Pid.to_int from - 1 in
    let p = procs.(i) in
    match msg with
    | Transfer { tokens; post_record } ->
      if p.recorded = None && post_record then consistent := false;
      p.balance <- p.balance + tokens;
      incr transfers;
      (match p.recording.(src) with
      | Some acc when p.marker_pending.(src) ->
        p.recording.(src) <- Some (acc + tokens)
      | Some _ | None -> ())
    | Marker ->
      (* First marker (from any channel) triggers recording if not done;
         the marker also closes its own channel's recording. *)
      record i;
      p.marker_pending.(src) <- false
  in
  for step = 0 to cfg.total_steps - 1 do
    if step = cfg.initiate_at then record 0;
    (* Interleave spontaneous sends and deliveries, scheduler's choice. *)
    if Prng.Rng.bool rng then
      spontaneous_transfer step (Prng.Rng.int rng cfg.n)
    else
      match Fifo_net.deliver_random rng net with
      | Some d -> handle_delivery d
      | None -> spontaneous_transfer step (Prng.Rng.int rng cfg.n)
  done;
  (* Drain: deliver everything still in flight so the snapshot completes and
     final balances are auditable. *)
  let rec drain () =
    match Fifo_net.deliver_random rng net with
    | Some d ->
      handle_delivery d;
      drain ()
    | None -> ()
  in
  drain ();
  let locals =
    Array.map
      (fun p ->
        match p.recorded with
        | Some b -> b
        | None -> failwith "Chandy_lamport: process never recorded")
      procs
  in
  let channels = ref [] in
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun src rec_state ->
          match rec_state with
          | Some acc when acc > 0 -> channels := ((src + 1, i + 1), acc) :: !channels
          | Some _ | None -> ())
        p.recording)
    procs;
  let recorded_total =
    Array.fold_left ( + ) 0 locals
    + List.fold_left (fun acc (_, c) -> acc + c) 0 !channels
  in
  let expected_total = cfg.n * cfg.initial_tokens in
  {
    snapshot = { locals; channels = List.rev !channels };
    recorded_total;
    expected_total;
    conservation_ok = recorded_total = expected_total;
    consistent_cut = !consistent;
    transfers_completed = !transfers;
    final_balance_total = Array.fold_left (fun acc p -> acc + p.balance) 0 procs;
    markers_sent = !markers;
  }
