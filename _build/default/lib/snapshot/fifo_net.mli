(** Reliable FIFO channels for the fault-free asynchronous setting of the
    Chandy–Lamport snapshot (the paper's canonical example of
    synchronization messages in fault-free computing).

    Every ordered pair of distinct processes is connected by a directed
    FIFO channel; the scheduler (the caller) picks which channel delivers
    next, so interleavings are adversarial up to FIFO order. *)

open Model

type 'msg t

val create : n:int -> 'msg t

val n : 'msg t -> int

val send : 'msg t -> from:Pid.t -> dest:Pid.t -> 'msg -> unit
(** Enqueue at the channel tail.  [from = dest] is rejected. *)

val deliver : 'msg t -> from:Pid.t -> dest:Pid.t -> 'msg option
(** Dequeue the channel head, if any. *)

val deliver_random :
  Prng.Rng.t -> 'msg t -> (Pid.t * Pid.t * 'msg) option
(** Dequeue the head of a uniformly chosen non-empty channel; [None] when
    everything is quiescent. *)

val channel_length : 'msg t -> from:Pid.t -> dest:Pid.t -> int

val in_flight : 'msg t -> int
(** Total queued messages. *)
