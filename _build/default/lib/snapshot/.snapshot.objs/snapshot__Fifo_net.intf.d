lib/snapshot/fifo_net.mli: Model Pid Prng
