lib/snapshot/chandy_lamport.ml: Array Fifo_net List Model Pid Prng
