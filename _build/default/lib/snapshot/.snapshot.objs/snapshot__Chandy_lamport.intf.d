lib/snapshot/chandy_lamport.mli:
