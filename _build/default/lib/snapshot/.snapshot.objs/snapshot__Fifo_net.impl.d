lib/snapshot/fifo_net.ml: Array Model Pid Prng Queue
