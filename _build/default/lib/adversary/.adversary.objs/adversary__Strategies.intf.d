lib/adversary/strategies.mli: Model Model_kind Prng Schedule
