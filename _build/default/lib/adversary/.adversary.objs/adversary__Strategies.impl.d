lib/adversary/strategies.ml: Crash List Model Model_kind Pid Prng Schedule
