lib/adversary/enumerate.mli: Crash Model Model_kind Pid Schedule Seq
