lib/adversary/combinatorics.mli: Seq
