lib/adversary/combinatorics.ml: Fun Seq
