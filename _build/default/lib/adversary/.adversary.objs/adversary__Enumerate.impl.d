lib/adversary/enumerate.ml: Combinatorics Crash List Model Model_kind Pid Schedule Seq
