let rec subsets = function
  | [] -> Seq.return []
  | x :: rest ->
    let tails = subsets rest in
    Seq.append tails (Seq.map (fun s -> x :: s) tails)

let rec choose k xs =
  if k = 0 then Seq.return []
  else
    match xs with
    | [] -> Seq.empty
    | x :: rest ->
      Seq.append
        (Seq.map (fun s -> x :: s) (choose (k - 1) rest))
        (choose k rest)

let upto k = Seq.init (max 0 (k + 1)) Fun.id

let range lo hi = Seq.init (max 0 (hi - lo + 1)) (fun i -> lo + i)

let product sa sb =
  Seq.concat_map (fun a -> Seq.map (fun b -> (a, b)) sb) sa

let rec sequence = function
  | [] -> Seq.return []
  | s :: rest ->
    Seq.concat_map (fun x -> Seq.map (fun xs -> x :: xs) (sequence rest)) s
