(** Small enumeration helpers for the exhaustive adversary. *)

val subsets : 'a list -> 'a list Seq.t
(** All [2^n] subsets, each preserving the input order.  Lazily produced. *)

val choose : int -> 'a list -> 'a list Seq.t
(** All size-[k] subsets in input order. *)

val upto : int -> int Seq.t
(** [upto k] is [0; 1; ...; k]. *)

val range : int -> int -> int Seq.t
(** [range lo hi] is [lo; ...; hi] (empty when [lo > hi]). *)

val product : 'a Seq.t -> 'b Seq.t -> ('a * 'b) Seq.t
(** Cartesian product, left-major order.  The right sequence is re-evaluated
    per left element, so both may be ephemeral generators of pure values. *)

val sequence : ('a Seq.t) list -> 'a list Seq.t
(** All ways to pick one element from each sequence, in order. *)
