open Model

let points ~model ~n ~victim =
  let others =
    List.filter (fun p -> not (Pid.equal p victim)) (Pid.all ~n)
  in
  let before = Seq.return Crash.Before_send in
  let during =
    Seq.map
      (fun s -> Crash.During_data (Pid.Set.of_list s))
      (Combinatorics.subsets others)
  in
  let after_data =
    match model with
    | Model_kind.Classic -> Seq.empty
    | Model_kind.Extended ->
      Seq.map (fun k -> Crash.After_data k) (Combinatorics.upto (n - 1))
  in
  let after = Seq.return Crash.After_send in
  Seq.append before (Seq.append during (Seq.append after_data after))

let events ~model ~n ~max_round ~victim =
  Seq.concat_map
    (fun round ->
      Seq.map (fun p -> Crash.make ~round p) (points ~model ~n ~victim))
    (Combinatorics.range 1 max_round)

let schedules ~model ~n ~max_f ~max_round =
  let pids = Pid.all ~n in
  Seq.concat_map
    (fun f ->
      Seq.concat_map
        (fun victims ->
          Seq.map Schedule.of_list
            (Combinatorics.sequence
               (List.map
                  (fun v ->
                    Seq.map (fun ev -> (v, ev))
                      (events ~model ~n ~max_round ~victim:v))
                  victims)))
        (Combinatorics.choose f pids))
    (Combinatorics.upto max_f)

let count s = Seq.fold_left (fun acc _ -> acc + 1) 0 s
