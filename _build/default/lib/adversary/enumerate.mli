(** Exhaustive schedule enumeration for model checking small systems.

    For small [n] the space of crash schedules is finite once delivery
    subsets are restricted to actual process sets and prefixes to
    [0 .. n-1]; enumerating it turns property testing into genuine model
    checking — EXP-LB's agreement-violation witnesses are found this way,
    and the unit suites run the consensus algorithms against {e every}
    schedule for [n <= 5]. *)

open Model

val points :
  model:Model_kind.t -> n:int -> victim:Pid.t -> Crash.point Seq.t
(** Every semantically distinct crash point for [victim]: [Before_send],
    [During_data s] for each subset [s] of the other processes,
    [After_data k] for [k] in [0 .. n-1] (extended model only) and
    [After_send]. *)

val events :
  model:Model_kind.t -> n:int -> max_round:int -> victim:Pid.t ->
  Crash.event Seq.t
(** Every (round, point) combination with round in [1 .. max_round]. *)

val schedules :
  model:Model_kind.t -> n:int -> max_f:int -> max_round:int -> Schedule.t Seq.t
(** Every schedule with at most [max_f] victims, lazily.  The failure-free
    schedule comes first. *)

val count : 'a Seq.t -> int
(** Length of a finite sequence (for reporting state-space sizes). *)
