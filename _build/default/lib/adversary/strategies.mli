(** Named crash-schedule constructors.

    Each strategy realizes one of the failure scenarios the paper reasons
    about; the experiment index in DESIGN.md says which experiment uses
    which. *)

open Model

val no_crash : Schedule.t
(** The failure-free run ([f = 0]): Figure 1 decides in one round,
    Theorem 2's best case. *)

type killer_style =
  | Silent
      (** Each doomed coordinator crashes before sending anything in its own
          round.  Starves information flow: nobody can decide before round
          [f + 1] — the tightness certificate for Theorem 4. *)
  | Greedy
      (** Each doomed coordinator completes its whole data step and delivers
          commit messages down to [p_{f+2}] before dying — the message
          maximum behind Theorem 2's worst case.  (Stopping one short of the
          paper's narrated [p_{f+1}] keeps [p_{f+1}] undecided so it still
          coordinates round [f+1]; letting the commit reach [p_{f+1}] would
          end the run with strictly fewer messages.) *)
  | Teasing of int
      (** [Teasing k]: each doomed coordinator delivers its data message to
          the [k] highest-id processes only and no commit — keeps estimates
          churning without ever releasing a commit. *)

val coordinator_killer :
  n:int -> f:int -> style:killer_style -> Schedule.t
(** Crash coordinators [p_1 .. p_f], process [p_i] in round [i], in the
    given style.  Requires [0 <= f < n].  This is the adversary of the
    paper's worst-case analyses: it maximizes rounds (Silent), bits (Greedy)
    or estimate churn (Teasing). *)

val random :
  rng:Prng.Rng.t ->
  model:Model_kind.t ->
  n:int ->
  f:int ->
  max_round:int ->
  Schedule.t
(** [f] uniformly chosen victims; for each, a uniform crash round in
    [1 .. max_round] and a uniform crash point (subset / prefix included).
    [After_data] points are only drawn under the extended model. *)

val random_f :
  rng:Prng.Rng.t ->
  model:Model_kind.t ->
  n:int ->
  t:int ->
  max_round:int ->
  Schedule.t
(** Like {!random} with [f] itself uniform in [0 .. t]. *)
