open Model

let no_crash = Schedule.empty

type killer_style = Silent | Greedy | Teasing of int

let coordinator_killer ~n ~f ~style =
  if f < 0 || f >= n then invalid_arg "coordinator_killer: need 0 <= f < n";
  let point i =
    match style with
    | Silent -> Crash.Before_send
    | Greedy ->
      (* Data fully delivered; commits go from p_n down to p_{f+2} only —
         one short of the paper's narration, which would let p_{f+1} decide
         in round 1 and skip its own coordination round.  Stopping at
         p_{f+2} keeps p_{f+1} active, realizing the true message maximum
         (f+1)(n-1-f/2) data + (f+1)(n-f-1) commits. *)
      Crash.After_data (n - f - 1)
    | Teasing k ->
      Crash.During_data (Pid.set_of_ints (List.filteri (fun idx _ -> idx < k)
        (List.rev_map Pid.to_int (Pid.range ~lo:(i + 1) ~hi:n))))
  in
  Schedule.of_list
    (List.map
       (fun i -> (Pid.of_int i, Crash.make ~round:i (point i)))
       (List.init f (fun k -> k + 1)))

let random_point rng ~model ~n =
  let subset () =
    Pid.set_of_ints
      (List.filter (fun _ -> Prng.Rng.bool rng) (List.init n (fun i -> i + 1)))
  in
  match model with
  | Model_kind.Classic -> begin
    match Prng.Rng.int rng 3 with
    | 0 -> Crash.Before_send
    | 1 -> Crash.During_data (subset ())
    | _ -> Crash.After_send
  end
  | Model_kind.Extended -> begin
    match Prng.Rng.int rng 4 with
    | 0 -> Crash.Before_send
    | 1 -> Crash.During_data (subset ())
    | 2 -> Crash.After_data (Prng.Rng.int rng n)
    | _ -> Crash.After_send
  end

let random ~rng ~model ~n ~f ~max_round =
  if f < 0 || f > n then invalid_arg "Strategies.random: need 0 <= f <= n";
  let victims =
    Prng.Rng.sample_without_replacement rng f (List.init n (fun i -> i + 1))
  in
  Schedule.of_list
    (List.map
       (fun v ->
         let round = Prng.Rng.int_in rng 1 max_round in
         (Pid.of_int v, Crash.make ~round (random_point rng ~model ~n)))
       victims)

let random_f ~rng ~model ~n ~t ~max_round =
  random ~rng ~model ~n ~f:(Prng.Rng.int_in rng 0 t) ~max_round
