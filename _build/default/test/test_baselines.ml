(* Correctness tests for the classic-model baselines: FloodSet (t+1 rounds)
   and the early-stopping algorithm (min(t+1, f+2) rounds). *)

open Model
open Sync_sim
open Helpers

let sched l =
  Schedule.of_list
    (List.map (fun (p, r, pt) -> (Pid.of_int p, Crash.make ~round:r pt)) l)

let decision res pid =
  match Run_result.status res (Pid.of_int pid) with
  | Run_result.Decided { value; at_round } -> (value, at_round)
  | Run_result.Crashed _ -> Alcotest.fail "unexpectedly crashed"
  | Run_result.Undecided -> Alcotest.fail "unexpectedly undecided"

(* --- FloodSet ------------------------------------------------------------ *)

let test_flood_no_crash_decides_min_at_t1 () =
  let res = run_flood ~n:4 ~t:2 ~schedule:Schedule.empty ~proposals:[| 5; 3; 9; 7 |] () in
  List.iter
    (fun p ->
      Alcotest.(check (pair int int)) "min at t+1" (3, 3) (decision res p))
    [ 1; 2; 3; 4 ]

let test_flood_never_early () =
  (* Even with zero crashes FloodSet burns t+1 rounds — the baseline cost the
     paper wants to beat. *)
  let res = run_flood ~n:6 ~t:4 ~schedule:Schedule.empty
      ~proposals:(Engine.distinct_proposals 6) () in
  Alcotest.(check int) "t+1 rounds" 5 res.Run_result.rounds_executed

let test_flood_partial_value_spreads () =
  (* p1's value 0 reaches only p2 before p1 dies; flooding must still carry
     it to everyone. *)
  let res =
    run_flood ~n:4 ~t:2
      ~schedule:(sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 2 ])) ])
      ~proposals:[| 0; 5; 6; 7 |] ()
  in
  List.iter
    (fun p -> Alcotest.(check (pair int int)) "decides 0" (0, 3) (decision res p))
    [ 2; 3; 4 ]

let test_flood_value_can_die_with_its_holders () =
  (* p1 delivers 0 to p2 only; p2 dies in round 2 before relaying it: 0
     vanishes (p2's own proposal 5 already flooded in round 1, so survivors
     decide 5, not 0). *)
  let res =
    run_flood ~n:4 ~t:2
      ~schedule:
        (sched
           [
             (1, 1, Crash.During_data (Pid.set_of_ints [ 2 ]));
             (2, 2, Crash.Before_send);
           ])
      ~proposals:[| 0; 5; 6; 7 |] ()
  in
  List.iter
    (fun p -> Alcotest.(check (pair int int)) "decides 5" (5, 3) (decision res p))
    [ 3; 4 ]

let prop_flood_uniform_consensus =
  qtest ~count:500 "floodset: uniform consensus at round t+1"
    (scenario_gen ~model:Model_kind.Classic ())
    (fun s ->
      let res = run_flood ~n:s.n ~t:s.t ~schedule:s.schedule ~proposals:s.proposals () in
      match
        Spec.Properties.failures
          (Spec.Properties.uniform_consensus ~bound:(s.t + 1) res)
      with
      | [] ->
        (* and decisions happen exactly at t+1 *)
        List.for_all (fun (_, _, r) -> r = s.t + 1) (Run_result.decisions res)
      | c :: _ ->
        QCheck2.Test.fail_reportf "%s on %s"
          (Format.asprintf "%a" Spec.Properties.pp_check c)
          (scenario_print s))

(* --- Early stopping ------------------------------------------------------ *)

let test_es_no_crash_decides_in_two_rounds () =
  let res = run_es ~n:5 ~t:3 ~schedule:Schedule.empty ~proposals:[| 4; 2; 8; 6; 9 |] () in
  List.iter
    (fun p ->
      Alcotest.(check (pair int int)) "min at f+2=2" (2, 2) (decision res p))
    [ 1; 2; 3; 4; 5 ]

let test_es_one_crash_decides_by_three () =
  let res =
    run_es ~n:5 ~t:3
      ~schedule:(sched [ (1, 1, Crash.During_data (Pid.set_of_ints [ 2; 3 ])) ])
      ~proposals:[| 0; 5; 6; 7; 8 |] ()
  in
  check_consensus ~context:"es one crash" ~bound:3 res;
  Alcotest.(check (list int)) "value 0 spread" [ 0 ] (Run_result.decided_values res)

let test_es_never_beats_lower_bound_needlessly () =
  (* t = 1: min(t+1, f+2) = 2 rounds even with f = 0. *)
  let res = run_es ~n:3 ~t:1 ~schedule:Schedule.empty ~proposals:[| 3; 1; 2 |] () in
  List.iter
    (fun p -> Alcotest.(check (pair int int)) "two rounds" (1, 2) (decision res p))
    [ 1; 2; 3 ]

let es_bound ~t ~f = min (t + 1) (f + 2)

let prop_es_uniform_consensus =
  qtest ~count:800 "early-stopping: uniform consensus in min(t+1, f+2)"
    (scenario_gen ~model:Model_kind.Classic ())
    (fun s ->
      let res = run_es ~n:s.n ~t:s.t ~schedule:s.schedule ~proposals:s.proposals () in
      let bound = es_bound ~t:s.t ~f:(f_actual res) in
      match
        Spec.Properties.failures (Spec.Properties.uniform_consensus ~bound res)
      with
      | [] -> true
      | c :: _ ->
        QCheck2.Test.fail_reportf "%s on %s"
          (Format.asprintf "%a" Spec.Properties.pp_check c)
          (scenario_print s))

(* --- Exhaustive model check over all classic schedules ------------------- *)

let exhaustive_classic ~name runner ~bound_of ~n ~t ~max_f ~max_round () =
  let proposals = Engine.distinct_proposals n in
  let count = ref 0 in
  Seq.iter
    (fun schedule ->
      incr count;
      let res = runner ~n ~t ~schedule ~proposals () in
      let bound = bound_of ~t ~f:(f_actual res) in
      Spec.Properties.assert_ok
        ~context:
          (Printf.sprintf "%s n=%d t=%d schedule=%s" name n t
             (Schedule.to_string schedule))
        (Spec.Properties.uniform_consensus ~bound res))
    (Adversary.Enumerate.schedules ~model:Model_kind.Classic ~n ~max_f ~max_round);
  Alcotest.(check bool) "ran some" true (!count > 10)

let test_flood_exhaustive_n4 () =
  exhaustive_classic ~name:"flood" (fun ~n ~t ~schedule ~proposals () ->
      run_flood ~n ~t ~schedule ~proposals ())
    ~bound_of:(fun ~t ~f:_ -> t + 1)
    ~n:4 ~t:2 ~max_f:2 ~max_round:3 ()

let test_es_exhaustive_n4 () =
  exhaustive_classic ~name:"early-stopping" (fun ~n ~t ~schedule ~proposals () ->
      run_es ~n ~t ~schedule ~proposals ())
    ~bound_of:(fun ~t ~f -> min (t + 1) (f + 2))
    ~n:4 ~t:3 ~max_f:2 ~max_round:4 ()

let test_es_exhaustive_n5_single () =
  exhaustive_classic ~name:"early-stopping" (fun ~n ~t ~schedule ~proposals () ->
      run_es ~n ~t ~schedule ~proposals ())
    ~bound_of:(fun ~t ~f -> min (t + 1) (f + 2))
    ~n:5 ~t:4 ~max_f:1 ~max_round:3 ()

let () =
  Alcotest.run "baselines"
    [
      ( "flood-set",
        [
          Alcotest.test_case "no-crash" `Quick test_flood_no_crash_decides_min_at_t1;
          Alcotest.test_case "never-early" `Quick test_flood_never_early;
          Alcotest.test_case "spread" `Quick test_flood_partial_value_spreads;
          Alcotest.test_case "value-death" `Quick test_flood_value_can_die_with_its_holders;
          prop_flood_uniform_consensus;
          Alcotest.test_case "exhaustive n=4" `Slow test_flood_exhaustive_n4;
        ] );
      ( "early-stopping",
        [
          Alcotest.test_case "no-crash" `Quick test_es_no_crash_decides_in_two_rounds;
          Alcotest.test_case "one-crash" `Quick test_es_one_crash_decides_by_three;
          Alcotest.test_case "t1-two-rounds" `Quick test_es_never_beats_lower_bound_needlessly;
          prop_es_uniform_consensus;
          Alcotest.test_case "exhaustive n=4" `Slow test_es_exhaustive_n4;
          Alcotest.test_case "exhaustive n=5 f<=1" `Quick test_es_exhaustive_n5_single;
        ] );
    ]
